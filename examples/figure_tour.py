"""Regenerate every paper figure at reduced scale and print the tables.

Run:  python examples/figure_tour.py [--full]

``--full`` runs the paper-scale parameters (batch 3000/800, Nmax up to
2000) and takes a few minutes; the default reduced sweep finishes in
well under a minute.  This is the same harness the ``benchmarks/``
suite drives — see EXPERIMENTS.md for the recorded paper-vs-measured
comparison.
"""

import sys
import time

from repro.bench import figures, format_figure


def main(full: bool = False):
    if full:
        runs = [
            (figures.fig3_distributions, {}),
            (figures.fig4_fusion_fixed, dict(precision="s")),
            (figures.fig4_fusion_fixed, dict(precision="d")),
            (figures.fig5_fused_variants, dict(precision="s")),
            (figures.fig5_fused_variants, dict(precision="d")),
            (figures.fig6_fused_variants_gaussian, dict(precision="s")),
            (figures.fig6_fused_variants_gaussian, dict(precision="d")),
            (figures.fig7_crossover, dict(precision="s")),
            (figures.fig7_crossover, dict(precision="d")),
            (figures.fig8_overall, dict(precision="s")),
            (figures.fig8_overall, dict(precision="d")),
            (figures.fig9_overall_gaussian, dict(precision="s")),
            (figures.fig9_overall_gaussian, dict(precision="d")),
            (figures.fig10_energy, {}),
            (figures.aux_interface_overhead, {}),
        ]
    else:
        small_nmax = (64, 128, 256, 512)
        runs = [
            (figures.fig3_distributions, dict(bin_width=32)),
            (figures.fig4_fusion_fixed, dict(precision="d", sizes=(16, 64, 256, 512), batch_count=500)),
            (figures.fig5_fused_variants, dict(precision="d", nmax_values=small_nmax, batch_count=1000)),
            (figures.fig6_fused_variants_gaussian,
             dict(precision="d", nmax_values=small_nmax, batch_count=1000)),
            (figures.fig7_crossover, dict(precision="d", nmax_values=(128, 256, 512, 768), batch_count=400)),
            (figures.fig8_overall, dict(precision="d", nmax_values=(256, 512, 1000, 2000), batch_count=400)),
            (figures.fig9_overall_gaussian,
             dict(precision="d", nmax_values=(256, 512, 1000), batch_count=400)),
            (figures.fig10_energy, dict(buckets=((64, 256, 1000), (256, 512, 500), (512, 1024, 250)))),
            (figures.aux_interface_overhead, dict(batch_count=1000)),
        ]

    for fn, kwargs in runs:
        t0 = time.time()
        fig = fn(**kwargs)
        print(format_figure(fig))
        print(f"   ({time.time() - t0:.1f} s)\n")


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:])
