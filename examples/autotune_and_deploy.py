"""Autotune-then-deploy: the paper's §III-B workflow end to end.

Run:  python examples/autotune_and_deploy.py

"Success in such an effort will require ... packaging and deployment at
the user site to trigger final stages of tuning at the moment of
execution."  This example plays the user site: sweep the tuning spaces
on the local (simulated) device once, persist the results, then run the
production workload with the tuned configuration and compare against
stock defaults.
"""

import tempfile
import time
from pathlib import Path

from repro import Device, PotrfOptions, VBatch, potrf_vbatched
from repro.autotune import Tuner, TuningCache
from repro.distributions import gaussian_sizes


def run_workload(sizes, options):
    device = Device(execute_numerics=False)
    batch = VBatch.allocate(device, sizes, "d")
    device.reset_clock()
    return potrf_vbatched(device, batch, options)


def main():
    workload = gaussian_sizes(batch_count=1500, max_size=448, seed=3)

    with tempfile.TemporaryDirectory() as tmp:
        cache_path = Path(tmp) / "site_tuning.json"

        # --- install-time tuning pass ---------------------------------
        t0 = time.time()
        tuner = Tuner(cache=TuningCache(cache_path), batch_count=400)
        nb = tuner.tune_fused_nb(int(workload.max()), "d")
        crossover = tuner.tune_crossover(
            "d", grid=(192, 256, 320, 384, 448, 512, 640), batch_count=300
        )
        print(f"tuning pass: {time.time() - t0:.1f} s wall")
        print(f"  fused nb for band {nb.band}: {nb.choice['nb']}")
        print(f"  crossover size: {crossover.choice['crossover_size']}")
        print(f"  persisted {cache_path.name} with {len(tuner.cache)} entries")

        # --- production runs -------------------------------------------
        tuned = run_workload(
            workload,
            PotrfOptions(
                nb=nb.choice["nb"],
                crossover_size=crossover.choice["crossover_size"],
            ),
        )
        stock = run_workload(workload, PotrfOptions())
        print(f"stock defaults : {stock.gflops:7.1f} Gflop/s ({stock.approach})")
        print(f"site-tuned     : {tuned.gflops:7.1f} Gflop/s ({tuned.approach})")

        # The shipped defaults were themselves produced by this tuner, so
        # site tuning should land within a few percent — the point is the
        # workflow, not a magic speedup on an already-tuned device.
        assert tuned.gflops > 0.9 * stock.gflops

        # A second process at the site reuses the cache without sweeping.
        t0 = time.time()
        tuner2 = Tuner(cache=TuningCache(cache_path))
        again = tuner2.tune_crossover("d")
        assert again.choice == crossover.choice
        print(f"cache reuse: crossover lookup in {time.time() - t0:.3f} s (no sweep)")


if __name__ == "__main__":
    main()
