"""Sparse multifrontal Cholesky on the vbatched foundation.

Run:  python examples/multifrontal_solver.py

The paper's intro motivates vbatched routines with "large scale sparse
direct multifrontal solvers", and §V names them the destination for the
kernels built here.  ``repro.multifrontal`` is that destination: nested
dissection orders a sparse SPD system, symbolic analysis builds the
frontal structures, and the numeric sweep eliminates every level's
fronts — genuinely different sizes — with ONE vbatched partial-Cholesky
call per level on the simulated device.  This example solves a 2-D
Poisson-like system end to end and verifies against dense SciPy.
"""

import networkx as nx
import numpy as np
import scipy.linalg as sla

from repro.device import Device
from repro.multifrontal import analyze, factorize, solve


def main():
    grid = 40
    g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(grid, grid))
    n = g.number_of_nodes()
    a = nx.laplacian_matrix(g).astype(float).toarray()
    a += 4.0 * np.eye(n)
    print(f"{grid}x{grid} grid Laplacian: n = {n}, nnz = {2 * g.number_of_edges() + n}")

    sym = analyze(g, min_size=8)
    print(f"symbolic: {len(sym.fronts)} fronts over {len(sym.levels)} levels, "
          f"largest front {sym.max_front}")

    device = Device()
    fac = factorize(device, a, sym)
    print(f"numeric: {fac.total_flops / 1e6:.2f} Mflop in "
          f"{fac.elapsed * 1e3:.3f} ms simulated ({fac.gflops:.1f} Gflop/s)")
    for depth, stats in enumerate(fac.level_stats):
        lo, hi = stats["orders"]
        print(f"  level {depth:2d}: {stats['fronts']:4d} fronts, orders "
              f"{lo:4d}..{hi:4d} -> {stats['gflops']:6.1f} Gflop/s")

    rng = np.random.default_rng(0)
    b = rng.standard_normal(n)
    x = solve(fac, b)
    residual = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
    x_ref = sla.solve(a, b, assume_a="pos")
    print(f"relative residual: {residual:.2e}; "
          f"max diff vs dense solve: {np.max(np.abs(x - x_ref)):.2e}")
    assert residual < 1e-12

    # The memory story: dense would need n^2 doubles; the fronts peak
    # far below that.
    dense_bytes = n * n * 8
    front_bytes = max(
        sum(f.order**2 * 8 for f in level) for level in sym.levels
    )
    print(f"peak level footprint {front_bytes / 1e6:.2f} MB vs dense "
          f"{dense_bytes / 1e6:.2f} MB ({dense_bytes / front_bytes:.0f}x saving)")


if __name__ == "__main__":
    main()
