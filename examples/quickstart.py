"""Quickstart: factorize a variable-size batch and verify the factors.

Run:  python examples/quickstart.py

Walks through the full public API: generate a size sample, build SPD
matrices, upload them into a :class:`VBatch`, call the LAPACK-like
vbatched interface, and check every factor against the originals.
"""

import numpy as np

from repro import Device, PotrfOptions, VBatch, make_spd_batch, potrf_vbatched
from repro.distributions import uniform_sizes
from repro.flops import batch_flops
from repro.hostblas import cholesky_residual


def main():
    # 200 SPD matrices with sizes drawn uniformly from [1, 128].
    sizes = uniform_sizes(batch_count=200, max_size=128, seed=42)
    print(f"batch of {sizes.size} matrices, sizes {sizes.min()}..{sizes.max()}")

    device = Device()  # a simulated Tesla K40c
    host_matrices = make_spd_batch(sizes, precision="d", seed=7)
    batch = VBatch.from_host(device, host_matrices)

    # Time the factorization only, not the uploads.
    device.reset_clock()
    result = potrf_vbatched(device, batch, PotrfOptions(on_error="raise"))

    print(f"approach selected : {result.approach}")
    print(f"simulated time    : {result.elapsed * 1e3:.3f} ms")
    print(f"throughput        : {result.gflops:.1f} Gflop/s "
          f"({batch_flops(sizes):.3g} flops)")
    print(f"launches          : {result.launch_stats}")

    factors = batch.download_matrices()
    worst = max(
        cholesky_residual(a, l) for a, l in zip(host_matrices, factors)
    )
    print(f"worst residual    : {worst:.2e}  (||A - L L^T|| / (n ||A||))")
    assert worst < 1e-13, "factorization must be backward stable"

    # Use a factor: solve A x = b for the largest matrix via its L.
    import scipy.linalg as sla

    i = int(np.argmax(sizes))
    n = int(sizes[i])
    rng = np.random.default_rng(0)
    b = rng.standard_normal(n)
    l = np.tril(factors[i])
    x = sla.solve_triangular(l.T, sla.solve_triangular(l, b, lower=True), lower=False)
    print(f"solve check       : ||Ax - b|| = {np.linalg.norm(host_matrices[i] @ x - b):.2e}")


if __name__ == "__main__":
    main()
