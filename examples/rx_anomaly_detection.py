"""Local RX anomaly detection on hyperspectral imagery via batched Cholesky.

Run:  python examples/rx_anomaly_detection.py

The paper cites Molero et al., "A batched Cholesky solver for local RX
anomaly detection on GPUs" [22], as a motivating application.  The
local Reed-Xiaoli detector computes, per pixel, the Mahalanobis
distance of the pixel's spectrum to its neighbourhood statistics:

    RX(r) = (r - mu)^T  C^{-1}  (r - mu)

with ``C`` the covariance of a sliding window.  Tiles at image borders
produce *smaller* windows -> covariance matrices of varying effective
band counts: a vbatched POTRF + vbatched POTRS pipeline end to end.
"""

import numpy as np

from repro import Device, PotrfOptions, VBatch, potrf_vbatched, potrs_vbatched


def synthetic_hyperspectral_cube(height, width, bands, seed=0):
    """Smooth background with correlated bands plus a few implanted targets."""
    rng = np.random.default_rng(seed)
    mixing = rng.standard_normal((bands, 6))
    sources = rng.standard_normal((6, height * width))
    cube = (mixing @ sources).T.reshape(height, width, bands)
    cube += 0.1 * rng.standard_normal(cube.shape)
    targets = [(height // 4, width // 3), (height // 2, 2 * width // 3), (3 * height // 4, width // 5)]
    signature = rng.standard_normal(bands) * 4.0
    for (ty, tx) in targets:
        cube[ty, tx] += signature
    return cube, targets


def main():
    height, width, bands = 24, 24, 40
    cube, targets = synthetic_hyperspectral_cube(height, width, bands, seed=3)
    half = 5  # sliding half-window

    # Per-pixel neighbourhood covariances.  Border pixels see clipped
    # windows; we keep the covariance order equal to min(#samples-1,
    # bands) so border matrices genuinely shrink -> variable sizes.
    covs, rhs, used_bands, coords = [], [], [], []
    for y in range(0, height, 2):          # stride 2: tile centres
        for x in range(0, width, 2):
            y0, y1 = max(0, y - half), min(height, y + half + 1)
            x0, x1 = max(0, x - half), min(width, x + half + 1)
            window = cube[y0:y1, x0:x1].reshape(-1, bands)
            nb_eff = min(bands, window.shape[0] - 2)
            sub = window[:, :nb_eff]
            mu = sub.mean(axis=0)
            centered = sub - mu
            c = centered.T @ centered / (sub.shape[0] - 1)
            c += 1e-3 * np.trace(c) / nb_eff * np.eye(nb_eff)  # regularize
            covs.append(np.ascontiguousarray(c))
            rhs.append((cube[y, x, :nb_eff] - mu).copy())
            used_bands.append(nb_eff)
            coords.append((y, x))

    sizes = np.array(used_bands)
    print(f"{len(covs)} windows, covariance orders {sizes.min()}..{sizes.max()}")

    device = Device()
    batch = VBatch.from_host(device, covs)
    device.reset_clock()
    fact = potrf_vbatched(device, batch, PotrfOptions(on_error="raise"))
    diffs = [r.copy() for r in rhs]
    solve = potrs_vbatched(device, batch, diffs)
    print(f"factorize: {fact.gflops:.1f} Gflop/s ({fact.approach}); "
          f"solve: {solve.elapsed * 1e6:.1f} us simulated")

    # Mahalanobis scores: (r-mu)^T C^{-1} (r-mu) = (r-mu)^T x.
    scores = np.array([float(r @ x) for r, x in zip(rhs, diffs)])
    order = np.argsort(-scores)
    top = [coords[i] for i in order[:6]]
    print("top anomaly tiles:", top)

    found = {
        (ty, tx)
        for (ty, tx) in targets
        if any(abs(ty - y) <= 2 and abs(tx - x) <= 2 for (y, x) in top)
    }
    print(f"implanted targets recovered by top-6 tiles: {len(found)}/{len(targets)}")
    assert len(found) >= 2, "the detector should flag most implanted targets"


if __name__ == "__main__":
    main()
