"""Batch serving: individual requests, size-aware windows, one server.

Run:  python examples/serving_throughput.py

The batched routines want a pre-aggregated ``VBatch``; a service gets
one matrix at a time.  This walkthrough drives the serving subsystem
both ways it is meant to be used:

1. **asynchronous** — a worker thread forms batches as requests land
   (windows close on ``max_wait``), with real numerics and a
   correctness check against a direct factorization of the same batch;
2. **closed-loop benchmark** — the deterministic ``pump`` mode compares
   the windowing policies on one fixed-seed stream: per-request
   dispatch vs FIFO vs the size-aware policies, in simulated
   matrices/s and padded-flops waste.
"""

import numpy as np

from repro import Device, make_spd_batch
from repro.serving import BatchServer, run_serve_bench


def async_requests():
    print("-- async serving: one request at a time, numerics on ----------")
    sizes = [96, 24, 96, 25, 95, 24, 97, 26]
    matrices = make_spd_batch(sizes, seed=0)

    with BatchServer(Device(), policy="greedy-window", max_batch=4,
                     max_wait=2e-3) as server:
        server.start()
        futures = [server.submit(m) for m in matrices]
        responses = [f.result(timeout=10.0) for f in futures]

    for m, resp in zip(matrices, responses):
        assert resp.ok, f"request {resp.req_id} failed with info={resp.info}"
        L = np.tril(resp.factor)
        residual = np.linalg.norm(m - L @ L.T) / np.linalg.norm(m)
        assert residual < 1e-12, residual

    batches = {r.batch_id for r in responses}
    print(f"  {len(responses)} requests served in {len(batches)} batches")
    for b in sorted(batches):
        ns = sorted(r.factor.shape[0] for r in responses if r.batch_id == b)
        print(f"    batch {b}: sizes {ns}")
    print("  every factor verified against its input (residual < 1e-12)\n")


def policy_shootout():
    print("-- closed-loop policy shoot-out (timing mode, seed 0) ---------")
    report = run_serve_bench(requests=400, max_size=192, seed=0,
                             max_batch=16, concurrency=64)
    print(f"  {'policy':>14} {'batches':>8} {'mat/sim_s':>10} {'waste_%':>8}")
    for name, snap in report["policies"].items():
        thr, batching = snap["throughput"], snap["batching"]
        waste = 100.0 * (1.0 - batching["efficiency"])
        print(f"  {name:>14} {thr['batches']:>8} "
              f"{thr['matrices_per_sim_s']:>10.0f} {waste:>8.2f}")
    speedups = report["comparison"]["speedup_vs_per_request"]
    print("  speedup vs per-request: "
          + ", ".join(f"{k} {v:.1f}x" for k, v in speedups.items()))
    assert speedups["greedy-window"] >= 2.0
    assert speedups["size-bucket"] >= 2.0
    fifo_waste = report["policies"]["fifo"]["batching"]["wasted_flops"]
    aware_waste = report["policies"]["greedy-window"]["batching"]["wasted_flops"]
    assert aware_waste < fifo_waste
    print("  size-aware windows: >= 2x per-request throughput, "
          "less padded waste than FIFO")


def main():
    async_requests()
    policy_shootout()


if __name__ == "__main__":
    main()
