"""High-order FEM mass-matrix batch, as in BLAST-style hydrodynamics.

Run:  python examples/fem_hydrodynamics.py

The paper cites "high-order FEM schemes for hydrodynamics" [10] as a
batched-computation consumer: every element carries a dense local mass
matrix of order ``(p+1)^2`` (2-D quads at polynomial order ``p``), and
an adaptive, mixed-order mesh yields *different* sizes in one sweep —
a textbook vbatched workload.  This example builds genuine local mass
matrices from Gauss-Legendre quadrature over tensor-product Lagrange
bases, Cholesky-factorizes the whole mesh in one vbatched call, and
applies the factors to invert the mass matrix action on a test field.
"""

import numpy as np

from repro import Device, PotrfOptions, VBatch, potrf_vbatched
from repro.hostblas import trsm


def lagrange_basis(nodes: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Values of the Lagrange basis on ``nodes`` at points ``x``."""
    k = nodes.size
    out = np.ones((k, x.size))
    for i in range(k):
        for j in range(k):
            if i != j:
                out[i] *= (x - nodes[j]) / (nodes[i] - nodes[j])
    return out


def element_mass_matrix(p: int, jacobian: float) -> np.ndarray:
    """Dense mass matrix of a 2-D tensor-product element of order ``p``."""
    nodes = np.cos(np.pi * np.arange(p + 1) / max(p, 1))[::-1]  # Chebyshev pts
    q, w = np.polynomial.legendre.leggauss(p + 2)
    phi = lagrange_basis(nodes, q)  # (p+1, nq)
    m1 = (phi * w) @ phi.T  # 1-D mass matrix
    return jacobian * np.kron(m1, m1)  # 2-D tensor product


def main():
    rng = np.random.default_rng(5)
    # Mixed-order adaptive mesh: mostly order 3-5, a few refined p=7-8
    # elements — sizes (p+1)^2 from 16 to 81.
    orders = rng.choice([3, 4, 5, 7, 8], size=400, p=[0.3, 0.3, 0.25, 0.1, 0.05])
    jacobians = rng.uniform(0.5, 2.0, size=orders.size)
    elements = [element_mass_matrix(int(p), float(j)) for p, j in zip(orders, jacobians)]
    sizes = np.array([e.shape[0] for e in elements])
    print(f"{len(elements)} elements, mass-matrix sizes {sizes.min()}..{sizes.max()}")

    device = Device()
    batch = VBatch.from_host(device, elements)
    device.reset_clock()
    result = potrf_vbatched(device, batch, PotrfOptions(on_error="raise"))
    print(f"vbatched dpotrf: {result.gflops:.1f} Gflop/s via {result.approach}, "
          f"{result.elapsed * 1e3:.3f} ms simulated")

    # Apply the factors: u = M^{-1} f per element (the mass-matrix
    # inversion inside every hydrodynamics time step).
    factors = batch.download_matrices()
    worst = 0.0
    for mass, factor in zip(elements, factors):
        n = mass.shape[0]
        f = rng.standard_normal((n, 1))
        y = trsm("l", "l", "n", "n", 1.0, np.tril(factor), f.copy())
        u = trsm("l", "l", "t", "n", 1.0, np.tril(factor), y)
        worst = max(worst, float(np.linalg.norm(mass @ u - f)))
    print(f"worst mass-inverse residual over the mesh: {worst:.2e}")
    assert worst < 1e-9


if __name__ == "__main__":
    main()
