"""Per-sensor least squares with the vbatched QR extension.

Run:  python examples/sensor_least_squares.py

A sensor network fits a local polynomial model per node: each node has
its own observation count (dropouts, duty cycles) and model order, so
the normal panels are tall-skinny matrices of *varying* shapes — batched
QR territory (the paper's signal-processing motivation [8]).  We QR-
factorize every node's design matrix in one ``geqrf_vbatched`` call and
solve the triangular systems for the model coefficients.

Design matrices are square-embedded (QR of the leading ``m_i x p_i``
panel of an ``m_i x m_i`` buffer) since the vbatched container is
square; the math uses only the factored panel.
"""

import numpy as np

from repro import Device, VBatch, geqrf_vbatched
from repro.hostblas import build_q, trsm


def design_matrix(times, order):
    """Vandermonde-style polynomial design matrix."""
    return np.vander(times, order + 1, increasing=True)


def main():
    rng = np.random.default_rng(17)
    n_sensors = 300
    truth_coeffs = {}
    systems, targets, shapes = [], [], []
    for s in range(n_sensors):
        m = int(rng.integers(12, 96))          # observations at this node
        p = int(rng.integers(2, min(7, m - 1)))  # local model order
        t = np.sort(rng.uniform(-1, 1, m))
        X = design_matrix(t, p)
        beta = rng.standard_normal(p + 1)
        y = X @ beta + 0.01 * rng.standard_normal(m)
        truth_coeffs[s] = beta
        # Square embedding: the QR of the m x m buffer factors the
        # leading panel exactly (remaining columns are zero).
        buf = np.zeros((m, m))
        buf[:, : p + 1] = X
        systems.append(buf)
        targets.append(y)
        shapes.append((m, p + 1))

    device = Device()
    batch = VBatch.from_host(device, systems)
    device.reset_clock()
    res = geqrf_vbatched(device, batch)
    print(f"{n_sensors} sensors, panels {min(m for m, _ in shapes)}x2 .. "
          f"{max(m for m, _ in shapes)}x7")
    print(f"vbatched dgeqrf: {res.gflops:.1f} Gflop/s, "
          f"{res.elapsed * 1e3:.3f} ms simulated")

    factors = batch.download_matrices()
    worst_fit = 0.0
    for s, (m, cols) in enumerate(shapes):
        f = factors[s]
        q = build_q(f, res.taus[s, :m])
        r = np.triu(f)[:cols, :cols]
        qty = (q.T @ targets[s])[:cols]
        beta_hat = trsm("l", "u", "n", "n", 1.0, r, qty[:, None].copy())[:, 0]
        worst_fit = max(worst_fit, float(np.max(np.abs(beta_hat - truth_coeffs[s]))))
    print(f"worst coefficient error across the network: {worst_fit:.3f}")
    assert worst_fit < 0.5, "least-squares fits should recover the models"


if __name__ == "__main__":
    main()
