"""Stiff chemical-kinetics integration with the vbatched LU extension.

Run:  python examples/chemical_kinetics_lu.py

The paper's related work (Villa et al. [25][26]) batches small LU
factorizations for subsurface-transport chemistry: every grid cell
carries an implicit ODE solve over its local species, and cells differ
in how many species are active — variable sizes again.  This example
integrates a batch of randomly-sized linear kinetics systems with one
backward-Euler step per cell,

    (I - dt * J_i) x_i = c_i,

factorizing all Jacobian systems at once with ``getrf_vbatched`` and
back-substituting with the host triangular kernels.
"""

import numpy as np

from repro import Device, VBatch, getrf_vbatched
from repro.hostblas import apply_pivots, trsm


def random_kinetics_jacobian(n, rng):
    """A stable reaction Jacobian: negative-dominant with sparse coupling."""
    j = rng.standard_normal((n, n)) * 0.3
    j[rng.random((n, n)) > 0.4] = 0.0
    j -= np.diag(np.abs(j).sum(axis=1) + rng.uniform(0.5, 2.0, n))
    return j


def main():
    rng = np.random.default_rng(11)
    n_cells = 500
    species_counts = rng.integers(4, 60, size=n_cells)
    dt = 0.05

    jacobians = [random_kinetics_jacobian(int(n), rng) for n in species_counts]
    concentrations = [rng.uniform(0.0, 1.0, int(n)) for n in species_counts]
    systems = [np.eye(int(n)) - dt * j for n, j in zip(species_counts, jacobians)]

    device = Device()
    batch = VBatch.from_host(device, systems)
    device.reset_clock()
    res = getrf_vbatched(device, batch)
    print(f"{n_cells} cells, species {species_counts.min()}..{species_counts.max()}")
    print(f"vbatched dgetrf: {res.gflops:.1f} Gflop/s, "
          f"{res.elapsed * 1e3:.3f} ms simulated, failures: {res.failed_count}")
    assert res.failed_count == 0

    # Back-substitution per cell: P L U x = c.
    factors = batch.download_matrices()
    worst = 0.0
    new_conc = []
    for i, (f, c) in enumerate(zip(factors, concentrations)):
        n = int(species_counts[i])
        y = apply_pivots(c.copy()[:, None], res.ipivs[i, :n])
        trsm("l", "l", "n", "u", 1.0, f, y)
        trsm("l", "u", "n", "n", 1.0, f, y)
        x = y[:, 0]
        worst = max(worst, float(np.linalg.norm(systems[i] @ x - c)))
        new_conc.append(x)
    print(f"worst backward-Euler residual: {worst:.2e}")
    assert worst < 1e-9

    # One sanity property of the physics: with a stable Jacobian the
    # implicit step contracts towards equilibrium (no blow-up).
    growth = max(
        np.linalg.norm(x) / max(np.linalg.norm(c), 1e-30)
        for x, c in zip(new_conc, concentrations)
    )
    print(f"max step growth factor: {growth:.3f}")
    assert growth < 2.0


if __name__ == "__main__":
    main()
