"""Multi-device sharding: scale one vbatched workload across N GPUs.

Run:  python examples/multi_device_sharding.py

The plan/execute split turns multi-GPU batched factorization into a
partitioning problem: a :class:`DeviceGroup` splits the batch with a
flops-balanced partitioner, executes one launch plan per device
concurrently, and merges the results.  The script sweeps the Fig 3
uniform workload over 1/2/4/8 simulated K40c devices, then shows the
plan cache eliminating planning work on repeated sweeps.
"""

from repro import Device, DeviceGroup, PlanCache, PotrfOptions, VBatch
from repro.core.driver import run_potrf_vbatched
from repro.distributions import uniform_sizes


def main():
    sizes = uniform_sizes(batch_count=400, max_size=256, seed=11)
    print(f"workload: {sizes.size} matrices, sizes {sizes.min()}..{sizes.max()} (fp64)\n")

    # -- makespan vs device count (timing-only sweep) -------------------
    base = None
    print("devices   makespan      aggregate     speedup")
    for n_dev in (1, 2, 4, 8):
        group = DeviceGroup.simulated(n_dev, execute_numerics=False, partition="flops")
        batch = VBatch.allocate(Device(execute_numerics=False), sizes, "d")
        res = run_potrf_vbatched(
            batch.device, batch, int(sizes.max()), PotrfOptions(), devices=group
        )
        base = base or res.elapsed
        print(f"  {n_dev:4d}   {res.elapsed * 1e3:8.4f} ms {res.gflops:9.1f} Gflop/s"
              f"   {base / res.elapsed:5.2f}x")

    # -- plan caching on the hot path -----------------------------------
    cache = PlanCache()
    group = DeviceGroup.simulated(4, execute_numerics=False)
    for _ in range(5):
        batch = VBatch.allocate(Device(execute_numerics=False), sizes, "d")
        run_potrf_vbatched(
            batch.device, batch, int(sizes.max()), PotrfOptions(),
            devices=group, plan_cache=cache,
        )
        batch.free()
    print(f"\n5 repeated sweeps on 4 devices: planner ran {cache.planner_calls} times "
          f"(hit rate {cache.hit_rate:.0%})")
    assert cache.planner_calls == 4  # one plan per shard, built once, replayed 4x


if __name__ == "__main__":
    main()
