"""Precision handling shared by every layer of the library.

The paper's framework supports four LAPACK precisions (``s``, ``d``,
``c``, ``z``).  A :class:`Precision` bundles the NumPy dtype, the
per-element storage size, and the *flop weight* — the factor by which a
complex multiply-add outweighs a real one when converting operation
counts into flops (the convention used by LAPACK timing codes and by the
paper's Gflop/s axes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["Precision", "PrecisionInfo", "precision_info"]


class Precision(str, enum.Enum):
    """LAPACK-style precision letter.

    ``s``/``d`` are IEEE single/double; ``c``/``z`` their complex
    counterparts.  The value doubles as the routine-name prefix used in
    log messages (``spotrf``, ``dpotrf``, ...).
    """

    S = "s"
    D = "d"
    C = "c"
    Z = "z"

    @property
    def is_complex(self) -> bool:
        return self in (Precision.C, Precision.Z)

    @property
    def is_double(self) -> bool:
        """True for the 64-bit-real-component precisions (``d``, ``z``)."""
        return self in (Precision.D, Precision.Z)

    @classmethod
    def from_dtype(cls, dtype: np.dtype | type) -> Precision:
        """Map a NumPy dtype to its precision letter.

        Raises :class:`TypeError` for unsupported dtypes (integers,
        float16, ...), mirroring LAPACK's strict typing.
        """
        dt = np.dtype(dtype)
        try:
            return _DTYPE_TO_PRECISION[dt]
        except KeyError:
            raise TypeError(f"unsupported dtype for batched BLAS: {dt}") from None


@dataclass(frozen=True)
class PrecisionInfo:
    """Static facts about one precision.

    Attributes
    ----------
    precision:
        The precision letter this record describes.
    dtype:
        NumPy dtype used for matrix storage.
    bytes_per_element:
        Storage footprint of one element; drives shared-memory and
        global-memory accounting in the device model.
    flop_weight:
        Multiplier applied to real-arithmetic operation counts; 1 for
        real precisions, 4 for complex (a complex fused multiply-add is
        four real flops under the LAPACK convention).
    uses_fp64_units:
        Whether the GPU executes this precision on its FP64 pipelines
        (``d``/``z``) rather than the FP32 ones; this selects which peak
        throughput applies on the simulated device.
    """

    precision: Precision
    dtype: np.dtype
    bytes_per_element: int
    flop_weight: int
    uses_fp64_units: bool

    @property
    def name(self) -> str:
        return self.precision.value


_INFOS = {
    Precision.S: PrecisionInfo(Precision.S, np.dtype(np.float32), 4, 1, False),
    Precision.D: PrecisionInfo(Precision.D, np.dtype(np.float64), 8, 1, True),
    Precision.C: PrecisionInfo(Precision.C, np.dtype(np.complex64), 8, 4, False),
    Precision.Z: PrecisionInfo(Precision.Z, np.dtype(np.complex128), 16, 4, True),
}

_DTYPE_TO_PRECISION = {info.dtype: prec for prec, info in _INFOS.items()}


def precision_info(precision: Precision | str) -> PrecisionInfo:
    """Look up the :class:`PrecisionInfo` for a precision letter."""
    return _INFOS[Precision(precision)]
