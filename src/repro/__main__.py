"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``figures`` — regenerate paper figures and print their data tables;
* ``tune`` — run the autotuner for a routine/precision and print the
  chosen configuration;
* ``profile`` — run a vbatched factorization and print the per-kernel
  flat profile (optionally exporting a Chrome trace);
* ``energy`` — run one Fig-10 energy bucket;
* ``serve-bench`` — closed-loop load-generator benchmark of the batch
  server's windowing policies (writes ``BENCH_pr3.json``-style output;
  ``--trace`` records a Perfetto-loadable end-to-end trace;
  ``--adaptive`` A/Bs the online tuner against every static policy on
  the adaptive bench's workload mixes — the ``adaptive-smoke`` CI job
  runs it with ``--adaptive --smoke``);
* ``fleet-bench`` — open-loop overload/chaos benchmark of the
  multi-replica serving fleet: SLO classes, shedding, fault injection
  and retries vs. a single-server baseline (writes
  ``BENCH_pr6.json``-style output; the ``fleet-chaos-smoke`` CI job
  runs it with ``--smoke --faults seeded``);
* ``hmatrix-bench`` — hierarchical-matrix (block low-rank) compression
  demo driving mixed QR/SVD/POTRF batches through one cross-op batch
  server, plus the shared-group vs op-segregated serving comparison
  (writes ``BENCH_pr8.json``-style output; the ``mixedop-smoke`` CI
  job runs it with ``--smoke``);
* ``trace-report`` — occupancy / critical-path / padded-waste /
  bottleneck tables from a ``--trace`` file (including the
  per-operation breakdown for mixed-op traces).
"""

from __future__ import annotations

import argparse
import sys

# serve-bench parser defaults; ``--adaptive`` swaps in the adaptive
# bench's own (much larger) defaults when these are left untouched.
_SERVE_BENCH_DEFAULT_REQUESTS = 2000
_SERVE_BENCH_DEFAULT_CONCURRENCY = 128


def _cmd_figures(args) -> int:
    from .bench import figures as figs, format_ascii_chart, format_figure

    registry = {
        "3": lambda: figs.fig3_distributions(),
        "4": lambda: figs.fig4_fusion_fixed(args.precision),
        "5": lambda: figs.fig5_fused_variants(args.precision),
        "6": lambda: figs.fig6_fused_variants_gaussian(args.precision),
        "7": lambda: figs.fig7_crossover(args.precision),
        "8": lambda: figs.fig8_overall(args.precision),
        "9": lambda: figs.fig9_overall_gaussian(args.precision),
        "10": lambda: figs.fig10_energy(),
        "aux": lambda: figs.aux_interface_overhead(args.precision),
    }
    wanted = args.fig or list(registry)
    for key in wanted:
        if key not in registry:
            print(f"unknown figure {key!r}; known: {', '.join(registry)}", file=sys.stderr)
            return 2
        fig = registry[key]()
        print(format_ascii_chart(fig) if args.chart else format_figure(fig))
        print()
    return 0


def _cmd_tune(args) -> int:
    from .autotune import Tuner, TuningCache

    tuner = Tuner(cache=TuningCache(args.cache) if args.cache else None)
    if args.routine == "fused_nb":
        r = tuner.tune_fused_nb(args.size, args.precision)
    elif args.routine == "crossover":
        r = tuner.tune_crossover(args.precision)
    elif args.routine == "gemm":
        r = tuner.tune_gemm_tiling(args.size, args.size, 32, args.precision)
    else:  # pragma: no cover - argparse restricts choices
        return 2
    print(f"{r.routine}[{r.precision}, band {r.band}]: {r.choice} "
          f"({r.gflops:.1f} Gflop/s, swept {r.swept} candidates)")
    return 0


def _cmd_profile(args) -> int:
    from .bench import export_chrome_trace, format_profile
    from .core import PlanCache, PotrfOptions, VBatch, potrf_vbatched
    from .core.optimizer import OPTIMIZER_COUNTERS
    from .device import Device
    from .distributions import generate_sizes
    from .observability import MetricsRegistry

    device = Device(execute_numerics=False)
    sizes = generate_sizes(args.distribution, args.batch, args.max_size, seed=args.seed)
    batch = VBatch.allocate(device, sizes, args.precision)
    device.reset_clock()
    cache = PlanCache()
    registry = MetricsRegistry()
    stats = None
    for _ in range(max(1, args.repeat)):
        result = potrf_vbatched(
            device, batch, PotrfOptions(optimize=args.optimize), plan_cache=cache
        )
        if stats is None:
            stats = result.launch_stats
        else:
            stats.merge(result.launch_stats)
        cache.publish(registry)
        stats.publish(registry)
    vals = registry.as_dict()
    print(f"{result.gflops:.1f} Gflop/s via {result.approach} "
          f"({result.elapsed * 1e3:.2f} ms simulated)")
    print(f"plan cache: {vals['plan_cache_hits']:.0f} hits / "
          f"{vals['plan_cache_misses']:.0f} misses / "
          f"{vals['plan_cache_evictions']:.0f} evictions over "
          f"{vals['driver_batches']:.0f} batches "
          f"({vals['plan_cache_hit_ratio'] * 100:.0f}% hit rate, "
          f"{vals['plan_cache_size']:.0f} cached)")
    if args.optimize != "none":
        for counter_name, meta_key, help_text in OPTIMIZER_COUNTERS:
            registry.counter(counter_name, help_text).inc(
                int(getattr(stats, f"opt_{meta_key}"))
            )
        vals = registry.as_dict()
        print(f"plan optimizer [{args.optimize}]: "
              f"{vals['plan_opt_barriers_elided']:.0f} barriers elided, "
              f"{vals['plan_opt_launches_merged']:.0f} launches merged, "
              f"{vals['plan_opt_launches_pruned']:.0f} launches pruned")
    print()
    print(format_profile(device.timeline))
    if args.trace:
        path = export_chrome_trace(device.timeline, args.trace)
        print(f"\nChrome trace written to {path}")
    return 0


def _cmd_serve_bench(args) -> int:
    import json
    from pathlib import Path

    from .serving import check_acceptance, run_serve_bench

    if args.adaptive:
        return _cmd_serve_bench_adaptive(args)
    if args.smoke:
        config = dict(requests=150, max_size=96, max_batch=16, concurrency=48)
    else:
        config = dict(
            requests=args.requests,
            max_size=args.max_size,
            max_batch=args.max_batch,
            concurrency=args.concurrency,
        )
    tracer = None
    if args.trace or args.trace_jsonl:
        from .observability import Tracer

        tracer = Tracer()
    report = run_serve_bench(
        distribution=args.distribution,
        seed=args.seed,
        device_count=args.devices,
        tracer=tracer,
        optimize=args.optimize,
        **config,
    )

    header = (
        f"{'policy':>14} {'batches':>8} {'mean_bs':>8} {'mat/sim_s':>12} "
        f"{'Gflop/s':>9} {'p50_ms':>8} {'p95_ms':>8} {'p99_ms':>8} {'waste_%':>8}"
    )
    print(f"serve-bench: {config['requests']} requests, {args.distribution} sizes "
          f"<= {config['max_size']}, seed {args.seed}, max_batch {config['max_batch']}, "
          f"{args.devices} device(s)\n")
    print(header)
    for name, snap in report["policies"].items():
        thr, lat, batching = snap["throughput"], snap["latency_sim_s"], snap["batching"]
        waste = 100.0 * (1.0 - batching["efficiency"]) if batching["padded_flops"] else 0.0
        print(
            f"{name:>14} {thr['batches']:>8} {thr['mean_batch_size']:>8.1f} "
            f"{thr['matrices_per_sim_s']:>12.0f} {thr['useful_gflops_sim']:>9.1f} "
            f"{lat['p50'] * 1e3:>8.3f} {lat['p95'] * 1e3:>8.3f} {lat['p99'] * 1e3:>8.3f} "
            f"{waste:>8.2f}"
        )
    speedups = report["comparison"].get("speedup_vs_per_request", {})
    if speedups:
        print("\nspeedup vs per-request dispatch: "
              + ", ".join(f"{k} {v:.2f}x" for k, v in speedups.items()))

    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {path}")
    if tracer is not None:
        from .observability import write_chrome_trace, write_trace_jsonl

        if args.trace:
            path = write_chrome_trace(tracer, args.trace)
            print(f"trace written to {path} ({len(tracer)} events; "
                  "load in ui.perfetto.dev or chrome://tracing)")
        if args.trace_jsonl:
            path = write_trace_jsonl(tracer, args.trace_jsonl)
            print(f"event log written to {path}")

    failures = check_acceptance(report)
    for failure in failures:
        print(f"ACCEPTANCE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve_bench_adaptive(args) -> int:
    """``serve-bench --adaptive``: the tuned-vs-static A/B replay.

    The adaptive bench brings its own workload mixes (uniform / bursty
    small-heavy / diurnal mixed-op), so ``-n``/``-d``/``--optimize``
    are ignored here; ``-r``/``--concurrency`` are honored only when
    set explicitly (the classic defaults are far too small for a cold
    tuner to converge mid-trace).
    """
    import json
    from pathlib import Path

    from .adaptive import run_adaptive_bench

    kwargs = {}
    if args.requests != _SERVE_BENCH_DEFAULT_REQUESTS:
        kwargs["requests"] = args.requests
    if args.concurrency != _SERVE_BENCH_DEFAULT_CONCURRENCY:
        kwargs["concurrency"] = args.concurrency
    tracer = None
    if args.trace or args.trace_jsonl:
        from .observability import Tracer

        tracer = Tracer()
    report = run_adaptive_bench(
        seed=args.seed,
        device_count=args.devices,
        smoke=args.smoke,
        tracer=tracer,
        **kwargs,
    )

    cfg = report["config"]
    print(f"serve-bench --adaptive: {cfg['requests']} base requests, "
          f"concurrency {cfg['concurrency']}, seed {cfg['seed']}, "
          f"{cfg['device_count']} device(s), knobs {cfg['knobs']}\n")
    header = (
        f"{'mix':>14} {'case':>16} {'mat/sim_s':>12} {'waste_%':>8} "
        f"{'mean_bs':>8} {'p95_ms':>8} {'explored':>9}"
    )
    print(header)
    for mix, entry in report["mixes"].items():
        cases = [(p, s) for p, s in entry["static"].items()]
        cases += [(f"adaptive-{k}", entry["adaptive"][k]) for k in ("cold", "warm")]
        for case, snap in cases:
            tuner = snap.get("tuner") or {}
            explored = tuner.get("exploration_batches", "-")
            print(
                f"{mix:>14} {case:>16} {snap['throughput_per_sim_s']:>12.0f} "
                f"{100.0 * snap['waste_ratio']:>8.2f} {snap['mean_batch_size']:>8.1f} "
                f"{snap['latency_sim_p95'] * 1e3:>8.3f} {explored:>9}"
            )
        cmp = entry["comparison"]
        beat = "strictly beats all statics" if cmp["strictly_beats_all_statics"] else ""
        print(f"{'':>14} tuned(warm) = {cmp['warm_vs_best_static']:.2f}x best static "
              f"({cmp['best_static']}), {cmp['warm_vs_cold']:.2f}x cold  {beat}\n")

    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {path}")
    if tracer is not None:
        from .observability import write_chrome_trace, write_trace_jsonl

        if args.trace:
            path = write_chrome_trace(tracer, args.trace)
            print(f"trace written to {path} ({len(tracer)} events; "
                  "load in ui.perfetto.dev or chrome://tracing)")
        if args.trace_jsonl:
            path = write_trace_jsonl(tracer, args.trace_jsonl)
            print(f"event log written to {path}")

    violations = report["acceptance"]["violations"]
    for violation in violations:
        print(f"ACCEPTANCE FAIL: {violation}", file=sys.stderr)
    return 1 if violations else 0


def _cmd_fleet_bench(args) -> int:
    import json
    from pathlib import Path

    from .serving import run_fleet_bench

    report = run_fleet_bench(
        requests=args.requests,
        max_size=args.max_size,
        distribution=args.distribution,
        seed=args.seed,
        replica_count=args.replicas,
        max_batch=args.max_batch,
        pattern=args.pattern,
        overload=args.overload,
        queue_limit=args.queue_limit,
        fault_rate=args.fault_rate,
        faults=args.faults,
        smoke=args.smoke,
        adaptive=args.adaptive,
    )

    cfg, cap = report["config"], report["capacity"]
    print(f"fleet-bench: {cfg['requests']} requests, {cfg['pattern']} arrivals, "
          f"{cfg['replica_count']} replicas, {cfg['overload']}x overload, "
          f"faults {cfg['faults']}, seed {cfg['seed']}")
    print(f"capacity: {cap['per_replica_matrices_per_sim_s']:.0f} mat/sim_s per replica "
          f"({cap['fleet_matrices_per_sim_s']:.0f} fleet)\n")
    header = (
        f"{'run':>10} {'class':>12} {'offered':>8} {'admit':>6} {'done':>6} "
        f"{'shed':>5} {'fail':>5} {'cancel':>7} {'p50_ms':>8} {'p95_ms':>8}"
    )
    print(header)
    for run_name, run in report["runs"].items():
        for cls, rec in run["classes"].items():
            lat = rec["latency_s"]
            print(
                f"{run_name:>10} {cls:>12} {rec['offered']:>8} {rec['admitted']:>6} "
                f"{rec['completed']:>6} {rec['shed']:>5} {rec['failed']:>5} "
                f"{rec['cancelled']:>7} {lat['p50'] * 1e3:>8.3f} {lat['p95'] * 1e3:>8.3f}"
            )
    overload = report["runs"]["overload"]
    print(f"\noverload: shed ratio {overload['shed_ratio']:.2f}, "
          f"retries {sum(overload['fleet']['retries'].values())}, "
          f"faults injected {overload.get('faults', {}).get('injected', 0)}")
    if args.adaptive:
        for run_name in ("unloaded", "overload"):
            tuners = report["runs"][run_name].get("tuners", {})
            if not tuners:
                continue
            states = ", ".join(
                f"{name.rsplit(':', 1)[-1]}:{t['state']}"
                for name, t in sorted(tuners.items())
            )
            explored = sum(t["exploration_batches"] for t in tuners.values())
            print(f"adaptive {run_name}: {states} "
                  f"({explored} exploration batches fleet-wide)")

    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {path}")

    failures = report["acceptance"]["failures"]
    for failure in failures:
        print(f"ACCEPTANCE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_hetero_bench(args) -> int:
    import json
    from pathlib import Path

    from .bench.hetero import run_hetero_bench

    report = run_hetero_bench(
        batch_count=args.batch,
        max_size=args.max_size,
        seed=args.seed,
        precision=args.precision,
        members=args.members,
        chunks_per_member=args.chunks_per_member,
        smoke=args.smoke,
    )

    cfg = report["config"]
    base = report["baseline_1dev_s"]
    print(f"hetero-bench: {cfg['batch_count']} matrices, uniform sizes <= "
          f"{cfg['max_size']}, seed {cfg['seed']}, precision {cfg['precision']}")
    print(f"1-device baseline: fused {base['fused'] * 1e3:.4f} ms, "
          f"separated {base['separated'] * 1e3:.4f} ms (T1 = {base['t1'] * 1e3:.4f} ms)\n")

    for placement, rows in report["scaling"].items():
        print(f"homogeneous k40c scaling, {placement} placement:")
        print(f"{'devices':>8} {'elapsed_ms':>11} {'speedup':>8} {'chunks':>7} "
              f"{'steals':>7} {'approaches':>24}")
        for n, row in rows.items():
            print(f"{n:>8} {row['elapsed_s'] * 1e3:>11.4f} {row['speedup']:>7.2f}x "
                  f"{row['chunks']:>7} {row['work_steals']:>7} {row['approaches']:>24}")
        print()

    mixed = report["mixed"]
    print(f"mixed group {mixed['members']}: {mixed['elapsed_s'] * 1e3:.4f} ms "
          f"({mixed['work_steals']} steals)")
    for name, t in mixed["solos_s"].items():
        marker = "  <- best solo" if name == mixed["best_solo"] else ""
        print(f"  solo {name:>12}: {t * 1e3:>9.4f} ms{marker}")
    print(f"  speedup vs best solo: {mixed['speedup_vs_best_solo']:.2f}x")
    print("  placement:")
    for d in mixed["placement"]:
        stolen = f"  (stolen from {d['stolen_from']})" if "stolen_from" in d else ""
        print(f"    chunk {d['chunk']}: {d['count']:>4} matrices, max_n {d['max_n']:>4} "
              f"-> {d['member']} [{d['approach']}] est {d['est_s'] * 1e3:.4f} ms{stolen}")

    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {path}")

    failures = report["acceptance"]["failures"]
    for failure in failures:
        print(f"ACCEPTANCE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_hmatrix_bench(args) -> int:
    import json
    from pathlib import Path

    from .apps import run_hmatrix_bench

    report = run_hmatrix_bench(
        n_points=args.points,
        tol=args.tol,
        requests=args.requests,
        max_size=args.max_size,
        device_count=args.devices,
        max_batch=args.max_batch,
        seed=args.seed,
        smoke=args.smoke,
    )

    cfg = report["config"]
    comp = report["compression"]
    print(f"hmatrix-bench: {cfg['n_points']} points, {comp['clusters']} clusters, "
          f"tol {cfg['tol']:g}, seed {cfg['seed']}")
    print(f"  tiles: {comp['tiles_compressed']} compressed (max rank "
          f"{comp['max_rank']}), {comp['tiles_dense']} dense")
    print(f"  compression ratio: {comp['compression_ratio']:.3f} "
          f"(stored / dense entries)")
    print(f"  max tile reconstruction error: {comp['max_rel_error']:.2e}")
    print("  per-op serving batches:")
    for op, row in comp["serving_ops"].items():
        print(f"    {op:>6}: {row['batches']:>3} batches, {row['matrices']:>4} "
              f"matrices, efficiency {row['efficiency']:.2f}")

    mix = report["mixed_serving"]
    shared, seg = mix["shared_cross_op"], mix["segregated"]
    print(f"\nmixed serving, {cfg['requests']} requests "
          f"(mix {mix['op_mix']}), {cfg['device_count']} devices:")
    print(f"  shared cross-op : makespan {shared['makespan_sim_s'] * 1e3:9.3f} ms, "
          f"{shared['matrices_per_sim_s']:9.0f} matrices/s, "
          f"waste {shared['waste_pct']:.2f}%")
    print(f"  op-segregated   : makespan {seg['makespan_sim_s'] * 1e3:9.3f} ms, "
          f"{seg['matrices_per_sim_s']:9.0f} matrices/s, "
          f"waste {seg['waste_pct']:.2f}%")
    print(f"  throughput speedup: {mix['comparison']['throughput_speedup']:.2f}x")

    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {path}")

    failures = report["acceptance"]["failures"]
    for failure in failures:
        print(f"ACCEPTANCE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_trace_report(args) -> int:
    from .observability import analyze_trace, format_trace_report, load_chrome_trace

    try:
        data = load_chrome_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"trace-report: {exc}", file=sys.stderr)
        return 2
    analysis = analyze_trace(data, top=args.top)
    print(format_trace_report(analysis, top=args.top))
    return 0


def _cmd_energy(args) -> int:
    from .energy import run_energy_experiment

    comp = run_energy_experiment(args.low, args.high, args.batch, args.precision)
    print(f"workload {comp.workload}:")
    print(f"  cpu: {comp.cpu.elapsed * 1e3:8.2f} ms  {comp.cpu.joules:8.2f} J")
    print(f"  gpu: {comp.gpu.elapsed * 1e3:8.2f} ms  {comp.gpu.joules:8.2f} J")
    print(f"  energy ratio (cpu/gpu): {comp.energy_ratio:.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Variable-size batched computation reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("--fig", action="append", help="figure id (3..10, aux); repeatable")
    p.add_argument("-p", "--precision", default="d", choices="sdcz")
    p.add_argument("--chart", action="store_true", help="render ASCII bar charts")
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("tune", help="run the autotuner")
    p.add_argument("routine", choices=["fused_nb", "crossover", "gemm"])
    p.add_argument("-p", "--precision", default="d", choices="sdcz")
    p.add_argument("-n", "--size", type=int, default=256)
    p.add_argument("--cache", help="JSON file to persist results")
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser("profile", help="profile a vbatched factorization")
    p.add_argument("-p", "--precision", default="d", choices="sdcz")
    p.add_argument("-b", "--batch", type=int, default=1000)
    p.add_argument("-n", "--max-size", type=int, default=256)
    p.add_argument("-d", "--distribution", default="uniform")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--repeat", type=int, default=2,
                   help="factorization repeats (shows plan-cache effectiveness)")
    p.add_argument("--trace", help="write a Chrome trace JSON here")
    p.add_argument("--optimize", default="none",
                   help='plan-optimizer level: "none", "all", or +-joined pass names')
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("serve-bench", help="benchmark the batch-serving subsystem")
    p.add_argument("-r", "--requests", type=int, default=_SERVE_BENCH_DEFAULT_REQUESTS)
    p.add_argument("-n", "--max-size", type=int, default=256)
    p.add_argument("-d", "--distribution", default="uniform")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-batch", type=int, default=32)
    p.add_argument("--concurrency", type=int, default=_SERVE_BENCH_DEFAULT_CONCURRENCY,
                   help="closed-loop outstanding requests")
    p.add_argument("--devices", type=int, default=1, help="simulated devices to shard over")
    p.add_argument("--adaptive", action="store_true",
                   help="A/B the online tuner against every static policy "
                        "on the adaptive bench's workload mixes")
    p.add_argument("--smoke", action="store_true",
                   help="tiny fixed load for CI (overrides size arguments)")
    p.add_argument("-o", "--output", help="write the JSON report here (e.g. BENCH_pr3.json)")
    p.add_argument("--trace", help="write a Chrome/Perfetto trace of the whole run here")
    p.add_argument("--trace-jsonl", help="write the structured event log (JSONL) here")
    p.add_argument("--optimize", default="none",
                   help='plan-optimizer level: "none", "all", or +-joined pass names')
    p.set_defaults(fn=_cmd_serve_bench)

    p = sub.add_parser("fleet-bench", help="overload/chaos benchmark of the serving fleet")
    p.add_argument("-r", "--requests", type=int, default=600)
    p.add_argument("-n", "--max-size", type=int, default=128)
    p.add_argument("-d", "--distribution", default="uniform")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--replicas", type=int, default=3)
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--pattern", default="bursty",
                   choices=["poisson", "bursty", "diurnal", "heavy-tail"],
                   help="open-loop arrival trace shape")
    p.add_argument("--overload", type=float, default=2.0,
                   help="offered load as a multiple of measured fleet capacity")
    p.add_argument("--queue-limit", type=int, default=128,
                   help="router backlog bound; shed levels are fractions of it")
    p.add_argument("--fault-rate", type=float, default=0.08)
    p.add_argument("--faults", default="seeded", choices=["seeded", "off"])
    p.add_argument("--adaptive", action="store_true",
                   help="attach online tuners to the unloaded/overload fleets "
                        "(the collapse baseline stays static)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny fixed load for CI (shrinks the workload)")
    p.add_argument("-o", "--output", help="write the JSON report here (e.g. BENCH_pr6.json)")
    p.set_defaults(fn=_cmd_fleet_bench)

    p = sub.add_parser("hetero-bench",
                       help="heterogeneous-group scaling and placement benchmark")
    p.add_argument("-b", "--batch", type=int, default=400)
    p.add_argument("-n", "--max-size", type=int, default=256)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("-p", "--precision", default="d", choices="sdcz")
    p.add_argument("--members", default="k40c+k20x+titan-black+cpu",
                   help='mixed-group member spec, e.g. "k40c*2+k20x+cpu:8"')
    p.add_argument("--chunks-per-member", type=int, default=1,
                   help="placement granularity (1 = one stratum per member)")
    p.add_argument("--smoke", action="store_true",
                   help="CI sweep: only the points the acceptance gate asserts")
    p.add_argument("-o", "--output", help="write the JSON report here (e.g. BENCH_pr7.json)")
    p.set_defaults(fn=_cmd_hetero_bench)

    p = sub.add_parser("hmatrix-bench",
                       help="hierarchical-matrix compression + mixed-op serving benchmark")
    p.add_argument("--points", type=int, default=1024,
                   help="kernel matrix order for the compression demo")
    p.add_argument("--tol", type=float, default=1e-6,
                   help="relative singular-value truncation threshold")
    p.add_argument("-r", "--requests", type=int, default=5760,
                   help="mixed QR/SVD/POTRF requests in the serving comparison")
    p.add_argument("-n", "--max-size", type=int, default=96)
    p.add_argument("-d", "--devices", type=int, default=3,
                   help="simulated devices in the shared group (and segregated servers)")
    p.add_argument("--max-batch", type=int, default=288)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--smoke", action="store_true",
                   help="CI-sized run: smaller kernel matrix and request stream")
    p.add_argument("-o", "--output", help="write the JSON report here (e.g. BENCH_pr8.json)")
    p.set_defaults(fn=_cmd_hmatrix_bench)

    p = sub.add_parser("trace-report", help="bottleneck report from a recorded trace")
    p.add_argument("trace", help="Chrome-trace JSON written by serve-bench --trace")
    p.add_argument("--top", type=int, default=10, help="bottleneck rows to show")
    p.set_defaults(fn=_cmd_trace_report)

    p = sub.add_parser("energy", help="one energy-to-solution bucket")
    p.add_argument("--low", type=int, default=256)
    p.add_argument("--high", type=int, default=512)
    p.add_argument("-b", "--batch", type=int, default=1000)
    p.add_argument("-p", "--precision", default="d", choices="sdcz")
    p.set_defaults(fn=_cmd_energy)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
