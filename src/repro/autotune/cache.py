"""Persistent store for tuning results."""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["TuningCache"]


class TuningCache:
    """Keyed store for tuner winners, optionally persisted to JSON.

    Keys are ``(routine, precision, band)`` triples; values are plain
    JSON-serializable dicts (chosen parameter + measured Gflop/s).
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._data: dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            self._data = json.loads(self.path.read_text())

    @staticmethod
    def _key(routine: str, precision: str, band: int) -> str:
        return f"{routine}:{precision}:{band}"

    def get(self, routine: str, precision: str, band: int) -> dict | None:
        return self._data.get(self._key(routine, precision, band))

    def put(self, routine: str, precision: str, band: int, value: dict) -> None:
        self._data[self._key(routine, precision, band)] = value
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(self._data, indent=2, sort_keys=True))

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        if self.path is not None and self.path.exists():
            self.path.unlink()
