"""Persistent store for tuning results."""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
from pathlib import Path

__all__ = ["TuningCache"]


class TuningCache:
    """Keyed store for tuner winners, optionally persisted to JSON.

    Two key families share one namespace:

    * offline sweeps use ``(routine, precision, band)`` triples via
      :meth:`get` / :meth:`put` (key ``"routine:precision:band"``);
    * the online tuner uses free-form string keys via :meth:`get_entry`
      / :meth:`put_entry` (conventionally ``"adaptive:<device>:<fp>"``).

    Values are plain JSON-serializable dicts.  The store is thread-safe
    (the online tuner writes it from the serving loop while benches read
    it) and persistence is atomic: each write lands in a temp file in
    the target directory and is moved into place with ``os.replace``, so
    a concurrent reader never observes a torn JSON document.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.RLock()
        self._data: dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            self._data = json.loads(self.path.read_text())

    @staticmethod
    def _key(routine: str, precision: str, band: int) -> str:
        return f"{routine}:{precision}:{band}"

    def get(self, routine: str, precision: str, band: int) -> dict | None:
        return self.get_entry(self._key(routine, precision, band))

    def put(self, routine: str, precision: str, band: int, value: dict) -> None:
        self.put_entry(self._key(routine, precision, band), value)

    def get_entry(self, key: str) -> dict | None:
        with self._lock:
            return self._data.get(key)

    def put_entry(self, key: str, value: dict) -> None:
        with self._lock:
            self._data[key] = value
            self._flush_locked()

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._data)

    def _flush_locked(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self._data, indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(tmp)
            raise

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            if self.path is not None and self.path.exists():
                self.path.unlink()
