"""Autotuning framework (paper §III-B, §III-D).

The paper autotunes the fused kernel "for all the possible sizes" via
compile-time templates, and its framework picks crossover points and
gemm tile shapes by measurement.  This package does the analogue on the
simulator: sweep a parameter space on synthetic batches, memoize the
winner per (routine, precision, size band), and optionally persist the
table to JSON so later sessions skip the sweep.
"""

from .space import FUSED_NB_TEMPLATES, GEMM_TILINGS, size_band
from .cache import TuningCache
from .tuner import Tuner, TuningResult

__all__ = [
    "FUSED_NB_TEMPLATES",
    "GEMM_TILINGS",
    "size_band",
    "TuningCache",
    "Tuner",
    "TuningResult",
]
