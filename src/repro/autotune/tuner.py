"""Measurement-driven tuner over the simulator.

Each method builds synthetic timing-only batches, sweeps one parameter
space, and memoizes the fastest configuration per size band — "packaging
and deployment at the user site to trigger final stages of tuning at
the moment of execution" (paper §III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batch import VBatch
from ..core.fused import FusedDriver
from ..core.separated import SeparatedDriver
from ..device import Device
from ..distributions import uniform_sizes
from ..errors import LaunchError
from ..flops import batch_flops, gflops
from ..kernels.gemm import GemmTask, VbatchedGemmKernel
from ..types import Precision
from .cache import TuningCache
from .space import FUSED_NB_TEMPLATES, GEMM_TILINGS, size_band

__all__ = ["Tuner", "TuningResult"]


@dataclass(frozen=True)
class TuningResult:
    """Winner of one sweep."""

    routine: str
    precision: str
    band: int
    choice: dict
    gflops: float
    swept: int

    def as_dict(self) -> dict:
        return {"choice": self.choice, "gflops": self.gflops, "swept": self.swept}


class Tuner:
    """Sweeps tuning spaces on a (simulated) device."""

    def __init__(self, cache: TuningCache | None = None, batch_count: int = 500, seed: int = 0):
        if batch_count <= 0:
            raise ValueError(f"batch_count must be positive, got {batch_count}")
        # Explicit None check: an empty TuningCache has len() == 0 and
        # would be discarded by a truthiness test.
        self.cache = cache if cache is not None else TuningCache()
        self.batch_count = batch_count
        self.seed = seed

    # ------------------------------------------------------------------
    def _fixed_run(self, n: int, precision: Precision, driver_factory) -> float:
        device = Device(execute_numerics=False)
        batch = VBatch.allocate(device, [n] * self.batch_count, precision)
        device.reset_clock()
        driver_factory(device).factorize(batch, n)
        return gflops(
            batch_flops([n] * self.batch_count, "potrf", precision), device.synchronize()
        )

    def tune_fused_nb(self, n: int, precision: Precision | str) -> TuningResult:
        """Pick the fastest fused-kernel panel width for a size band."""
        prec = Precision(precision)
        band = size_band(n)
        cached = self.cache.get("fused_nb", prec.value, band)
        if cached is not None:
            return TuningResult("fused_nb", prec.value, band, cached["choice"],
                                cached["gflops"], cached["swept"])
        best = None
        swept = 0
        for nb in FUSED_NB_TEMPLATES:
            try:
                g = self._fixed_run(
                    band, prec,
                    lambda dev, nb=nb: FusedDriver(dev, etm="classic", sorting=False, nb=nb),
                )
            except LaunchError:
                continue  # template infeasible at this size
            swept += 1
            if best is None or g > best[0]:
                best = (g, nb)
        if best is None:
            raise LaunchError(f"no feasible fused template for n={band} ({prec.value})")
        result = TuningResult("fused_nb", prec.value, band, {"nb": best[1]}, best[0], swept)
        self.cache.put("fused_nb", prec.value, band, result.as_dict())
        return result

    # ------------------------------------------------------------------
    def tune_crossover(
        self,
        precision: Precision | str,
        grid: tuple[int, ...] = (128, 192, 256, 320, 384, 448, 512, 640, 768, 896, 1024),
        batch_count: int = 400,
    ) -> TuningResult:
        """Find where the separated approach overtakes the fused one.

        Sweeps uniform vbatched workloads over ``grid`` and returns the
        last max-size at which fusion still wins (the §IV-E crossover).
        """
        prec = Precision(precision)
        cached = self.cache.get("crossover", prec.value, 0)
        if cached is not None:
            return TuningResult("crossover", prec.value, 0, cached["choice"],
                                cached["gflops"], cached["swept"])

        crossover = grid[0]
        best_g = 0.0
        swept = 0
        for nmax in grid:
            sizes = uniform_sizes(batch_count, nmax, seed=self.seed)
            flops = batch_flops(sizes, "potrf", prec)
            results = {}
            for label, factory in (
                ("fused", lambda dev: FusedDriver(dev)),
                ("separated", lambda dev: SeparatedDriver(dev)),
            ):
                device = Device(execute_numerics=False)
                batch = VBatch.allocate(device, sizes, prec)
                device.reset_clock()
                try:
                    factory(device).factorize(batch, nmax)
                    results[label] = gflops(flops, device.synchronize())
                except LaunchError:
                    results[label] = float("nan")
            swept += 1
            if not np.isnan(results["fused"]) and (
                np.isnan(results["separated"]) or results["fused"] >= results["separated"]
            ):
                crossover = nmax
                best_g = results["fused"]
        result = TuningResult(
            "crossover", prec.value, 0, {"crossover_size": crossover}, best_g, swept
        )
        self.cache.put("crossover", prec.value, 0, result.as_dict())
        return result

    # ------------------------------------------------------------------
    def tune_gemm_tiling(
        self, m: int, n: int, k: int, precision: Precision | str
    ) -> TuningResult:
        """Pick the fastest gemm tile shape for a problem shape band."""
        prec = Precision(precision)
        band = size_band(max(m, n))
        cached = self.cache.get("gemm_tiling", prec.value, band)
        if cached is not None:
            return TuningResult("gemm_tiling", prec.value, band, cached["choice"],
                                cached["gflops"], cached["swept"])
        flops = self.batch_count * 2.0 * m * n * k
        best = None
        swept = 0
        for tiling in GEMM_TILINGS:
            device = Device(execute_numerics=False)
            tasks = [GemmTask(m, n, k) for _ in range(self.batch_count)]
            try:
                device.launch(VbatchedGemmKernel(tasks, prec, tiling))
            except LaunchError:
                continue  # tile's shared memory does not fit (e.g. z)
            g = gflops(flops, device.synchronize())
            swept += 1
            if best is None or g > best[0]:
                best = (g, tiling)
        assert best is not None, "the smallest tiling always fits"
        choice = {
            "blk_m": best[1].blk_m,
            "blk_n": best[1].blk_n,
            "blk_k": best[1].blk_k,
            "threads": best[1].threads,
        }
        result = TuningResult("gemm_tiling", prec.value, band, choice, best[0], swept)
        self.cache.put("gemm_tiling", prec.value, band, result.as_dict())
        return result
