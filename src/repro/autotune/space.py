"""Parameter spaces the tuner sweeps."""

from __future__ import annotations

from ..kernels.gemm import GemmTiling

__all__ = ["FUSED_NB_TEMPLATES", "GEMM_TILINGS", "size_band"]

#: Compile-time panel-width templates of the fused kernel (§III-D:
#: "a modular templated interface ... nb predefined at compile time").
FUSED_NB_TEMPLATES = (2, 4, 6, 8, 12, 16, 24, 32)

#: Candidate gemm tile shapes (from the batched-GEMM tuning study [3]).
GEMM_TILINGS = (
    GemmTiling(blk_m=64, blk_n=64, blk_k=16, threads=256, regs_per_thread=64),
    GemmTiling(blk_m=64, blk_n=32, blk_k=16, threads=128, regs_per_thread=64),
    GemmTiling(blk_m=32, blk_n=32, blk_k=16, threads=128, regs_per_thread=64),
    GemmTiling(blk_m=32, blk_n=32, blk_k=8, threads=64, regs_per_thread=48),
    GemmTiling(blk_m=16, blk_n=16, blk_k=16, threads=64, regs_per_thread=32),
)

_BANDS = (16, 32, 64, 128, 192, 256, 384, 512, 768, 1024)


def size_band(n: int) -> int:
    """Quantize a size to its tuning band (the table key)."""
    if n <= 0:
        raise ValueError(f"size must be positive, got {n}")
    for b in _BANDS:
        if n <= b:
            return b
    return _BANDS[-1]
