"""Matrix-size distribution generators (paper §IV-B, Figure 3).

The paper draws batch sizes from two pseudo-random generators: a uniform
distribution over ``[1, Nmax]`` and a Gaussian centred on ``Nmax // 2``
truncated to the same interval.  The future-work section asks how other
distributions affect performance, so we also provide constant, bimodal
and exponential generators, all sharing one interface.

Every generator is deterministic given its ``seed`` so that experiments
are exactly repeatable.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "uniform_sizes",
    "gaussian_sizes",
    "constant_sizes",
    "bimodal_sizes",
    "exponential_sizes",
    "size_histogram",
    "generate_sizes",
    "DISTRIBUTIONS",
]


def _validate(batch_count: int, max_size: int) -> None:
    if batch_count <= 0:
        raise ValueError(f"batch_count must be positive, got {batch_count}")
    if max_size <= 0:
        raise ValueError(f"max_size must be positive, got {max_size}")


def uniform_sizes(batch_count: int, max_size: int, seed: int = 0) -> np.ndarray:
    """Sizes drawn uniformly from ``{1, ..., max_size}`` (Fig 3a)."""
    _validate(batch_count, max_size)
    rng = np.random.default_rng(seed)
    return rng.integers(1, max_size + 1, size=batch_count, dtype=np.int64)


def gaussian_sizes(
    batch_count: int,
    max_size: int,
    seed: int = 0,
    stddev_fraction: float = 0.20,
) -> np.ndarray:
    """Sizes from a Gaussian centred on ``max_size // 2`` (Fig 3b).

    Samples are redrawn until they land in ``[1, max_size]`` (truncated
    normal), matching the paper's histogram where "fewer sizes appear
    near the boundaries".  ``stddev_fraction`` scales the standard
    deviation relative to ``max_size``.
    """
    _validate(batch_count, max_size)
    if stddev_fraction <= 0:
        raise ValueError("stddev_fraction must be positive")
    rng = np.random.default_rng(seed)
    mean = max_size // 2
    std = max(1.0, stddev_fraction * max_size)
    out = np.empty(batch_count, dtype=np.int64)
    filled = 0
    while filled < batch_count:
        draw = rng.normal(mean, std, size=(batch_count - filled) * 2)
        draw = np.rint(draw).astype(np.int64)
        draw = draw[(draw >= 1) & (draw <= max_size)]
        take = min(draw.size, batch_count - filled)
        out[filled : filled + take] = draw[:take]
        filled += take
    return out


def constant_sizes(batch_count: int, max_size: int, seed: int = 0) -> np.ndarray:
    """Every matrix has size ``max_size`` (the fixed-size special case)."""
    _validate(batch_count, max_size)
    return np.full(batch_count, max_size, dtype=np.int64)


def bimodal_sizes(
    batch_count: int,
    max_size: int,
    seed: int = 0,
    small_fraction: float = 0.5,
) -> np.ndarray:
    """Two clusters: near ``max_size // 8`` and near ``max_size`` (§V extension).

    Stresses the implicit-sorting scheduler harder than either paper
    distribution: a launch mixing the two modes has maximal block-time
    variance.
    """
    _validate(batch_count, max_size)
    if not 0.0 <= small_fraction <= 1.0:
        raise ValueError("small_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    small_mean = max(1, max_size // 8)
    big_mean = max_size
    picks = rng.random(batch_count) < small_fraction
    noise = rng.normal(0.0, max(1.0, 0.05 * max_size), size=batch_count)
    sizes = np.where(picks, small_mean, big_mean) + np.rint(noise).astype(np.int64)
    return np.clip(sizes, 1, max_size).astype(np.int64)


def exponential_sizes(
    batch_count: int, max_size: int, seed: int = 0, scale_fraction: float = 0.25
) -> np.ndarray:
    """Exponentially distributed sizes (many tiny, a long tail; §V extension)."""
    _validate(batch_count, max_size)
    rng = np.random.default_rng(seed)
    draw = rng.exponential(scale_fraction * max_size, size=batch_count)
    sizes = 1 + np.rint(draw).astype(np.int64)
    return np.clip(sizes, 1, max_size)


DISTRIBUTIONS = {
    "uniform": uniform_sizes,
    "gaussian": gaussian_sizes,
    "constant": constant_sizes,
    "bimodal": bimodal_sizes,
    "exponential": exponential_sizes,
}


def generate_sizes(
    distribution: str, batch_count: int, max_size: int, seed: int = 0
) -> np.ndarray:
    """Dispatch to a named generator from :data:`DISTRIBUTIONS`."""
    try:
        fn = DISTRIBUTIONS[distribution]
    except KeyError:
        known = ", ".join(sorted(DISTRIBUTIONS))
        raise ValueError(f"unknown distribution {distribution!r}; known: {known}") from None
    return fn(batch_count, max_size, seed=seed)


def size_histogram(
    sizes: Sequence[int] | np.ndarray, bin_width: int = 1, max_size: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of a size sample, as plotted in Figure 3.

    Returns ``(bin_lefts, counts)`` where bin ``i`` covers sizes
    ``[bin_lefts[i], bin_lefts[i] + bin_width)``.
    """
    arr = np.asarray(sizes, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("empty size sample")
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    top = int(max_size if max_size is not None else arr.max())
    edges = np.arange(1, top + bin_width + 1, bin_width)
    counts, _ = np.histogram(arr, bins=edges)
    return edges[:-1], counts
