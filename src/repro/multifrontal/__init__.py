"""Sparse direct multifrontal Cholesky on the vbatched foundation.

The paper motivates vbatched routines with "large scale sparse direct
multifrontal solvers" (§I) and names them a future direction (§V).
This package is that application, end to end:

* :mod:`ordering` — nested-dissection elimination forest of a sparse
  SPD pattern (networkx);
* :mod:`symbolic` — per-separator frontal structure (rows = separator
  + boundary) and the level schedule;
* :mod:`numeric` — level-by-level frontal assembly (extend-add) with
  every level's fronts eliminated in ONE vbatched partial-Cholesky
  call (:func:`repro.core.partial.partial_potrf_vbatched`);
* :mod:`solve` — forward/backward substitution through the front tree.

The fronts within a level have genuinely different orders — the exact
variable-size batch the paper is about.
"""

from .ordering import EliminationNode, nested_dissection
from .symbolic import FrontInfo, SymbolicFactorization, analyze
from .numeric import MultifrontalFactor, factorize
from .solve import solve

__all__ = [
    "EliminationNode",
    "nested_dissection",
    "FrontInfo",
    "SymbolicFactorization",
    "analyze",
    "MultifrontalFactor",
    "factorize",
    "solve",
]
