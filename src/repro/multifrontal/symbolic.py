"""Symbolic analysis: frontal structures and the level schedule.

For each elimination node the front's index set is ``S + B``:

* ``S`` — the node's own vertices (eliminated here);
* ``B`` — the *boundary*: vertices outside the node's subtree adjacent
  (in the original graph) to any subtree vertex.  By the separator
  property the boundary lies entirely in ancestor separators, so the
  Schur complement extend-adds cleanly into the parent's front.

The level schedule groups independent fronts (same tree depth, deepest
first) — each level is one variable-size batch for the numeric phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from .ordering import EliminationNode, nested_dissection

__all__ = ["FrontInfo", "SymbolicFactorization", "analyze"]


@dataclass
class FrontInfo:
    """Structure of one frontal matrix."""

    node: EliminationNode
    sep: list  # eliminated vertices, elimination order
    boundary: list  # remaining vertices, global elimination order
    children: list = field(default_factory=list)  # FrontInfo

    @property
    def rows(self) -> list:
        return self.sep + self.boundary

    @property
    def order(self) -> int:
        return len(self.sep) + len(self.boundary)

    @property
    def k(self) -> int:
        return len(self.sep)


@dataclass
class SymbolicFactorization:
    """Everything the numeric phase needs."""

    graph: nx.Graph
    fronts: list  # all FrontInfo, postorder
    levels: list  # list[list[FrontInfo]], deepest level first
    elim_position: dict  # vertex -> global elimination index

    @property
    def n(self) -> int:
        return len(self.elim_position)

    @property
    def max_front(self) -> int:
        return max(f.order for f in self.fronts)

    def permutation(self) -> np.ndarray:
        """perm[i] = the vertex eliminated i-th."""
        perm = [None] * self.n
        for v, i in self.elim_position.items():
            perm[i] = v
        return np.array(perm, dtype=object)


def analyze(graph: nx.Graph, min_size: int = 8) -> SymbolicFactorization:
    """Order, dissect, and build every front's structure."""
    if graph.number_of_nodes() == 0:
        raise ValueError("graph must have at least one vertex")
    forest = nested_dissection(graph, min_size=min_size)

    # Global elimination order: postorder over the forest (children
    # before parents — interiors before their separators).
    elim_position: dict = {}
    all_nodes: list[EliminationNode] = []
    for tree in forest:
        for node in tree.postorder():
            all_nodes.append(node)
            for v in node.vertices:
                elim_position[v] = len(elim_position)

    # Boundary of each node: neighbors of its subtree, outside it.
    front_of: dict[int, FrontInfo] = {}
    fronts: list[FrontInfo] = []
    for tree in forest:
        for node in tree.postorder():
            subtree = set(node.subtree_vertices)
            boundary = set()
            for v in subtree:
                for u in graph.adj[v]:
                    if u not in subtree:
                        boundary.add(u)
            info = FrontInfo(
                node=node,
                sep=sorted(node.vertices, key=elim_position.get),
                boundary=sorted(boundary, key=elim_position.get),
                children=[front_of[id(c)] for c in node.children],
            )
            front_of[id(node)] = info
            fronts.append(info)

    max_depth = max(f.node.depth for f in fronts)
    levels = [
        [f for f in fronts if f.node.depth == d] for d in range(max_depth, -1, -1)
    ]
    levels = [lv for lv in levels if lv]
    return SymbolicFactorization(
        graph=graph, fronts=fronts, levels=levels, elim_position=elim_position
    )
