"""Triangular solves through the factored front tree."""

from __future__ import annotations

import numpy as np

from ..hostblas import trsm
from .numeric import MultifrontalFactor

__all__ = ["solve"]


def solve(factor: MultifrontalFactor, b: dict | np.ndarray) -> np.ndarray | dict:
    """Solve ``A x = b`` using the multifrontal factors.

    ``b`` maps vertex -> value: a NumPy array when the graph's vertices
    are integers ``0..n-1``, or a dict for arbitrary vertex labels.
    Returns the solution in the same container type.
    """
    sym = factor.symbolic
    as_array = isinstance(b, np.ndarray)
    if as_array:
        if b.shape[0] != sym.n:
            raise ValueError(f"b has {b.shape[0]} entries, the system has {sym.n}")
        work = {v: float(b[v]) for v in sym.elim_position}
    else:
        missing = set(sym.elim_position) - set(b)
        if missing:
            raise ValueError(f"b is missing {len(missing)} vertices")
        work = {v: float(b[v]) for v in sym.elim_position}

    # Forward: L z = b, fronts in elimination (bottom-up level) order.
    for level in sym.levels:
        for front in level:
            ff = factor.fronts[id(front)]
            z = np.array([work[v] for v in front.sep])[:, None]
            trsm("l", "l", "n", "n", 1.0, ff.l11, z)
            for v, zi in zip(front.sep, z[:, 0]):
                work[v] = zi
            if front.boundary:
                upd = ff.l21 @ z[:, 0]
                for v, u in zip(front.boundary, upd):
                    work[v] -= u

    # Backward: L^T x = z, reverse order.
    for level in reversed(sym.levels):
        for front in level:
            ff = factor.fronts[id(front)]
            rhs = np.array([work[v] for v in front.sep])
            if front.boundary:
                xb = np.array([work[v] for v in front.boundary])
                rhs = rhs - ff.l21.T @ xb
            x = rhs[:, None]
            trsm("l", "l", "t", "n", 1.0, ff.l11, x)
            for v, xi in zip(front.sep, x[:, 0]):
                work[v] = xi

    if as_array:
        out = np.zeros(sym.n)
        for v, val in work.items():
            out[v] = val
        return out
    return work
