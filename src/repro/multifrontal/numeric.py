"""Numeric multifrontal factorization: one vbatched call per level.

Walks the elimination forest bottom-up.  Each level assembles its
frontal matrices (original entries + extend-add of the children's Schur
complements), ships them to the device as ONE variable-size batch, and
eliminates every front's separator block with
:func:`repro.core.partial.partial_potrf_vbatched`.  The Schur
complements come back for the parents' assembly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.batch import VBatch
from ..core.partial import partial_potrf_vbatched
from ..errors import BatchNumericalError
from .symbolic import FrontInfo, SymbolicFactorization

__all__ = ["FrontFactor", "MultifrontalFactor", "factorize"]


@dataclass
class FrontFactor:
    """The factored pieces of one front."""

    rows: list  # global vertex ids, separator first
    k: int  # eliminated columns
    l11: np.ndarray  # (k, k) lower Cholesky factor of the pivot block
    l21: np.ndarray  # (order-k, k)


@dataclass
class MultifrontalFactor:
    """A completed multifrontal Cholesky factorization."""

    symbolic: SymbolicFactorization
    fronts: dict  # id(FrontInfo) -> FrontFactor
    elapsed: float  # simulated device seconds across all levels
    total_flops: float
    level_stats: list = field(default_factory=list)

    @property
    def gflops(self) -> float:
        return self.total_flops / self.elapsed / 1e9 if self.elapsed > 0 else 0.0


def _lookup(a, u, v):
    """Symmetric matrix accessor for dense or scipy.sparse input."""
    return a[u, v]


def _assemble_front(a, front: FrontInfo, updates: dict, elim_position: dict) -> np.ndarray:
    """Original entries + extend-add of children updates."""
    rows = front.rows
    local = {v: i for i, v in enumerate(rows)}
    f = np.zeros((len(rows), len(rows)))

    # Original entries: A[u, v] is assembled at the node eliminating
    # the earlier of u, v — here iff v is in this separator and u has
    # not been eliminated before v.
    pos = elim_position
    for v in front.sep:
        lv = local[v]
        f[lv, lv] += float(_lookup(a, v, v))
        for u in front._adj[v]:
            if pos[u] > pos[v]:
                lu = local[u]
                val = float(_lookup(a, u, v))
                f[lu, lv] += val
                f[lv, lu] += val

    # Extend-add: children's Schur complements land on this front's
    # rows (their boundaries are subsets of ours by the separator
    # property).  A child with an empty boundary produced no update.
    for child in front.children:
        if id(child) not in updates:
            continue
        upd, child_boundary = updates.pop(id(child))
        idx = np.array([local[v] for v in child_boundary], dtype=np.intp)
        f[np.ix_(idx, idx)] += upd
    return f


def factorize(device, a, symbolic: SymbolicFactorization) -> MultifrontalFactor:
    """Factorize the SPD matrix ``a`` (indexed by the graph's vertices).

    ``a`` may be a dense array or any object supporting symmetric
    ``a[u, v]`` indexing (e.g. ``scipy.sparse`` in LIL/CSR form) whose
    sparsity pattern is covered by ``symbolic.graph``.  Raises
    :class:`BatchNumericalError` if any pivot block is not positive
    definite.
    """
    # Cache adjacency on the fronts (dict lookups beat graph views in
    # the assembly loop).
    adj = symbolic.graph.adj
    for front in symbolic.fronts:
        front._adj = {v: list(adj[v]) for v in front.sep}

    updates: dict = {}
    factors: dict = {}
    elapsed = 0.0
    total_flops = 0.0
    level_stats = []

    for level in symbolic.levels:
        host_fronts = [
            _assemble_front(a, front, updates, symbolic.elim_position)
            for front in level
        ]
        batch = VBatch.from_host(device, host_fronts)
        k_cols = np.array([f.k for f in level], dtype=np.int64)
        result = partial_potrf_vbatched(device, batch, k_cols)
        if result.failed_count:
            failing = {i: int(v) for i, v in enumerate(result.infos) if v}
            batch.free()
            raise BatchNumericalError(failing, "multifrontal partial potrf")
        elapsed += result.elapsed
        total_flops += result.total_flops
        level_stats.append(
            {
                "fronts": len(level),
                "orders": (int(min(f.order for f in level)), int(max(f.order for f in level))),
                "gflops": result.gflops if result.elapsed > 0 else 0.0,
            }
        )
        outs = batch.download_matrices()
        for front, mat in zip(level, outs):
            k = front.k
            factors[id(front)] = FrontFactor(
                rows=front.rows,
                k=k,
                l11=np.tril(mat[:k, :k]),
                l21=mat[k:, :k].copy(),
            )
            if front.boundary:
                # The syrk kernel updates the lower triangle only
                # (BLAS contract); symmetrize before the extend-add.
                tri = np.tril(mat[k:, k:])
                updates[id(front)] = (tri + np.tril(tri, -1).T, front.boundary)
        batch.free()

    # Clean up the cached adjacency.
    for front in symbolic.fronts:
        del front._adj
    return MultifrontalFactor(
        symbolic=symbolic,
        fronts=factors,
        elapsed=elapsed,
        total_flops=total_flops,
        level_stats=level_stats,
    )
