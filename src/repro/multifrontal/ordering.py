"""Nested-dissection ordering: build the elimination forest.

Recursive graph bisection: a separator whose removal splits the graph
balances the two halves; the separator becomes an elimination node
whose children order the halves.  Separators are found with a BFS
level-set heuristic from a pseudo-peripheral vertex — not state of the
art (METIS territory), but a genuine dissection with the property the
numeric phase needs: every path between the halves crosses the
separator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

__all__ = ["EliminationNode", "nested_dissection"]


@dataclass
class EliminationNode:
    """One separator of the elimination forest."""

    vertices: list  # eliminated at this node, in elimination order
    depth: int
    children: list = field(default_factory=list)

    def postorder(self):
        for child in self.children:
            yield from child.postorder()
        yield self

    @property
    def subtree_vertices(self) -> list:
        out = []
        for node in self.postorder():
            out.extend(node.vertices)
        return out


def _pseudo_peripheral(graph: nx.Graph, nodes: list):
    """Endpoint of an approximately longest shortest path (two BFS sweeps)."""
    start = nodes[0]
    for _ in range(2):
        lengths = nx.single_source_shortest_path_length(graph.subgraph(nodes), start)
        start = max(lengths, key=lengths.get)
    return start


def _bfs_separator(graph: nx.Graph, nodes: list) -> tuple[list, list, list]:
    """Split ``nodes`` into (left, separator, right) by BFS level sets.

    The middle BFS level (by cumulative vertex count) separates the
    earlier levels from the later ones: every edge joins vertices at
    most one level apart, so removing the level disconnects them.
    """
    sub = graph.subgraph(nodes)
    root = _pseudo_peripheral(graph, nodes)
    levels: dict[int, list] = {}
    for v, d in nx.single_source_shortest_path_length(sub, root).items():
        levels.setdefault(d, []).append(v)
    depths = sorted(levels)
    if len(depths) < 3:
        return [], list(nodes), []  # too shallow to dissect
    # Pick the level whose prefix is closest to half the vertices.
    total = len(nodes)
    best, acc = depths[1], 0
    best_gap = total
    for d in depths[1:-1]:
        acc = sum(len(levels[dd]) for dd in depths if dd < d)
        gap = abs(acc - total // 2)
        if gap < best_gap:
            best, best_gap = d, gap
    left = [v for d in depths if d < best for v in levels[d]]
    sep = sorted(levels[best])
    right = [v for d in depths if d > best for v in levels[d]]
    return left, sep, right


def nested_dissection(
    graph: nx.Graph, min_size: int = 8, _nodes=None, _depth: int = 0
) -> list[EliminationNode]:
    """Dissect ``graph`` into an elimination forest (one tree per
    connected component).

    ``min_size`` stops recursion: components at or below it become leaf
    nodes eliminated wholesale.
    """
    if min_size < 1:
        raise ValueError(f"min_size must be >= 1, got {min_size}")
    if _nodes is None:
        return [
            nested_dissection(graph, min_size, sorted(comp), _depth)[0]
            for comp in nx.connected_components(graph)
        ]

    nodes = list(_nodes)
    if len(nodes) <= min_size:
        return [EliminationNode(vertices=sorted(nodes), depth=_depth)]

    left, sep, right = _bfs_separator(graph, nodes)
    if not left or not right:
        return [EliminationNode(vertices=sorted(nodes), depth=_depth)]

    node = EliminationNode(vertices=sep, depth=_depth)
    for part in (left, right):
        sub = graph.subgraph(part)
        for comp in nx.connected_components(sub):
            node.children.extend(
                nested_dissection(graph, min_size, sorted(comp), _depth + 1)
            )
    return [node]
