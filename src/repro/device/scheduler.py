"""Thread-block wave scheduling onto SM slots.

Two paths compute the makespan of a launch from its per-block durations:

* **exact** — event-driven list scheduling in issue order onto ``S``
  block slots (what the GigaThread engine does, modulo per-SM detail);
  used whenever the grid is small enough to afford it.
* **analytic** — the list-scheduling area/critical-path estimate
  ``max(max_d, total/S + 0.5 * (1 - 1/S) * max_d)``, used for huge gemm
  grids where exact simulation would dominate wall time.

Both consume the same grouped ``(duration, count)`` records, so the
effects the paper measures — load imbalance from mixed block durations,
its reduction by implicit sorting — appear in either path.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["BlockScheduler", "ScheduleResult"]


class ScheduleResult:
    """Makespan plus occupancy-weighted utilization of one launch."""

    __slots__ = ("makespan", "total_block_time", "slots", "utilization", "exact")

    def __init__(self, makespan: float, total_block_time: float, slots: int, exact: bool):
        self.makespan = makespan
        self.total_block_time = total_block_time
        self.slots = slots
        self.exact = exact
        denom = makespan * slots
        self.utilization = 0.0 if denom <= 0 else min(1.0, total_block_time / denom)


class BlockScheduler:
    """Schedules grouped block durations onto a fixed number of slots."""

    def __init__(self, exact_threshold: int = 50_000):
        if exact_threshold < 0:
            raise ValueError("exact_threshold cannot be negative")
        self.exact_threshold = exact_threshold

    def makespan(
        self,
        durations: np.ndarray,
        counts: np.ndarray | None,
        slots: int,
        force: str | None = None,
    ) -> ScheduleResult:
        """Completion time of a launch whose blocks have these durations.

        ``durations``/``counts`` are parallel arrays of grouped block
        records in issue order.  ``force`` pins the path ("exact" or
        "analytic") for tests and ablations.
        """
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        d = np.asarray(durations, dtype=np.float64)
        if d.ndim != 1:
            raise ValueError("durations must be 1-D")
        c = (
            np.ones(d.shape, dtype=np.int64)
            if counts is None
            else np.asarray(counts, dtype=np.int64)
        )
        if c.shape != d.shape:
            raise ValueError(f"counts shape {c.shape} != durations shape {d.shape}")
        if np.any(d < 0) or np.any(c < 0):
            raise ValueError("durations and counts must be non-negative")
        keep = c > 0
        d, c = d[keep], c[keep]
        if d.size == 0:
            return ScheduleResult(0.0, 0.0, slots, exact=True)

        total_blocks = int(c.sum())
        total_time = float(d @ c)
        max_d = float(d.max())

        use_exact = force == "exact" or (force is None and total_blocks <= self.exact_threshold)
        if use_exact:
            # The schedule is a pure function of (slots, durations,
            # counts), and launches repeat the same grouped records
            # constantly (aux kernels every step, sweeps re-running
            # identical shapes) — memoize across all devices.
            key = (slots, d.tobytes(), c.tobytes())
            span = _SCHEDULE_MEMO.get(key)
            if span is None:
                span = _exact_list_schedule(d, c, slots)
                if len(_SCHEDULE_MEMO) >= 1 << 17:
                    _SCHEDULE_MEMO.clear()
                _SCHEDULE_MEMO[key] = span
            return ScheduleResult(span, total_time, slots, exact=True)

        # Analytic: area bound plus half the classic list-scheduling
        # critical-path slack (random issue order sits around half the
        # adversarial (1 - 1/S) * max_d bound).
        span = max(max_d, total_time / slots + 0.5 * (1.0 - 1.0 / slots) * max_d)
        return ScheduleResult(span, total_time, slots, exact=False)


_SCHEDULE_MEMO: dict[tuple, float] = {}


def _exact_list_schedule(durations: np.ndarray, counts: np.ndarray, slots: int) -> float:
    """Event-driven list scheduling in issue order.

    Slot free times are kept as a multiset (``{time: slot count}`` plus
    a heap of the distinct times), so every wave of equal blocks landing
    on equally-free slots is one dict update instead of per-slot heap
    traffic — O(distinct event times) rather than O(blocks).
    """
    if durations.size == 1:
        # One uniform wave set: ceil(count/slots) back-to-back waves.
        return float(durations[0]) * -(-int(counts[0]) // slots)
    free_count: dict[float, int] = {0.0: slots}
    heap = [0.0]
    for dur, cnt in zip(durations.tolist(), counts.tolist()):
        remaining = int(cnt)
        while remaining > 0:
            t0 = heap[0]
            avail = free_count[t0]
            take = avail if avail < remaining else remaining
            if take == avail:
                del free_count[t0]
                heapq.heappop(heap)
            else:
                free_count[t0] = avail - take
            t1 = t0 + dur
            if t1 in free_count:
                free_count[t1] += take
            else:
                free_count[t1] = take
                heapq.heappush(heap, t1)
            remaining -= take
    return max(free_count)
