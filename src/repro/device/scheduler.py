"""Thread-block wave scheduling onto SM slots.

Two paths compute the makespan of a launch from its per-block durations:

* **exact** — event-driven list scheduling in issue order onto ``S``
  block slots (what the GigaThread engine does, modulo per-SM detail);
  used whenever the grid is small enough to afford it.
* **analytic** — the list-scheduling area/critical-path estimate
  ``max(max_d, total/S + 0.5 * (1 - 1/S) * max_d)``, used for huge gemm
  grids where exact simulation would dominate wall time.

Both consume the same grouped ``(duration, count)`` records, so the
effects the paper measures — load imbalance from mixed block durations,
its reduction by implicit sorting — appear in either path.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["BlockScheduler", "ScheduleResult"]


class ScheduleResult:
    """Makespan plus occupancy-weighted utilization of one launch."""

    __slots__ = ("makespan", "total_block_time", "slots", "utilization", "exact")

    def __init__(self, makespan: float, total_block_time: float, slots: int, exact: bool):
        self.makespan = makespan
        self.total_block_time = total_block_time
        self.slots = slots
        self.exact = exact
        denom = makespan * slots
        self.utilization = 0.0 if denom <= 0 else min(1.0, total_block_time / denom)


class BlockScheduler:
    """Schedules grouped block durations onto a fixed number of slots."""

    def __init__(self, exact_threshold: int = 50_000):
        if exact_threshold < 0:
            raise ValueError("exact_threshold cannot be negative")
        self.exact_threshold = exact_threshold

    def makespan(
        self,
        durations: np.ndarray,
        counts: np.ndarray | None,
        slots: int,
        force: str | None = None,
    ) -> ScheduleResult:
        """Completion time of a launch whose blocks have these durations.

        ``durations``/``counts`` are parallel arrays of grouped block
        records in issue order.  ``force`` pins the path ("exact" or
        "analytic") for tests and ablations.
        """
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        d = np.asarray(durations, dtype=np.float64)
        if d.ndim != 1:
            raise ValueError("durations must be 1-D")
        c = (
            np.ones(d.shape, dtype=np.int64)
            if counts is None
            else np.asarray(counts, dtype=np.int64)
        )
        if c.shape != d.shape:
            raise ValueError(f"counts shape {c.shape} != durations shape {d.shape}")
        if np.any(d < 0) or np.any(c < 0):
            raise ValueError("durations and counts must be non-negative")
        keep = c > 0
        d, c = d[keep], c[keep]
        if d.size == 0:
            return ScheduleResult(0.0, 0.0, slots, exact=True)

        total_blocks = int(c.sum())
        total_time = float(d @ c)
        max_d = float(d.max())

        use_exact = force == "exact" or (force is None and total_blocks <= self.exact_threshold)
        if use_exact:
            span = _exact_list_schedule(d, c, slots)
            return ScheduleResult(span, total_time, slots, exact=True)

        # Analytic: area bound plus half the classic list-scheduling
        # critical-path slack (random issue order sits around half the
        # adversarial (1 - 1/S) * max_d bound).
        span = max(max_d, total_time / slots + 0.5 * (1.0 - 1.0 / slots) * max_d)
        return ScheduleResult(span, total_time, slots, exact=False)


def _exact_list_schedule(durations: np.ndarray, counts: np.ndarray, slots: int) -> float:
    """Event-driven list scheduling in issue order.

    Identical consecutive blocks are placed a whole wave at a time when
    all slots are equally free, which keeps the common fixed-size case
    (thousands of equal blocks) O(waves) instead of O(blocks).
    """
    free_at = [0.0] * slots
    heapq.heapify(free_at)
    for dur, cnt in zip(durations, counts):
        remaining = int(cnt)
        while remaining > 0:
            t0 = free_at[0]
            # How many slots are free at exactly t0?  Pop them together
            # and reschedule as one wave of equal blocks.
            batch = []
            while free_at and free_at[0] == t0 and len(batch) < remaining:
                batch.append(heapq.heappop(free_at))
            if not batch:  # pragma: no cover - defensive
                batch.append(heapq.heappop(free_at))
            for _ in batch:
                heapq.heappush(free_at, t0 + dur)
            remaining -= len(batch)
    return max(free_at)
