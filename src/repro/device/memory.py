"""Simulated device global memory: a capacity-enforcing allocator.

Matrix payloads live in ordinary NumPy arrays (that *is* the simulated
DRAM), but every allocation is charged against the device's capacity so
out-of-memory behaves like the real card — the padding baseline in
Figs 8-9 depends on genuinely running out.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..errors import DeviceOutOfMemory
from ..types import Precision

__all__ = ["DeviceArray", "GlobalMemory"]


class DeviceArray:
    """A typed allocation in simulated device memory.

    Host code must not touch ``.data`` directly in "real" usage — the
    public API goes through :meth:`Device.memcpy_h2d` /
    :meth:`Device.memcpy_d2h` so PCIe cost is accounted.  Kernels (which
    execute "on the device") read and write ``.data`` freely.

    The payload is materialized lazily: capacity is charged at ``alloc``
    time, but the backing zeros are only created on first ``.data``
    access.  Timing-only sweeps (``execute_numerics=False``) never touch
    matrix values, so their allocations stay payload-free.
    """

    __slots__ = ("memory", "handle", "nbytes", "_data", "_producer", "_shape", "_dtype")

    def __init__(self, memory: "GlobalMemory", handle: int, shape: tuple[int, ...], dtype: np.dtype):
        self.memory = memory
        self.handle = handle
        self._data: np.ndarray | None = None
        self._producer = None
        self._shape = shape
        self._dtype = dtype
        self.nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            if self._producer is not None:
                self._data = self._producer()
            else:
                self._data = np.zeros(self._shape, dtype=self._dtype)
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = value

    @property
    def materialized(self) -> bool:
        """Whether the backing payload has been created yet."""
        return self._data is not None

    def set_producer(self, producer, shape: tuple[int, ...], dtype: np.dtype) -> None:
        """Defer the payload to ``producer()`` (pool views); resets ``.data``."""
        self._data = None
        self._producer = producer
        self._shape = shape
        self._dtype = dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape if self._data is None else self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype if self._data is None else self._data.dtype

    @property
    def precision(self) -> Precision:
        return Precision.from_dtype(self.dtype)

    def free(self) -> None:
        """Release the allocation (idempotent)."""
        self.memory._release(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceArray(handle={self.handle}, shape={self.shape}, dtype={self.dtype})"


class GlobalMemory:
    """Bump-accounted allocator with a hard capacity.

    Tracks ``used``, ``peak_used`` and live handles; allocation beyond
    capacity raises :class:`DeviceOutOfMemory` *before* any host memory
    is committed.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity = int(capacity_bytes)
        self.used = 0
        self.peak_used = 0
        self._live: dict[int, int] = {}
        self._handles = itertools.count(1)

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used

    def alloc(self, shape: tuple[int, ...] | int, dtype) -> DeviceArray:
        """Allocate a zero-initialized array on the device."""
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize
        if nbytes < 0:
            raise ValueError(f"invalid shape {shape}")
        if self.used + nbytes > self.capacity:
            raise DeviceOutOfMemory(nbytes, self.free_bytes, self.capacity)
        handle = next(self._handles)
        self._live[handle] = nbytes
        self.used += nbytes
        self.peak_used = max(self.peak_used, self.used)
        return DeviceArray(self, handle, shape, dtype)

    def _release(self, array: DeviceArray) -> None:
        nbytes = self._live.pop(array.handle, None)
        if nbytes is not None:
            self.used -= nbytes

    def free_all(self) -> None:
        """Release every live allocation (device reset)."""
        self._live.clear()
        self.used = 0

    @property
    def live_allocations(self) -> int:
        return len(self._live)
