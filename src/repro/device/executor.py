"""Stream-aware plan execution (the other half of the plan/execute split).

:class:`PlanExecutor` walks a :class:`~repro.core.plan.LaunchPlan` on
one device: nodes on the same logical stream serialize through the
stream's in-order queue, nodes on different streams overlap subject to
the device's shared SM-area constraint, cross-stream dependency edges
become event waits, and :class:`~repro.core.plan.Barrier` nodes drain
streams back to the host.

:func:`execute_concurrently` runs one plan per device at the same time
(thread-per-device), which is what gives a
:class:`~repro.device.topology.DeviceGroup` its multi-GPU overlap: each
simulated device advances its own clock independently, so the group's
makespan is the slowest shard, not the sum.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..errors import PlanError

__all__ = ["ExecutionStats", "PlanExecutor", "execute_concurrently"]


@dataclass
class ExecutionStats:
    """What one plan execution actually launched."""

    launches: int = 0
    aux_launches: int = 0
    barriers: int = 0
    by_tag: dict = field(default_factory=dict)
    streams_used: int = 1

    def count(self, tag: str) -> int:
        return self.by_tag.get(tag, 0)

    @property
    def kernel_launches(self) -> int:
        """Compute launches, i.e. everything that is not metadata."""
        return self.launches - self.aux_launches


class PlanExecutor:
    """Executes :class:`~repro.core.plan.LaunchPlan` DAGs on one device.

    Logical stream 0 maps to the device's default stream; every other
    logical id gets a fresh :class:`~repro.device.stream.Stream` per
    execution (matching the per-run stream sets the eager drivers used),
    created lazily on first use.
    """

    def __init__(self, device):
        self.device = device

    def execute(self, plan) -> ExecutionStats:
        from ..core.plan import AuxLaunch, Barrier, KernelLaunch

        if plan.closed:
            raise PlanError("cannot execute a closed plan")
        if plan.device is not self.device:
            raise PlanError("plan was built for a different device")

        device = self.device
        streams = {0: device.default_stream}
        nodes = plan.nodes
        # A node needs an event only when a *later, other-stream* node
        # depends on it; same-stream order is the queue's job.
        needs_event = {
            dep
            for node in nodes
            for dep in node.deps
            if nodes[dep].stream != node.stream
        }
        events: dict[int, object] = {}
        stats = ExecutionStats()

        for node in nodes:
            if isinstance(node, Barrier):
                scope = node.streams if node.streams is not None else sorted(streams)
                for sid in scope:
                    stream = streams.get(sid)
                    if stream is not None:
                        stream.synchronize()
                device.synchronize()
                stats.barriers += 1
                continue
            if not isinstance(node, KernelLaunch):  # pragma: no cover - guarded by validate()
                raise PlanError(f"unknown plan node type: {type(node).__name__}")
            stream = streams.get(node.stream)
            if stream is None:
                stream = streams[node.stream] = device.create_stream()
            for dep in node.deps:
                if nodes[dep].stream != node.stream:
                    stream.wait_event(events[dep])
            device.launch(node.kernel, stream=stream)
            stats.launches += 1
            if isinstance(node, AuxLaunch):
                stats.aux_launches += 1
            stats.by_tag[node.tag] = stats.by_tag.get(node.tag, 0) + 1
            if node.index in needs_event:
                events[node.index] = stream.record_event()

        stats.streams_used = len(streams)
        return stats


def execute_concurrently(plans, max_workers: int | None = None) -> list[ExecutionStats]:
    """Execute one plan per device concurrently; returns per-plan stats.

    Every plan must target a distinct device — two threads advancing one
    simulated clock would race.  Order of the result list matches the
    order of ``plans``.
    """

    plans = list(plans)
    devices = [id(p.device) for p in plans]
    if len(set(devices)) != len(devices):
        raise PlanError("concurrent execution requires one plan per distinct device")
    if not plans:
        return []
    if len(plans) == 1:
        return [PlanExecutor(plans[0].device).execute(plans[0])]
    with ThreadPoolExecutor(max_workers=max_workers or len(plans)) as pool:
        futures = [pool.submit(PlanExecutor(p.device).execute, p) for p in plans]
        return [f.result() for f in futures]
