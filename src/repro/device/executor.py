"""Stream-aware plan execution (the other half of the plan/execute split).

:class:`PlanExecutor` walks a :class:`~repro.core.plan.LaunchPlan` on
one device: nodes on the same logical stream serialize through the
stream's in-order queue, nodes on different streams overlap subject to
the device's shared SM-area constraint, cross-stream dependency edges
become event waits, and :class:`~repro.core.plan.Barrier` nodes drain
streams back to the host.

:func:`execute_concurrently` runs one plan per device at the same time
(thread-per-device), which is what gives a
:class:`~repro.device.topology.DeviceGroup` its multi-GPU overlap: each
simulated device advances its own clock independently, so the group's
makespan is the slowest shard, not the sum.

Execution is the stack's richest tracing site: with a tracer active
(:func:`repro.observability.trace.current_tracer`) every kernel launch
becomes a simulated-clock span on its device-stream track, cross-stream
event waits that actually blocked become wait spans, and barriers
become host-track spans.  All stamps are read *from* the device
(``LaunchRecord``, ``stream.ready_time``) after the fact, so tracing
can never move the simulated clock, and the disabled path is a single
falsy check per plan plus one per node.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..errors import PlanError, PlanExecutionError
from ..observability.trace import Track, current_tracer, propagating

__all__ = ["ExecutionStats", "MemberStats", "PlanExecutor", "execute_concurrently"]


@dataclass
class ExecutionStats:
    """What one plan execution actually launched.

    ``streams_used`` counts the logical streams that executed at least
    one launch — an empty plan reports 0, matching
    :attr:`~repro.core.plan.LaunchPlan.streams_used` rather than the
    executor's internal stream-map bookkeeping.  ``event_waits`` counts
    cross-stream dependency edges realized as event waits, and
    ``events_recorded`` the events recorded to serve them — the raw
    material of the overlap story the trace makes visible.
    """

    launches: int = 0
    aux_launches: int = 0
    barriers: int = 0
    by_tag: dict = field(default_factory=dict)
    streams_used: int = 0
    event_waits: int = 0
    events_recorded: int = 0
    parallel_numerics: int = 0

    def count(self, tag: str) -> int:
        return self.by_tag.get(tag, 0)

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another execution's counts into this one.

        Plain sums with a zero identity — ``streams_used`` included,
        since merged executions ran on distinct stream sets (different
        shards/devices or a re-execution's fresh streams).  The serving
        fleet folds the ``partial`` shard stats a
        :class:`~repro.errors.PlanExecutionError` carries through here
        before retrying the batch elsewhere.
        """
        self.launches += other.launches
        self.aux_launches += other.aux_launches
        self.barriers += other.barriers
        self.streams_used += other.streams_used
        self.event_waits += other.event_waits
        self.events_recorded += other.events_recorded
        self.parallel_numerics += other.parallel_numerics
        for tag, count in other.by_tag.items():
            self.by_tag[tag] = self.by_tag.get(tag, 0) + count

    @property
    def kernel_launches(self) -> int:
        """Compute launches, i.e. everything that is not metadata."""
        return self.launches - self.aux_launches

    def publish(self, registry, prefix: str = "executor") -> None:
        """Fold these counts into a metrics registry (counters by tag)."""
        registry.counter(f"{prefix}_launches_total", "kernel launches executed").inc(
            self.launches
        )
        registry.counter(f"{prefix}_barriers_total", "host barriers executed").inc(
            self.barriers
        )
        registry.counter(f"{prefix}_event_waits_total", "cross-stream event waits").inc(
            self.event_waits
        )
        by_tag = registry.counter(
            f"{prefix}_launches_by_tag_total", "launches by plan tag", labels=("tag",)
        )
        for tag, count in sorted(self.by_tag.items()):
            by_tag.inc(count, tag=tag)


@dataclass
class MemberStats:
    """Per-member execution accounting for one heterogeneous run.

    One record per :class:`~repro.device.member.ComputeMember` in a
    :class:`~repro.device.hetero.HeteroGroup`: how many chunks the
    member executed (and how many of those it stole), the matrices and
    flops it absorbed, its busy span on the simulated clock, and the
    kernel launches it issued (GPU members; a CPU member launches
    nothing).  ``merge`` folds repeated runs of the same member — the
    serving layer accumulates these across dispatches.
    """

    name: str
    kind: str = "gpu"
    chunks: int = 0
    steals: int = 0
    matrices: int = 0
    flops: float = 0.0
    busy_s: float = 0.0
    launches: int = 0

    def record(self, run) -> None:
        """Fold one :class:`~repro.device.member.ChunkRun` in."""
        self.chunks += 1
        self.steals += int(bool(run.stolen))
        self.matrices += int(run.count)
        self.flops += float(run.flops)
        if run.launch_stats is not None:
            self.launches += int(run.launch_stats.executed_launches)

    def merge(self, other: "MemberStats") -> None:
        self.chunks += other.chunks
        self.steals += other.steals
        self.matrices += other.matrices
        self.flops += other.flops
        self.busy_s += other.busy_s
        self.launches += other.launches

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "chunks": self.chunks,
            "steals": self.steals,
            "matrices": self.matrices,
            "flops": self.flops,
            "busy_s": self.busy_s,
            "launches": self.launches,
        }

    def publish(self, registry, prefix: str = "hetero") -> None:
        """Export this member's placement outcome to a metrics registry."""
        registry.counter(
            f"{prefix}_chunks_total", "chunks executed per member", labels=("member", "kind")
        ).inc(self.chunks, member=self.name, kind=self.kind)
        registry.counter(
            f"{prefix}_steals_total", "chunks work-stolen per member", labels=("member",)
        ).inc(self.steals, member=self.name)
        registry.counter(
            f"{prefix}_matrices_total", "matrices placed per member", labels=("member",)
        ).inc(self.matrices, member=self.name)
        registry.gauge(
            f"{prefix}_busy_seconds", "member busy span, last run", labels=("member",)
        ).set(self.busy_s, member=self.name)


class PlanExecutor:
    """Executes :class:`~repro.core.plan.LaunchPlan` DAGs on one device.

    Logical stream 0 maps to the device's default stream; every other
    logical id gets a fresh :class:`~repro.device.stream.Stream` per
    execution (matching the per-run stream sets the eager drivers used),
    created lazily on first use.

    When the plan optimizer recorded independent launch runs in
    ``plan.meta["optimizer"]["parallel_groups"]`` and the device
    executes numerics, the executor fans each group's ``run_numerics``
    calls out to a thread pool (``max_workers``, capped by the device
    spec's ``hardware_queues``) and joins them before the first
    dependent node.  Group members touch disjoint matrices by
    construction, so the results are bit-identical to serial execution;
    the simulated clock always advances serially in node order.
    """

    def __init__(self, device, max_workers: int | None = None):
        self.device = device
        queues = int(getattr(getattr(device, "spec", None), "hardware_queues", 1) or 1)
        self.max_workers = queues if max_workers is None else min(int(max_workers), queues)

    def execute(self, plan) -> ExecutionStats:
        from ..core.plan import AuxLaunch, Barrier, KernelLaunch

        if plan.closed:
            raise PlanError("cannot execute a closed plan")
        if plan.device is not self.device:
            raise PlanError("plan was built for a different device")

        device = self.device
        tracer = current_tracer()
        streams = {0: device.default_stream}
        nodes = plan.nodes
        # Stamped on every kernel span so trace analysis can attribute
        # stream time per operation in mixed-op (serving) traces.
        plan_op = plan.meta.get("op")

        # Parallel-numerics bookkeeping (optimizer-annotated plans only).
        group_of: dict[int, int] = {}
        group_last: dict[int, int] = {}
        if device.execute_numerics and self.max_workers > 1:
            for gid, members in enumerate(
                plan.meta.get("optimizer", {}).get("parallel_groups", ())
            ):
                if len(members) > 1:
                    for index in members:
                        group_of[index] = gid
                    group_last[gid] = max(members)
        pool = None
        pending: list = []

        def drain():
            while pending:
                pending.pop(0).result()
        # A node needs an event only when a *later, other-stream* node
        # depends on it; same-stream order is the queue's job.
        needs_event = {
            dep
            for node in nodes
            for dep in node.deps
            if nodes[dep].stream != node.stream
        }
        events: dict[int, object] = {}
        stats = ExecutionStats()
        used_streams: set[int] = set()

        try:
            for node in nodes:
                if isinstance(node, Barrier):
                    drain()
                    barrier_from = device.host_time
                    scope = node.streams if node.streams is not None else sorted(streams)
                    for sid in scope:
                        stream = streams.get(sid)
                        if stream is not None:
                            stream.synchronize()
                    device.synchronize()
                    stats.barriers += 1
                    if tracer:
                        tracer.add_span(
                            "barrier", Track.for_host(device),
                            barrier_from, device.host_time, cat="barrier",
                            args={"node": node.index},
                        )
                    continue
                if not isinstance(node, KernelLaunch):  # pragma: no cover - guarded by validate()
                    raise PlanError(f"unknown plan node type: {type(node).__name__}")
                stream = streams.get(node.stream)
                if stream is None:
                    stream = streams[node.stream] = device.create_stream()
                for dep in node.deps:
                    if nodes[dep].stream != node.stream:
                        blocked_from = stream.ready_time
                        stream.wait_event(events[dep])
                        stats.event_waits += 1
                        if tracer and stream.ready_time > blocked_from:
                            tracer.add_span(
                                "wait", Track.for_stream(device, node.stream),
                                blocked_from, stream.ready_time, cat="wait",
                                args={"node": node.index, "on": dep},
                            )
                gid = group_of.get(node.index)
                if gid is None:
                    # A group's numerics may only overlap nodes proven
                    # independent of it (its own members and floating
                    # aux launches); anything else joins first.
                    if pending and not isinstance(node, AuxLaunch):
                        drain()
                    record = device.launch(node.kernel, stream=stream)
                else:
                    if pool is None:
                        pool = ThreadPoolExecutor(max_workers=self.max_workers)
                    record = device.launch(node.kernel, stream=stream, run_numerics=False)
                    pending.append(pool.submit(node.kernel.run_numerics))
                    stats.parallel_numerics += 1
                    if node.index == group_last[gid]:
                        drain()
                stats.launches += 1
                used_streams.add(node.stream)
                if isinstance(node, AuxLaunch):
                    stats.aux_launches += 1
                stats.by_tag[node.tag] = stats.by_tag.get(node.tag, 0) + 1
                if node.index in needs_event:
                    events[node.index] = stream.record_event()
                    stats.events_recorded += 1
                if tracer:
                    span_args = {
                        "node": node.index,
                        "blocks": record.blocks,
                        "utilization": round(record.schedule.utilization, 4),
                    }
                    if plan_op is not None:
                        span_args["op"] = plan_op
                    tracer.add_span(
                        record.kernel_name, Track.for_stream(device, node.stream),
                        record.start, record.end, cat=node.tag,
                        args=span_args,
                    )
            drain()
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

        stats.streams_used = len(used_streams)
        return stats


def execute_concurrently(plans, max_workers: int | None = None) -> list[ExecutionStats]:
    """Execute one plan per device concurrently; returns per-plan stats.

    Every plan must target a distinct device — two threads advancing one
    simulated clock would race.  Order of the result list matches the
    order of ``plans``.  Each worker runs under a copy of the caller's
    context, so an active tracer (and its open span) propagates into
    the per-device threads and shard kernel spans nest correctly.

    A failing plan raises :class:`~repro.errors.PlanExecutionError`
    carrying the plan's index and device name (the first failure in
    plan order; the original exception is chained), after every other
    plan has finished — no shard is abandoned mid-flight.
    """

    def _fail(index: int, exc: BaseException, partial=None):
        device = plans[index].device
        raise PlanExecutionError(
            index, getattr(device, "name", "device"), exc, partial=partial
        ) from exc

    plans = list(plans)
    devices = [id(p.device) for p in plans]
    if len(set(devices)) != len(devices):
        raise PlanError("concurrent execution requires one plan per distinct device")
    if not plans:
        return []
    if len(plans) == 1:
        try:
            return [PlanExecutor(plans[0].device).execute(plans[0])]
        except Exception as exc:
            _fail(0, exc)
    with ThreadPoolExecutor(max_workers=max_workers or len(plans)) as pool:
        futures = [
            pool.submit(propagating(PlanExecutor(p.device).execute), p) for p in plans
        ]
        results = []
        first_failure = None
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except Exception as exc:
                if first_failure is None:
                    first_failure = (index, exc)
                results.append(None)
        if first_failure is not None:
            # The error carries the surviving shards' stats so a
            # retrying caller can account work already done (and merge
            # the retry idempotently — see LaunchStats.merge(key=...)).
            _fail(*first_failure, partial=results)
        return results
