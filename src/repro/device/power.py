"""GPU board power model (NVML stand-in for Fig 10).

A K40c idles around 25 W and has a 235 W board power limit.  During a
kernel, draw scales with how busy the SMs are — we use the launch's
slot utilization recorded on the timeline.  Energy to solution is the
integral of draw over the run, including idle gaps (the board is
powered whether or not it computes, exactly what NVML integration over
the experiment window measures).
"""

from __future__ import annotations

from dataclasses import dataclass

from .clock import Timeline

__all__ = ["GpuPowerModel", "K40C_POWER"]


@dataclass(frozen=True)
class GpuPowerModel:
    """Linear utilization -> power map for a GPU board.

    ``activity_scale`` converts slot occupancy into power-relevant
    activity: batched small-matrix kernels are memory- and
    latency-bound, so even fully-occupied SMs draw well below the board
    limit (a K40c runs batched dpotrf nearer 150 W than its 235 W cap).
    """

    idle_watts: float
    max_watts: float
    activity_scale: float = 0.60

    def __post_init__(self):
        if self.idle_watts < 0 or self.max_watts < self.idle_watts:
            raise ValueError(f"inconsistent power model: {self}")
        if not 0.0 < self.activity_scale <= 1.0:
            raise ValueError(f"activity_scale must be in (0, 1]: {self}")

    def power(self, utilization: float) -> float:
        """Instantaneous draw at a given SM slot utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        activity = utilization * self.activity_scale
        return self.idle_watts + (self.max_watts - self.idle_watts) * activity

    def energy(self, timeline: Timeline, total_time: float | None = None) -> float:
        """Joules consumed over a run.

        Busy intervals integrate at their recorded utilization; the
        remainder of ``total_time`` (default: the timeline's clock)
        integrates at idle draw.
        """
        span = timeline.now if total_time is None else total_time
        if span < 0:
            raise ValueError("total_time cannot be negative")
        busy_energy = 0.0
        busy_time = 0.0
        for iv in timeline.intervals:
            busy_energy += self.power(iv.utilization) * iv.duration
            busy_time += iv.duration
        idle_gap = max(0.0, span - busy_time)
        return busy_energy + self.idle_watts * idle_gap


K40C_POWER = GpuPowerModel(idle_watts=25.0, max_watts=235.0)
