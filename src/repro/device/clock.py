"""Simulated timeline: interval recording for profiling and energy.

Both the device and the CPU model append :class:`Interval` records as
work is scheduled; the energy module integrates power over them and the
bench harness turns them into per-kernel profiles (how we verify that
the auxiliary kernels' overhead is "almost negligible", paper §III-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Interval", "Timeline"]


@dataclass(frozen=True)
class Interval:
    """One span of simulated activity.

    ``utilization`` is the fraction of the resource kept busy during
    the span (block slots for a kernel, cores for a CPU phase); it
    scales the dynamic term of the power models.
    """

    start: float
    end: float
    category: str
    utilization: float = 1.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")
        if not 0.0 <= self.utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1]: {self}")


@dataclass
class Timeline:
    """Append-only log of simulated intervals with a current clock."""

    now: float = 0.0
    intervals: list[Interval] = field(default_factory=list)

    def advance(self, duration: float, category: str, utilization: float = 1.0) -> Interval:
        """Consume ``duration`` seconds of simulated time from ``now``."""
        if duration < 0:
            raise ValueError(f"cannot advance by negative duration {duration}")
        iv = Interval(self.now, self.now + duration, category, utilization)
        self.intervals.append(iv)
        self.now = iv.end
        return iv

    def record(self, start: float, end: float, category: str, utilization: float = 1.0) -> Interval:
        """Log an interval at an explicit position; moves ``now`` forward only."""
        iv = Interval(start, end, category, utilization)
        self.intervals.append(iv)
        self.now = max(self.now, end)
        return iv

    def reset(self) -> None:
        self.now = 0.0
        self.intervals.clear()

    def busy_time(self, prefix: str | None = None) -> float:
        """Total recorded duration, optionally filtered by category prefix."""
        return sum(
            iv.duration
            for iv in self.intervals
            if prefix is None or iv.category.startswith(prefix)
        )

    def categories(self) -> dict[str, float]:
        """Map category -> accumulated duration (a flat profile)."""
        out: dict[str, float] = {}
        for iv in self.intervals:
            out[iv.category] = out.get(iv.category, 0.0) + iv.duration
        return out
