"""Heterogeneous compute members: one backend protocol, many substrates.

The paper's central scheduling claim is that variable-size batches run
best when *different* resources take different size buckets: GPU fused
kernels for swarms of small matrices, GPU separated (blocked BLAS)
kernels for the large tail, and one-core-per-matrix CPU scheduling for
whatever hides best behind either.  This module gives every such
resource the same face — a :class:`ComputeMember` — so the placement
layer (:mod:`repro.device.hetero`) can treat "where should this bucket
run?" as a pure cost-model question.

A member owns three things:

* a **clock** (``now``/``synchronize``/``reset_clock``) — simulated
  seconds, advanced only by work the member executed;
* a **calibrated cost estimate** (:meth:`ComputeMember.estimate_cost`)
  — predicted makespan of a size bucket *without running it*.  The GPU
  member calibrates itself by probing its own simulator (a handful of
  tiny plan/execute runs, least-squares fit over ``[flops, max_n,
  sum_n, 1]``, coefficients cached per ``(spec, calibration,
  precision, approach)``); the CPU member's estimate is exact because
  its scheduler *is* the model;
* a **chunk runner** (:meth:`ComputeMember.run_chunk`) — execute one
  index bucket of a source :class:`~repro.core.batch.VBatch`, gather
  factors/infos back, and report a :class:`ChunkRun`.

Cost-model-driven approach selection rides on the same estimates:
:meth:`ComputeMember.choose_approach` replaces the single static
fused/separated crossover with a per-bucket argmin, which is what
unlocks multi-member scaling — a bucket of near-``max_n`` matrices is
3x cheaper under the separated planner than under the fused one.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from .. import flops as _flops
from ..errors import ArgumentError
from ..types import Precision, precision_info
from .calibration import Calibration, K40C_CALIBRATION
from .device import Device
from .spec import DeviceSpec, K40C

__all__ = [
    "ChunkRun",
    "ComputeMember",
    "CpuMember",
    "GpuMember",
    "MemberCapabilities",
]

#: Planner approaches a member may choose between for one bucket.
_APPROACHES = ("fused", "separated")


@dataclass(frozen=True)
class MemberCapabilities:
    """What a member is, for placement decisions and reports."""

    kind: str  # "gpu" | "cpu"
    name: str
    peak_gflops_fp64: float
    parallel_lanes: int  # SMs for a GPU, cores for a CPU
    executes_numerics: bool


@dataclass
class ChunkRun:
    """Outcome of one chunk executed on one member."""

    member: str
    kind: str
    approach: str
    count: int
    max_n: int
    flops: float
    start: float  # member clock when the chunk began
    elapsed: float  # simulated seconds the chunk took on the member
    stolen: bool = False
    infos: np.ndarray | None = None
    launch_stats: object | None = None  # LaunchStats for GPU chunks


class ComputeMember(abc.ABC):
    """Common backend protocol for heterogeneous placement.

    Implementations: :class:`GpuMember` (a simulated accelerator, any
    :class:`~repro.device.spec.DeviceSpec`) and :class:`CpuMember`
    (the :mod:`repro.cpu` one-core-per-matrix model).  The contract:
    clocks only move via :meth:`run_chunk`, estimates never move
    clocks, and numerics are gathered back into the *source* batch so
    results are member-placement independent at the caller.
    """

    name: str
    kind: str

    @abc.abstractmethod
    def capabilities(self) -> MemberCapabilities:
        """Static description used in placement reports."""

    @abc.abstractmethod
    def estimate_cost(
        self, sizes, precision, approach: str = "auto"
    ) -> float:
        """Predicted makespan (simulated seconds) of one size bucket.

        ``approach="auto"`` returns the member's best choice (the
        minimum over the approaches it supports); a member with no
        notion of approach (the CPU) ignores the argument.
        """

    @abc.abstractmethod
    def run_chunk(
        self,
        batch,
        idx: np.ndarray,
        options,
        plan_cache=None,
        approach: str | None = None,
        stolen: bool = False,
    ) -> ChunkRun:
        """Execute ``batch[idx]`` on this member and gather results."""

    @abc.abstractmethod
    def synchronize(self) -> float:
        """Drain the member; returns its simulated clock."""

    @abc.abstractmethod
    def reset_clock(self) -> None:
        """Zero the member's timing state."""

    def now(self) -> float:
        """Current simulated clock (drained)."""
        return self.synchronize()

    def choose_approach(self, sizes, precision, options) -> str:
        """Per-bucket planner choice via the calibrated cost model.

        An explicit ``options.approach`` is always honoured; ``"auto"``
        becomes the estimate argmin — the paper's fused-vs-separated
        crossover, decided per bucket instead of per batch.
        """
        approach = getattr(options, "approach", "auto")
        if approach != "auto":
            return approach
        return min(
            _APPROACHES, key=lambda a: self.estimate_cost(sizes, precision, a)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


# ----------------------------------------------------------------------
# GPU member
# ----------------------------------------------------------------------

#: Calibrated cost coefficients, cached per (spec, calibration,
#: precision, approach).  Probing a member's own simulator is cheap but
#: not free; every member sharing a spec/calibration pair shares a fit.
_GPU_COST_CACHE: dict[tuple, np.ndarray] = {}

def _probe_batches() -> list[np.ndarray]:
    """Probe size vectors spanning the (max_n, count, mix) space.

    Singletons pin the step-count (``max_n``) term, homogeneous swarms
    at several counts pin the per-matrix term far from the singleton
    regime (large-count extrapolation is where a collinear fit goes
    negative), and graded mixes decorrelate ``sum_n`` from
    ``max_n * count``.
    """
    return [
        np.array([32]), np.array([96]), np.array([192]), np.array([320]),
        np.full(16, 48), np.full(32, 24), np.full(8, 160), np.full(96, 40),
        np.full(192, 28), np.full(256, 64), np.arange(16, 257, 16),
        np.arange(8, 129, 8), np.repeat(np.arange(32, 257, 32), 6),
        np.repeat(np.arange(16, 257, 16), 12),
    ]


def _gpu_cost_features(sizes: np.ndarray, precision) -> np.ndarray:
    """Feature vector of the member cost model (shared by fit and eval)."""
    return np.array(
        [
            _flops.batch_flops(sizes, "potrf", precision),
            float(sizes.max()),
            float(sizes.sum()),
            float(sizes.size),
            1.0,
        ]
    )


def _probe_gpu_coefficients(
    spec: DeviceSpec, calibration: Calibration, precision, approach: str
) -> np.ndarray:
    """Fit ``t ≈ [flops, max_n, sum_n, count, 1] · β`` on simulator probes.

    The probes run on a scratch device (timing plane only), so
    calibration never disturbs a live member's clock, and the fit is
    exact *for this spec and calibration* — unequal members in one
    group each get their own coefficients.
    """
    from ..core.batch import VBatch
    from ..core.driver import PotrfOptions, run_potrf_vbatched

    prec = Precision(precision)
    key = (spec, calibration, prec, approach)
    cached = _GPU_COST_CACHE.get(key)
    if cached is not None:
        return cached

    options = PotrfOptions(approach=approach)
    rows, times = [], []
    for sizes in _probe_batches():
        dev = Device(spec=spec, calibration=calibration, execute_numerics=False)
        sizes = np.asarray(sizes, dtype=np.int64)
        batch = VBatch.allocate(dev, sizes, prec)
        result = run_potrf_vbatched(dev, batch, int(sizes.max()), options)
        rows.append(_gpu_cost_features(sizes, prec))
        times.append(result.elapsed)
    rows = np.asarray(rows)
    times = np.asarray(times)
    # Minimize *relative* error (divide each probe equation by its
    # observed time): an absolute-error fit is dominated by the big
    # probes and extrapolates tiny chunks to negative estimates.
    coef, *_ = np.linalg.lstsq(rows / times[:, None], np.ones_like(times), rcond=None)
    _GPU_COST_CACHE[key] = coef
    return coef


class GpuMember(ComputeMember):
    """A simulated accelerator (any :class:`DeviceSpec`) as a member.

    Wraps a :class:`~repro.device.device.Device`; unequal specs and
    calibrations may coexist in one group — each member's cost model
    is probed against its own simulator.
    """

    kind = "gpu"

    def __init__(
        self,
        device: Device | None = None,
        *,
        spec: DeviceSpec = K40C,
        calibration: Calibration = K40C_CALIBRATION,
        execute_numerics: bool = True,
        name: str | None = None,
    ):
        if device is None:
            device = Device(
                spec=spec,
                calibration=calibration,
                execute_numerics=execute_numerics,
                name=name,
            )
        self.device = device
        self.name = device.name if name is None else str(name)

    def capabilities(self) -> MemberCapabilities:
        info = precision_info(Precision.D)
        return MemberCapabilities(
            kind="gpu",
            name=self.name,
            peak_gflops_fp64=self.device.spec.peak_flops(info) / 1e9,
            parallel_lanes=self.device.spec.num_sms,
            executes_numerics=self.device.execute_numerics,
        )

    # -- cost model -----------------------------------------------------
    def estimate_cost(self, sizes, precision, approach: str = "auto") -> float:
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.size == 0:
            return 0.0
        prec = Precision(precision)
        if approach == "auto":
            return min(
                self.estimate_cost(sizes, prec, a) for a in _APPROACHES
            )
        if approach not in _APPROACHES:
            raise ArgumentError(5, f"unknown approach {approach!r} (use one of {_APPROACHES})")
        coef = _probe_gpu_coefficients(
            self.device.spec, self.device.calibration, prec, approach
        )
        return float(max(_gpu_cost_features(sizes, prec) @ coef, 1e-9))

    # -- execution ------------------------------------------------------
    def run_chunk(
        self,
        batch,
        idx: np.ndarray,
        options,
        plan_cache=None,
        approach: str | None = None,
        stolen: bool = False,
    ) -> ChunkRun:
        from ..core.batch import VBatch
        from ..core.driver import plan_potrf, stats_from_execution
        from .executor import PlanExecutor

        idx = np.asarray(idx, dtype=np.int64)
        sizes = batch.sizes_host[idx]
        prec = batch.precision
        approach = approach or self.choose_approach(sizes, prec, options)
        dev = self.device
        if batch.device.execute_numerics and dev.execute_numerics:
            chunk_batch = VBatch.from_host(
                dev, [np.ascontiguousarray(batch.matrix_view(int(j))) for j in idx]
            )
        else:
            chunk_batch = VBatch.allocate(
                dev, sizes, prec, ldas=np.maximum(batch.ldas_host[idx], 1)
            )
        chunk_max = int(sizes.max())
        plan, cache_hit = plan_potrf(
            dev, chunk_batch, chunk_max, options, approach, plan_cache
        )
        start = dev.synchronize()
        try:
            exec_stats = PlanExecutor(dev).execute(plan)
            elapsed = dev.synchronize() - start
            stats = stats_from_execution(plan, exec_stats, cache_hit)
            if dev.execute_numerics:
                infos = chunk_batch.download_infos()
                for local, j in enumerate(idx):
                    batch.matrix_view(int(j))[...] = chunk_batch.matrix_view(local)
            else:
                infos = np.zeros(idx.size, dtype=np.int64)
        finally:
            # Ownership mirrors run_potrf_sharded: an uncached plan and
            # its chunk batch die here; a cached plan bound to this
            # chunk batch adopts it so eviction frees the memory.
            if plan_cache is None:
                plan.close()
                chunk_batch.free()
            elif plan.batch_ref is not chunk_batch:
                chunk_batch.free()
            else:
                plan.owns_batch = True
        return ChunkRun(
            member=self.name,
            kind="gpu",
            approach=approach,
            count=int(idx.size),
            max_n=chunk_max,
            flops=_flops.batch_flops(sizes, "potrf", prec),
            start=start,
            elapsed=elapsed,
            stolen=stolen,
            infos=infos,
            launch_stats=stats,
        )

    # -- clock ----------------------------------------------------------
    def now(self) -> float:
        """Peek the host clock without draining (safe concurrently with
        a dispatch in flight; chunk boundaries synchronize anyway)."""
        return self.device.host_time

    def synchronize(self) -> float:
        return self.device.synchronize()

    def reset_clock(self) -> None:
        self.device.reset_clock()


# ----------------------------------------------------------------------
# CPU member
# ----------------------------------------------------------------------


class CpuMember(ComputeMember):
    """The :mod:`repro.cpu` one-core-per-matrix model as a member.

    Scheduling and timing are exactly the paper's §IV-F CPU baseline
    (per-matrix MKL task times under contention, dynamic work-queue
    dispatch onto cores), so :meth:`estimate_cost` *is* the executed
    model — the estimate and the chunk makespan agree to the bit.  The
    functional plane is the host-BLAS blocked Cholesky
    (:func:`repro.hostblas.potrf`), one matrix at a time, exactly what
    a core would run.
    """

    kind = "cpu"

    def __init__(
        self,
        spec=None,
        *,
        cores: int | None = None,
        mkl=None,
        scheduling: str = "dynamic",
        dispatch_overhead: float = 0.5e-6,
        contention_cores: int | None = None,
        name: str = "cpu0",
    ):
        from ..cpu import CoreScheduler, MklModel, SANDY_BRIDGE_2X8

        self.spec = spec if spec is not None else SANDY_BRIDGE_2X8
        if cores is not None and not 1 <= int(cores) <= self.spec.total_cores:
            raise ArgumentError(
                3,
                f"cores must be in [1, {self.spec.total_cores}], got {cores}",
            )
        self.cores = int(cores) if cores is not None else self.spec.total_cores
        self.mkl = mkl if mkl is not None else MklModel(self.spec)
        if scheduling not in ("static", "dynamic"):
            raise ArgumentError(
                4, f"scheduling must be 'static' or 'dynamic', got {scheduling!r}"
            )
        self.scheduling = scheduling
        self.scheduler = CoreScheduler(self.spec, dispatch_overhead=dispatch_overhead)
        #: ``None`` models contention by the cores a bucket actually
        #: occupies (min(cores, batch)); an int pins the active-core
        #: count — the §IV-F baseline charges full-machine contention
        #: regardless of batch size, and reuses this knob.
        self.contention_cores = None if contention_cores is None else int(contention_cores)
        self.name = str(name)
        self._clock = 0.0

    def capabilities(self) -> MemberCapabilities:
        info = precision_info(Precision.D)
        return MemberCapabilities(
            kind="cpu",
            name=self.name,
            peak_gflops_fp64=self.spec.peak_flops_per_core(info) * self.cores / 1e9,
            parallel_lanes=self.cores,
            executes_numerics=True,
        )

    # -- cost model -----------------------------------------------------
    def task_times(self, sizes, precision) -> np.ndarray:
        """Per-matrix single-core durations under full contention."""
        sizes = np.asarray(sizes, dtype=np.int64)
        prec = Precision(precision)
        if self.contention_cores is not None:
            active = self.contention_cores
        else:
            active = max(1, min(self.cores, sizes.size))
        return np.fromiter(
            (self.mkl.contended_potrf_time(int(n), prec, active) for n in sizes),
            dtype=np.float64,
            count=sizes.size,
        )

    def schedule(self, sizes, precision):
        """Schedule one bucket onto the cores; returns a CpuRunResult."""
        return self.scheduler.run(
            self.task_times(sizes, precision), self.scheduling, cores=self.cores
        )

    def estimate_cost(self, sizes, precision, approach: str = "auto") -> float:
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.size == 0:
            return 0.0
        return float(self.schedule(sizes, precision).makespan)

    def choose_approach(self, sizes, precision, options) -> str:
        """The CPU has one execution strategy; placement records it."""
        return "cpu-percore"

    def panel_time(self, jb: int, panel_flops: float, precision) -> float:
        """Single-core time for one hybrid panel (potf2 + trsm).

        The MAGMA-hybrid baseline's CPU leg: a lone panel runs at the
        sequential MKL rate for its width plus one library-call
        overhead.  Kept here so :mod:`repro.baselines.hybrid` models
        its CPU through the member protocol.
        """
        prec = Precision(precision)
        rate = self.mkl.sequential_rate(max(int(jb), 8), prec)
        return panel_flops / rate + self.mkl.constants.call_overhead

    # -- execution ------------------------------------------------------
    def run_chunk(
        self,
        batch,
        idx: np.ndarray,
        options,
        plan_cache=None,
        approach: str | None = None,
        stolen: bool = False,
    ) -> ChunkRun:
        from ..hostblas import potrf as host_potrf

        idx = np.asarray(idx, dtype=np.int64)
        sizes = batch.sizes_host[idx]
        prec = batch.precision
        run = self.schedule(sizes, prec)
        start = self._clock
        self._clock += run.makespan
        infos = np.zeros(idx.size, dtype=np.int64)
        if batch.device.execute_numerics:
            for local, j in enumerate(idx):
                infos[local] = host_potrf(batch.matrix_view(int(j)), "l")
        return ChunkRun(
            member=self.name,
            kind="cpu",
            approach="cpu-percore",
            count=int(idx.size),
            max_n=int(sizes.max()),
            flops=_flops.batch_flops(sizes, "potrf", prec),
            start=start,
            elapsed=run.makespan,
            stolen=stolen,
            infos=infos,
            launch_stats=None,
        )

    # -- clock ----------------------------------------------------------
    def advance(self, seconds: float) -> None:
        """Charge host-driven CPU work (e.g. hybrid panels) to the clock."""
        self._clock += float(seconds)

    def synchronize(self) -> float:
        return self._clock

    def reset_clock(self) -> None:
        self._clock = 0.0
