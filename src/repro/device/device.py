"""The simulated accelerator: launch, memory, transfers, timing.

``Device`` glues the pieces together.  A kernel launch:

1. pays the host-side launch overhead (launches pipeline: the host can
   run ahead of the device);
2. resolves occupancy for the kernel's :class:`LaunchConfig`;
3. converts each :class:`BlockWork` into a duration via the calibrated
   cost model (`_block_duration`);
4. schedules the blocks onto SM slots (`BlockScheduler`) for the
   kernel's standalone makespan;
5. serializes against the device-wide SM *area* so concurrent streams
   share the machine instead of overlapping for free;
6. optionally executes the kernel's NumPy numerics.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..types import precision_info
from .calibration import Calibration, K40C_CALIBRATION
from .clock import Timeline
from .kernel import BlockWork, Kernel
from .memory import DeviceArray, GlobalMemory
from .pool import WorkspacePool
from .scheduler import BlockScheduler, ScheduleResult
from .spec import DeviceSpec, K40C, Occupancy
from .stream import Stream

__all__ = ["Device", "LaunchRecord"]

_device_names = itertools.count()


class LaunchRecord:
    """Bookkeeping for one kernel launch (inspection and tests)."""

    __slots__ = ("kernel_name", "start", "end", "schedule", "occupancy", "blocks")

    def __init__(
        self,
        kernel_name: str,
        start: float,
        end: float,
        schedule: ScheduleResult,
        occupancy: Occupancy,
        blocks: int,
    ):
        self.kernel_name = kernel_name
        self.start = start
        self.end = end
        self.schedule = schedule
        self.occupancy = occupancy
        self.blocks = blocks

    @property
    def duration(self) -> float:
        return self.end - self.start


class Device:
    """A simulated GPU with calibrated performance behaviour.

    Parameters
    ----------
    spec:
        Hardware description (default: the paper's Tesla K40c).
    calibration:
        Cost-model constants (default: K40c calibration).
    execute_numerics:
        When False, kernels skip their functional plane.  Timing is
        unaffected (the cost model never reads matrix values), which
        lets the figure sweeps run orders of magnitude faster.
    exact_threshold:
        Grid-size cutoff between exact and analytic block scheduling.
    name:
        Label for trace tracks and reports (default ``devN``, N from a
        process-wide counter).  Purely cosmetic: never read by the cost
        model.
    """

    def __init__(
        self,
        spec: DeviceSpec = K40C,
        calibration: Calibration = K40C_CALIBRATION,
        execute_numerics: bool = True,
        exact_threshold: int = 50_000,
        name: str | None = None,
    ):
        self.name = f"dev{next(_device_names)}" if name is None else str(name)
        self.spec = spec
        self.calibration = calibration
        self.execute_numerics = execute_numerics
        self.memory = GlobalMemory(spec.global_mem_bytes)
        self.pool = WorkspacePool(self.memory)
        self.scheduler = BlockScheduler(exact_threshold)
        self.timeline = Timeline()
        self.host_time = 0.0
        self._sm_area_free_at = 0.0
        self._stream_ids = itertools.count(1)
        self.default_stream = Stream(self, 0)
        self.launches: list[LaunchRecord] = []

    # ------------------------------------------------------------------
    # time management
    # ------------------------------------------------------------------
    def _host_wait(self, until: float) -> None:
        self.host_time = max(self.host_time, until)

    def synchronize(self) -> float:
        """Drain all streams; returns the simulated wall-clock time."""
        self._host_wait(self.default_stream.ready_time)
        self._host_wait(self._sm_area_free_at)
        self._host_wait(self.timeline.now)
        return self.host_time

    def elapsed(self) -> float:
        """Current simulated time (after an implicit synchronize)."""
        return self.synchronize()

    def reset_clock(self) -> None:
        """Zero all timing state (a new experiment on a warm device)."""
        self.timeline.reset()
        self.host_time = 0.0
        self._sm_area_free_at = 0.0
        self.default_stream.ready_time = 0.0
        self.launches.clear()

    def create_stream(self) -> Stream:
        return Stream(self, next(self._stream_ids))

    # ------------------------------------------------------------------
    # memory and transfers
    # ------------------------------------------------------------------
    def alloc(self, shape, dtype) -> DeviceArray:
        return self.memory.alloc(shape, dtype)

    def upload(self, host_array: np.ndarray, stream: Stream | None = None) -> DeviceArray:
        """Allocate and copy host -> device, charging PCIe time."""
        dev = self.alloc(host_array.shape, host_array.dtype)
        if self.execute_numerics:
            # Skip materializing the zero payload just to overwrite it.
            dev.data = host_array.copy()
        self._transfer(host_array.nbytes, "memcpy_h2d", stream)
        return dev

    def download(self, dev: DeviceArray, stream: Stream | None = None) -> np.ndarray:
        """Copy device -> host, charging PCIe time."""
        self._transfer(dev.nbytes, "memcpy_d2h", stream)
        return dev.data.copy()

    def _transfer(self, nbytes: int, category: str, stream: Stream | None) -> None:
        stream = stream or self.default_stream
        chunks = max(1, math.ceil(nbytes / self.calibration.max_transfer_chunk))
        duration = nbytes / self.spec.pcie_bandwidth + chunks * self.spec.pcie_latency
        start = max(self.host_time, stream.ready_time)
        stream.ready_time = start + duration
        self.timeline.record(start, stream.ready_time, category, utilization=0.0)

    # ------------------------------------------------------------------
    # kernel launch
    # ------------------------------------------------------------------
    def launch(
        self, kernel: Kernel, stream: Stream | None = None,
        run_numerics: bool | None = None,
    ) -> LaunchRecord:
        """Launch a kernel asynchronously on ``stream`` (default stream).

        ``run_numerics=False`` commits the launch to the simulated clock
        but defers the functional plane to the caller (the plan
        executor's thread-pool path runs ``kernel.run_numerics()``
        itself); ``None`` follows ``self.execute_numerics``.
        """
        stream = stream or self.default_stream
        cached = getattr(kernel, "_schedule_cache", None)
        if cached is not None and cached[0] is self and cached[1] is self.calibration:
            occ, schedule, total_blocks = cached[2], cached[3], cached[4]
        else:
            occ, schedule, total_blocks = self.prepare_launch(kernel)

        # Host-side issue cost; the host then runs ahead (async launch).
        issue_done = self.host_time + self.spec.kernel_launch_overhead
        self.host_time = issue_done

        # In-order within the stream; across streams, execution may
        # overlap but the total SM area (block-seconds / slots) is a
        # shared resource, so heavy concurrent work serializes.
        start = max(issue_done, stream.ready_time, )
        area_time = schedule.total_block_time / max(1, occ.concurrent_blocks)
        area_start = max(start, self._sm_area_free_at)
        self._sm_area_free_at = area_start + area_time
        end = max(start + schedule.makespan, self._sm_area_free_at)
        stream.ready_time = end

        self.timeline.record(start, end, f"kernel:{kernel.name}", schedule.utilization)
        record = LaunchRecord(kernel.name, start, end, schedule, occ, total_blocks)
        self.launches.append(record)

        if self.execute_numerics and run_numerics is not False:
            kernel.run_numerics()
        return record

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def prepare_launch(self, kernel: Kernel):
        """Resolve a launch's cost-model inputs without touching clocks.

        Returns ``(occupancy, schedule, total_blocks)`` — everything
        :meth:`launch` needs besides the live stream state.  Pure with
        respect to device time, so the plan optimizer can evaluate (and
        cache) it at plan time; ``kernel._schedule_cache`` holds
        ``(device, calibration, occ, schedule, total_blocks)`` and is
        honoured by :meth:`launch` while device and calibration are
        unchanged.
        """
        config = kernel.launch_config()
        occ = self.spec.occupancy(
            config.threads_per_block,
            config.shared_mem_per_block,
            config.regs_per_thread,
        )
        info = precision_info(kernel.precision)
        works = kernel.block_works()
        counts = np.fromiter((w.count for w in works), dtype=np.int64, count=len(works))
        total_blocks = int(counts.sum())
        durations = self._block_durations(works, occ, info, kernel, config, total_blocks)
        schedule = self.scheduler.makespan(durations, counts, occ.concurrent_blocks)
        return occ, schedule, total_blocks
    def _block_durations(
        self,
        works: list[BlockWork],
        occ: Occupancy,
        info,
        kernel: Kernel,
        config,
        total_blocks: int,
    ) -> np.ndarray:
        """Vectorized `_block_duration` over a launch's work groups.

        Evaluates the identical expression tree elementwise, so each
        entry matches the scalar path bit-for-bit.
        """
        cal = self.calibration
        n = len(works)
        threads_per_block = config.threads_per_block
        flops = np.empty(n)
        bytes_ = np.empty(n)
        serial = np.empty(n)
        active = np.empty(n)
        for i, w in enumerate(works):
            flops[i] = w.flops
            bytes_[i] = w.bytes
            serial[i] = w.serial_iters
            a = w.active_threads
            active[i] = threads_per_block if a is None else min(a, threads_per_block)
        terminated = active == 0.0

        warp = self.spec.warp_size
        # Clamped to one warp for terminated groups to keep the shared
        # expressions finite; those entries are overwritten at the end.
        live_warps = np.maximum(np.ceil(active / warp), 1.0)

        latency_eff = min(
            1.0, occ.resident_warps_per_sm * config.ilp / cal.full_throughput_warps
        )
        sm_share_rate = (
            self.spec.peak_flops_per_sm(info)
            * cal.issue_efficiency
            * kernel.compute_efficiency
            * latency_eff
            / occ.blocks_per_sm
        )
        warp_issue_rate = (
            live_warps * warp * 2.0 * self.spec.clock_hz
            * cal.issue_efficiency * kernel.compute_efficiency
        )
        compute_rate = np.minimum(sm_share_rate, warp_issue_rate)
        sharers = max(1, min(occ.concurrent_blocks, total_blocks))
        mem_rate = np.minimum(
            self.spec.global_mem_bandwidth * cal.mem_efficiency / sharers,
            live_warps * cal.warp_mem_bandwidth * config.ilp,
        )
        base = np.maximum(flops / compute_rate, bytes_ / mem_rate)

        lane_capacity = live_warps * warp
        sub_idle = (lane_capacity - active) / lane_capacity
        base *= 1.0 + cal.intra_warp_divergence_penalty * sub_idle
        if kernel.etm_mode == "classic":
            total_warps = -(-threads_per_block // warp)
            idle_warp_frac = (total_warps - live_warps) / total_warps
            base *= 1.0 + cal.classic_idle_warp_penalty * idle_warp_frac

        arith = cal.serial_fp64_scale if info.uses_fp64_units else 1.0
        per_iter = cal.serial_op_latency * (arith + (kernel.serial_latency_scale - 1.0))
        out = base + serial * per_iter + cal.block_start_overhead
        out[terminated] = cal.etm_terminate_overhead
        return out

    def _block_duration(
        self,
        work: BlockWork,
        occ: Occupancy,
        info,
        kernel: Kernel,
        config,
        total_blocks: int,
    ) -> float:
        """Duration of one thread block under the calibrated model."""
        cal = self.calibration
        if work.terminated:
            return cal.etm_terminate_overhead

        warp = self.spec.warp_size
        threads_per_block = config.threads_per_block
        active = (
            threads_per_block if work.active_threads is None else min(work.active_threads, threads_per_block)
        )
        live_warps = -(-active // warp)

        # Latency hiding: throughput scales with resident warps (times
        # the kernel's per-warp ILP) until the pipeline is saturated.
        latency_eff = min(
            1.0, occ.resident_warps_per_sm * config.ilp / cal.full_throughput_warps
        )
        sm_share_rate = (
            self.spec.peak_flops_per_sm(info)
            * cal.issue_efficiency
            * kernel.compute_efficiency
            * latency_eff
            / occ.blocks_per_sm
        )
        # A block can never issue faster than its live warps' lanes: a
        # one-warp block on an otherwise-empty SM still computes at one
        # warp's width.  This is the under-occupancy penalty that makes
        # mixed-size launches slow and implicit sorting worthwhile.
        warp_issue_rate = (
            live_warps * warp * 2.0 * self.spec.clock_hz
            * cal.issue_efficiency * kernel.compute_efficiency
        )
        compute_rate = min(sm_share_rate, warp_issue_rate)
        # DRAM bandwidth is shared by however many blocks actually run
        # concurrently (a one-block kernel gets the whole bus), and a
        # block's own pull is capped by its live warps' outstanding
        # loads.
        sharers = max(1, min(occ.concurrent_blocks, total_blocks))
        mem_rate = min(
            self.spec.global_mem_bandwidth * cal.mem_efficiency / sharers,
            live_warps * cal.warp_mem_bandwidth * config.ilp,
        )
        base = max(work.flops / compute_rate, work.bytes / mem_rate)

        # Sub-warp idle lanes ride along in lockstep under EITHER ETM
        # mode (a warp executes all 32 lanes regardless).
        lane_capacity = live_warps * warp
        sub_idle = (lane_capacity - active) / lane_capacity
        base *= 1.0 + cal.intra_warp_divergence_penalty * sub_idle
        if kernel.etm_mode == "classic":
            # Classic additionally keeps whole idle warps resident:
            # they share issue slots and barriers with the live ones.
            # Layered on top of the lockstep penalty, so classic can
            # never be cheaper than aggressive for the same work.
            total_warps = -(-threads_per_block // warp)
            idle_warp_frac = (total_warps - live_warps) / total_warps
            base *= 1.0 + cal.classic_idle_warp_penalty * idle_warp_frac

        # Serial chain: the arithmetic part (sqrt/divide) is slower in
        # 64-bit; the memory-round-trip part a kernel adds on top of it
        # (serial_latency_scale > 1) is DRAM latency — precision-free.
        arith = cal.serial_fp64_scale if info.uses_fp64_units else 1.0
        per_iter = cal.serial_op_latency * (arith + (kernel.serial_latency_scale - 1.0))
        return base + work.serial_iters * per_iter + cal.block_start_overhead
