"""Calibrated cost-model constants for the simulated device.

Every constant is a *mechanism parameter*, not a per-figure fudge: the
same calibration drives all eight figure reproductions.  Values were
chosen from published K40c microbenchmarks (achievable bandwidth,
launch/termination overheads) and then adjusted once so the fixed-size
fused-vs-separated speedup (paper Fig 4) lands in the reported 13x/7x
range; everything else (Figs 5-10) is emergent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Calibration", "K40C_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """Tunable efficiency and overhead constants of the device model.

    Attributes
    ----------
    issue_efficiency:
        Fraction of a fully-occupied SM's peak a hand-tuned dense kernel
        sustains (instruction mix, bank conflicts, pointer arithmetic).
    mem_efficiency:
        Achievable fraction of theoretical DRAM bandwidth (ECC on; the
        K40c sustains ~75% in STREAM-like kernels).
    full_throughput_warps:
        Resident warps per SM needed to fully hide pipeline and memory
        latency; fewer resident warps scale efficiency down linearly.
        (Kepler needs roughly 32 of its 64 warp slots busy.)
    block_start_overhead:
        Fixed cost per scheduled thread block (dispatch + prologue +
        epilogue), in seconds.
    etm_terminate_overhead:
        Cost of a block that exits via an early-termination mechanism
        right after launch (it still must be dispatched), in seconds.
    classic_idle_warp_penalty:
        ETM-classic keeps idle warps resident; live-warp work is slowed
        by this fraction of the idle-warp share (issue slots and
        barriers are shared with warps that do nothing).
    intra_warp_divergence_penalty:
        Sub-warp idleness (threads, not whole warps) costs both ETM
        modes this fraction of the idle-thread share: the warp still
        executes in lockstep.
    serial_op_latency:
        Latency in seconds of one dependent serial iteration (the
        sqrt/divide chain in a potf2 column step) when operands live in
        shared memory; models the non-throughput-bound portion of tiny
        factorizations.  Kernels whose serial chain round-trips through
        global memory scale this with ``Kernel.serial_latency_scale``.
    serial_fp64_scale:
        Extra latency of 64-bit sqrt/divide chains relative to 32-bit
        ones (Kepler's DP special-function path is markedly slower).
    warp_mem_bandwidth:
        Peak DRAM bandwidth one live warp can pull (bytes/s), limited by
        outstanding-load slots and memory latency.  A block keeps at
        most ``live_warps * warp_mem_bandwidth``; launches whose blocks
        hold few live warps at low occupancy therefore waste the bus —
        the memory-side reason implicit sorting pays off.
    max_transfer_chunk:
        Granularity of modeled PCIe transfers in bytes (pinned-buffer
        staging), used by the hybrid baseline.
    """

    issue_efficiency: float = 0.38
    mem_efficiency: float = 0.52
    full_throughput_warps: int = 32
    block_start_overhead: float = 0.60e-6
    etm_terminate_overhead: float = 0.50e-6
    classic_idle_warp_penalty: float = 0.85
    intra_warp_divergence_penalty: float = 1.0
    serial_op_latency: float = 0.05e-6
    serial_fp64_scale: float = 1.8
    warp_mem_bandwidth: float = 3.5e9
    max_transfer_chunk: int = 1 << 22

    def with_overrides(self, **kwargs) -> Calibration:
        """Return a copy with some constants replaced (for ablations)."""
        return replace(self, **kwargs)


K40C_CALIBRATION = Calibration()
