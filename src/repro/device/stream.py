"""CUDA-stream analogue: in-order queues that overlap across streams."""

from __future__ import annotations

from ..errors import StreamError

__all__ = ["Stream", "Event"]


class Stream:
    """An in-order execution queue on the simulated device.

    Work items in one stream serialize; items in different streams may
    overlap, subject to the device-wide SM-area constraint enforced by
    :class:`~repro.device.device.Device`.
    """

    __slots__ = ("device", "stream_id", "ready_time")

    def __init__(self, device, stream_id: int):
        self.device = device
        self.stream_id = stream_id
        self.ready_time = 0.0

    def synchronize(self) -> float:
        """Block the simulated host until this stream drains."""
        self.device._host_wait(self.ready_time)
        return self.ready_time

    def record_event(self) -> Event:
        """Capture the stream's current completion frontier."""
        return Event(self, self.ready_time)

    def wait_event(self, event: "Event") -> None:
        """Make subsequent work in this stream wait for ``event``."""
        if event.timestamp is None:
            raise StreamError("cannot wait on an unrecorded event")
        self.ready_time = max(self.ready_time, event.timestamp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream(id={self.stream_id}, ready={self.ready_time:.3e})"


class Event:
    """A recorded point in a stream's timeline (cudaEvent analogue)."""

    __slots__ = ("stream", "timestamp")

    def __init__(self, stream: Stream, timestamp: float | None):
        self.stream = stream
        self.timestamp = timestamp

    def elapsed_since(self, earlier: "Event") -> float:
        """Seconds between two recorded events (cudaEventElapsedTime)."""
        if self.timestamp is None or earlier.timestamp is None:
            raise StreamError("both events must be recorded")
        return self.timestamp - earlier.timestamp
