"""Static device description and the occupancy calculator.

The numbers in :data:`K40C` are the published Tesla K40c (Kepler GK110B)
figures the paper's testbed used: 15 SMX units at 745 MHz, 192 FP32 and
64 FP64 lanes per SMX, 48 KB shared memory per SMX, 12 GB of GDDR5 at a
288 GB/s theoretical bandwidth, and the usual Kepler occupancy limits
(16 blocks / 2048 threads / 64 warps / 65536 registers per SMX).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LaunchError
from ..types import PrecisionInfo

__all__ = ["DeviceSpec", "Occupancy", "K40C", "K20X", "TITAN_BLACK"]


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy for one launch configuration.

    Attributes
    ----------
    blocks_per_sm:
        Resident thread blocks each SM can host for this launch.
    concurrent_blocks:
        Device-wide block slots (``blocks_per_sm * num_sms``).
    resident_warps_per_sm:
        Warps resident per SM; drives the latency-hiding efficiency.
    limiter:
        Which resource bound the occupancy ("blocks", "threads",
        "shared_mem", "registers") — useful for tuning reports.
    """

    blocks_per_sm: int
    concurrent_blocks: int
    resident_warps_per_sm: int
    limiter: str


@dataclass(frozen=True)
class DeviceSpec:
    """Immutable hardware description of a simulated accelerator."""

    name: str
    num_sms: int
    clock_hz: float
    fp32_lanes_per_sm: int
    fp64_lanes_per_sm: int
    warp_size: int
    max_threads_per_block: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    max_warps_per_sm: int
    shared_mem_per_sm: int
    shared_mem_per_block: int
    registers_per_sm: int
    max_registers_per_thread: int
    global_mem_bytes: int
    global_mem_bandwidth: float  # bytes/s, theoretical peak
    pcie_bandwidth: float  # bytes/s, effective per direction
    pcie_latency: float  # seconds per transfer
    kernel_launch_overhead: float  # seconds per kernel launch
    #: Independent hardware work queues (Kepler Hyper-Q exposes 32).
    #: Bounds how many streams the plan optimizer spreads launches over
    #: and how many worker threads the executor uses for numerics.
    hardware_queues: int = 32

    def peak_flops(self, info: PrecisionInfo) -> float:
        """Peak arithmetic rate for a precision (FMA counted as 2 flops).

        Complex arithmetic runs on the same real pipelines, so the peak
        in *weighted* flops (see :class:`~repro.types.PrecisionInfo`)
        equals the corresponding real peak.
        """
        lanes = self.fp64_lanes_per_sm if info.uses_fp64_units else self.fp32_lanes_per_sm
        return self.num_sms * lanes * 2.0 * self.clock_hz

    def peak_flops_per_sm(self, info: PrecisionInfo) -> float:
        return self.peak_flops(info) / self.num_sms

    def occupancy(
        self,
        threads_per_block: int,
        shared_mem_per_block: int = 0,
        regs_per_thread: int = 32,
    ) -> Occupancy:
        """Blocks-per-SM for a launch configuration (CUDA occupancy rules).

        Raises :class:`LaunchError` when a *single* block already
        violates a per-block limit — the same configurations a real
        ``cudaLaunchKernel`` would reject.
        """
        if threads_per_block <= 0:
            raise LaunchError(f"threads_per_block must be positive, got {threads_per_block}")
        if threads_per_block > self.max_threads_per_block:
            raise LaunchError(
                f"{threads_per_block} threads/block exceeds device limit "
                f"{self.max_threads_per_block}"
            )
        if shared_mem_per_block > self.shared_mem_per_block:
            raise LaunchError(
                f"{shared_mem_per_block} B shared memory/block exceeds device "
                f"limit {self.shared_mem_per_block}"
            )
        if regs_per_thread <= 0 or regs_per_thread > self.max_registers_per_thread:
            raise LaunchError(
                f"regs_per_thread must be in [1, {self.max_registers_per_thread}], "
                f"got {regs_per_thread}"
            )

        warps_per_block = -(-threads_per_block // self.warp_size)
        candidates = {
            "blocks": self.max_blocks_per_sm,
            "threads": self.max_threads_per_sm // threads_per_block,
            "warps": self.max_warps_per_sm // warps_per_block,
            "registers": self.registers_per_sm // (regs_per_thread * threads_per_block),
        }
        if shared_mem_per_block > 0:
            candidates["shared_mem"] = self.shared_mem_per_sm // shared_mem_per_block
        limiter, blocks = min(candidates.items(), key=lambda kv: kv[1])
        blocks = max(blocks, 0)
        if blocks == 0:
            raise LaunchError(
                f"launch config fits zero blocks per SM (limited by {limiter})"
            )
        return Occupancy(
            blocks_per_sm=blocks,
            concurrent_blocks=blocks * self.num_sms,
            resident_warps_per_sm=blocks * warps_per_block,
            limiter=limiter,
        )


# Sibling Kepler-generation boards for portability/sensitivity studies
# (the framework itself is device-agnostic; only the spec changes).

K20X = DeviceSpec(
    name="Tesla K20X (simulated)",
    num_sms=14,
    clock_hz=732.0e6,
    fp32_lanes_per_sm=192,
    fp64_lanes_per_sm=64,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    max_warps_per_sm=64,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    global_mem_bytes=6 * 1024**3,
    global_mem_bandwidth=250.0e9,
    pcie_bandwidth=10.0e9,
    pcie_latency=10.0e-6,
    kernel_launch_overhead=5.0e-6,
)

TITAN_BLACK = DeviceSpec(
    name="GTX Titan Black (simulated)",
    num_sms=15,
    clock_hz=889.0e6,
    fp32_lanes_per_sm=192,
    fp64_lanes_per_sm=64,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    max_warps_per_sm=64,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    global_mem_bytes=6 * 1024**3,
    global_mem_bandwidth=336.0e9,
    pcie_bandwidth=10.0e9,
    pcie_latency=10.0e-6,
    kernel_launch_overhead=5.0e-6,
)

K40C = DeviceSpec(
    name="Tesla K40c (simulated)",
    num_sms=15,
    clock_hz=745.0e6,
    fp32_lanes_per_sm=192,
    fp64_lanes_per_sm=64,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    max_warps_per_sm=64,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    global_mem_bytes=12 * 1024**3,
    global_mem_bandwidth=288.0e9,
    pcie_bandwidth=10.0e9,
    pcie_latency=10.0e-6,
    kernel_launch_overhead=5.0e-6,
)
