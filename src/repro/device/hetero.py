"""Heterogeneous device groups: cost-driven placement + work-stealing.

:class:`~repro.device.topology.DeviceGroup` shards one batch across
*identical* simulated GPUs with a single global planner approach — and
BENCH_pr2 shows why that stalls at ~2.15x on 8 devices: every
flops-balanced shard keeps a near-``max_n`` matrix, so every shard pays
the global step count.  :class:`HeteroGroup` replaces both assumptions:

* **members, not devices** — anything implementing
  :class:`~repro.device.member.ComputeMember` (unequal GPU specs, the
  CPU core model) coexists in one group;
* **size-stratified chunks** — the batch is cut along the sorted-size
  axis into ``chunks_per_member x len(members)`` strata, so most chunks
  have a *small* ``max_n`` and a short step count;
* **calibrated placement** — each chunk goes to the member minimizing
  its predicted finish time (member's projected clock + that member's
  cost estimate for the chunk), and each member picks its own planner
  approach per chunk (fused for many-small, separated for few-large);
* **work-stealing at chunk boundaries** — the virtual-time execution
  loop lets an idle member steal the tail chunk of the most-backlogged
  member's queue whenever that finishes the work earlier than the
  victim would.

Every decision is recorded: a ``hetero-place`` trace span carries the
chunk->member assignment with cost estimates, each executed chunk gets
a ``hetero-chunk`` span on the member's track, steals emit instants,
and :func:`run_potrf_hetero` returns per-member
:class:`~repro.device.executor.MemberStats` plus the placement table on
the :class:`~repro.core.driver.PotrfResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import flops as _flops
from ..errors import ArgumentError
from ..observability.trace import Track, current_tracer
from .calibration import K40C_CALIBRATION
from .device import Device
from .member import ComputeMember, CpuMember, GpuMember
from .spec import DeviceSpec, K20X, K40C, TITAN_BLACK

__all__ = [
    "HeteroGroup",
    "parse_members",
    "run_potrf_hetero",
]

#: Chunking policies a :class:`HeteroGroup` accepts — the same
#: sorted-order stratifiers as :func:`repro.device.topology.partition_sizes`.
_PLACEMENTS = ("size-stratified", "step-aware")

#: GPU spec vocabulary for :func:`parse_members` member strings.
_GPU_SPECS: dict[str, DeviceSpec] = {
    "k40c": K40C,
    "k20x": K20X,
    "titan-black": TITAN_BLACK,
    "titanblack": TITAN_BLACK,
}


@dataclass
class _Chunk:
    """One stratum of the sorted batch, queued on a member."""

    ordinal: int
    idx: np.ndarray  # source-batch indices, ascending
    member: str
    approach: str
    est: float  # owner's predicted seconds
    alternatives: dict = field(default_factory=dict)  # member -> est


class HeteroGroup:
    """Compute members plus the placement policy that feeds them.

    ``placement`` picks the stratifier that cuts the sorted batch into
    chunks; ``chunks_per_member`` controls granularity — more chunks
    mean finer placement and stealing but more per-chunk fixed cost
    (each chunk re-pays the planner's step sequence for its own
    ``max_n``), so homogeneous groups run fastest at 1 while unequal
    groups want 2+ for the cost model to route around slow members;
    ``steal=False`` freezes the initial assignment (useful to measure
    what stealing buys).
    """

    def __init__(
        self,
        members,
        placement: str = "size-stratified",
        chunks_per_member: int = 2,
        steal: bool = True,
    ):
        members = list(members)
        if not members:
            raise ArgumentError(1, "hetero group needs at least one member")
        for m in members:
            if not isinstance(m, ComputeMember):
                raise ArgumentError(
                    1, f"hetero group members must be ComputeMembers, got {type(m).__name__}"
                )
        names = [m.name for m in members]
        if len(set(names)) != len(names):
            raise ArgumentError(1, f"duplicate member names in group: {sorted(names)}")
        if placement not in _PLACEMENTS:
            raise ArgumentError(
                2, f"unknown placement policy {placement!r} (use one of {_PLACEMENTS})"
            )
        if int(chunks_per_member) < 1:
            raise ArgumentError(
                3, f"chunks_per_member must be >= 1, got {chunks_per_member}"
            )
        self.members = members
        self.placement = placement
        self.chunks_per_member = int(chunks_per_member)
        self.steal = bool(steal)
        self._staging: Device | None = None

    @classmethod
    def simulated(
        cls,
        spec: str,
        *,
        execute_numerics: bool = True,
        placement: str = "size-stratified",
        chunks_per_member: int = 2,
        steal: bool = True,
        name_prefix: str = "",
    ) -> "HeteroGroup":
        """Build a group from a member spec string (see :func:`parse_members`)."""
        return cls(
            parse_members(
                spec, execute_numerics=execute_numerics, name_prefix=name_prefix
            ),
            placement=placement,
            chunks_per_member=chunks_per_member,
            steal=steal,
        )

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    @property
    def gpu_members(self) -> list[GpuMember]:
        return [m for m in self.members if m.kind == "gpu"]

    @property
    def cpu_members(self) -> list[CpuMember]:
        return [m for m in self.members if m.kind == "cpu"]

    @property
    def devices(self) -> list[Device]:
        """The simulated GPU devices in the group (may be empty)."""
        return [m.device for m in self.gpu_members]

    @property
    def staging_device(self) -> Device:
        """Device that hosts the source batch for serving callers.

        The first GPU member's device; an all-CPU group gets a
        dedicated staging device whose clock nothing here advances.
        """
        gpus = self.gpu_members
        if gpus:
            return gpus[0].device
        if self._staging is None:
            self._staging = Device(execute_numerics=True, name="hetero:staging")
        return self._staging

    def sim_now(self) -> float:
        """Latest member clock (no drain) — the serving loop's 'now'."""
        return max(m.now() for m in self.members)

    def synchronize(self) -> float:
        return max(m.synchronize() for m in self.members)

    def reset_clocks(self) -> None:
        for m in self.members:
            m.reset_clock()
        if self._staging is not None:
            self._staging.reset_clock()

    # -- placement ------------------------------------------------------
    def chunk_indices(self, sizes, precision) -> list[np.ndarray]:
        """Cut the batch into sorted-size strata (largest-first)."""
        from .topology import partition_sizes

        sizes = np.asarray(sizes, dtype=np.int64)
        n_chunks = max(1, min(sizes.size, self.chunks_per_member * len(self.members)))
        parts = partition_sizes(sizes, precision, n_chunks, self.placement)
        return [p for p in parts if p.size]

    def assign(self, sizes, precision, options) -> dict[str, list[_Chunk]]:
        """Greedy earliest-finish placement of every chunk.

        Chunks come largest-stratum-first; each lands on the member
        whose projected clock plus *its own* calibrated estimate for
        the chunk is smallest.  Member approach choice happens here
        too, so the decision record shows both where and how each
        bucket runs.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        queues: dict[str, list[_Chunk]] = {m.name: [] for m in self.members}
        projected = {m.name: 0.0 for m in self.members}
        for ordinal, idx in enumerate(self.chunk_indices(sizes, precision)):
            chunk_sizes = sizes[idx]
            bids = {}
            for m in self.members:
                approach = m.choose_approach(chunk_sizes, precision, options)
                est = m.estimate_cost(chunk_sizes, precision, approach)
                bids[m.name] = (approach, est)
            winner = min(
                self.members,
                key=lambda m: (projected[m.name] + bids[m.name][1], m.name),
            )
            approach, est = bids[winner.name]
            projected[winner.name] += est
            queues[winner.name].append(
                _Chunk(
                    ordinal=ordinal,
                    idx=idx,
                    member=winner.name,
                    approach=approach,
                    est=est,
                    alternatives={n: b[1] for n, b in bids.items()},
                )
            )
        return queues


def parse_members(
    spec: str, *, execute_numerics: bool = True, name_prefix: str = ""
) -> list[ComputeMember]:
    """Parse a ``--members`` spec string into compute members.

    Grammar: ``token(+token)*`` (``,`` also separates), where a token is
    ``NAME``, ``NAME*COUNT`` or ``cpu:CORES``.  GPU names: ``k40c``,
    ``k20x``, ``titan-black``.  Examples::

        "k40c*8"                 8 identical K40c members
        "k40c+k20x+cpu"          two unequal GPUs plus the 16-core CPU
        "k40c*2+cpu:8"           two K40c plus an 8-core CPU slice
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ArgumentError(4, f"empty member spec {spec!r}")
    members: list[ComputeMember] = []
    counters: dict[str, int] = {}
    for token in spec.replace(",", "+").split("+"):
        token = token.strip().lower()
        if not token:
            continue
        count = 1
        if "*" in token:
            token, _, count_s = token.partition("*")
            token = token.strip()
            try:
                count = int(count_s)
            except ValueError:
                raise ArgumentError(4, f"bad member count in {token!r}*{count_s!r}") from None
            if count < 1:
                raise ArgumentError(4, f"member count must be >= 1, got {count}")
        cores = None
        if token.startswith("cpu"):
            base, _, cores_s = token.partition(":")
            if base != "cpu":
                raise ArgumentError(4, f"unknown member {token!r}")
            if cores_s:
                try:
                    cores = int(cores_s)
                except ValueError:
                    raise ArgumentError(4, f"bad cpu core count {cores_s!r}") from None
            token = "cpu"
        elif token not in _GPU_SPECS:
            known = sorted(set(_GPU_SPECS)) + ["cpu", "cpu:CORES"]
            raise ArgumentError(4, f"unknown member {token!r} (use one of {known})")
        for _ in range(count):
            i = counters.get(token, 0)
            counters[token] = i + 1
            name = f"{name_prefix}{token}{i}"
            if token == "cpu":
                members.append(CpuMember(cores=cores, name=name))
            else:
                members.append(
                    GpuMember(
                        spec=_GPU_SPECS[token],
                        calibration=K40C_CALIBRATION,
                        execute_numerics=execute_numerics,
                        name=name,
                    )
                )
    if not members:
        raise ArgumentError(4, f"member spec {spec!r} names no members")
    return members


def run_potrf_hetero(
    group: HeteroGroup,
    batch,
    max_n: int,
    options,
    plan_cache=None,
):
    """Factorize ``batch`` across a heterogeneous group.

    Deterministic virtual-time loop: the member with the earliest clock
    runs (or steals) the next chunk; chunks execute one at a time per
    member with a synchronize at each boundary, so member clocks are
    real simulated finish times, not estimates.  Results gather back
    into the source batch exactly as the homogeneous sharded path does;
    ``elapsed`` is the slowest member's busy span (the group makespan).
    """
    from ..core.driver import LaunchStats, PotrfResult
    from .executor import MemberStats

    tracer = current_tracer()
    sizes = batch.sizes_host
    precision = batch.precision
    members = {m.name: m for m in group.members}
    base = {m.name: m.synchronize() for m in group.members}

    with tracer.span(
        "hetero-place",
        Track("hetero", "placer"),
        cat="hetero",
        args={"members": list(members), "batch": int(batch.batch_count),
              "placement": group.placement},
    ) as place_args:
        queues = group.assign(sizes, precision, options)
        placement = [
            {
                "chunk": c.ordinal,
                "member": c.member,
                "kind": members[c.member].kind,
                "approach": c.approach,
                "count": int(c.idx.size),
                "max_n": int(sizes[c.idx].max()),
                "est_s": float(c.est),
                "alternatives_s": {k: float(v) for k, v in c.alternatives.items()},
            }
            for q in queues.values()
            for c in q
        ]
        placement.sort(key=lambda d: d["chunk"])
        if tracer:
            place_args["chunks"] = len(placement)
            place_args["decisions"] = [
                {k: d[k] for k in ("chunk", "member", "approach", "count", "max_n", "est_s")}
                for d in placement
            ]

    def rel(name: str) -> float:
        return members[name].now() - base[name]

    def backlog(name: str) -> float:
        return sum(c.est for c in queues[name])

    merged = LaunchStats(devices_used=0)
    stats = {
        m.name: MemberStats(name=m.name, kind=m.kind) for m in group.members
    }
    infos = np.zeros(batch.batch_count, dtype=np.int64)
    steals = 0
    active = set(members)
    try:
        while active:
            name = min(active, key=lambda n: (rel(n), n))
            m = members[name]
            stolen = False
            if queues[name]:
                chunk = queues[name].pop(0)
            elif group.steal:
                victims = [v for v in members if v != name and queues[v]]
                if not victims:
                    active.discard(name)
                    continue
                victim = max(victims, key=lambda v: (backlog(v), v))
                cand = queues[victim][-1]
                cand_sizes = sizes[cand.idx]
                approach = m.choose_approach(cand_sizes, precision, options)
                est_here = m.estimate_cost(cand_sizes, precision, approach)
                # Steal only when the thief finishes the chunk before
                # the victim's whole backlog would have.
                if rel(name) + est_here >= rel(victim) + backlog(victim):
                    active.discard(name)
                    continue
                chunk = queues[victim].pop()
                chunk = _Chunk(
                    ordinal=chunk.ordinal,
                    idx=chunk.idx,
                    member=name,
                    approach=approach,
                    est=est_here,
                    alternatives=chunk.alternatives,
                )
                stolen = True
                steals += 1
                tracer.instant(
                    "hetero-steal",
                    Track("hetero", name),
                    cat="hetero",
                    args={"chunk": chunk.ordinal, "victim": victim,
                          "count": int(chunk.idx.size)},
                )
                # The returned table reflects what actually ran; the
                # hetero-place span keeps the pre-execution decisions.
                for d in placement:
                    if d["chunk"] == chunk.ordinal:
                        d["member"] = name
                        d["kind"] = m.kind
                        d["approach"] = approach
                        d["est_s"] = float(est_here)
                        d["stolen_from"] = victim
            else:
                active.discard(name)
                continue
            with tracer.span(
                "hetero-chunk",
                Track("hetero", name),
                cat="hetero",
                args={
                    "chunk": chunk.ordinal,
                    "count": int(chunk.idx.size),
                    "max_n": int(sizes[chunk.idx].max()),
                    "approach": chunk.approach,
                    "stolen": stolen,
                },
            ):
                run = m.run_chunk(
                    batch,
                    chunk.idx,
                    options,
                    plan_cache=plan_cache,
                    approach=chunk.approach,
                    stolen=stolen,
                )
            infos[chunk.idx] = run.infos
            stats[name].record(run)
            if run.launch_stats is not None:
                merged.merge(run.launch_stats)
            merged.chunks += 1
            merged.work_steals += int(stolen)
    except BaseException as exc:
        # Leave what completed on the error so a retrying caller (the
        # serving fleet) can account attempt-1 work exactly once.
        merged.devices_used = sum(1 for s in stats.values() if s.chunks)
        exc.partial_launch_stats = merged
        raise

    elapsed = 0.0
    for name, m in members.items():
        busy = m.synchronize() - base[name]
        stats[name].busy_s = busy
        if stats[name].chunks:
            elapsed = max(elapsed, busy)
    merged.devices_used = sum(1 for s in stats.values() if s.chunks)

    member_stats = [stats[m.name] for m in group.members]
    approaches = sorted({d["approach"] for d in placement})
    return PotrfResult(
        approach="hetero[" + "+".join(approaches) + "]",
        elapsed=elapsed,
        total_flops=_flops.batch_flops(sizes, "potrf", precision),
        infos=infos,
        launch_stats=merged,
        max_n=max_n,
        placement=placement,
        member_stats=member_stats,
    )
