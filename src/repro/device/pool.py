"""Workspace memory pool over the device allocator.

Batched drivers allocate and free per-step workspaces (trsm inverse
blocks, pivot tables, metadata vectors) thousands of times per sweep;
MAGMA amortizes this with a pooled allocator, and so do we.  Freed
blocks are binned by rounded-up size and handed back on the next
matching request instead of going through the device allocator again.

The pool *retains* capacity: ``used`` on the underlying
:class:`~repro.device.memory.GlobalMemory` stays charged for pooled
blocks until :meth:`trim` or :meth:`close`.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .memory import DeviceArray, GlobalMemory

__all__ = ["WorkspacePool"]


def _bin_bytes(nbytes: int) -> int:
    """Round a request up to its pool bin (next power of two, >= 256 B)."""
    size = 256
    while size < nbytes:
        size <<= 1
    return size


class _LazyPoolView:
    """Deferred zeroed view into a bin's backing buffer.

    The buffer itself is created on first access, so timing-only sweeps
    that request workspaces but never read them pay no zero-fill.
    """

    __slots__ = ("pool", "handle", "count", "shape")

    def __init__(self, pool: "WorkspacePool", handle: int, count: int, shape):
        self.pool = pool
        self.handle = handle
        self.count = count
        self.shape = shape

    def __call__(self) -> np.ndarray:
        base = self.pool._bases.get(self.handle)
        if base is None:
            nelems, dtype = self.pool._bins[self.handle]
            # Fresh zeros: the view needs no additional clearing.
            base = np.zeros(nelems, dtype=dtype)
            self.pool._bases[self.handle] = base
            return base[: self.count].reshape(self.shape)
        view = base[: self.count].reshape(self.shape)
        view[...] = 0
        return view


class WorkspacePool:
    """Size-binned free-list allocator on top of device global memory."""

    def __init__(self, memory: GlobalMemory):
        self.memory = memory
        self._free: dict[tuple[int, np.dtype], list[DeviceArray]] = defaultdict(list)
        self._bins: dict[int, tuple[int, np.dtype]] = {}  # handle -> (elems, dtype)
        self._bases: dict[int, np.ndarray] = {}  # handle -> materialized buffer
        self.hits = 0
        self.misses = 0

    def get(self, shape, dtype) -> DeviceArray:
        """Return a zeroed array of ``shape``; reuses a pooled block when
        one of the right bin and dtype is available."""
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        dtype = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64))
        nbytes = count * dtype.itemsize
        key = (_bin_bytes(max(nbytes, 1)), dtype)
        bucket = self._free[key]
        if bucket:
            self.hits += 1
            arr = bucket.pop()
        else:
            self.misses += 1
            # Allocate the whole bin so any same-bin request can reuse it.
            arr = self.memory.alloc((key[0] // dtype.itemsize,), dtype)
            self._bins[arr.handle] = (key[0] // dtype.itemsize, dtype)
        arr.set_producer(_LazyPoolView(self, arr.handle, count, shape), shape, dtype)
        return arr

    def release(self, arr: DeviceArray) -> None:
        """Return a block to the pool (it stays charged to the device)."""
        if arr.handle not in self._bins:
            raise ValueError("array was not allocated from this pool")
        dtype = self._bins[arr.handle][1]
        key = (_bin_bytes(max(arr.nbytes, 1)), dtype)
        self._free[key].append(arr)

    @property
    def pooled_blocks(self) -> int:
        return sum(len(v) for v in self._free.values())

    def trim(self) -> int:
        """Free every pooled block back to the device; returns the count."""
        n = 0
        for bucket in self._free.values():
            for arr in bucket:
                self._bins.pop(arr.handle, None)
                self._bases.pop(arr.handle, None)
                arr.free()
                n += 1
            bucket.clear()
        return n

    def close(self) -> None:
        self.trim()
