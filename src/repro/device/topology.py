"""Multi-device sharding: a device group and size-aware partitioners.

The paper runs on one K40c; BLASX-style runtimes show that lifting
batched work onto a task layer is what unlocks multi-GPU scaling.  With
the plan/execute split in place this layer is small: a
:class:`DeviceGroup` holds N simulated devices, a partitioner splits a
:class:`~repro.core.batch.VBatch`'s index space into per-device shards,
each shard gets its own launch plan, the plans execute *concurrently*
(every simulated device advances its own clock, so the group's elapsed
time is the slowest shard), and the shard results are merged back into
one :class:`~repro.core.driver.PotrfResult`.

Partition policies:

* ``"flops"`` — greedy LPT balance on per-matrix POTRF flops (default;
  the heterogeneous-batch analogue of BLASX's locality-aware queues),
* ``"round-robin"`` — index ``i`` to device ``i % N``,
* ``"contiguous"`` — contiguous index ranges with near-equal flops
  (preserves batch order within a shard),
* ``"size-stratified"`` — contiguous strata of the *sorted-by-size*
  order with near-equal flops: shard 0 takes the largest matrices,
  the last shard the smallest, so only one shard pays the global
  ``max_n`` step count (the others' step loops stop early),
* ``"step-aware"`` — strata of the sorted order cut to minimize a
  modeled shard makespan (flop term + per-step ``max_n`` overhead
  term), the fix for flops-balanced shards that are step-imbalanced.

Why stratify: BENCH_pr2 shows ``"flops"`` stalling at 2.15x on 8
devices — LPT gives *every* shard a near-``max_n`` matrix, so every
shard walks the full step count.  Keeping per-shard ``max_n`` low is
worth more than perfect flops balance.
"""

from __future__ import annotations

import numbers

import numpy as np

from .. import flops as _flops
from ..errors import ArgumentError
from ..observability.trace import Track, current_tracer
from .calibration import Calibration, K40C_CALIBRATION
from .device import Device
from .spec import DeviceSpec, K40C

__all__ = ["DeviceGroup", "partition_sizes", "run_potrf_sharded"]

_POLICIES = ("flops", "round-robin", "contiguous", "size-stratified", "step-aware")

#: Default step-aware shard-cost constants, fit against the simulated
#: K40c fused path on the fig3 workload: elapsed is dominated by a
#: per-step overhead proportional to the shard's ``max_n`` (one fused
#: step per factorization column block) plus a small per-row term,
#: with the flop term only mattering for large matrices.
_STEP_COST = 6.3e-6  # seconds per unit of shard max_n
_PER_ROW_COST = 4.3e-8  # seconds per unit of shard sum(n)
_FLOP_RATE = 5.0e11  # effective flops/s for the flop term


def _check_policy(policy: str) -> None:
    """One code, one message, for every unknown-policy complaint."""
    if policy not in _POLICIES:
        raise ArgumentError(
            2, f"unknown partition policy {policy!r} (use one of {_POLICIES})"
        )


def _default_shard_cost(shard_sizes: np.ndarray, shard_work: np.ndarray) -> float:
    """Modeled makespan of one shard (seconds) for ``"step-aware"``."""
    if shard_sizes.size == 0:
        return 0.0
    return (
        float(shard_work.sum()) / _FLOP_RATE
        + _STEP_COST * float(shard_sizes.max())
        + _PER_ROW_COST * float(shard_sizes.sum())
    )


def _stratified_pieces(order: np.ndarray, work: np.ndarray, n_shards: int) -> list[np.ndarray]:
    """Greedy equal-flops fill of the sorted order into contiguous strata.

    Walks ``order`` (sizes descending) handing each shard matrices until
    it holds its share (remaining work / remaining shards), while always
    leaving at least one matrix per unfilled shard so no shard in the
    middle comes out empty when there are enough matrices to go around.
    """
    count = order.size
    pieces: list[np.ndarray] = []
    start = 0
    for s in range(n_shards):
        left = n_shards - s
        remaining = count - start
        if remaining <= 0:
            pieces.append(np.empty(0, dtype=np.int64))
            continue
        if s == n_shards - 1:
            end = count
        elif remaining <= left:
            end = start + 1
        else:
            target = work[order[start:]].sum() / left
            max_end = count - (left - 1)
            end = start + 1
            acc = work[order[start]]
            while end < max_end and acc < target:
                acc += work[order[end]]
                end += 1
        pieces.append(order[start:end])
        start = end
    return pieces


def _step_aware_pieces(
    order: np.ndarray,
    sizes: np.ndarray,
    work: np.ndarray,
    n_shards: int,
    shard_cost,
) -> list[np.ndarray]:
    """Min-makespan strata of the sorted order, by binary search.

    For a candidate makespan ``T``, greedily pack the sorted order into
    shards whose modeled cost stays <= ``T``; feasible iff everything
    fits in ``n_shards`` shards.  The cost model is monotone in the
    shard contents, so bisecting ``T`` between the heaviest single
    matrix and the whole-batch cost finds the optimal greedy cut.
    """

    def cost(lo: int, hi: int) -> float:
        sl = sizes[order[lo:hi]]
        return shard_cost(sl, work[order[lo:hi]])

    def cut(T: float) -> list[tuple[int, int]] | None:
        bounds = []
        start = 0
        count = order.size
        while start < count:
            if len(bounds) == n_shards:
                return None
            end = start + 1
            while end < count and cost(start, end + 1) <= T:
                end += 1
            bounds.append((start, end))
            start = end
        return bounds

    lo = max(cost(i, i + 1) for i in range(order.size))
    hi = cost(0, order.size)
    best = cut(hi)
    for _ in range(48):
        mid = 0.5 * (lo + hi)
        got = cut(mid)
        if got is None:
            lo = mid
        else:
            hi = mid
            best = got
    pieces = [order[a:b] for a, b in best]
    pieces += [np.empty(0, dtype=np.int64)] * (n_shards - len(pieces))
    return pieces


def partition_sizes(
    sizes: np.ndarray,
    precision,
    n_shards: int,
    policy: str = "flops",
    *,
    shard_cost=None,
    routine: str = "potrf",
) -> list[np.ndarray]:
    """Split batch indices into ``n_shards`` per-device index arrays.

    Every index lands in exactly one shard; empty shards are allowed
    (fewer matrices than devices).  Shard index arrays are sorted so a
    shard preserves the original batch order.  ``shard_cost`` (a
    ``(shard_sizes, shard_flops) -> seconds`` callable) overrides the
    built-in cost model of the ``"step-aware"`` policy — a
    :class:`~repro.device.member.ComputeMember`'s calibrated estimate
    slots in here.  ``routine`` selects the per-matrix flop model the
    balancing policies weigh (the op tag of the batch being sharded).
    """
    if n_shards <= 0:
        raise ArgumentError(3, f"n_shards must be positive, got {n_shards}")
    _check_policy(policy)
    sizes = np.asarray(sizes, dtype=np.int64)
    count = sizes.size
    if n_shards == 1:
        return [np.arange(count, dtype=np.int64)]

    if policy == "round-robin":
        return [np.arange(count, dtype=np.int64)[s::n_shards] for s in range(n_shards)]

    flops_of = _flops.routine_flops(routine)
    work = np.array([flops_of(int(n), precision) for n in sizes])
    if policy == "contiguous":
        # Cut the prefix-flops curve at the equal-share levels.
        csum = np.cumsum(work)
        total = csum[-1] if count else 0.0
        bounds = np.searchsorted(csum, total * np.arange(1, n_shards) / n_shards, side="left")
        pieces = np.split(np.arange(count, dtype=np.int64), bounds)
        return [np.asarray(p, dtype=np.int64) for p in pieces]

    if policy in ("size-stratified", "step-aware"):
        if count == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(n_shards)]
        order = np.argsort(-sizes, kind="stable").astype(np.int64)
        if policy == "size-stratified":
            pieces = _stratified_pieces(order, work, n_shards)
        else:
            cost_fn = shard_cost if shard_cost is not None else _default_shard_cost
            pieces = _step_aware_pieces(order, sizes, work, n_shards, cost_fn)
        return [np.sort(p).astype(np.int64) for p in pieces]

    # Greedy LPT: heaviest matrix first onto the least-loaded device.
    loads = np.zeros(n_shards)
    owner = np.empty(count, dtype=np.int64)
    for i in np.argsort(-work, kind="stable"):
        s = int(np.argmin(loads))
        owner[i] = s
        loads[s] += work[i]
    return [np.nonzero(owner == s)[0].astype(np.int64) for s in range(n_shards)]


class DeviceGroup:
    """N simulated devices plus the partition policy that feeds them."""

    def __init__(self, devices, partition: str = "flops"):
        devices = list(devices)
        if not devices:
            raise ArgumentError(1, "device group needs at least one device")
        if len({id(d) for d in devices}) != len(devices):
            raise ArgumentError(1, "device group contains the same device twice")
        _check_policy(partition)
        self.devices = devices
        self.partition = partition

    @classmethod
    def simulated(
        cls,
        count: int,
        spec: DeviceSpec = K40C,
        calibration: Calibration = K40C_CALIBRATION,
        execute_numerics: bool = True,
        partition: str = "flops",
        name_prefix: str | None = None,
    ) -> "DeviceGroup":
        """A homogeneous group of ``count`` fresh simulated devices.

        ``name_prefix`` labels the devices ``{prefix}dev0..N`` so their
        trace tracks group under one serving tier (e.g. per bench
        policy); ``None`` keeps the process-wide default naming.
        """
        if not isinstance(count, numbers.Integral) or count < 1:
            raise ArgumentError(
                1, f"device count must be a positive integer, got {count!r}"
            )
        count = int(count)
        return cls(
            [
                Device(
                    spec=spec,
                    calibration=calibration,
                    execute_numerics=execute_numerics,
                    name=None if name_prefix is None else f"{name_prefix}dev{i}",
                )
                for i in range(count)
            ],
            partition=partition,
        )

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self):
        return iter(self.devices)

    def partition_indices(self, sizes, precision, routine: str = "potrf") -> list[np.ndarray]:
        return partition_sizes(
            sizes, precision, len(self.devices), self.partition, routine=routine
        )

    def reset_clocks(self) -> None:
        for d in self.devices:
            d.reset_clock()

    @property
    def staging_device(self):
        """Device that hosts the source batch for serving callers.

        Duck-typed with :class:`~repro.device.hetero.HeteroGroup` so
        the serving layer treats any group kind uniformly.
        """
        return self.devices[0]

    def sim_now(self) -> float:
        """Latest device clock without draining (serving-loop 'now')."""
        return max(d.host_time for d in self.devices)

    def synchronize(self) -> float:
        """Drain every device; returns the slowest device's clock."""
        return max(d.synchronize() for d in self.devices)


def run_potrf_sharded(
    group: DeviceGroup,
    batch,
    max_n: int,
    options,
    approach: str,
    plan_cache=None,
):
    """Factorize ``batch`` across a device group and merge the results.

    The source batch stays authoritative: each shard is materialized on
    its device (values copied over when numerics are live), the shards
    run concurrently, and factors/info codes are gathered back into the
    source batch's arrays.  ``elapsed`` is the slowest shard — the
    multi-GPU makespan — while flops cover the whole batch, so
    ``result.gflops`` reports the group's aggregate rate.
    """
    from ..core.batch import VBatch
    from ..core.driver import LaunchStats, PotrfResult, plan_potrf, stats_from_execution
    from .executor import execute_concurrently

    tracer = current_tracer()
    sizes = batch.sizes_host
    shards = []
    with tracer.span(
        "shard-plan", Track("topology", "sharder"), cat="shard",
        args={"devices": len(group), "batch": int(batch.batch_count)},
    ) as shard_args:
        for dev, idx in zip(group.devices, group.partition_indices(sizes, batch.precision)):
            if idx.size == 0:
                continue
            if batch.device.execute_numerics and dev.execute_numerics:
                shard_batch = VBatch.from_host(
                    dev, [np.ascontiguousarray(batch.matrix_view(int(j))) for j in idx]
                )
            else:
                shard_batch = VBatch.allocate(
                    dev, sizes[idx], batch.precision, ldas=np.maximum(batch.ldas_host[idx], 1)
                )
            shard_max = int(sizes[idx].max())
            plan, cache_hit = plan_potrf(
                dev, shard_batch, shard_max, options, approach, plan_cache
            )
            shards.append((dev, idx, shard_batch, plan, cache_hit))
        if tracer:
            shard_args["shard_sizes"] = [int(idx.size) for _, idx, _, _, _ in shards]

    for dev, _, _, _, _ in shards:
        dev.synchronize()
    starts = {id(dev): dev.host_time for dev, _, _, _, _ in shards}
    try:
        exec_stats = execute_concurrently([plan for _, _, _, plan, _ in shards])
    except BaseException as exc:
        # A failing shard would otherwise leak every shard's plan and
        # device memory; release what this call materialized before
        # re-raising the (plan-indexed) failure.
        partial = getattr(exc, "partial", None)
        if partial:
            # Fold the shards that *did* finish into one LaunchStats and
            # leave it on the error: a retrying caller (the serving
            # fleet) accounts attempt-1 work once, then merges the
            # retry under the same key without double-counting.
            salvaged = LaunchStats(devices_used=0)
            for (dev, _, _, plan, cache_hit), es in zip(shards, partial):
                if es is None:
                    continue
                salvaged.merge(stats_from_execution(plan, es, cache_hit))
                salvaged.devices_used += 1
            exc.partial_launch_stats = salvaged
        for _, _, shard_batch, plan, _ in shards:
            if plan_cache is None:
                plan.close()
                shard_batch.free()
            elif plan.batch_ref is not shard_batch:
                shard_batch.free()
            else:
                plan.owns_batch = True
        raise

    elapsed = 0.0
    infos = np.zeros(batch.batch_count, dtype=np.int64)
    merged = LaunchStats(devices_used=len(shards))
    with tracer.span("shard-gather", Track("topology", "sharder"), cat="shard"):
        for (dev, idx, shard_batch, plan, cache_hit), es in zip(shards, exec_stats):
            elapsed = max(elapsed, dev.synchronize() - starts[id(dev)])
            merged.merge(stats_from_execution(plan, es, cache_hit))
            if dev.execute_numerics:
                infos[idx] = shard_batch.download_infos()
                # Gather the factors back into the source batch's arrays
                # (host-side result assembly; the simulated PCIe cost of the
                # shard download is charged to the shard device above).
                for local, j in enumerate(idx):
                    batch.matrix_view(int(j))[...] = shard_batch.matrix_view(local)
            if plan_cache is None:
                plan.close()
                shard_batch.free()
            elif plan.batch_ref is not shard_batch:
                # Cached plan is bound elsewhere (or unbound): this shard
                # batch served planning/gather only — release it now so a
                # long-running caller (the serving loop) cannot leak device
                # memory one shard batch per dispatch.
                shard_batch.free()
            else:
                # The cached plan holds live views into this shard batch;
                # hand it over so cache eviction/replacement frees it.
                plan.owns_batch = True

    total = _flops.batch_flops(sizes, "potrf", batch.precision)
    return PotrfResult(
        approach=approach,
        elapsed=elapsed,
        total_flops=total,
        infos=infos,
        launch_stats=merged,
        max_n=max_n,
    )
