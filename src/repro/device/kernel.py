"""Kernel abstraction: launch configuration and per-block work records.

A simulated kernel describes itself in two planes:

* ``block_works()`` — the *timing plane*: one :class:`BlockWork` per
  group of identical thread blocks (flops, global-memory bytes, serial
  chain length, live threads).  The device turns these into per-block
  durations and schedules them onto SM slots.
* ``run_numerics()`` — the *functional plane*: the actual NumPy math the
  kernel performs on device arrays.  Tests always execute it; figure
  sweeps may disable it (``Device(execute_numerics=False)``) since the
  timing plane never reads matrix values.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

__all__ = ["LaunchConfig", "BlockWork", "Kernel", "EtmMode"]


EtmMode = str  # "classic" | "aggressive"

_ETM_MODES = ("classic", "aggressive")


@dataclass(frozen=True)
class LaunchConfig:
    """Per-launch resource request (the CUDA ``<<<...>>>`` analogue).

    ``ilp`` is the kernel's instruction-level parallelism: how many
    independent in-flight operations each warp sustains (register
    blocking / double buffering).  It multiplies the resident-warp count
    when judging latency hiding — a register-tiled gemm saturates an SM
    with far fewer warps than a shared-memory-bound panel kernel.
    """

    threads_per_block: int
    shared_mem_per_block: int = 0
    regs_per_thread: int = 32
    ilp: float = 1.0

    def __post_init__(self):
        if self.threads_per_block <= 0:
            raise ValueError(f"threads_per_block must be positive: {self}")
        if self.shared_mem_per_block < 0:
            raise ValueError(f"shared memory cannot be negative: {self}")
        if self.ilp <= 0:
            raise ValueError(f"ilp must be positive: {self}")


@dataclass(frozen=True)
class BlockWork:
    """Work of one thread block (or ``count`` identical blocks).

    Attributes
    ----------
    flops:
        Precision-weighted floating-point operations the block performs.
    bytes:
        Global-memory traffic (reads + writes) after shared-memory
        reuse — i.e. what actually hits DRAM.
    serial_iters:
        Length of the block's dependent serial chain (e.g. potf2 column
        steps: each needs the previous column's sqrt/divide).  Costed at
        ``Calibration.serial_op_latency`` per iteration regardless of
        width.
    active_threads:
        Threads that have real work.  ``0`` marks an ETM-terminated
        block, which costs only the termination overhead.
    count:
        Number of identical blocks this record stands for (aggregation
        keeps huge gemm grids cheap to simulate).
    """

    flops: float
    bytes: float
    serial_iters: float = 0.0
    active_threads: int | None = None
    count: int = 1

    def __post_init__(self):
        if self.flops < 0 or self.bytes < 0 or self.serial_iters < 0:
            raise ValueError(f"negative work: {self}")
        if self.count <= 0:
            raise ValueError(f"count must be positive: {self}")
        if self.active_threads is not None and self.active_threads < 0:
            raise ValueError(f"active_threads cannot be negative: {self}")

    @property
    def terminated(self) -> bool:
        return self.active_threads == 0


class Kernel(abc.ABC):
    """Base class for every simulated device kernel.

    Subclasses set :attr:`precision` (a :class:`~repro.types.Precision`)
    and :attr:`etm_mode`, implement the two planes, and give themselves
    a ``name`` used in timeline categories and profiles.
    """

    name: str = "kernel"
    etm_mode: EtmMode = "classic"
    #: Fraction of the device's tuned-kernel arithmetic rate this kernel
    #: sustains when fully latency-hidden (instruction mix quality):
    #: register-tiled gemm ~1.0, shared-memory panel kernels ~0.5,
    #: serial global-memory sweeps ~0.25.
    compute_efficiency: float = 1.0
    #: Multiplier on ``Calibration.serial_op_latency`` for this kernel's
    #: serial chains: 1.0 when the chain's operands sit in shared memory
    #: (the fused kernel), ~6 when every dependent step round-trips
    #: through global memory (generic unblocked potf2/trsm kernels).
    serial_latency_scale: float = 1.0
    #: Batch indices of the matrices this launch reads/writes, set by
    #: planners that know the mapping (streamed syrk, trsm sweeps, ...).
    #: ``None`` means "unknown" and the plan optimizer must assume the
    #: launch may touch the whole batch.
    matrix_indices: tuple | None = None

    def __init__(self):
        if self.etm_mode not in _ETM_MODES:
            raise ValueError(f"etm_mode must be one of {_ETM_MODES}, got {self.etm_mode!r}")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError(
                f"compute_efficiency must be in (0, 1], got {self.compute_efficiency}"
            )

    @property
    @abc.abstractmethod
    def precision(self):
        """Arithmetic precision the kernel runs in."""

    @abc.abstractmethod
    def launch_config(self) -> LaunchConfig:
        """Resource request for this launch."""

    @abc.abstractmethod
    def block_works(self) -> list[BlockWork]:
        """Timing plane: grouped per-block work records."""

    def run_numerics(self) -> None:
        """Functional plane: perform the kernel's math on device arrays.

        Default is a no-op for kernels that only move metadata.
        """

    def total_blocks(self) -> int:
        return sum(w.count for w in self.block_works())
