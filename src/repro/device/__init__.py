"""Simulated throughput-oriented accelerator (the paper's K40c stand-in).

The device model reproduces the *mechanisms* the paper's performance
phenomena come from: streaming multiprocessors with occupancy limits,
thread-block wave scheduling, warp-granular early termination, kernel
launch overhead, stream-level concurrent kernel execution, a global
memory with finite capacity, and a PCIe link.  See DESIGN.md §2 for the
substitution argument and `calibration.py` for every tuned constant.
"""

from .spec import DeviceSpec, K20X, K40C, Occupancy, TITAN_BLACK
from .calibration import Calibration, K40C_CALIBRATION
from .clock import Timeline, Interval
from .memory import DeviceArray, GlobalMemory
from .pool import WorkspacePool
from .kernel import BlockWork, Kernel, LaunchConfig
from .scheduler import BlockScheduler
from .stream import Stream
from .device import Device
from .executor import ExecutionStats, MemberStats, PlanExecutor, execute_concurrently
from .topology import DeviceGroup, partition_sizes
from .member import ChunkRun, ComputeMember, CpuMember, GpuMember, MemberCapabilities
from .hetero import HeteroGroup, parse_members, run_potrf_hetero

__all__ = [
    "DeviceSpec",
    "K40C",
    "K20X",
    "TITAN_BLACK",
    "Occupancy",
    "Calibration",
    "K40C_CALIBRATION",
    "Timeline",
    "Interval",
    "DeviceArray",
    "GlobalMemory",
    "WorkspacePool",
    "BlockWork",
    "Kernel",
    "LaunchConfig",
    "BlockScheduler",
    "Stream",
    "Device",
    "PlanExecutor",
    "ExecutionStats",
    "execute_concurrently",
    "DeviceGroup",
    "partition_sizes",
    "MemberStats",
    "ChunkRun",
    "ComputeMember",
    "CpuMember",
    "GpuMember",
    "MemberCapabilities",
    "HeteroGroup",
    "parse_members",
    "run_potrf_hetero",
]
