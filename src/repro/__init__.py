"""repro — variable-size batched matrix computation on a simulated GPU.

A from-scratch reproduction of Abdelfattah, Haidar, Tomov & Dongarra,
"On the Development of Variable Size Batched Computation for
Heterogeneous Parallel Architectures" (IPDPS-W 2016).

Quickstart::

    import numpy as np
    from repro import Device, VBatch, potrf_vbatched, make_spd_batch
    from repro.distributions import uniform_sizes

    device = Device()
    sizes = uniform_sizes(batch_count=200, max_size=128, seed=0)
    batch = VBatch.from_host(device, make_spd_batch(sizes, "d"))
    device.reset_clock()                  # time the factorization only
    result = potrf_vbatched(device, batch)
    print(f"{result.gflops:.1f} Gflop/s via the {result.approach} approach")

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from .types import Precision
from .errors import (
    AdmissionError,
    ArgumentError,
    BatchNumericalError,
    DeviceError,
    DeviceOutOfMemory,
    LaunchError,
    ReproError,
    ServingError,
    StreamError,
)
from .device import Device, DeviceGroup, DeviceSpec, K40C, PlanExecutor, Stream
from .cpu import CpuSpec, MklModel, SANDY_BRIDGE_2X8
from .core import (
    CrossoverPolicy,
    LaunchPlan,
    LaunchStats,
    PlanCache,
    PotrfOptions,
    PotrfResult,
    VBatch,
    potrf_batched_fixed,
    potrf_vbatched,
    potrf_vbatched_max,
)
from .extensions import (
    geqrf_vbatched,
    getrf_vbatched,
    getrs_vbatched,
    potrs_vbatched,
)
from .hostblas import make_spd, make_spd_batch
from .serving import BatchServer
from . import batched_blas, distributions, flops, multifrontal, serving

__version__ = "1.0.0"

__all__ = [
    "Precision",
    "ReproError",
    "AdmissionError",
    "ArgumentError",
    "BatchNumericalError",
    "DeviceError",
    "DeviceOutOfMemory",
    "LaunchError",
    "ServingError",
    "StreamError",
    "Device",
    "DeviceGroup",
    "DeviceSpec",
    "K40C",
    "PlanExecutor",
    "Stream",
    "LaunchPlan",
    "LaunchStats",
    "PlanCache",
    "CpuSpec",
    "MklModel",
    "SANDY_BRIDGE_2X8",
    "VBatch",
    "PotrfOptions",
    "PotrfResult",
    "CrossoverPolicy",
    "potrf_vbatched",
    "potrf_vbatched_max",
    "potrf_batched_fixed",
    "getrf_vbatched",
    "geqrf_vbatched",
    "getrs_vbatched",
    "potrs_vbatched",
    "make_spd",
    "make_spd_batch",
    "BatchServer",
    "batched_blas",
    "distributions",
    "multifrontal",
    "flops",
    "serving",
    "__version__",
]
