"""Vbatched LU factorization with partial pivoting (paper §V).

Right-looking blocked sweep per ``NB`` panel: pivoted panel
factorization, row interchanges, ``U12`` solve, and a trailing update
that reuses :class:`~repro.kernels.gemm.VbatchedGemmKernel` "out of the
box".  Returns per-matrix pivots and LAPACK info codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import flops as _flops
from ..core.batch import VBatch
from ..errors import ArgumentError
from ..kernels.aux import StepSizesKernel, compute_max_size
from ..kernels.gemm import GemmTask, VbatchedGemmKernel
from .kernels import LeftTrsmKernel, PanelGetf2Kernel, RowSwapKernel

__all__ = ["GetrfResult", "getrf_vbatched"]


@dataclass
class GetrfResult:
    """Outcome of one vbatched LU run."""

    elapsed: float
    total_flops: float
    infos: np.ndarray
    ipivs: np.ndarray  # (batch, max_n), 1-based rows, 0 where unused
    launch_stats: dict = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)

    @property
    def failed_count(self) -> int:
        return int(np.count_nonzero(self.infos))


def getrf_vbatched(
    device,
    batch: VBatch,
    max_n: int | None = None,
    panel_nb: int = 64,
) -> GetrfResult:
    """LU-factorize every matrix in the batch, in place.

    Each matrix ends up holding ``L`` (unit lower, implicit diagonal)
    and ``U`` in LAPACK storage; the result carries per-matrix 1-based
    pivot rows and info codes.  ``max_n`` defaults to a device-side
    reduction (the LAPACK-like interface path).
    """
    if panel_nb <= 0:
        raise ArgumentError(4, f"panel_nb must be positive, got {panel_nb}")
    if max_n is None:
        max_n = compute_max_size(device, batch)
    if max_n < batch.max_size_host:
        raise ArgumentError(3, f"max_n={max_n} smaller than largest matrix")

    k = batch.batch_count
    sizes = batch.sizes_host
    ipivs = np.zeros((k, max_n), dtype=np.int64)
    ipivs_dev = device.alloc((k, max_n), np.int64)  # device residency charge
    remaining_dev = device.alloc((k,), np.int64)
    panel_dev = device.alloc((k,), np.int64)
    stats_dev = device.alloc((2,), np.int64)
    stats = {"steps": 0, "panel": 0, "laswp": 0, "trsm": 0, "gemm": 0, "aux": 0}
    numerics = device.execute_numerics

    t0 = device.synchronize()
    for s in range(-(-max_n // panel_nb)):
        offset = s * panel_nb
        device.launch(
            StepSizesKernel(batch.sizes_dev, offset, panel_nb, remaining_dev, panel_dev, stats_dev)
        )
        stats["aux"] += 1
        max_rows = max_n - offset
        if max_rows <= 0:
            break
        stats["steps"] += 1
        remaining = np.maximum(0, sizes - offset)
        jbs = np.minimum(remaining, panel_nb)

        device.launch(PanelGetf2Kernel(batch, offset, jbs, ipivs, max_rows))
        stats["panel"] += 1
        device.launch(RowSwapKernel(batch, offset, jbs, ipivs, max_rows))
        stats["laswp"] += 1
        device.launch(LeftTrsmKernel(batch, offset, jbs, max_rows, uplo="l", diag="u"))
        stats["trsm"] += 1

        tasks = []
        for i in range(k):
            jb = int(jbs[i])
            trail = int(remaining[i]) - jb
            if jb == 0 or trail <= 0:
                tasks.append(GemmTask(0, 0, 0))
                continue
            if numerics:
                a = batch.matrix_view(i)
                j1 = offset + jb
                tasks.append(
                    GemmTask(
                        m=trail, n=trail, k=jb,
                        a=a[j1:, offset:j1], b=a[offset:j1, j1:], c=a[j1:, j1:],
                        alpha=-1.0, beta=1.0,
                    )
                )
            else:
                tasks.append(GemmTask(m=trail, n=trail, k=jb))
        if any(t.m > 0 for t in tasks):
            device.launch(VbatchedGemmKernel(tasks, batch.precision, label="lu_update"))
            stats["gemm"] += 1

    elapsed = device.synchronize() - t0
    infos = batch.download_infos() if numerics else np.zeros(k, dtype=np.int64)
    for arr in (ipivs_dev, remaining_dev, panel_dev, stats_dev):
        arr.free()
    return GetrfResult(
        elapsed=elapsed,
        total_flops=float(sum(_flops.getrf_flops(int(n), int(n), batch.precision) for n in sizes)),
        infos=infos,
        ipivs=ipivs,
        launch_stats=stats,
    )
