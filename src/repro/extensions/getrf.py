"""Vbatched LU factorization with partial pivoting (paper §V), planned.

The driver is a *pure planner*: :func:`plan_getrf` emits a
:class:`~repro.core.plan.LaunchPlan`.  Two approaches:

* **separated** — the right-looking blocked sweep per ``NB`` panel:
  pivoted panel factorization, row interchanges, ``U12`` solve, and a
  trailing update that reuses
  :class:`~repro.kernels.gemm.VbatchedGemmKernel` "out of the box"
  (its tasks carry the numerics as views).
* **fused** — one whole-matrix ``getf2`` launch per implicit-sorting
  size window: with the panel spanning every column there is nothing
  left to swap, solve or update.

:func:`getrf_vbatched` is the eager-shaped wrapper routed through the
generic operation driver (``plan_cache=``, ``optimize=``, ``devices=``
all apply).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import flops as _flops
from ..core.batch import VBatch
from ..core.plan import LaunchPlan, PlanBuilder
from ..core.sorting import partition_windows, sorted_order
from ..errors import ArgumentError
from ..kernels.aux import StepSizesKernel
from ..kernels.gemm import GemmTask, VbatchedGemmKernel
from .kernels import LeftTrsmKernel, OpRunStats, PanelGetf2Kernel, RowSwapKernel

__all__ = ["GetrfResult", "getrf_vbatched", "plan_getrf"]

_WINDOW_MIN_COUNT = 256


@dataclass
class GetrfResult:
    """Outcome of one vbatched LU run."""

    elapsed: float
    total_flops: float
    infos: np.ndarray
    ipivs: np.ndarray  # (batch, max_n), 1-based rows, 0 where unused
    launch_stats: object = field(default_factory=dict)
    approach: str = "separated"
    #: Heterogeneous runs only (see :class:`~repro.ops.driver.OpResult`).
    placement: list | None = None
    member_stats: list | None = None

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)

    @property
    def failed_count(self) -> int:
        return int(np.count_nonzero(self.infos))


def plan_getrf(
    device,
    batch: VBatch,
    max_n: int,
    *,
    panel_nb: int = 64,
    approach: str = "separated",
    sorting: bool = False,
) -> LaunchPlan:
    """Emit the LU launch DAG (no device time passes).

    ``meta["outputs"]["ipivs"]`` is the host-mirrored pivot table the
    panel kernels fill during execution (global 1-based rows).
    """
    if panel_nb <= 0:
        raise ArgumentError(4, f"panel_nb must be positive, got {panel_nb}")
    if max_n < batch.max_size_host:
        raise ArgumentError(3, f"max_n={max_n} smaller than largest matrix")
    if approach not in ("fused", "separated"):
        raise ArgumentError(1, f"bad getrf approach {approach!r}")

    k = batch.batch_count
    sizes = batch.sizes_host
    ipivs = np.zeros((k, max_n), dtype=np.int64)
    numerics = device.execute_numerics
    stats = OpRunStats()
    pb = PlanBuilder(device, batch)
    try:
        ipivs_dev = pb.workspace((k, max_n), np.int64)  # noqa: F841 — residency
        remaining_dev = pb.workspace((k,), np.int64)
        panel_dev = pb.workspace((k,), np.int64)
        stats_dev = pb.workspace((2,), np.int64)

        if approach == "fused":
            order = sorted_order(sizes) if sorting else None
            stats.steps = 1
            pb.aux(
                StepSizesKernel(batch.sizes_dev, 0, max_n, remaining_dev, panel_dev, stats_dev)
            )
            jbs = sizes.astype(np.int64)
            if order is None:
                with pb.tagged("panel"):
                    pb.launch(PanelGetf2Kernel(batch, 0, jbs, ipivs, max_n))
            else:
                windows = partition_windows(sizes, order, 0, panel_nb, _WINDOW_MIN_COUNT)
                stats.window_launches_max = len(windows)
                for win in windows:
                    with pb.tagged("panel"):
                        pb.launch(
                            PanelGetf2Kernel(
                                batch, 0, jbs, ipivs, win.max_m, indices=win.indices
                            )
                        )
        else:
            order = sorted_order(sizes) if sorting else np.arange(k, dtype=np.int64)
            for s in range(-(-max_n // panel_nb)):
                offset = s * panel_nb
                pb.aux(
                    StepSizesKernel(
                        batch.sizes_dev, offset, panel_nb, remaining_dev, panel_dev, stats_dev
                    )
                )
                max_rows = max_n - offset
                stats.steps += 1
                remaining = np.maximum(0, sizes - offset)
                jbs = np.minimum(remaining, panel_nb)

                with pb.tagged("panel"):
                    pb.launch(PanelGetf2Kernel(batch, offset, jbs, ipivs, max_rows))
                with pb.tagged("swap"):
                    pb.launch(RowSwapKernel(batch, offset, jbs, ipivs, max_rows))
                with pb.tagged("trsm"):
                    pb.launch(
                        LeftTrsmKernel(batch, offset, jbs, max_rows, uplo="l", diag="u")
                    )

                tasks = []
                for i in order:
                    i = int(i)
                    jb = int(jbs[i])
                    trail = int(remaining[i]) - jb
                    if jb == 0 or trail <= 0:
                        tasks.append(GemmTask(0, 0, 0))
                        continue
                    if numerics:
                        a = batch.matrix_view(i)
                        j1 = offset + jb
                        tasks.append(
                            GemmTask(
                                m=trail, n=trail, k=jb,
                                a=a[j1:, offset:j1], b=a[offset:j1, j1:], c=a[j1:, j1:],
                                alpha=-1.0, beta=1.0,
                            )
                        )
                    else:
                        tasks.append(GemmTask(m=trail, n=trail, k=jb))
                if any(t.m > 0 for t in tasks):
                    with pb.tagged("gemm"):
                        pb.launch(VbatchedGemmKernel(tasks, batch.precision, label="lu_update"))
    except BaseException:
        pb.abandon()
        raise
    return pb.build(
        run_stats=stats,
        meta={
            "op": "getrf",
            "planner": approach,
            "panel_nb": panel_nb,
            "max_n": max_n,
            "outputs": {"ipivs": ipivs},
        },
    )


def getrf_vbatched(
    device,
    batch: VBatch,
    max_n: int | None = None,
    panel_nb: int = 64,
    *,
    options=None,
    devices=None,
    plan_cache=None,
    optimize: str | None = None,
) -> GetrfResult:
    """LU-factorize every matrix in the batch, in place.

    Each matrix ends up holding ``L`` (unit lower, implicit diagonal)
    and ``U`` in LAPACK storage; the result carries per-matrix 1-based
    pivot rows and info codes.  ``max_n`` defaults to a device-side
    reduction (the LAPACK-like interface path).
    """
    from ..ops.driver import run_op_vbatched
    from ..ops.options import OpOptions

    if options is None:
        options = OpOptions(panel_nb=panel_nb)
    result = run_op_vbatched(
        device, batch, max_n, "getrf", options,
        devices=devices, plan_cache=plan_cache, optimize=optimize,
    )
    return GetrfResult(
        elapsed=result.elapsed,
        total_flops=result.total_flops,
        infos=result.infos,
        ipivs=result.outputs["ipivs"],
        launch_stats=result.launch_stats,
        approach=result.approach,
        placement=result.placement,
        member_stats=result.member_stats,
    )
