"""LAPACK-style driver routines: factor + solve in one call.

``posv`` (Cholesky solve) and ``gesv`` (LU solve) combine the vbatched
factorizations with their fused substitution kernels — the convenience
entry points an application calls when it does not need to keep the
factors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batch import VBatch
from ..core.driver import PotrfOptions, run_potrf_vbatched
from ..errors import ArgumentError, BatchNumericalError
from ..kernels.aux import compute_max_size
from .getrf import getrf_vbatched
from .solve import getrs_vbatched, potrs_vbatched

__all__ = ["SolveResult", "posv_vbatched", "gesv_vbatched"]


@dataclass
class SolveResult:
    """Outcome of a combined factor+solve driver."""

    factor_elapsed: float
    solve_elapsed: float
    total_flops: float
    infos: np.ndarray

    @property
    def elapsed(self) -> float:
        return self.factor_elapsed + self.solve_elapsed

    @property
    def failed_count(self) -> int:
        return int(np.count_nonzero(self.infos))


def _check_rhs(batch: VBatch, rhs) -> None:
    if len(rhs) != batch.batch_count:
        raise ArgumentError(3, f"need {batch.batch_count} right-hand sides, got {len(rhs)}")


def posv_vbatched(
    device,
    batch: VBatch,
    rhs: list[np.ndarray | None],
    options: PotrfOptions | None = None,
    *,
    devices=None,
    plan_cache=None,
    optimize: str | None = None,
) -> SolveResult:
    """Solve ``A_i x = b_i`` for SPD batches: POTRF then POTRS.

    Matrices are overwritten with their factors, ``rhs`` with the
    solutions.  Raises :class:`BatchNumericalError` if any matrix is
    not positive definite (solutions would be meaningless).  The factor
    step accepts the same ``devices``/``plan_cache``/``optimize``
    scaling hooks as :func:`~repro.core.interface.potrf_vbatched`; the
    substitution runs on the factors gathered back on ``device``.
    """
    _check_rhs(batch, rhs)
    opts = options or PotrfOptions()
    max_n = compute_max_size(device, batch)
    fact = run_potrf_vbatched(
        device,
        batch,
        max_n,
        opts,
        devices=devices,
        plan_cache=plan_cache,
        optimize=optimize,
    )
    if fact.failed_count and device.execute_numerics:
        failing = {int(i): int(v) for i, v in enumerate(fact.infos) if v != 0}
        raise BatchNumericalError(failing, f"posv_vbatched[{batch.precision.value}]")
    solve = potrs_vbatched(device, batch, rhs)
    return SolveResult(
        factor_elapsed=fact.elapsed,
        solve_elapsed=solve.elapsed,
        total_flops=fact.total_flops + solve.total_flops,
        infos=fact.infos,
    )


def gesv_vbatched(
    device,
    batch: VBatch,
    rhs: list[np.ndarray | None],
    panel_nb: int = 64,
) -> SolveResult:
    """Solve general ``A_i x = b_i`` batches: GETRF then GETRS."""
    _check_rhs(batch, rhs)
    fact = getrf_vbatched(device, batch, panel_nb=panel_nb)
    if fact.failed_count and device.execute_numerics:
        failing = {int(i): int(v) for i, v in enumerate(fact.infos) if v != 0}
        raise BatchNumericalError(failing, f"gesv_vbatched[{batch.precision.value}]")
    solve = getrs_vbatched(device, batch, fact.ipivs, rhs)
    return SolveResult(
        factor_elapsed=fact.elapsed,
        solve_elapsed=solve.elapsed,
        total_flops=fact.total_flops + solve.total_flops,
        infos=fact.infos,
    )
