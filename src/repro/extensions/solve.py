"""Vbatched triangular solve after POTRF (``potrs``).

The application-facing other half of the factorization: given the
batch's Cholesky factors and per-matrix right-hand sides, run the fused
forward+backward substitution kernel — one block per matrix, RHS in
shared memory — and return the solutions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import flops as _flops
from ..core.batch import VBatch
from ..errors import ArgumentError
from .kernels import FusedGetrsKernel, FusedPotrsKernel

__all__ = ["PotrsResult", "potrs_vbatched", "getrs_vbatched"]


@dataclass
class PotrsResult:
    """Outcome of one vbatched solve."""

    elapsed: float
    total_flops: float

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)


def potrs_vbatched(device, batch: VBatch, rhs: list[np.ndarray | None]) -> PotrsResult:
    """Solve ``A_i x = b_i`` using factors already stored in ``batch``.

    ``rhs[i]`` is overwritten with the solution (``None`` skips matrix
    ``i``).  Shapes must be ``(n_i,)`` or ``(n_i, nrhs)``.
    """
    if len(rhs) != batch.batch_count:
        raise ArgumentError(3, f"need {batch.batch_count} right-hand sides, got {len(rhs)}")
    total = 0.0
    max_rows = 1
    for i, b in enumerate(rhs):
        if b is None:
            continue
        n = int(batch.sizes_host[i])
        if b.shape[0] != n:
            raise ArgumentError(3, f"rhs[{i}] has {b.shape[0]} rows, matrix has {n}")
        nrhs = b.shape[1] if b.ndim == 2 else 1
        total += 2.0 * _flops.trsm_flops(n, nrhs, side="left", precision=batch.precision)
        max_rows = max(max_rows, n)

    t0 = device.synchronize()
    device.launch(FusedPotrsKernel(batch, list(rhs), max_rows))
    elapsed = device.synchronize() - t0
    return PotrsResult(elapsed=elapsed, total_flops=total)


def getrs_vbatched(
    device, batch: VBatch, ipivs: np.ndarray, rhs: list[np.ndarray | None]
) -> PotrsResult:
    """Solve ``A_i x = b_i`` using LU factors and pivots from getrf.

    ``ipivs`` is the pivot table returned by
    :func:`~repro.extensions.getrf.getrf_vbatched`; ``rhs[i]`` is
    overwritten with the solution (``None`` skips matrix ``i``).
    """
    if len(rhs) != batch.batch_count:
        raise ArgumentError(4, f"need {batch.batch_count} right-hand sides, got {len(rhs)}")
    if ipivs.shape[0] != batch.batch_count:
        raise ArgumentError(3, f"ipivs has {ipivs.shape[0]} rows, batch has {batch.batch_count}")
    total = 0.0
    max_rows = 1
    for i, b in enumerate(rhs):
        if b is None:
            continue
        n = int(batch.sizes_host[i])
        if b.shape[0] != n:
            raise ArgumentError(4, f"rhs[{i}] has {b.shape[0]} rows, matrix has {n}")
        nrhs = b.shape[1] if b.ndim == 2 else 1
        total += 2.0 * _flops.trsm_flops(n, nrhs, side="left", precision=batch.precision)
        max_rows = max(max_rows, n)

    t0 = device.synchronize()
    device.launch(FusedGetrsKernel(batch, list(rhs), ipivs, max_rows))
    elapsed = device.synchronize() - t0
    return PotrsResult(elapsed=elapsed, total_flops=total)
