"""Vbatched one-sided Jacobi SVD (gesvj), plan/execute split.

Hestenes' one-sided Jacobi is the batched-SVD method of choice on
throughput hardware (and the kernel behind hierarchical-matrix
compression pipelines): each matrix needs only column dot products and
plane rotations, so one thread block per matrix sweeps to convergence
without cross-block communication.

The planner fixes the sweep budget at plan time — a static DAG whose
timing depends only on the size vector (hence cacheable).  Each sweep
is a convergence-reduce aux launch plus one rotation launch (per size
window under implicit sorting); the functional plane skips matrices
whose columns already converged, which never moves the simulated
clock.  A finalize launch computes the singular values, normalizes
``U`` in place and emits ``V^T``.

Real precisions only (``s``/``d``): complex one-sided rotations are out
of scope, matching the host reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import flops as _flops
from ..core.batch import VBatch
from ..core.plan import LaunchPlan, PlanBuilder
from ..core.sorting import partition_windows, sorted_order
from ..errors import ArgumentError
from ..types import precision_info
from .kernels import JacobiSweepKernel, OpRunStats, SvdConvergenceKernel, SvdFinalizeKernel

__all__ = ["GesvjResult", "SvdState", "gesvj_vbatched", "plan_gesvj"]

_WINDOW_MIN_COUNT = 256


@dataclass
class SvdState:
    """Host-side working state shared by the SVD kernels of one plan.

    ``v_store`` holds each matrix's accumulated rotation product ``V``;
    after the finalize launch ``vt_store[i]`` is the sorted ``V^T`` and
    ``sigma`` the descending singular values.  Bound to the plan like
    the QR ``taus`` array: a cached plan re-fills the same storage.
    """

    sigma: np.ndarray
    v_store: dict = field(default_factory=dict)
    vt_store: dict = field(default_factory=dict)
    converged: np.ndarray = None
    sweeps_done: np.ndarray = None
    tol: float = 1.0e-10

    def reset(self, batch: VBatch) -> None:
        """Re-arm for a (re-)execution: fresh ``V`` accumulators."""
        info = precision_info(batch.precision)
        self.sigma[...] = 0.0
        self.vt_store.clear()
        self.converged[...] = False
        self.sweeps_done[...] = 0
        for i in range(batch.batch_count):
            n = int(batch.sizes_host[i])
            self.v_store[i] = np.eye(n, dtype=info.dtype)


class _SvdResetKernel(SvdConvergenceKernel):
    """The sweep loop's prologue: zero flags, identity ``V`` accumulators.

    Costed like the convergence reduce (metadata-sized traffic); its
    functional plane re-arms the plan's host-side state so a cached
    plan's re-execution starts from scratch.
    """

    def __init__(self, batch, state: SvdState):
        super().__init__(batch.batch_count, batch.precision)
        self.batch = batch
        self.state = state
        self.name = "svd_state_reset"

    def run_numerics(self) -> None:
        self.state.reset(self.batch)


@dataclass
class GesvjResult:
    """Outcome of one vbatched SVD run.

    Each batch matrix holds ``U`` in place after execution;
    ``singular_values[i, :n_i]`` descends and ``vt[i]`` is the matching
    right-factor transpose.
    """

    elapsed: float
    total_flops: float
    singular_values: np.ndarray  # (batch, max_n)
    vt: dict
    sweeps: int
    launch_stats: object = field(default_factory=dict)
    approach: str = "jacobi"
    #: Heterogeneous runs only (see :class:`~repro.ops.driver.OpResult`).
    placement: list | None = None
    member_stats: list | None = None

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)


def plan_gesvj(
    device,
    batch: VBatch,
    max_n: int,
    *,
    sweeps: int | None = None,
    tol: float = 1.0e-10,
    sorting: bool = False,
    panel_nb: int = 64,
) -> LaunchPlan:
    """Emit the Jacobi-SVD launch DAG (no device time passes).

    ``sweeps`` fixes the rotation-sweep budget (default: the modeled
    :func:`repro.flops.default_svd_sweeps` of ``max_n``); ``sorting``
    splits each sweep into implicit-sorting size windows of width
    ``panel_nb``.
    """
    if max_n < batch.max_size_host:
        raise ArgumentError(3, f"max_n={max_n} smaller than largest matrix")
    if batch.precision.value not in ("s", "d"):
        raise ArgumentError(2, f"gesvj supports real precisions only, got {batch.precision.value}")
    if sweeps is None:
        sweeps = _flops.default_svd_sweeps(max_n)
    if sweeps <= 0:
        raise ArgumentError(5, f"sweeps must be positive, got {sweeps}")

    k = batch.batch_count
    sizes = batch.sizes_host
    info = precision_info(batch.precision)
    state = SvdState(
        sigma=np.zeros((k, max_n), dtype=info.dtype),
        converged=np.zeros(k, dtype=bool),
        sweeps_done=np.zeros(k, dtype=np.int64),
        tol=tol,
    )
    state.reset(batch)
    stats = OpRunStats(steps=sweeps, sweeps=sweeps)
    order = sorted_order(sizes) if sorting else None
    pb = PlanBuilder(device, batch)
    try:
        flags_dev = pb.workspace((k,), np.int64)  # noqa: F841 — residency
        sigma_dev = pb.workspace((k, max_n), info.dtype)  # noqa: F841 — residency

        pb.aux(_SvdResetKernel(batch, state))
        windows = (
            partition_windows(sizes, order, 0, panel_nb, _WINDOW_MIN_COUNT)
            if order is not None
            else None
        )
        if windows is not None:
            stats.window_launches_max = len(windows)
        for sweep in range(sweeps):
            pb.aux(SvdConvergenceKernel(k, batch.precision))
            if windows is None:
                with pb.tagged("sweep"):
                    pb.launch(JacobiSweepKernel(batch, sweep, state, max_n))
            else:
                for win in windows:
                    with pb.tagged("sweep"):
                        pb.launch(
                            JacobiSweepKernel(
                                batch, sweep, state, win.max_m, indices=win.indices
                            )
                        )
        with pb.tagged("panel"):
            pb.launch(SvdFinalizeKernel(batch, state, max_n))
    except BaseException:
        pb.abandon()
        raise
    return pb.build(
        run_stats=stats,
        meta={
            "op": "gesvj",
            "planner": "jacobi",
            "sweeps": sweeps,
            "max_n": max_n,
            "outputs": {
                "singular_values": state.sigma,
                "vt": state.vt_store,
                "sweeps_done": state.sweeps_done,
            },
        },
    )


def gesvj_vbatched(
    device,
    batch: VBatch,
    max_n: int | None = None,
    *,
    options=None,
    devices=None,
    plan_cache=None,
    optimize: str | None = None,
) -> GesvjResult:
    """SVD every matrix in the batch: ``A_i = U_i diag(s_i) V_i^T``.

    ``U`` replaces each matrix in place; the result carries the
    descending singular values, per-matrix ``V^T`` and the sweep
    budget.  Scaling hooks match the POTRF driver.
    """
    from ..ops.driver import run_op_vbatched
    from ..ops.options import OpOptions

    if options is None:
        options = OpOptions()
    result = run_op_vbatched(
        device, batch, max_n, "gesvj", options,
        devices=devices, plan_cache=plan_cache, optimize=optimize,
    )
    return GesvjResult(
        elapsed=result.elapsed,
        total_flops=result.total_flops,
        singular_values=result.outputs["singular_values"],
        vt=result.outputs["vt"],
        sweeps=int(result.meta.get("sweeps", 0)),
        launch_stats=result.launch_stats,
        approach=result.approach,
        placement=result.placement,
        member_stats=result.member_stats,
    )
