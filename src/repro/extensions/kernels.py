"""Panel kernels for the LU/QR/solve extensions.

The heavy lifting (trailing updates, block-reflector applications) goes
through :class:`~repro.kernels.gemm.VbatchedGemmKernel` untouched; the
kernels here cover only the tall-skinny panel work and row swaps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import flops as _flops
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from ..hostblas import geqr2, getf2, jacobi_sweep, larft, trsm as host_trsm
from ..kernels.gemm import VbatchedGemmKernel
from ..types import Precision, precision_info

__all__ = [
    "OpRunStats",
    "PanelGetf2Kernel",
    "RowSwapKernel",
    "LeftTrsmKernel",
    "PanelGeqr2Kernel",
    "LarfbUpdateGemmKernel",
    "JacobiSweepKernel",
    "SvdConvergenceKernel",
    "SvdFinalizeKernel",
    "FusedPotrsKernel",
    "FusedGetrsKernel",
]

_WARP = 32


@dataclass
class OpRunStats:
    """Planner-side accounting shared by the extension-op planners."""

    steps: int = 0
    window_launches_max: int = 0
    sweeps: int = 0


class _PanelKernelBase(Kernel):
    """Shared scaffolding: one thread block per matrix, grouped works.

    ``indices`` restricts the launch to a subset of the batch (one block
    per listed matrix) — the implicit-sorting planners pass a size
    window so sub-launches carry no dead blocks; ``None`` covers the
    whole batch, matching the ETM launches.
    """

    compute_efficiency = 0.50
    etm_mode = "aggressive"

    def __init__(self, batch, max_rows: int, indices: np.ndarray | None = None):
        super().__init__()
        if max_rows <= 0:
            raise ValueError(f"max_rows must be positive, got {max_rows}")
        self.batch = batch
        self.max_rows = int(max_rows)
        self._info = precision_info(batch.precision)
        if indices is None:
            self.indices = np.arange(batch.batch_count, dtype=np.int64)
        else:
            self.indices = np.asarray(indices, dtype=np.int64)
            self.matrix_indices = tuple(int(i) for i in self.indices)

    @property
    def precision(self) -> Precision:
        return self.batch.precision

    def launch_config(self) -> LaunchConfig:
        threads = min(1024, -(-self.max_rows // _WARP) * _WARP)
        return LaunchConfig(
            threads_per_block=threads,
            shared_mem_per_block=min(48 * 1024, threads * 16 * self._info.bytes_per_element),
            regs_per_thread=48,
            ilp=2.0,
        )

    def _grouped(self, per_matrix) -> list[BlockWork]:
        groups: dict[tuple, int] = {}
        for desc in per_matrix:
            groups[desc] = groups.get(desc, 0) + 1
        works = []
        for (flops, bytes_, serial, active), count in groups.items():
            if active == 0:
                works.append(BlockWork(0.0, 0.0, active_threads=0, count=count))
            else:
                works.append(
                    BlockWork(flops, bytes_, serial_iters=serial,
                              active_threads=active, count=count)
                )
        return works


class PanelGetf2Kernel(_PanelKernelBase):
    """Pivoted LU of each matrix's ``m_i x jb_i`` panel (one block each).

    The pivot search adds a reduction to every column's serial chain,
    so the chain is ~3 dependent steps per column instead of potf2's 2.
    """

    def __init__(self, batch, offset: int, jbs: np.ndarray, ipivs: np.ndarray, max_rows: int,
                 indices: np.ndarray | None = None):
        super().__init__(batch, max_rows, indices)
        if offset < 0:
            raise ValueError(f"offset cannot be negative, got {offset}")
        self.offset = offset
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.ipivs = ipivs  # host-mirrored (k, max_n) pivot table
        self.name = f"vbatched_getf2:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i in self.indices:
            i = int(i)
            jb = int(self.jbs[i])
            m = max(0, int(self.batch.sizes_host[i]) - self.offset)
            if jb == 0 or m == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            per.append((
                _flops.getrf_flops(m, jb) * w,
                2.0 * m * jb * elem,
                3.0 * jb,
                m,
            ))
        return self._grouped(per)

    def run_numerics(self) -> None:
        infos = self.batch.infos_dev.data
        for i in self.indices:
            i = int(i)
            jb = int(self.jbs[i])
            n = int(self.batch.sizes_host[i])
            m = n - self.offset
            if jb == 0 or m <= 0:
                continue
            a = self.batch.matrix_view(i)
            panel = a[self.offset :, self.offset : self.offset + jb]
            piv = np.zeros(jb, dtype=np.int64)
            info = getf2(panel, piv)
            if info != 0 and infos[i] == 0:
                infos[i] = self.offset + info
            self.ipivs[i, self.offset : self.offset + jb] = self.offset + piv


class RowSwapKernel(_PanelKernelBase):
    """Apply each matrix's panel pivots to the columns outside the panel."""

    compute_efficiency = 1.0
    etm_mode = "classic"

    def __init__(self, batch, offset: int, jbs: np.ndarray, ipivs: np.ndarray, max_rows: int):
        super().__init__(batch, max_rows)
        self.offset = offset
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.ipivs = ipivs
        self.name = f"vbatched_laswp:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        elem = self._info.bytes_per_element
        per = []
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            if jb == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            # Each swap touches two full rows outside the panel.
            per.append((0.0, 2.0 * jb * max(0, n - jb) * elem, float(jb), min(n, 256)))
        return self._grouped(per)

    def run_numerics(self) -> None:
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            if jb == 0 or n - self.offset <= 0:
                continue
            a = self.batch.matrix_view(i)
            for k in range(jb):
                # ipivs holds global 1-based pivot rows already.
                p = int(self.ipivs[i, self.offset + k]) - 1
                row = self.offset + k
                if p != row and p < n:
                    a[[row, p], : self.offset] = a[[p, row], : self.offset]
                    a[[row, p], self.offset + jb :] = a[[p, row], self.offset + jb :]


class LeftTrsmKernel(_PanelKernelBase):
    """``B := op(T)^{-1} B`` with unit/non-unit triangular ``T`` per matrix.

    Used for LU's ``U12 := L11^{-1} A12`` step.  Cost follows the
    trtri+gemm decomposition at ``ib = 32`` granularity, collapsed into
    one modeled launch (the trailing gemm dominates the step anyway).
    """

    compute_efficiency = 0.75
    etm_mode = "classic"

    def __init__(self, batch, offset: int, jbs: np.ndarray, max_rows: int,
                 uplo: str = "l", diag: str = "u"):
        super().__init__(batch, max_rows)
        self.offset = offset
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.uplo = uplo
        self.diag = diag
        self.name = f"vbatched_trsm_left:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            ncols = max(0, n - self.offset - jb)
            if jb == 0 or ncols == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            per.append((
                _flops.trsm_flops(jb, ncols, side="left") * w,
                (jb * jb + 2.0 * jb * ncols) * elem,
                float(-(-jb // 32)) * 2.0,
                min(jb * 4, 1024),
            ))
        return self._grouped(per)

    def run_numerics(self) -> None:
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            j1 = self.offset + jb
            if jb == 0 or n - j1 <= 0:
                continue
            a = self.batch.matrix_view(i)
            host_trsm("l", self.uplo, "n", self.diag, 1.0,
                      a[self.offset : j1, self.offset : j1], a[self.offset : j1, j1:])


class PanelGeqr2Kernel(_PanelKernelBase):
    """Householder QR of each matrix's ``m_i x jb_i`` panel + its ``T``.

    Every column needs a norm reduction, a scale and a rank-1 update:
    ~3 dependent serial steps per column.  The ``T`` accumulation is
    folded in (its flops are ``jb^2 m``-ish, charged here).
    """

    def __init__(self, batch, offset: int, jbs: np.ndarray, taus: np.ndarray,
                 t_store: dict, max_rows: int, indices: np.ndarray | None = None):
        super().__init__(batch, max_rows, indices)
        self.offset = offset
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.taus = taus
        self.t_store = t_store
        self.name = f"vbatched_geqr2:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i in self.indices:
            i = int(i)
            jb = int(self.jbs[i])
            m = max(0, int(self.batch.sizes_host[i]) - self.offset)
            if jb == 0 or m == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            flops = _flops.geqrf_flops(m, jb) + jb * jb * m  # panel + larft
            per.append((flops * w, 2.0 * m * jb * elem, 3.0 * jb, m))
        return self._grouped(per)

    def run_numerics(self) -> None:
        for i in self.indices:
            i = int(i)
            jb = int(self.jbs[i])
            n = int(self.batch.sizes_host[i])
            m = n - self.offset
            if jb == 0 or m <= 0:
                continue
            a = self.batch.matrix_view(i)
            panel = a[self.offset :, self.offset : self.offset + jb]
            geqr2(panel, self.taus[i, self.offset : self.offset + jb])
            self.t_store[i] = larft(panel, self.taus[i, self.offset : self.offset + jb])


class LarfbUpdateGemmKernel(VbatchedGemmKernel):
    """The second larfb gemm (``C -= V (T^H W)``) carrying the numerics.

    Timing plane is identical to the plain
    :class:`~repro.kernels.gemm.VbatchedGemmKernel` it subclasses (same
    tasks, same name); the functional plane applies the exact compact-WY
    update per matrix — this is what lets the QR planner put *all*
    numerics on the plan instead of applying the block reflector on the
    host after the launches.
    """

    def __init__(self, tasks, batch, offset: int, jbs: np.ndarray,
                 t_store: dict, taus: np.ndarray, label: str = "larfb_c"):
        super().__init__(tasks, batch.precision, label=label)
        self.batch = batch
        self.offset = int(offset)
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.t_store = t_store
        self.taus = taus

    def run_numerics(self) -> None:
        from ..hostblas import apply_q_transpose

        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            if jb == 0 or n - self.offset - jb <= 0:
                continue
            a = self.batch.matrix_view(i)
            apply_q_transpose(
                a[self.offset :, self.offset : self.offset + jb],
                self.t_store[i],
                a[self.offset :, self.offset + jb :],
            )


class JacobiSweepKernel(_PanelKernelBase):
    """One cyclic one-sided Jacobi sweep per matrix (one block each).

    The timing plane charges the full sweep for every live matrix — the
    sweep budget is fixed at plan time (static DAG), so timing depends
    only on sizes and the plan stays cacheable.  The functional plane
    skips matrices whose columns already converged (value-dependent
    early exit that never moves the simulated clock).
    """

    def __init__(self, batch, sweep: int, state, max_rows: int,
                 indices: np.ndarray | None = None):
        super().__init__(batch, max_rows, indices)
        self.sweep = int(sweep)
        self.state = state
        self.name = f"vbatched_jacobi_sweep:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i in self.indices:
            n = int(self.batch.sizes_host[int(i)])
            if n <= 1:
                # A 1x1 problem needs no rotations; the block terminates.
                per.append((0.0, 0.0, 0.0, 0))
                continue
            # Columns of A and V stage through shared memory; global
            # traffic is one read+write pass over both per sweep.  The
            # rotation rounds chain serially (round-robin ordering).
            per.append((
                _flops.gesvj_sweep_flops(n) * w,
                4.0 * n * n * elem,
                3.0 * (n - 1.0),
                min(n, self.max_rows),
            ))
        return self._grouped(per)

    def run_numerics(self) -> None:
        st = self.state
        for i in self.indices:
            i = int(i)
            n = int(self.batch.sizes_host[i])
            if n == 0 or st.converged[i]:
                continue
            a = self.batch.matrix_view(i)
            if n == 1:
                st.converged[i] = True
                continue
            rotations = jacobi_sweep(a, st.v_store[i], st.tol)
            if rotations == 0:
                st.converged[i] = True
            else:
                st.sweeps_done[i] = self.sweep + 1


class SvdConvergenceKernel(Kernel):
    """Device-side reduction of the per-matrix convergence flags.

    Models the tiny all-reduce a real gesvj driver runs between sweeps
    to decide whether another sweep launch is needed; moves metadata
    only (the simulated planner fixes the sweep budget up front).
    """

    etm_mode = "classic"
    compute_efficiency = 1.0

    def __init__(self, count: int, precision):
        super().__init__()
        self.count = int(count)
        self._prec = Precision(precision)
        self.name = "svd_conv_reduce"

    @property
    def precision(self) -> Precision:
        return self._prec

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig(threads_per_block=min(256, max(_WARP, self.count)))

    def block_works(self) -> list[BlockWork]:
        count = max(1, self.count)
        return [
            BlockWork(
                flops=float(count),
                bytes=8.0 * count,
                serial_iters=float(max(1, count.bit_length())),
                active_threads=min(256, count),
            )
        ]


class SvdFinalizeKernel(_PanelKernelBase):
    """Post-sweep finalize: norms, descending sort, normalize ``U``.

    One block per matrix computes the singular values as column norms,
    reorders columns of ``A`` (which becomes ``U`` in place) and ``V``
    descending, and writes the transposed ``V`` out.
    """

    def __init__(self, batch, state, max_rows: int):
        super().__init__(batch, max_rows)
        self.state = state
        self.name = f"vbatched_svd_finalize:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i in range(self.batch.batch_count):
            n = int(self.batch.sizes_host[i])
            if n == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            # Column norms (2n^2), scale (n^2); permute A and V in
            # global memory.
            per.append((3.0 * n * n * w, 6.0 * n * n * elem, 3.0, min(n, self.max_rows)))
        return self._grouped(per)

    def run_numerics(self) -> None:
        st = self.state
        for i in range(self.batch.batch_count):
            n = int(self.batch.sizes_host[i])
            if n == 0:
                continue
            a = self.batch.matrix_view(i)
            v = st.v_store[i]
            s = np.sqrt(np.sum(np.abs(a) ** 2, axis=0))
            order = np.argsort(-s, kind="stable")
            s = s[order]
            a[...] = a[:, order]
            v[...] = v[:, order]
            nonzero = s > 0
            a[:, nonzero] = a[:, nonzero] / s[nonzero]
            st.sigma[i, :n] = s.astype(st.sigma.dtype)
            st.vt_store[i] = v.T.copy()


class FusedGetrsKernel(_PanelKernelBase):
    """Fused pivoted forward+backward substitution per matrix (getrs).

    One block per matrix: apply the row interchanges to the RHS, solve
    with unit-lower ``L`` then upper ``U`` — the LU counterpart of the
    fused potrs kernel.
    """

    def __init__(self, batch, rhs_views: list, ipivs: np.ndarray, max_rows: int):
        super().__init__(batch, max_rows)
        if len(rhs_views) != batch.batch_count:
            raise ValueError("one RHS view per matrix required")
        self.rhs_views = rhs_views
        self.ipivs = ipivs
        self.name = f"fused_getrs:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i in range(self.batch.batch_count):
            n = int(self.batch.sizes_host[i])
            rhs = self.rhs_views[i]
            nrhs = 0 if rhs is None else (rhs.shape[1] if rhs.ndim == 2 else 1)
            if n == 0 or nrhs == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            flops = 2.0 * _flops.trsm_flops(n, nrhs, side="left") * w
            # Pivot application adds one swap pass over the RHS.
            per.append((flops, (n * n + 3.0 * n * nrhs) * elem, 2.0 * n, n))
        return self._grouped(per)

    def run_numerics(self) -> None:
        from ..hostblas import apply_pivots

        for i in range(self.batch.batch_count):
            rhs = self.rhs_views[i]
            n = int(self.batch.sizes_host[i])
            if rhs is None or n == 0:
                continue
            a = self.batch.matrix_view(i)
            b2d = rhs if rhs.ndim == 2 else rhs[:, None]
            apply_pivots(b2d, self.ipivs[i, :n])
            host_trsm("l", "l", "n", "u", 1.0, a, b2d)
            host_trsm("l", "u", "n", "n", 1.0, a, b2d)


class FusedPotrsKernel(_PanelKernelBase):
    """Fused forward+backward substitution per matrix (potrs).

    One block per matrix holds the right-hand side in shared memory and
    runs both triangular solves back to back — the solve counterpart of
    the fused factorization kernel.
    """

    def __init__(self, batch, rhs_views: list, max_rows: int):
        super().__init__(batch, max_rows)
        if len(rhs_views) != batch.batch_count:
            raise ValueError("one RHS view per matrix required")
        self.rhs_views = rhs_views
        self.name = f"fused_potrs:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i in range(self.batch.batch_count):
            n = int(self.batch.sizes_host[i])
            rhs = self.rhs_views[i]
            nrhs = 0 if rhs is None else (rhs.shape[1] if rhs.ndim == 2 else 1)
            if n == 0 or nrhs == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            flops = 2.0 * _flops.trsm_flops(n, nrhs, side="left") * w
            per.append((flops, (n * n + 2.0 * n * nrhs) * elem, 2.0 * n, n))
        return self._grouped(per)

    def run_numerics(self) -> None:
        for i in range(self.batch.batch_count):
            rhs = self.rhs_views[i]
            n = int(self.batch.sizes_host[i])
            if rhs is None or n == 0:
                continue
            a = self.batch.matrix_view(i)
            b2d = rhs if rhs.ndim == 2 else rhs[:, None]
            host_trsm("l", "l", "n", "n", 1.0, a, b2d)
            host_trsm("l", "l", "c", "n", 1.0, a, b2d)
