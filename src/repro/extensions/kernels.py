"""Panel kernels for the LU/QR/solve extensions.

The heavy lifting (trailing updates, block-reflector applications) goes
through :class:`~repro.kernels.gemm.VbatchedGemmKernel` untouched; the
kernels here cover only the tall-skinny panel work and row swaps.
"""

from __future__ import annotations

import numpy as np

from .. import flops as _flops
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from ..hostblas import geqr2, getf2, larft, trsm as host_trsm
from ..types import Precision, precision_info

__all__ = [
    "PanelGetf2Kernel",
    "RowSwapKernel",
    "LeftTrsmKernel",
    "PanelGeqr2Kernel",
    "FusedPotrsKernel",
    "FusedGetrsKernel",
]

_WARP = 32


class _PanelKernelBase(Kernel):
    """Shared scaffolding: one thread block per matrix, grouped works."""

    compute_efficiency = 0.50
    etm_mode = "aggressive"

    def __init__(self, batch, max_rows: int):
        super().__init__()
        if max_rows <= 0:
            raise ValueError(f"max_rows must be positive, got {max_rows}")
        self.batch = batch
        self.max_rows = int(max_rows)
        self._info = precision_info(batch.precision)

    @property
    def precision(self) -> Precision:
        return self.batch.precision

    def launch_config(self) -> LaunchConfig:
        threads = min(1024, -(-self.max_rows // _WARP) * _WARP)
        return LaunchConfig(
            threads_per_block=threads,
            shared_mem_per_block=min(48 * 1024, threads * 16 * self._info.bytes_per_element),
            regs_per_thread=48,
            ilp=2.0,
        )

    def _grouped(self, per_matrix) -> list[BlockWork]:
        groups: dict[tuple, int] = {}
        for desc in per_matrix:
            groups[desc] = groups.get(desc, 0) + 1
        works = []
        for (flops, bytes_, serial, active), count in groups.items():
            if active == 0:
                works.append(BlockWork(0.0, 0.0, active_threads=0, count=count))
            else:
                works.append(
                    BlockWork(flops, bytes_, serial_iters=serial,
                              active_threads=active, count=count)
                )
        return works


class PanelGetf2Kernel(_PanelKernelBase):
    """Pivoted LU of each matrix's ``m_i x jb_i`` panel (one block each).

    The pivot search adds a reduction to every column's serial chain,
    so the chain is ~3 dependent steps per column instead of potf2's 2.
    """

    def __init__(self, batch, offset: int, jbs: np.ndarray, ipivs: np.ndarray, max_rows: int):
        super().__init__(batch, max_rows)
        if offset < 0:
            raise ValueError(f"offset cannot be negative, got {offset}")
        self.offset = offset
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.ipivs = ipivs  # host-mirrored (k, max_n) pivot table
        self.name = f"vbatched_getf2:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            m = max(0, int(self.batch.sizes_host[i]) - self.offset)
            if jb == 0 or m == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            per.append((
                _flops.getrf_flops(m, jb) * w,
                2.0 * m * jb * elem,
                3.0 * jb,
                m,
            ))
        return self._grouped(per)

    def run_numerics(self) -> None:
        infos = self.batch.infos_dev.data
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            m = n - self.offset
            if jb == 0 or m <= 0:
                continue
            a = self.batch.matrix_view(i)
            panel = a[self.offset :, self.offset : self.offset + jb]
            piv = np.zeros(jb, dtype=np.int64)
            info = getf2(panel, piv)
            if info != 0 and infos[i] == 0:
                infos[i] = self.offset + info
            self.ipivs[i, self.offset : self.offset + jb] = self.offset + piv


class RowSwapKernel(_PanelKernelBase):
    """Apply each matrix's panel pivots to the columns outside the panel."""

    compute_efficiency = 1.0
    etm_mode = "classic"

    def __init__(self, batch, offset: int, jbs: np.ndarray, ipivs: np.ndarray, max_rows: int):
        super().__init__(batch, max_rows)
        self.offset = offset
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.ipivs = ipivs
        self.name = f"vbatched_laswp:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        elem = self._info.bytes_per_element
        per = []
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            if jb == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            # Each swap touches two full rows outside the panel.
            per.append((0.0, 2.0 * jb * max(0, n - jb) * elem, float(jb), min(n, 256)))
        return self._grouped(per)

    def run_numerics(self) -> None:
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            if jb == 0 or n - self.offset <= 0:
                continue
            a = self.batch.matrix_view(i)
            for k in range(jb):
                # ipivs holds global 1-based pivot rows already.
                p = int(self.ipivs[i, self.offset + k]) - 1
                row = self.offset + k
                if p != row and p < n:
                    a[[row, p], : self.offset] = a[[p, row], : self.offset]
                    a[[row, p], self.offset + jb :] = a[[p, row], self.offset + jb :]


class LeftTrsmKernel(_PanelKernelBase):
    """``B := op(T)^{-1} B`` with unit/non-unit triangular ``T`` per matrix.

    Used for LU's ``U12 := L11^{-1} A12`` step.  Cost follows the
    trtri+gemm decomposition at ``ib = 32`` granularity, collapsed into
    one modeled launch (the trailing gemm dominates the step anyway).
    """

    compute_efficiency = 0.75
    etm_mode = "classic"

    def __init__(self, batch, offset: int, jbs: np.ndarray, max_rows: int,
                 uplo: str = "l", diag: str = "u"):
        super().__init__(batch, max_rows)
        self.offset = offset
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.uplo = uplo
        self.diag = diag
        self.name = f"vbatched_trsm_left:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            ncols = max(0, n - self.offset - jb)
            if jb == 0 or ncols == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            per.append((
                _flops.trsm_flops(jb, ncols, side="left") * w,
                (jb * jb + 2.0 * jb * ncols) * elem,
                float(-(-jb // 32)) * 2.0,
                min(jb * 4, 1024),
            ))
        return self._grouped(per)

    def run_numerics(self) -> None:
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            j1 = self.offset + jb
            if jb == 0 or n - j1 <= 0:
                continue
            a = self.batch.matrix_view(i)
            host_trsm("l", self.uplo, "n", self.diag, 1.0,
                      a[self.offset : j1, self.offset : j1], a[self.offset : j1, j1:])


class PanelGeqr2Kernel(_PanelKernelBase):
    """Householder QR of each matrix's ``m_i x jb_i`` panel + its ``T``.

    Every column needs a norm reduction, a scale and a rank-1 update:
    ~3 dependent serial steps per column.  The ``T`` accumulation is
    folded in (its flops are ``jb^2 m``-ish, charged here).
    """

    def __init__(self, batch, offset: int, jbs: np.ndarray, taus: np.ndarray,
                 t_store: dict, max_rows: int):
        super().__init__(batch, max_rows)
        self.offset = offset
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.taus = taus
        self.t_store = t_store
        self.name = f"vbatched_geqr2:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            m = max(0, int(self.batch.sizes_host[i]) - self.offset)
            if jb == 0 or m == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            flops = _flops.geqrf_flops(m, jb) + jb * jb * m  # panel + larft
            per.append((flops * w, 2.0 * m * jb * elem, 3.0 * jb, m))
        return self._grouped(per)

    def run_numerics(self) -> None:
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            n = int(self.batch.sizes_host[i])
            m = n - self.offset
            if jb == 0 or m <= 0:
                continue
            a = self.batch.matrix_view(i)
            panel = a[self.offset :, self.offset : self.offset + jb]
            geqr2(panel, self.taus[i, self.offset : self.offset + jb])
            self.t_store[i] = larft(panel, self.taus[i, self.offset : self.offset + jb])


class FusedGetrsKernel(_PanelKernelBase):
    """Fused pivoted forward+backward substitution per matrix (getrs).

    One block per matrix: apply the row interchanges to the RHS, solve
    with unit-lower ``L`` then upper ``U`` — the LU counterpart of the
    fused potrs kernel.
    """

    def __init__(self, batch, rhs_views: list, ipivs: np.ndarray, max_rows: int):
        super().__init__(batch, max_rows)
        if len(rhs_views) != batch.batch_count:
            raise ValueError("one RHS view per matrix required")
        self.rhs_views = rhs_views
        self.ipivs = ipivs
        self.name = f"fused_getrs:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i in range(self.batch.batch_count):
            n = int(self.batch.sizes_host[i])
            rhs = self.rhs_views[i]
            nrhs = 0 if rhs is None else (rhs.shape[1] if rhs.ndim == 2 else 1)
            if n == 0 or nrhs == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            flops = 2.0 * _flops.trsm_flops(n, nrhs, side="left") * w
            # Pivot application adds one swap pass over the RHS.
            per.append((flops, (n * n + 3.0 * n * nrhs) * elem, 2.0 * n, n))
        return self._grouped(per)

    def run_numerics(self) -> None:
        from ..hostblas import apply_pivots

        for i in range(self.batch.batch_count):
            rhs = self.rhs_views[i]
            n = int(self.batch.sizes_host[i])
            if rhs is None or n == 0:
                continue
            a = self.batch.matrix_view(i)
            b2d = rhs if rhs.ndim == 2 else rhs[:, None]
            apply_pivots(b2d, self.ipivs[i, :n])
            host_trsm("l", "l", "n", "u", 1.0, a, b2d)
            host_trsm("l", "u", "n", "n", 1.0, a, b2d)


class FusedPotrsKernel(_PanelKernelBase):
    """Fused forward+backward substitution per matrix (potrs).

    One block per matrix holds the right-hand side in shared memory and
    runs both triangular solves back to back — the solve counterpart of
    the fused factorization kernel.
    """

    def __init__(self, batch, rhs_views: list, max_rows: int):
        super().__init__(batch, max_rows)
        if len(rhs_views) != batch.batch_count:
            raise ValueError("one RHS view per matrix required")
        self.rhs_views = rhs_views
        self.name = f"fused_potrs:{self._info.name}"

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        per = []
        for i in range(self.batch.batch_count):
            n = int(self.batch.sizes_host[i])
            rhs = self.rhs_views[i]
            nrhs = 0 if rhs is None else (rhs.shape[1] if rhs.ndim == 2 else 1)
            if n == 0 or nrhs == 0:
                per.append((0.0, 0.0, 0.0, 0))
                continue
            flops = 2.0 * _flops.trsm_flops(n, nrhs, side="left") * w
            per.append((flops, (n * n + 2.0 * n * nrhs) * elem, 2.0 * n, n))
        return self._grouped(per)

    def run_numerics(self) -> None:
        for i in range(self.batch.batch_count):
            rhs = self.rhs_views[i]
            n = int(self.batch.sizes_host[i])
            if rhs is None or n == 0:
                continue
            a = self.batch.matrix_view(i)
            b2d = rhs if rhs.ndim == 2 else rhs[:, None]
            host_trsm("l", "l", "n", "n", 1.0, a, b2d)
            host_trsm("l", "l", "c", "n", 1.0, a, b2d)
