"""Vbatched Householder QR factorization (paper §V), plan/execute split.

The driver is a *pure planner*: :func:`plan_geqrf` emits a
:class:`~repro.core.plan.LaunchPlan` and never moves the simulated
clock.  Two approaches, mirroring the POTRF drivers:

* **separated** — the blocked compact-WY sweep per ``NB`` panel: the
  panel kernel computes the reflectors and the ``T`` factor, and the
  block-reflector application to the trailing columns is two vbatched
  gemm launches (``W = V^H C`` and ``C -= V (T^H W)``), the second of
  which carries the exact per-matrix update numerics.
* **fused** — one whole-matrix ``geqr2`` launch per implicit-sorting
  size window (the panel *is* the matrix, so there is no trailing
  update); right of the crossover the long serial column chain loses to
  the blocked sweep.

:func:`geqrf_vbatched` is the eager-shaped wrapper: it routes through
the generic operation driver, so ``plan_cache=``, ``optimize=`` and
``devices=`` (DeviceGroup/HeteroGroup sharding) all apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import flops as _flops
from ..core.batch import VBatch
from ..core.plan import LaunchPlan, PlanBuilder
from ..core.sorting import partition_windows, sorted_order
from ..errors import ArgumentError
from ..kernels.aux import StepSizesKernel
from ..kernels.gemm import GemmTask, VbatchedGemmKernel
from ..types import precision_info
from .kernels import LarfbUpdateGemmKernel, OpRunStats, PanelGeqr2Kernel

__all__ = ["GeqrfResult", "geqrf_vbatched", "plan_geqrf"]

_WINDOW_MIN_COUNT = 256


@dataclass
class GeqrfResult:
    """Outcome of one vbatched QR run."""

    elapsed: float
    total_flops: float
    taus: np.ndarray  # (batch, max_n)
    launch_stats: object = field(default_factory=dict)
    approach: str = "separated"
    #: Heterogeneous runs only (see :class:`~repro.ops.driver.OpResult`).
    placement: list | None = None
    member_stats: list | None = None

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)


def plan_geqrf(
    device,
    batch: VBatch,
    max_n: int,
    *,
    panel_nb: int = 64,
    approach: str = "separated",
    sorting: bool = False,
) -> LaunchPlan:
    """Emit the QR launch DAG (no device time passes).

    The plan's ``meta["outputs"]["taus"]`` array is host-mirrored
    storage the panel kernels fill during execution; a cached plan
    re-fills the same array on re-execution.
    """
    if panel_nb <= 0:
        raise ArgumentError(4, f"panel_nb must be positive, got {panel_nb}")
    if max_n < batch.max_size_host:
        raise ArgumentError(3, f"max_n={max_n} smaller than largest matrix")
    if approach not in ("fused", "separated"):
        raise ArgumentError(1, f"bad geqrf approach {approach!r}")

    k = batch.batch_count
    sizes = batch.sizes_host
    info = precision_info(batch.precision)
    taus = np.zeros((k, max_n), dtype=info.dtype)
    stats = OpRunStats()
    pb = PlanBuilder(device, batch)
    try:
        taus_dev = pb.workspace((k, max_n), info.dtype)  # noqa: F841 — residency
        remaining_dev = pb.workspace((k,), np.int64)
        panel_dev = pb.workspace((k,), np.int64)
        stats_dev = pb.workspace((2,), np.int64)

        if approach == "fused":
            # Whole-matrix panels: one geqr2 launch per size window.
            order = sorted_order(sizes) if sorting else None
            stats.steps = 1
            pb.aux(
                StepSizesKernel(batch.sizes_dev, 0, max_n, remaining_dev, panel_dev, stats_dev)
            )
            jbs = sizes.astype(np.int64)
            if order is None:
                with pb.tagged("panel"):
                    pb.launch(PanelGeqr2Kernel(batch, 0, jbs, taus, {}, max_n))
            else:
                windows = partition_windows(sizes, order, 0, panel_nb, _WINDOW_MIN_COUNT)
                stats.window_launches_max = len(windows)
                for win in windows:
                    with pb.tagged("panel"):
                        pb.launch(
                            PanelGeqr2Kernel(
                                batch, 0, jbs, taus, {}, win.max_m, indices=win.indices
                            )
                        )
        else:
            order = sorted_order(sizes) if sorting else np.arange(k, dtype=np.int64)
            for s in range(-(-max_n // panel_nb)):
                offset = s * panel_nb
                pb.aux(
                    StepSizesKernel(
                        batch.sizes_dev, offset, panel_nb, remaining_dev, panel_dev, stats_dev
                    )
                )
                max_rows = max_n - offset
                stats.steps += 1
                remaining = np.maximum(0, sizes - offset)
                jbs = np.minimum(remaining, panel_nb)
                t_store: dict[int, np.ndarray] = {}

                with pb.tagged("panel"):
                    pb.launch(PanelGeqr2Kernel(batch, offset, jbs, taus, t_store, max_rows))

                # Block-reflector application: modeled as the two dominant
                # gemm launches of larfb (W = V^H C, then C -= V (T^H W));
                # the second launch carries the exact compact-WY update.
                gemm1, gemm2 = [], []
                for i in order:
                    i = int(i)
                    jb = int(jbs[i])
                    m = int(remaining[i])
                    ncols = m - jb
                    if jb == 0 or ncols <= 0:
                        gemm1.append(GemmTask(0, 0, 0))
                        gemm2.append(GemmTask(0, 0, 0))
                        continue
                    gemm1.append(GemmTask(m=jb, n=ncols, k=m))
                    gemm2.append(GemmTask(m=m, n=ncols, k=jb))
                if any(t.m > 0 for t in gemm1):
                    with pb.tagged("gemm"):
                        pb.launch(VbatchedGemmKernel(gemm1, batch.precision, label="larfb_w"))
                        pb.launch(
                            LarfbUpdateGemmKernel(
                                gemm2, batch, offset, jbs, t_store, taus, label="larfb_c"
                            )
                        )
    except BaseException:
        pb.abandon()
        raise
    return pb.build(
        run_stats=stats,
        meta={
            "op": "geqrf",
            "planner": approach,
            "panel_nb": panel_nb,
            "max_n": max_n,
            "outputs": {"taus": taus},
        },
    )


def geqrf_vbatched(
    device,
    batch: VBatch,
    max_n: int | None = None,
    panel_nb: int = 64,
    *,
    options=None,
    devices=None,
    plan_cache=None,
    optimize: str | None = None,
) -> GeqrfResult:
    """QR-factorize every matrix in the batch, in place (LAPACK storage).

    ``R`` lands in each upper triangle, the Householder vectors below
    the diagonal; the result carries the per-matrix ``tau`` scalars.
    ``max_n`` defaults to a device-side reduction.  ``options`` is an
    :class:`~repro.ops.options.OpOptions`; the scaling hooks
    (``devices=``, ``plan_cache=``, ``optimize=``) match the POTRF
    driver.
    """
    from ..ops.driver import run_op_vbatched
    from ..ops.options import OpOptions

    if options is None:
        options = OpOptions(panel_nb=panel_nb)
    result = run_op_vbatched(
        device, batch, max_n, "geqrf", options,
        devices=devices, plan_cache=plan_cache, optimize=optimize,
    )
    return GeqrfResult(
        elapsed=result.elapsed,
        total_flops=result.total_flops,
        taus=result.outputs["taus"],
        launch_stats=result.launch_stats,
        approach=result.approach,
        placement=result.placement,
        member_stats=result.member_stats,
    )
