"""Vbatched Householder QR factorization (paper §V).

Blocked compact-WY sweep per ``NB`` panel: the panel kernel computes
the reflectors and the ``T`` factor; the block-reflector application to
the trailing columns is two vbatched gemm launches (``W = V^H C`` and
``C -= V (T^H W)``) — the reuse-out-of-the-box story again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import flops as _flops
from ..core.batch import VBatch
from ..errors import ArgumentError
from ..kernels.aux import StepSizesKernel, compute_max_size
from ..kernels.gemm import GemmTask, VbatchedGemmKernel
from ..hostblas import apply_q_transpose
from ..types import precision_info
from .kernels import PanelGeqr2Kernel

__all__ = ["GeqrfResult", "geqrf_vbatched"]


@dataclass
class GeqrfResult:
    """Outcome of one vbatched QR run."""

    elapsed: float
    total_flops: float
    taus: np.ndarray  # (batch, max_n)
    launch_stats: dict = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)


def geqrf_vbatched(
    device,
    batch: VBatch,
    max_n: int | None = None,
    panel_nb: int = 64,
) -> GeqrfResult:
    """QR-factorize every matrix in the batch, in place (LAPACK storage).

    ``R`` lands in each upper triangle, the Householder vectors below
    the diagonal; the result carries the per-matrix ``tau`` scalars.
    ``max_n`` defaults to a device-side reduction.
    """
    if panel_nb <= 0:
        raise ArgumentError(4, f"panel_nb must be positive, got {panel_nb}")
    if max_n is None:
        max_n = compute_max_size(device, batch)
    if max_n < batch.max_size_host:
        raise ArgumentError(3, f"max_n={max_n} smaller than largest matrix")

    k = batch.batch_count
    sizes = batch.sizes_host
    info = precision_info(batch.precision)
    taus = np.zeros((k, max_n), dtype=info.dtype)
    taus_dev = device.alloc((k, max_n), info.dtype)
    remaining_dev = device.alloc((k,), np.int64)
    panel_dev = device.alloc((k,), np.int64)
    stats_dev = device.alloc((2,), np.int64)
    stats = {"steps": 0, "panel": 0, "larfb_gemms": 0, "aux": 0}
    numerics = device.execute_numerics

    t0 = device.synchronize()
    for s in range(-(-max_n // panel_nb)):
        offset = s * panel_nb
        device.launch(
            StepSizesKernel(batch.sizes_dev, offset, panel_nb, remaining_dev, panel_dev, stats_dev)
        )
        stats["aux"] += 1
        max_rows = max_n - offset
        if max_rows <= 0:
            break
        stats["steps"] += 1
        remaining = np.maximum(0, sizes - offset)
        jbs = np.minimum(remaining, panel_nb)
        t_store: dict[int, np.ndarray] = {}

        device.launch(PanelGeqr2Kernel(batch, offset, jbs, taus, t_store, max_rows))
        stats["panel"] += 1

        # Block-reflector application: modeled as the two dominant gemm
        # launches of larfb (W = V^H C, then C -= V (T^H W)); the
        # numerics apply the exact compact-WY update per matrix.
        gemm1, gemm2 = [], []
        for i in range(k):
            jb = int(jbs[i])
            m = int(remaining[i])
            ncols = m - jb
            if jb == 0 or ncols <= 0:
                gemm1.append(GemmTask(0, 0, 0))
                gemm2.append(GemmTask(0, 0, 0))
                continue
            gemm1.append(GemmTask(m=jb, n=ncols, k=m))
            gemm2.append(GemmTask(m=m, n=ncols, k=jb))
        if any(t.m > 0 for t in gemm1):
            device.launch(VbatchedGemmKernel(gemm1, batch.precision, label="larfb_w"))
            device.launch(VbatchedGemmKernel(gemm2, batch.precision, label="larfb_c"))
            stats["larfb_gemms"] += 2
        if numerics:
            for i in range(k):
                jb = int(jbs[i])
                n = int(sizes[i])
                if jb == 0 or n - offset - jb <= 0:
                    continue
                a = batch.matrix_view(i)
                apply_q_transpose(
                    a[offset:, offset : offset + jb], t_store[i], a[offset:, offset + jb :]
                )

    elapsed = device.synchronize() - t0
    for arr in (taus_dev, remaining_dev, panel_dev, stats_dev):
        arr.free()
    return GeqrfResult(
        elapsed=elapsed,
        total_flops=float(
            sum(_flops.geqrf_flops(int(n), int(n), batch.precision) for n in sizes)
        ),
        taus=taus,
        launch_stats=stats,
    )
