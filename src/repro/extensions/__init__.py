"""Vbatched LU, QR and triangular-solve extensions (paper §V).

"Future directions include the extension of this work to the LU and QR
factorizations ... where many of the BLAS kernels proposed here can be
reused out of the box."  These drivers demonstrate exactly that: the
vbatched gemm kernel carries every trailing update and block-reflector
application unchanged; only the thin panel kernels are new.
"""

from .getrf import GetrfResult, getrf_vbatched, plan_getrf
from .geqrf import GeqrfResult, geqrf_vbatched, plan_geqrf
from .gesvj import GesvjResult, gesvj_vbatched, plan_gesvj
from .solve import PotrsResult, getrs_vbatched, potrs_vbatched
from .drivers import SolveResult, gesv_vbatched, posv_vbatched

__all__ = [
    "GetrfResult",
    "getrf_vbatched",
    "plan_getrf",
    "GeqrfResult",
    "geqrf_vbatched",
    "plan_geqrf",
    "GesvjResult",
    "gesvj_vbatched",
    "plan_gesvj",
    "PotrsResult",
    "potrs_vbatched",
    "getrs_vbatched",
    "SolveResult",
    "posv_vbatched",
    "gesv_vbatched",
]
