"""Exception hierarchy for the vbatched framework.

The paper's future-work section calls out LAPACK compliance of error
reporting; we implement it here.  Argument errors raise immediately with
a negative ``info`` (LAPACK convention: ``info = -i`` means argument
``i`` was illegal).  Numerical failures (a non-SPD matrix in a POTRF
batch) are reported *per matrix* through an info array and, when the
caller asks for exceptions, via :class:`BatchNumericalError`.
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = [
    "ReproError",
    "AdmissionError",
    "ArgumentError",
    "BatchNumericalError",
    "DeadlineUnmeetableError",
    "DeviceError",
    "DeviceOutOfMemory",
    "FleetError",
    "LaunchError",
    "OverloadShedError",
    "PlanError",
    "PlanExecutionError",
    "QuotaExceededError",
    "ReplicaUnavailableError",
    "RequestCancelled",
    "RetriesExhaustedError",
    "ServingError",
    "StreamError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ArgumentError(ReproError, ValueError):
    """An illegal routine argument (LAPACK ``info < 0`` analogue).

    Parameters
    ----------
    argument_index:
        1-based position of the offending argument, matching LAPACK's
        ``XERBLA`` numbering; exposed as ``info = -argument_index``.
    """

    def __init__(self, argument_index: int, message: str):
        super().__init__(message)
        self.argument_index = int(argument_index)

    @property
    def info(self) -> int:
        return -self.argument_index


class BatchNumericalError(ReproError, ArithmeticError):
    """One or more matrices in a batch failed numerically.

    ``infos`` maps batch index -> positive LAPACK info code (for POTRF:
    the order of the leading minor that is not positive definite).
    """

    def __init__(self, infos: Mapping[int, int], routine: str):
        self.infos = dict(infos)
        self.routine = routine
        failing = ", ".join(
            f"batch[{i}] info={v}" for i, v in sorted(self.infos.items())[:8]
        )
        more = "" if len(self.infos) <= 8 else f" (+{len(self.infos) - 8} more)"
        super().__init__(f"{routine}: {len(self.infos)} matrices failed: {failing}{more}")


class DeviceError(ReproError):
    """Base class for simulated-device failures."""


class DeviceOutOfMemory(DeviceError, MemoryError):
    """Global-memory allocation exceeded device capacity.

    This is a *modeled* failure: the padding baseline in Figs 8-9 relies
    on it to truncate, exactly as the K40c runs out of memory in the
    paper.
    """

    def __init__(self, requested: int, free: int, total: int):
        self.requested = int(requested)
        self.free = int(free)
        self.total = int(total)
        super().__init__(
            f"device OOM: requested {requested} B, free {free} B of {total} B"
        )


class LaunchError(DeviceError):
    """A kernel launch configuration violates a device limit."""


class StreamError(DeviceError):
    """Invalid stream/event usage (e.g. waiting on an unrecorded event)."""


class PlanError(ReproError):
    """A malformed launch plan, or invalid plan lifecycle usage
    (executing a closed plan, executing on the wrong device, ...)."""


class PlanExecutionError(PlanError):
    """A plan failed while executing inside ``execute_concurrently``.

    Wraps the first per-plan failure with enough context to find the
    offending shard: the plan's position in the submitted list and the
    device it was bound to.  The original exception is chained as
    ``__cause__``.

    ``partial`` carries the per-plan
    :class:`~repro.device.executor.ExecutionStats` of the shards that
    *did* finish (``None`` for the failed/abandoned ones) so a retrying
    caller — the serving fleet — can account the work the first attempt
    really did without double-counting the batch when the retry lands.
    """

    def __init__(
        self,
        plan_index: int,
        device_name: str,
        cause: BaseException,
        partial: list | None = None,
    ):
        self.plan_index = int(plan_index)
        self.device_name = str(device_name)
        self.partial = list(partial) if partial is not None else []
        super().__init__(
            f"plan[{plan_index}] on device {device_name!r} failed: "
            f"{type(cause).__name__}: {cause}"
        )


class ServingError(ReproError):
    """Base class for batch-serving failures (policy violations,
    shutdown-cancelled requests, invalid server lifecycle usage)."""


class AdmissionError(ServingError):
    """A request was refused at the server's front door: the bounded
    queue is full under the ``reject`` admission policy, or the server
    has stopped accepting work."""


class RequestCancelled(ServingError):
    """A request was cancelled before it was served — by the client
    (timeout/explicit cancel propagated through the batcher) or by a
    non-drain shutdown racing its dispatch."""


class FleetError(ServingError):
    """Base class for multi-replica serving-fleet failures."""


class QuotaExceededError(AdmissionError):
    """A tenant submitted past its outstanding-request quota."""

    def __init__(self, tenant: str, quota: int):
        self.tenant = str(tenant)
        self.quota = int(quota)
        super().__init__(f"tenant {tenant!r} is at its quota of {quota} outstanding requests")


class OverloadShedError(AdmissionError):
    """The router shed this request to protect higher classes: the
    fleet is over the shed threshold for the request's SLO class."""

    def __init__(self, slo: str, depth: int, limit: int):
        self.slo = str(slo)
        self.depth = int(depth)
        self.limit = int(limit)
        super().__init__(
            f"{slo} request shed under overload (router depth {depth} >= shed level {limit})"
        )


class DeadlineUnmeetableError(AdmissionError):
    """Deadline-aware admission refused a request whose deadline the
    current backlog makes unmeetable — rejecting now beats serving a
    guaranteed miss later."""

    def __init__(self, deadline: float, estimate: float):
        self.deadline = float(deadline)
        self.estimate = float(estimate)
        super().__init__(
            f"deadline {deadline * 1e3:.1f} ms unmeetable: backlog delay estimate "
            f"{estimate * 1e3:.1f} ms"
        )


class RetriesExhaustedError(FleetError):
    """Every retry attempt of a faulted request failed; the last
    underlying failure is chained as ``__cause__`` and kept as
    ``last_error``."""

    def __init__(self, attempts: int, last_error: BaseException):
        self.attempts = int(attempts)
        self.last_error = last_error
        super().__init__(
            f"request failed after {attempts} attempts: "
            f"{type(last_error).__name__}: {last_error}"
        )


class ReplicaUnavailableError(FleetError):
    """No healthy replica was available to (re)dispatch a request."""
