"""Exception hierarchy for the vbatched framework.

The paper's future-work section calls out LAPACK compliance of error
reporting; we implement it here.  Argument errors raise immediately with
a negative ``info`` (LAPACK convention: ``info = -i`` means argument
``i`` was illegal).  Numerical failures (a non-SPD matrix in a POTRF
batch) are reported *per matrix* through an info array and, when the
caller asks for exceptions, via :class:`BatchNumericalError`.
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = [
    "ReproError",
    "AdmissionError",
    "ArgumentError",
    "BatchNumericalError",
    "DeviceError",
    "DeviceOutOfMemory",
    "LaunchError",
    "PlanError",
    "PlanExecutionError",
    "ServingError",
    "StreamError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ArgumentError(ReproError, ValueError):
    """An illegal routine argument (LAPACK ``info < 0`` analogue).

    Parameters
    ----------
    argument_index:
        1-based position of the offending argument, matching LAPACK's
        ``XERBLA`` numbering; exposed as ``info = -argument_index``.
    """

    def __init__(self, argument_index: int, message: str):
        super().__init__(message)
        self.argument_index = int(argument_index)

    @property
    def info(self) -> int:
        return -self.argument_index


class BatchNumericalError(ReproError, ArithmeticError):
    """One or more matrices in a batch failed numerically.

    ``infos`` maps batch index -> positive LAPACK info code (for POTRF:
    the order of the leading minor that is not positive definite).
    """

    def __init__(self, infos: Mapping[int, int], routine: str):
        self.infos = dict(infos)
        self.routine = routine
        failing = ", ".join(
            f"batch[{i}] info={v}" for i, v in sorted(self.infos.items())[:8]
        )
        more = "" if len(self.infos) <= 8 else f" (+{len(self.infos) - 8} more)"
        super().__init__(f"{routine}: {len(self.infos)} matrices failed: {failing}{more}")


class DeviceError(ReproError):
    """Base class for simulated-device failures."""


class DeviceOutOfMemory(DeviceError, MemoryError):
    """Global-memory allocation exceeded device capacity.

    This is a *modeled* failure: the padding baseline in Figs 8-9 relies
    on it to truncate, exactly as the K40c runs out of memory in the
    paper.
    """

    def __init__(self, requested: int, free: int, total: int):
        self.requested = int(requested)
        self.free = int(free)
        self.total = int(total)
        super().__init__(
            f"device OOM: requested {requested} B, free {free} B of {total} B"
        )


class LaunchError(DeviceError):
    """A kernel launch configuration violates a device limit."""


class StreamError(DeviceError):
    """Invalid stream/event usage (e.g. waiting on an unrecorded event)."""


class PlanError(ReproError):
    """A malformed launch plan, or invalid plan lifecycle usage
    (executing a closed plan, executing on the wrong device, ...)."""


class PlanExecutionError(PlanError):
    """A plan failed while executing inside ``execute_concurrently``.

    Wraps the first per-plan failure with enough context to find the
    offending shard: the plan's position in the submitted list and the
    device it was bound to.  The original exception is chained as
    ``__cause__``.
    """

    def __init__(self, plan_index: int, device_name: str, cause: BaseException):
        self.plan_index = int(plan_index)
        self.device_name = str(device_name)
        super().__init__(
            f"plan[{plan_index}] on device {device_name!r} failed: "
            f"{type(cause).__name__}: {cause}"
        )


class ServingError(ReproError):
    """Base class for batch-serving failures (policy violations,
    shutdown-cancelled requests, invalid server lifecycle usage)."""


class AdmissionError(ServingError):
    """A request was refused at the server's front door: the bounded
    queue is full under the ``reject`` admission policy, or the server
    has stopped accepting work."""
