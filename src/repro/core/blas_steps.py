"""The separated building-block BLAS driver (the Fig 4 baseline).

The pre-fusion batched approach of Haidar et al. [13]: a left-looking
blocked Cholesky where *every* Algorithm-1 step is its own generic
batched BLAS launch — a vbatched ``gemm`` for the panel update, a
generic (global-memory) ``potf2`` for the diagonal tile, and the
trtri+gemm ``trsm`` for the rows below.  Three to five kernel launches
and full DRAM round-trips per ``nb`` step, versus the fused kernel's
one launch and shared-memory panel: the gap between the two is exactly
what Fig 4 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ArgumentError
from ..kernels.aux import StepSizesKernel
from ..kernels.gemm import GemmTask, GemmTiling, VbatchedGemmKernel
from ..kernels.naive import NaivePotf2Kernel
from ..kernels.trsm import TrsmPanelItem, vbatched_trsm_panel
from .batch import VBatch
from .plan import LaunchPlan, PlanBuilder

__all__ = ["BlasStepDriver", "BlasStepRunStats"]


@dataclass
class BlasStepRunStats:
    """Launch accounting for the separated-BLAS baseline."""

    steps: int = 0
    gemm_launches: int = 0
    potf2_launches: int = 0
    trsm_launches: int = 0
    aux_launches: int = 0

    @property
    def total_launches(self) -> int:
        return self.gemm_launches + self.potf2_launches + self.trsm_launches


class BlasStepDriver:
    """Runs the un-fused batched-BLAS Cholesky over a :class:`VBatch`."""

    def __init__(self, device, nb: int | None = None, ib: int = 32, tiling: GemmTiling | None = None):
        if nb is not None and nb <= 0:
            raise ArgumentError(2, f"nb must be positive, got {nb}")
        self.device = device
        self.nb = nb
        self.ib = ib
        self.tiling = tiling  # None -> per-precision default in each kernel

    def plan(self, batch: VBatch, max_n: int) -> LaunchPlan:
        """Emit the un-fused gemm/potf2/trsm launch DAG."""
        if max_n <= 0:
            raise ArgumentError(3, f"max_n must be positive, got {max_n}")
        # Generic blocked codes widen the panel once the matrix can use
        # it (the MKL/MAGMA nb heuristic).
        nb = self.nb if self.nb is not None else (16 if max_n <= 64 else 32)
        stats = BlasStepRunStats()
        sizes = batch.sizes_host
        k_count = batch.batch_count
        numerics = self.device.execute_numerics
        pb = PlanBuilder(self.device, batch)

        try:
            remaining_dev = pb.workspace((k_count,), np.int64)
            panel_dev = pb.workspace((k_count,), np.int64)
            stats_dev = pb.workspace((2,), np.int64)
            inv_ws = pb.workspace((k_count, nb, nb), batch.matrices[0].dtype)

            steps = -(-max_n // nb)
            for s in range(steps):
                offset = s * nb
                pb.aux(
                    StepSizesKernel(batch.sizes_dev, offset, nb, remaining_dev, panel_dev, stats_dev)
                )
                stats.aux_launches += 1
                stats.steps += 1

                remaining = np.maximum(0, sizes - offset)
                jbs = np.minimum(remaining, nb)
                max_jb = int(jbs.max())
                if max_jb == 0:
                    break

                # 1) Panel update (left-looking): one generic gemm reading
                #    both operands from global memory — no data reuse with
                #    the slice of A the customized fused syrk exploits.
                if offset > 0:
                    tasks = []
                    for i in range(k_count):
                        m_i, jb = int(remaining[i]), int(jbs[i])
                        if jb == 0:
                            tasks.append(GemmTask(0, 0, 0))
                            continue
                        if numerics:
                            a = batch.matrix_view(i)
                            tasks.append(
                                GemmTask(
                                    m=m_i, n=jb, k=offset,
                                    a=a[offset:, :offset],
                                    b=a[offset : offset + jb, :offset],
                                    c=a[offset:, offset : offset + jb],
                                    transb="c", alpha=-1.0, beta=1.0,
                                )
                            )
                        else:
                            tasks.append(GemmTask(m=m_i, n=jb, k=offset))
                    update = VbatchedGemmKernel(
                        tasks, batch.precision, self.tiling, label="panel_update"
                    )
                    update.matrix_indices = tuple(range(len(tasks)))
                    pb.launch(update, tag="gemm")
                    stats.gemm_launches += 1

                # 2) Diagonal tile: generic global-memory potf2.
                pb.launch(NaivePotf2Kernel(batch, offset, jbs, max_jb), tag="potf2")
                stats.potf2_launches += 1

                # 3) Rows below the tile: trtri + gemm sweep.
                items = []
                for i in range(k_count):
                    jb = int(jbs[i])
                    m_below = int(remaining[i]) - jb
                    if jb == 0 or m_below <= 0:
                        items.append(TrsmPanelItem(0, 0))
                        continue
                    if numerics:
                        a = batch.matrix_view(i)
                        j1 = offset + jb
                        items.append(
                            TrsmPanelItem(
                                m=m_below, jb=jb,
                                l11=a[offset:j1, offset:j1],
                                b=a[j1:, offset:j1],
                                inv_ws=inv_ws.data[i, :jb, :jb],
                            )
                        )
                    else:
                        items.append(TrsmPanelItem(m=m_below, jb=jb))
                if any(it.m > 0 for it in items):
                    with pb.tagged("trsm"):
                        stats.trsm_launches += vbatched_trsm_panel(
                            pb, items, batch.precision, self.ib, self.tiling
                        )
        except BaseException:
            pb.abandon()
            raise
        return pb.build(run_stats=stats, meta={"planner": "blas-steps", "nb": nb, "max_n": max_n})

    def factorize(self, batch: VBatch, max_n: int) -> BlasStepRunStats:
        from ..device.executor import PlanExecutor

        plan = self.plan(batch, max_n)
        try:
            PlanExecutor(self.device).execute(plan)
        finally:
            plan.close()
        return plan.run_stats
