"""Fixed-size batched Cholesky (the pre-existing MAGMA functionality).

The paper's starting point (§III-D, Fig 4): all matrices share one
size.  Both approaches apply — the fused kernel per step, or the
separated BLAS sequence — and this module is what the padding baseline
and the Fig 4 fusion study run on.  Implementation-wise a fixed batch
is just a :class:`VBatch` with constant sizes, so the vbatched drivers
are reused directly; what differs is that no ETM ever fires (every
block always has work) and no size metadata varies.
"""

from __future__ import annotations

import numpy as np

from ..errors import ArgumentError
from .batch import VBatch
from .blas_steps import BlasStepDriver
from .fused import FusedDriver, fused_max_feasible_size
from .separated import SeparatedDriver

__all__ = ["potrf_batched_fixed_run"]


def potrf_batched_fixed_run(
    device,
    batch: VBatch,
    n: int,
    approach: str = "fused",
    nb: int | None = None,
    panel_nb: int = 128,
) -> dict:
    """Factorize a fixed-size batch with the chosen approach.

    Returns a stats dict (``approach``, launch counters).  Raises
    :class:`ArgumentError` if the batch is not actually fixed-size, or
    if the fused approach is requested beyond its feasibility bound.
    """
    if not np.all(batch.sizes_host == n):
        raise ArgumentError(3, "batch is not fixed-size; use potrf_vbatched")
    if approach == "fused":
        if n > fused_max_feasible_size(batch.precision, nb):
            raise ArgumentError(
                4,
                f"fused approach infeasible for n={n} "
                f"(max {fused_max_feasible_size(batch.precision, nb)}); use 'separated'",
            )
        stats = FusedDriver(device, etm="classic", sorting=False, nb=nb).factorize(batch, n)
        return {"approach": "fused", "launches": stats.fused_launches, "steps": stats.steps}
    if approach == "separated":
        stats = SeparatedDriver(device, panel_nb=panel_nb).factorize(batch, n)
        return {
            "approach": "separated",
            "launches": stats.potf2_launches + stats.trsm_launches + stats.syrk_launches,
            "steps": stats.steps,
        }
    if approach == "blas":
        # The un-fused generic batched-BLAS baseline of Fig 4.
        stats = BlasStepDriver(device, nb=nb or 32).factorize(batch, n)
        return {"approach": "blas", "launches": stats.total_launches, "steps": stats.steps}
    raise ArgumentError(
        4, f"approach must be 'fused', 'separated' or 'blas', got {approach!r}"
    )
