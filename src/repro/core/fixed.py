"""Fixed-size batched Cholesky (the pre-existing MAGMA functionality).

The paper's starting point (§III-D, Fig 4): all matrices share one
size.  Both approaches apply — the fused kernel per step, or the
separated BLAS sequence — and this module is what the padding baseline
and the Fig 4 fusion study run on.  Implementation-wise a fixed batch
is just a :class:`VBatch` with constant sizes, so the vbatched drivers
are reused directly; what differs is that no ETM ever fires (every
block always has work) and no size metadata varies.
"""

from __future__ import annotations

import numpy as np

from ..errors import ArgumentError
from .batch import VBatch
from .blas_steps import BlasStepDriver
from .fused import FusedDriver, fused_max_feasible_size
from .plan import LaunchPlan
from .separated import SeparatedDriver

__all__ = ["plan_potrf_fixed", "potrf_batched_fixed_run"]


def plan_potrf_fixed(
    device,
    batch: VBatch,
    n: int,
    approach: str = "fused",
    nb: int | None = None,
    panel_nb: int = 128,
) -> LaunchPlan:
    """Plan a fixed-size batch with the chosen approach.

    Raises :class:`ArgumentError` if the batch is not actually
    fixed-size, or if the fused approach is requested beyond its
    feasibility bound.
    """
    if not np.all(batch.sizes_host == n):
        raise ArgumentError(3, "batch is not fixed-size; use potrf_vbatched")
    if approach == "fused":
        if n > fused_max_feasible_size(batch.precision, nb):
            raise ArgumentError(
                4,
                f"fused approach infeasible for n={n} "
                f"(max {fused_max_feasible_size(batch.precision, nb)}); use 'separated'",
            )
        planner = FusedDriver(device, etm="classic", sorting=False, nb=nb)
    elif approach == "separated":
        planner = SeparatedDriver(device, panel_nb=panel_nb)
    elif approach == "blas":
        # The un-fused generic batched-BLAS baseline of Fig 4.
        planner = BlasStepDriver(device, nb=nb or 32)
    else:
        raise ArgumentError(
            4, f"approach must be 'fused', 'separated' or 'blas', got {approach!r}"
        )
    plan = planner.plan(batch, n)
    plan.meta["fixed_n"] = n
    plan.meta["approach"] = approach
    return plan


def potrf_batched_fixed_run(
    device,
    batch: VBatch,
    n: int,
    approach: str = "fused",
    nb: int | None = None,
    panel_nb: int = 128,
) -> dict:
    """Factorize a fixed-size batch with the chosen approach.

    Returns a stats dict (``approach``, launch counters).
    """
    from ..device.executor import PlanExecutor

    plan = plan_potrf_fixed(device, batch, n, approach, nb, panel_nb)
    try:
        PlanExecutor(device).execute(plan)
    finally:
        plan.close()
    stats = plan.run_stats
    if approach == "fused":
        return {"approach": "fused", "launches": stats.fused_launches, "steps": stats.steps}
    if approach == "separated":
        return {
            "approach": "separated",
            "launches": stats.potf2_launches + stats.trsm_launches + stats.syrk_launches,
            "steps": stats.steps,
        }
    return {"approach": "blas", "launches": stats.total_launches, "steps": stats.steps}
