"""The vbatched data structure (paper §III-A).

A vbatched routine receives *arrays* of matrix pointers, sizes and
leading dimensions, all resident in device memory — any arithmetic on
them (max reductions, per-step offsets) must happen in GPU kernels.
:class:`VBatch` models exactly that: per-matrix device allocations plus
device-resident ``sizes``/``ldas``/``infos`` integer arrays.

The host-side driver is *not* supposed to peek at ``sizes_host`` for
control decisions; it goes through the auxiliary kernels in
:mod:`repro.kernels.aux` (that is what the "interface overhead is
negligible" experiment measures).  Simulated kernels, however, read
``sizes_host`` freely — they play the role of the hardware, which sees
device memory directly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ArgumentError
from ..types import Precision, precision_info

__all__ = ["VBatch"]


class VBatch:
    """A batch of independent square matrices of (possibly) varying size."""

    def __init__(self, device, matrices, sizes_host: np.ndarray, ldas_host: np.ndarray):
        if len(matrices) != sizes_host.size or sizes_host.size != ldas_host.size:
            raise ArgumentError(2, "matrices/sizes/ldas length mismatch")
        if sizes_host.size == 0:
            raise ArgumentError(2, "batch must contain at least one matrix")
        if np.any(sizes_host < 0):
            raise ArgumentError(2, "matrix sizes cannot be negative")
        if np.any(ldas_host < np.maximum(sizes_host, 1)):
            raise ArgumentError(3, "each lda must be >= max(1, n)")
        self.device = device
        self.matrices = list(matrices)
        self.sizes_host = sizes_host.astype(np.int64)
        self.ldas_host = ldas_host.astype(np.int64)
        # Device-resident metadata (charged against device memory).
        self.sizes_dev = device.alloc((sizes_host.size,), np.int64)
        self.ldas_dev = device.alloc((sizes_host.size,), np.int64)
        self.infos_dev = device.alloc((sizes_host.size,), np.int64)
        if device.execute_numerics:
            self.sizes_dev.data[...] = self.sizes_host
            self.ldas_dev.data[...] = self.ldas_host

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def allocate(
        cls,
        device,
        sizes: Sequence[int] | np.ndarray,
        precision: Precision | str = Precision.D,
        ldas: Sequence[int] | np.ndarray | None = None,
    ) -> VBatch:
        """Allocate an uninitialized batch on the device (no host data).

        Used by timing-only sweeps: the cost model never reads matrix
        values, so zero-filled matrices time identically to real ones.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        ldas = sizes.copy() if ldas is None else np.asarray(ldas, dtype=np.int64)
        info = precision_info(Precision(precision))
        mats = [
            device.alloc((int(lda), int(n)), info.dtype)
            for n, lda in zip(sizes, np.maximum(ldas, 1))
        ]
        return cls(device, mats, sizes, np.maximum(ldas, 1))

    @classmethod
    def from_host(cls, device, host_matrices: Sequence[np.ndarray]) -> VBatch:
        """Upload host matrices (one PCIe-charged transfer per matrix)."""
        if not host_matrices:
            raise ArgumentError(2, "batch must contain at least one matrix")
        dtypes = {m.dtype for m in host_matrices}
        if len(dtypes) != 1:
            raise ArgumentError(2, f"mixed dtypes in batch: {sorted(map(str, dtypes))}")
        for m in host_matrices:
            if m.ndim != 2 or m.shape[0] != m.shape[1]:
                raise ArgumentError(2, f"matrices must be square, got shape {m.shape}")
        mats = [device.upload(m) for m in host_matrices]
        sizes = np.array([m.shape[1] for m in host_matrices], dtype=np.int64)
        ldas = np.array([max(m.shape[0], 1) for m in host_matrices], dtype=np.int64)
        return cls(device, mats, sizes, ldas)

    # ------------------------------------------------------------------
    # views and metadata
    # ------------------------------------------------------------------
    @property
    def batch_count(self) -> int:
        return len(self.matrices)

    @property
    def precision(self) -> Precision:
        return self.matrices[0].precision

    @property
    def max_size_host(self) -> int:
        """Host-side max — for test assertions, not for driver logic."""
        return int(self.sizes_host.max())

    @property
    def total_bytes(self) -> int:
        return sum(m.nbytes for m in self.matrices)

    def matrix_view(self, i: int) -> np.ndarray:
        """The live ``n x n`` view of matrix ``i`` inside its lda buffer."""
        n = int(self.sizes_host[i])
        return self.matrices[i].data[:n, :n]

    def download_infos(self) -> np.ndarray:
        """Fetch the per-matrix LAPACK info array to the host."""
        return self.device.download(self.infos_dev)

    def download_matrices(self) -> list[np.ndarray]:
        """Fetch every factorized matrix back to the host."""
        out = []
        for i, m in enumerate(self.matrices):
            full = self.device.download(m)
            n = int(self.sizes_host[i])
            out.append(full[:n, :n])
        return out

    def free(self) -> None:
        """Release all device allocations owned by this batch."""
        for m in self.matrices:
            m.free()
        self.sizes_dev.free()
        self.ldas_dev.free()
        self.infos_dev.free()
