"""Implicit sorting: the window scheduler of paper §III-D2.

"At every step of the computation, a window of sizes is noted as
'active sizes' ... This approach allows the algorithm to go through the
matrices by batch of 'nearly similar sizes', improving occupancy and
workload balance.  The window size is determined by the block size nb."

Concretely: matrix indices are ordered by size (descending) once, and
each factorization step's launch set is split into sub-launches whose
remaining row counts fall in one window.  Each sub-launch then gets a
block dimension tailored to its window (few idle threads), contains no
finished matrices (no dead blocks), and has near-uniform block
durations (no wave imbalance) — the three mechanisms behind the
measured gains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SizeWindow", "sorted_order", "partition_windows"]


@dataclass(frozen=True)
class SizeWindow:
    """One sub-launch: matrix indices plus their max remaining rows."""

    indices: np.ndarray
    max_m: int

    def __post_init__(self):
        if self.max_m <= 0:
            raise ValueError(f"window max_m must be positive, got {self.max_m}")
        if len(self.indices) == 0:
            raise ValueError("window cannot be empty")


def sorted_order(sizes: np.ndarray) -> np.ndarray:
    """Indices ordered by size descending (stable for reproducibility)."""
    sizes = np.asarray(sizes)
    return np.argsort(-sizes, kind="stable").astype(np.int64)


def partition_windows(
    sizes: np.ndarray,
    order: np.ndarray,
    offset: int,
    window_width: int,
    min_count: int = 0,
) -> list[SizeWindow]:
    """Split the live matrices at column ``offset`` into size windows.

    ``order`` must be a descending-size ordering of all indices; the
    live set (``sizes > offset``) is then a prefix of it.  Windows are
    emitted largest-first, each spanning ``window_width`` remaining
    rows, e.g. ``(448, 512] (384, 448] ...``.

    ``min_count`` merges adjacent windows until each launch has at
    least that many blocks: a sub-launch far smaller than the device's
    block slots would waste whole waves, so the scheduler trades a
    little size similarity for launch fullness.
    """
    if window_width <= 0:
        raise ValueError(f"window_width must be positive, got {window_width}")
    if offset < 0:
        raise ValueError(f"offset cannot be negative, got {offset}")
    sizes = np.asarray(sizes)
    remaining = sizes[order] - offset
    live_count = int(np.searchsorted(-remaining, 0))  # descending prefix
    if live_count == 0:
        return []
    live_order = order[:live_count]
    live_remaining = remaining[:live_count]

    windows: list[SizeWindow] = []
    # Window id of each live matrix: ceil(m / width) - 1, so the largest
    # window holds remaining sizes in ((w)*width, (w+1)*width].
    win_id = (live_remaining - 1) // window_width
    start = 0
    while start < live_count:
        w = win_id[start]
        end = start
        while end < live_count and (win_id[end] == w or end - start < min_count):
            w = win_id[end]
            end += 1
        windows.append(
            SizeWindow(
                indices=live_order[start:end].copy(),
                max_m=int(live_remaining[start]),  # descending => first is max
            )
        )
        start = end
    return windows
