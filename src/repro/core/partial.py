"""Vbatched *partial* Cholesky: eliminate each matrix's leading columns.

The multifrontal method factorizes a frontal matrix only through its
separator block and leaves a Schur complement for the parent front —
i.e. a batched *partial* factorization with a different elimination
count ``k_i`` per matrix.  This is exactly the "foundation" use the
paper promises sparse direct solvers (§I, §V): the routine below is
assembled entirely from the existing vbatched kernels — the fused panel
kernel for the pivot blocks, the trtri+gemm ``trsm``, and the
decision-layer ``syrk`` for the Schur update.

After the call, matrix ``i`` holds ``L11`` (lower, in its leading
``k_i x k_i`` block), ``L21 = A21 L11^{-H}`` below it, and the Schur
complement ``A22 - L21 L21^H`` in the trailing block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import flops as _flops
from ..errors import ArgumentError
from ..kernels.potf2 import PanelPotf2StepKernel
from ..kernels.syrk import SyrkTask, VbatchedSyrkKernel
from ..kernels.trsm import TrsmPanelItem, vbatched_trsm_panel
from .batch import VBatch
from .fused import default_fused_nb
from .plan import LaunchPlan, PlanBuilder

__all__ = ["PartialPotrfResult", "partial_potrf_vbatched", "plan_partial_potrf"]


@dataclass
class PartialPotrfResult:
    """Outcome of one vbatched partial factorization."""

    elapsed: float
    total_flops: float
    infos: np.ndarray
    launch_stats: dict = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)

    @property
    def failed_count(self) -> int:
        return int(np.count_nonzero(self.infos))


def _partial_flops(n: int, k: int, precision) -> float:
    """Flops of eliminating the leading ``k`` columns of an ``n x n`` SPD
    matrix: full potrf minus the potrf of the untouched trailing part."""
    return _flops.potrf_flops(n, precision) - _flops.potrf_flops(n - k, precision)


def plan_partial_potrf(
    device,
    batch: VBatch,
    k_cols: np.ndarray,
    inner_nb: int | None = None,
    ib: int = 32,
) -> LaunchPlan:
    """Plan the partial elimination (pivot potf2, trsm sweep, Schur syrk)."""
    k_cols = np.asarray(k_cols, dtype=np.int64)
    if k_cols.shape != (batch.batch_count,):
        raise ArgumentError(3, f"k_cols must have shape ({batch.batch_count},)")
    if np.any(k_cols < 0) or np.any(k_cols > batch.sizes_host):
        raise ArgumentError(3, "each k_i must satisfy 0 <= k_i <= n_i")

    max_k = int(k_cols.max(initial=0))
    stats = {"potf2": 0, "trsm": 0, "syrk": 0}
    numerics = device.execute_numerics
    sizes = batch.sizes_host
    pb = PlanBuilder(device, batch)
    if max_k == 0:
        return pb.build(run_stats=stats, meta={"planner": "partial", "max_k": 0})

    try:
        nb = inner_nb or default_fused_nb(max_k, batch.precision)

        # 1) Pivot blocks: the fused panel kernel sweeps each matrix's
        #    leading k_i x k_i block (tile-local history == global history
        #    at offset 0).
        for t in range(-(-max_k // nb)):
            pb.launch(
                PanelPotf2StepKernel(batch, 0, t, nb, k_cols, max_k, etm="aggressive"),
                tag="potf2",
            )
            stats["potf2"] += 1

        # 2) L21 := A21 L11^{-H} for the rows below each pivot block.
        inv_ws = pb.workspace((batch.batch_count, max_k, max_k), batch.matrices[0].dtype)
        items = []
        for i in range(batch.batch_count):
            k = int(k_cols[i])
            m_below = int(sizes[i]) - k
            if k == 0 or m_below <= 0:
                items.append(TrsmPanelItem(0, 0))
                continue
            if numerics:
                a = batch.matrix_view(i)
                items.append(
                    TrsmPanelItem(
                        m=m_below, jb=k,
                        l11=a[:k, :k], b=a[k:, :k],
                        inv_ws=inv_ws.data[i, :k, :k],
                    )
                )
            else:
                items.append(TrsmPanelItem(m=m_below, jb=k))
        if any(it.m > 0 for it in items):
            with pb.tagged("trsm"):
                stats["trsm"] = vbatched_trsm_panel(pb, items, batch.precision, ib)

        # 3) Schur complement: A22 -= L21 L21^H (decision-layer syrk).
        tasks = []
        for i in range(batch.batch_count):
            k = int(k_cols[i])
            trail = int(sizes[i]) - k
            if k == 0 or trail <= 0:
                tasks.append(SyrkTask(0, 0))
                continue
            if numerics:
                a = batch.matrix_view(i)
                tasks.append(SyrkTask(n=trail, k=k, a=a[k:, :k], c=a[k:, k:]))
            else:
                tasks.append(SyrkTask(n=trail, k=k))
        if any(t.n > 0 for t in tasks):
            schur = VbatchedSyrkKernel(tasks, batch.precision)
            schur.matrix_indices = tuple(range(len(tasks)))
            pb.launch(schur, tag="syrk")
            stats["syrk"] = 1
    except BaseException:
        pb.abandon()
        raise
    return pb.build(run_stats=stats, meta={"planner": "partial", "max_k": max_k})


def partial_potrf_vbatched(
    device,
    batch: VBatch,
    k_cols: np.ndarray,
    inner_nb: int | None = None,
    ib: int = 32,
) -> PartialPotrfResult:
    """Eliminate the leading ``k_cols[i]`` columns of every matrix.

    ``k_cols`` is per-matrix (``0 <= k_i <= n_i``); ``k_i = n_i`` is a
    full factorization.  Numerical failure of a pivot block is reported
    through the batch's info array, LAPACK-style.
    """
    from ..device.executor import PlanExecutor

    plan = plan_partial_potrf(device, batch, k_cols, inner_nb, ib)
    k_cols = np.asarray(k_cols, dtype=np.int64)
    stats = plan.run_stats
    try:
        t0 = device.synchronize()
        if len(plan) == 0:
            return PartialPotrfResult(0.0, 0.0, np.zeros(batch.batch_count, np.int64), stats)
        PlanExecutor(device).execute(plan)
        elapsed = device.synchronize() - t0
    finally:
        plan.close()
    numerics = device.execute_numerics
    infos = batch.download_infos() if numerics else np.zeros(batch.batch_count, np.int64)
    total = float(
        sum(
            _partial_flops(int(n), int(k), batch.precision)
            for n, k in zip(batch.sizes_host, k_cols)
        )
    )
    return PartialPotrfResult(elapsed, total, infos, stats)
