"""Top-level factorization driver (paper §III-F), plan/execute split.

Chooses the approach (crossover policy), asks the matching *planner*
(:class:`~repro.core.fused.FusedDriver` /
:class:`~repro.core.separated.SeparatedDriver`) for a
:class:`~repro.core.plan.LaunchPlan`, hands the DAG to the
:class:`~repro.device.executor.PlanExecutor`, gathers timing and
per-matrix info codes, and packages the result.  This is the layer the
public interface in :mod:`repro.core.interface` calls into.

Two scaling hooks ride on the split:

* ``plan_cache`` — a :class:`~repro.core.plan.PlanCache`; repeated
  batches with equal size vectors (the figure sweeps' hot path) re-use
  the cached DAG and skip planning and host-side grouping entirely.
* ``devices`` — a :class:`~repro.device.topology.DeviceGroup` (or a
  device list); the batch is partitioned across the group, per-shard
  plans execute concurrently, and the shard results are merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

import numpy as np

from .. import flops as _flops
from ..errors import ArgumentError, BatchNumericalError
from .batch import VBatch
from .crossover import CrossoverPolicy
from .fused import FusedDriver
from .optimizer import optimize_plan, resolve_passes
from .plan import PlanCache
from .separated import SeparatedDriver

__all__ = ["LaunchStats", "PotrfOptions", "PotrfResult", "run_potrf_vbatched"]


@dataclass(frozen=True)
class PotrfOptions:
    """Knobs of the vbatched POTRF driver.

    ``approach`` is ``"auto"`` (crossover policy), ``"fused"`` or
    ``"separated"``.  ``on_error`` selects LAPACK-style reporting:
    ``"info"`` returns per-matrix codes, ``"raise"`` additionally raises
    :class:`BatchNumericalError` if any matrix failed (only meaningful
    when the device executes numerics).
    """

    approach: str = "auto"
    etm: str = "aggressive"
    sorting: bool = True
    nb: int | None = None
    panel_nb: int = 128
    syrk_mode: str = "vbatched"
    crossover_size: int | None = None
    on_error: str = "info"
    #: Plan-optimizer level: "none", "all", a pass name, or a
    #: "+"-joined combination (see :mod:`repro.core.optimizer`).
    optimize: str = "none"

    def __post_init__(self):
        try:
            resolve_passes(self.optimize)
        except ValueError as exc:
            raise ArgumentError(9, str(exc)) from None
        if self.approach not in ("auto", "fused", "separated"):
            raise ArgumentError(1, f"bad approach {self.approach!r}")
        if self.etm not in ("classic", "aggressive"):
            raise ArgumentError(2, f"bad etm {self.etm!r} (use 'classic' or 'aggressive')")
        if self.syrk_mode not in ("vbatched", "streamed"):
            raise ArgumentError(
                6, f"bad syrk_mode {self.syrk_mode!r} (use 'vbatched' or 'streamed')"
            )
        if self.on_error not in ("info", "raise"):
            raise ArgumentError(8, f"bad on_error {self.on_error!r}")


@dataclass
class LaunchStats:
    """Typed launch accounting for one driver run.

    Structural counts (``steps``, per-category launches) come from the
    planner; execution counts (``executed_launches``, ``barriers``) are
    populated by the :class:`~repro.device.executor.PlanExecutor` that
    actually walked the DAG.  Behaves as a mapping for backward
    compatibility with the old ad-hoc dict (``stats["steps"]``,
    ``{**stats}``).

    ``batches`` counts the plan executions folded into this object (one
    per single-device run, one per shard for a sharded run, summed under
    :meth:`merge`), and ``plan_cache_hits``/``plan_cache_misses`` carry
    :class:`~repro.core.plan.PlanCache` effectiveness — both stay zero
    when no cache is in play, so serving metrics and ``profile`` output
    can report cache behaviour without reaching into private state.

    The trace/metric counters ride the same merge semantics (plain sums
    with a zero identity): ``plan_builds`` counts runs that actually
    invoked a planner (cache miss or cache-less), ``event_waits`` and
    ``events_recorded`` carry the executor's cross-stream
    synchronization traffic.
    """

    steps: int = 0
    aux_launches: int = 0
    fused_launches: int = 0
    potf2_launches: int = 0
    trsm_launches: int = 0
    syrk_launches: int = 0
    gemm_launches: int = 0
    #: Mixed-operation tags: panel factorizations (getf2/geqr2 and the
    #: SVD finalize), pivot row swaps, and Jacobi sweeps.  Zero for
    #: POTRF runs, so POTRF merge/publish behaviour is unchanged.
    panel_launches: int = 0
    swap_launches: int = 0
    sweep_launches: int = 0
    executed_launches: int = 0
    barriers: int = 0
    event_waits: int = 0
    events_recorded: int = 0
    plan_nodes: int = 0
    plan_builds: int = 0
    plan_cache_hit: bool = False
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    batches: int = 0
    opt_barriers_elided: int = 0
    opt_launches_merged: int = 0
    opt_launches_pruned: int = 0
    #: Heterogeneous-group accounting: chunks executed across members
    #: and how many of them were work-stolen (zero on homogeneous runs).
    chunks: int = 0
    work_steals: int = 0
    devices_used: int = 1

    def keys(self):
        return [f.name for f in fields(self)]

    def __getitem__(self, name: str):
        try:
            return getattr(self, name)
        except AttributeError:
            raise KeyError(name) from None

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.keys()}

    #: Counters describing the *logical* batch (what was asked for), as
    #: opposed to physical execution work.  A retried batch re-executes
    #: launches but is still the same batch with the same plan-cache
    #: lookup story; keyed merges add these once per key.
    LOGICAL_FIELDS = (
        "steps",
        "plan_nodes",
        "plan_builds",
        "plan_cache_hits",
        "plan_cache_misses",
        "batches",
    )

    def merge(self, other: "LaunchStats", key=None) -> None:
        """Accumulate another run's counters into this one.

        Counter fields add and ``devices_used`` (the accumulator's own
        bookkeeping) is left untouched.  ``plan_cache_hit`` and-folds
        across merged runs, but a fresh accumulator (``batches == 0``)
        adopts the first merged value — so ``LaunchStats()`` is a merge
        identity and repeated merges associate.

        ``key`` (hashable) makes merges *idempotent per logical batch*:
        the first merge under a key adds everything, every later merge
        under the same key — a partially-failed sharded run retried on
        another replica — adds only the physical execution counters
        (launches, barriers, event traffic) and skips
        :data:`LOGICAL_FIELDS`, so ``batches`` and the plan-cache
        hit/miss totals count each logical batch exactly once.
        """
        retry = False
        if key is not None:
            seen = getattr(self, "_merge_keys", None)
            if seen is None:
                seen = self._merge_keys = set()
            retry = key in seen
            seen.add(key)
        if not retry and (other.batches or self.batches == 0):
            self.plan_cache_hit = (
                other.plan_cache_hit
                if self.batches == 0
                else self.plan_cache_hit and other.plan_cache_hit
            )
        for f in fields(self):
            if f.name in ("plan_cache_hit", "devices_used"):
                continue
            if retry and f.name in self.LOGICAL_FIELDS:
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def publish(self, registry, prefix: str = "driver") -> None:
        """Snapshot every counter into a metrics registry (gauge set,
        idempotent — re-publish freely after each merge)."""
        for f in fields(self):
            value = getattr(self, f.name)
            registry.gauge(f"{prefix}_{f.name}", f"driver {f.name}").set(
                float(value) if not isinstance(value, bool) else float(int(value))
            )


@dataclass
class PotrfResult:
    """Outcome of one vbatched factorization."""

    approach: str
    elapsed: float
    total_flops: float
    infos: np.ndarray
    launch_stats: LaunchStats = field(default_factory=LaunchStats)
    max_n: int = 0
    #: Heterogeneous runs only: the chunk->member decision table (dicts
    #: with member/approach/estimates) and per-member
    #: :class:`~repro.device.executor.MemberStats`; ``None`` otherwise.
    placement: list | None = None
    member_stats: list | None = None

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)

    @property
    def failed_count(self) -> int:
        return int(np.count_nonzero(self.infos))


def make_planner(device, approach: str, options: PotrfOptions):
    """The planner object for a resolved (non-auto) approach."""
    if approach == "fused":
        return FusedDriver(device, etm=options.etm, sorting=options.sorting, nb=options.nb)
    return SeparatedDriver(
        device,
        panel_nb=options.panel_nb,
        inner_nb=options.nb,
        syrk_mode=options.syrk_mode,
    )


def resolve_approach(batch: VBatch, max_n: int, options: PotrfOptions) -> str:
    approach = options.approach
    if approach == "auto":
        approach = CrossoverPolicy(batch.precision, options.crossover_size).choose(max_n)
    return approach


def plan_potrf(
    device,
    batch: VBatch,
    max_n: int,
    options: PotrfOptions,
    approach: str | None = None,
    plan_cache: PlanCache | None = None,
):
    """Produce (or fetch from cache) the launch plan for one batch."""
    approach = approach or resolve_approach(batch, max_n, options)

    def build():
        plan = make_planner(device, approach, options).plan(batch, max_n)
        # Every plan carries its operation tag; the executor stamps it
        # on kernel spans so mixed-op traces attribute time per op.
        plan.meta.setdefault("op", "potrf")
        return optimize_plan(plan, options.optimize)

    if plan_cache is None:
        return build(), None
    key = plan_cache.key_for(device, batch, max_n, approach, options,
                             optimize=options.optimize)
    before = plan_cache.planner_calls
    plan = plan_cache.get_or_build(key, batch, build)
    return plan, plan_cache.planner_calls == before


def stats_from_execution(plan, exec_stats, cache_hit: bool | None) -> LaunchStats:
    """Fold planner structure and executor counts into a LaunchStats.

    ``cache_hit`` is ``None`` when no :class:`~repro.core.plan.PlanCache`
    was consulted (both cache counters stay zero), else the hit/miss
    outcome of this run's plan lookup.
    """
    run = plan.run_stats
    opt = plan.meta.get("optimizer", {})
    return LaunchStats(
        steps=getattr(run, "steps", 0),
        aux_launches=exec_stats.count("aux"),
        fused_launches=exec_stats.count("fused"),
        potf2_launches=exec_stats.count("potf2"),
        trsm_launches=exec_stats.count("trsm"),
        syrk_launches=exec_stats.count("syrk"),
        gemm_launches=exec_stats.count("gemm"),
        panel_launches=exec_stats.count("panel"),
        swap_launches=exec_stats.count("swap"),
        sweep_launches=exec_stats.count("sweep"),
        executed_launches=exec_stats.launches,
        barriers=exec_stats.barriers,
        event_waits=exec_stats.event_waits,
        events_recorded=exec_stats.events_recorded,
        plan_nodes=len(plan),
        plan_builds=0 if cache_hit else 1,
        plan_cache_hit=bool(cache_hit),
        plan_cache_hits=1 if cache_hit else 0,
        plan_cache_misses=1 if cache_hit is False else 0,
        batches=1,
        opt_barriers_elided=int(opt.get("barriers_elided", 0)),
        opt_launches_merged=int(opt.get("launches_merged", 0)),
        opt_launches_pruned=int(opt.get("launches_pruned", 0)),
    )


def run_potrf_vbatched(
    device,
    batch: VBatch,
    max_n: int,
    options: PotrfOptions,
    *,
    devices=None,
    plan_cache: PlanCache | None = None,
    optimize: str | None = None,
) -> PotrfResult:
    """Execute the factorization and collect the result record.

    ``devices`` (a :class:`~repro.device.topology.DeviceGroup`, a
    :class:`~repro.device.hetero.HeteroGroup` or a sequence of devices)
    shards the batch across the group and runs the per-shard plans
    concurrently — a heterogeneous group additionally places each size
    stratum on the member its calibrated cost model prefers and
    rebalances by work-stealing; ``plan_cache`` re-serves previously
    built plans for batches with identical size vectors; ``optimize``
    overrides ``options.optimize`` (a plan-optimizer level, see
    :mod:`repro.core.optimizer`).
    """
    from ..device.executor import PlanExecutor

    if optimize is not None and optimize != options.optimize:
        options = replace(options, optimize=optimize)
    if max_n < batch.max_size_host:
        raise ArgumentError(3, f"max_n={max_n} smaller than largest matrix in batch")
    approach = resolve_approach(batch, max_n, options)

    if devices is not None:
        from ..device.hetero import HeteroGroup, run_potrf_hetero
        from ..device.topology import DeviceGroup, run_potrf_sharded

        if isinstance(devices, HeteroGroup):
            result = run_potrf_hetero(devices, batch, max_n, options, plan_cache)
            if options.on_error == "raise" and result.failed_count:
                failing = {int(i): int(v) for i, v in enumerate(result.infos) if v != 0}
                raise BatchNumericalError(failing, f"potrf_vbatched[{batch.precision.value}]")
            return result
        group = devices if isinstance(devices, DeviceGroup) else DeviceGroup(devices)
        if len(group) > 1:
            result = run_potrf_sharded(group, batch, max_n, options, approach, plan_cache)
            if options.on_error == "raise" and result.failed_count:
                failing = {int(i): int(v) for i, v in enumerate(result.infos) if v != 0}
                raise BatchNumericalError(failing, f"potrf_vbatched[{batch.precision.value}]")
            return result
        device = group.devices[0]

    plan, cache_hit = plan_potrf(device, batch, max_n, options, approach, plan_cache)
    try:
        t0 = device.synchronize()
        exec_stats = PlanExecutor(device).execute(plan)
        elapsed = device.synchronize() - t0
        launch_stats = stats_from_execution(plan, exec_stats, cache_hit)
    finally:
        if plan_cache is None:
            plan.close()

    if device.execute_numerics:
        infos = batch.download_infos()
    else:
        infos = np.zeros(batch.batch_count, dtype=np.int64)
    result = PotrfResult(
        approach=approach,
        elapsed=elapsed,
        total_flops=_flops.batch_flops(batch.sizes_host, "potrf", batch.precision),
        infos=infos,
        launch_stats=launch_stats,
        max_n=max_n,
    )
    if options.on_error == "raise" and result.failed_count:
        failing = {int(i): int(v) for i, v in enumerate(infos) if v != 0}
        raise BatchNumericalError(failing, f"potrf_vbatched[{batch.precision.value}]")
    return result
