"""Top-level factorization driver (paper §III-F).

Chooses the approach (crossover policy), runs it, gathers timing and
per-matrix info codes, and packages the result.  This is the layer the
public interface in :mod:`repro.core.interface` calls into.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import flops as _flops
from ..errors import ArgumentError, BatchNumericalError
from .batch import VBatch
from .crossover import CrossoverPolicy
from .fused import FusedDriver
from .separated import SeparatedDriver

__all__ = ["PotrfOptions", "PotrfResult", "run_potrf_vbatched"]


@dataclass(frozen=True)
class PotrfOptions:
    """Knobs of the vbatched POTRF driver.

    ``approach`` is ``"auto"`` (crossover policy), ``"fused"`` or
    ``"separated"``.  ``on_error`` selects LAPACK-style reporting:
    ``"info"`` returns per-matrix codes, ``"raise"`` additionally raises
    :class:`BatchNumericalError` if any matrix failed (only meaningful
    when the device executes numerics).
    """

    approach: str = "auto"
    etm: str = "aggressive"
    sorting: bool = True
    nb: int | None = None
    panel_nb: int = 128
    syrk_mode: str = "vbatched"
    crossover_size: int | None = None
    on_error: str = "info"

    def __post_init__(self):
        if self.approach not in ("auto", "fused", "separated"):
            raise ArgumentError(1, f"bad approach {self.approach!r}")
        if self.on_error not in ("info", "raise"):
            raise ArgumentError(8, f"bad on_error {self.on_error!r}")


@dataclass
class PotrfResult:
    """Outcome of one vbatched factorization."""

    approach: str
    elapsed: float
    total_flops: float
    infos: np.ndarray
    launch_stats: dict = field(default_factory=dict)
    max_n: int = 0

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)

    @property
    def failed_count(self) -> int:
        return int(np.count_nonzero(self.infos))


def run_potrf_vbatched(device, batch: VBatch, max_n: int, options: PotrfOptions) -> PotrfResult:
    """Execute the factorization and collect the result record."""
    if max_n < batch.max_size_host:
        raise ArgumentError(3, f"max_n={max_n} smaller than largest matrix in batch")
    approach = options.approach
    if approach == "auto":
        approach = CrossoverPolicy(batch.precision, options.crossover_size).choose(max_n)

    t0 = device.synchronize()
    if approach == "fused":
        stats = FusedDriver(
            device, etm=options.etm, sorting=options.sorting, nb=options.nb
        ).factorize(batch, max_n)
        launch_stats = {
            "steps": stats.steps,
            "fused_launches": stats.fused_launches,
            "aux_launches": stats.aux_launches,
        }
    else:
        stats = SeparatedDriver(
            device,
            panel_nb=options.panel_nb,
            inner_nb=options.nb,
            syrk_mode=options.syrk_mode,
        ).factorize(batch, max_n)
        launch_stats = {
            "steps": stats.steps,
            "potf2_launches": stats.potf2_launches,
            "trsm_launches": stats.trsm_launches,
            "syrk_launches": stats.syrk_launches,
            "aux_launches": stats.aux_launches,
        }
    elapsed = device.synchronize() - t0

    if device.execute_numerics:
        infos = batch.download_infos()
    else:
        infos = np.zeros(batch.batch_count, dtype=np.int64)
    result = PotrfResult(
        approach=approach,
        elapsed=elapsed,
        total_flops=_flops.batch_flops(batch.sizes_host, "potrf", batch.precision),
        infos=infos,
        launch_stats=launch_stats,
        max_n=max_n,
    )
    if options.on_error == "raise" and result.failed_count:
        failing = {int(i): int(v) for i, v in enumerate(infos) if v != 0}
        raise BatchNumericalError(failing, f"potrf_vbatched[{batch.precision.value}]")
    return result
