"""Approach 1: the fused-kernel vbatched Cholesky planner (paper §III-D).

Four variants, matching the progressive versions of Figs 5-6:

1. ETM-classic only,
2. ETM-aggressive only,
3. ETM-classic + implicit sorting,
4. ETM-aggressive + implicit sorting.

The driver is a *pure planner*: :meth:`FusedDriver.plan` emits a
:class:`~repro.core.plan.LaunchPlan` — per step, the auxiliary
step-sizes launch (whose output stays in device memory for the compute
kernels) followed by the fused step kernel, either one launch over the
whole batch (ETM handles the finished matrices) or one per size window
(implicit sorting).  :meth:`FusedDriver.factorize` is the eager
convenience wrapper: plan, hand the DAG to the
:class:`~repro.device.executor.PlanExecutor`, close.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ArgumentError
from ..types import Precision, precision_info
from ..kernels import grouping
from ..kernels.aux import StepSizesKernel
from ..kernels.fused_potrf import FusedPotrfStepKernel
from .batch import VBatch
from .plan import LaunchPlan, PlanBuilder
from .sorting import partition_windows, sorted_order

__all__ = ["FusedDriver", "FusedRunStats", "default_fused_nb", "fused_max_feasible_size"]

_WARP = 32
_MAX_BLOCK_THREADS = 1024
_SMEM_BUDGET = 48 * 1024


_NB_TEMPLATES = (32, 24, 16, 12, 8, 6, 4, 2)

# Tuned nb per (element size, max-size band): produced by sweeping the
# templates on the simulator (repro.autotune regenerates this table).
# Wider panels cut DRAM traffic and launches; narrower panels keep
# occupancy (and thus latency hiding) up — the balance shifts with n.
_NB_TABLE = {
    4: ((96, 32), (160, 24), (10**9, 16)),
    8: ((48, 24), (96, 16), (288, 12), (10**9, 8)),
    16: ((48, 12), (144, 8), (320, 6), (10**9, 4)),
}


def default_fused_nb(max_n: int, precision: Precision | str) -> int:
    """Tuned panel width for the fused kernel (the paper's template pick).

    Uses the autotuned band table, then falls back to the widest
    still-feasible template if the tabled choice exceeds the
    shared-memory budget for this ``max_n``.
    """
    if max_n <= 0:
        raise ArgumentError(1, f"max_n must be positive, got {max_n}")
    elem = precision_info(Precision(precision)).bytes_per_element
    rows = min(_MAX_BLOCK_THREADS, -(-max_n // _WARP) * _WARP)
    choice = next(nb for bound, nb in _NB_TABLE[elem] if max_n <= bound)
    for nb in (choice,) + tuple(t for t in _NB_TEMPLATES if t < choice):
        if rows * nb * elem <= _SMEM_BUDGET:
            return nb
    return 1


def fused_max_feasible_size(precision: Precision | str, nb: int | None = None) -> int:
    """Largest batch-max size the fused kernel can handle at all.

    Bounded by the 1024-thread block limit and by the narrowest panel
    template still fitting in shared memory.
    """
    elem = precision_info(Precision(precision)).bytes_per_element
    nb_min = nb if nb is not None else 2
    by_smem = _SMEM_BUDGET // (nb_min * elem)
    return min(_MAX_BLOCK_THREADS, (by_smem // _WARP) * _WARP)


@dataclass
class FusedRunStats:
    """Launch accounting for one fused-driver run."""

    steps: int = 0
    fused_launches: int = 0
    aux_launches: int = 0
    window_launches_max: int = 0


class FusedDriver:
    """Runs the fused-kernel approach over a :class:`VBatch`."""

    def __init__(
        self,
        device,
        etm: str = "aggressive",
        sorting: bool = True,
        nb: int | None = None,
        window_width: int | None = None,
    ):
        if etm not in ("classic", "aggressive"):
            raise ArgumentError(2, f"etm must be 'classic' or 'aggressive', got {etm!r}")
        self.device = device
        self.etm = etm
        self.sorting = sorting
        self.nb = nb
        self.window_width = window_width

    def plan(self, batch: VBatch, max_n: int) -> LaunchPlan:
        """Emit the launch DAG for Algorithm 1 (no device time passes)."""
        if max_n <= 0:
            raise ArgumentError(3, f"max_n must be positive, got {max_n}")
        nb = self.nb or default_fused_nb(max_n, batch.precision)
        window = self.window_width or max(nb, _WARP)
        stats = FusedRunStats()
        pb = PlanBuilder(self.device, batch)

        sizes = batch.sizes_host
        order = sorted_order(sizes) if self.sorting else np.arange(batch.batch_count, dtype=np.int64)

        try:
            # Device workspaces for the per-step auxiliary kernel; the
            # plan owns them (cached re-executions reuse them) and the
            # pool gets them back when the plan closes.
            remaining_dev = pb.workspace((batch.batch_count,), np.int64)
            panel_dev = pb.workspace((batch.batch_count,), np.int64)
            stats_dev = pb.workspace((2,), np.int64)

            steps = -(-max_n // nb)
            for s in range(steps):
                offset = s * nb
                # The auxiliary kernel leaves per-matrix step metadata in
                # device memory for the compute kernels; the host itself
                # never reads it back — it derives the launch shape from
                # the interface-provided max_n (paper §III-F).
                pb.aux(
                    StepSizesKernel(batch.sizes_dev, offset, nb, remaining_dev, panel_dev, stats_dev)
                )
                stats.aux_launches += 1
                max_m = max_n - offset
                if max_m <= 0:
                    break
                stats.steps += 1

                # Host-side grouping of this step's remaining sizes: the
                # planner buckets once and every sub-launch reuses it for
                # the timing plane (same-size blocks collapse to one
                # grouped work record).
                rem_all = np.maximum(0, sizes - offset)
                if self.sorting:
                    # Merge small windows up to roughly the device's block
                    # capacity so no sub-launch wastes whole waves.
                    windows = partition_windows(
                        sizes, order, offset, window, min_count=256
                    )
                    stats.window_launches_max = max(stats.window_launches_max, len(windows))
                    for win in windows:
                        pb.launch(
                            FusedPotrfStepKernel(
                                batch, s, nb, win.indices, win.max_m, self.etm,
                                groups=grouping.grouped_first_seen(rem_all[win.indices]),
                            ),
                            tag="fused",
                        )
                        stats.fused_launches += 1
                else:
                    pb.launch(
                        FusedPotrfStepKernel(
                            batch, s, nb, order, max_m, self.etm,
                            groups=grouping.grouped_first_seen(rem_all[order]),
                        ),
                        tag="fused",
                    )
                    stats.fused_launches += 1
        except BaseException:
            pb.abandon()
            raise
        return pb.build(run_stats=stats, meta={"planner": "fused", "nb": nb, "max_n": max_n})

    def factorize(self, batch: VBatch, max_n: int) -> FusedRunStats:
        """Advance every matrix to full factorization (Algorithm 1)."""
        from ..device.executor import PlanExecutor

        plan = self.plan(batch, max_n)
        try:
            PlanExecutor(self.device).execute(plan)
        finally:
            plan.close()
        return plan.run_stats
