"""Approach 2: the separated vbatched BLAS planner (paper §III-E).

A right-looking blocked Cholesky at panel width ``NB``: each step plans

1. vbatched ``potf2`` on the ``jb x jb`` diagonal tiles (the fused
   kernel reused tile-locally, §III-E1),
2. vbatched ``trsm`` on the rows below (trtri + gemm sweep, §III-E2),
3. vbatched ``syrk`` on the trailing submatrices (§III-E3) — either the
   MAGMA-style single launch or the streamed per-matrix alternative,
   which maps to round-robin logical streams joined by a plan barrier.

The planner passes per-step size information through the auxiliary
kernels so finished matrices are "ignored onward as the computation
progresses" (§III-F).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ArgumentError
from ..kernels import grouping
from ..kernels.aux import StepSizesKernel
from ..kernels.gemm import GemmTask, GemmTiling, VbatchedGemmKernel
from ..kernels.naive import NaivePotf2Kernel
from ..kernels.potf2 import PanelPotf2StepKernel
from ..kernels.syrk import SyrkTask, VbatchedSyrkKernel
from ..kernels.trsm import TrsmPanelItem, vbatched_trsm_panel
from .batch import VBatch
from .fused import default_fused_nb
from .plan import LaunchPlan, PlanBuilder

__all__ = ["SeparatedDriver", "SeparatedRunStats"]


@dataclass
class SeparatedRunStats:
    """Launch accounting for one separated-driver run."""

    steps: int = 0
    potf2_launches: int = 0
    trsm_launches: int = 0
    syrk_launches: int = 0
    aux_launches: int = 0


class SeparatedDriver:
    """Runs the separated-BLAS approach over a :class:`VBatch`."""

    def __init__(
        self,
        device,
        panel_nb: int = 128,
        inner_nb: int | None = None,
        ib: int = 32,
        tiling: GemmTiling | None = None,
        syrk_mode: str = "vbatched",
        syrk_streams: int = 32,
        panel_mode: str = "fused",
    ):
        if panel_nb <= 0:
            raise ArgumentError(2, f"panel_nb must be positive, got {panel_nb}")
        if syrk_mode not in ("vbatched", "streamed"):
            raise ArgumentError(6, f"syrk_mode must be 'vbatched' or 'streamed', got {syrk_mode!r}")
        if panel_mode not in ("fused", "naive"):
            raise ArgumentError(8, f"panel_mode must be 'fused' or 'naive', got {panel_mode!r}")
        self.device = device
        self.panel_nb = panel_nb
        self.inner_nb = inner_nb
        self.ib = ib
        self.tiling = tiling  # None -> per-precision default in each kernel
        self.syrk_mode = syrk_mode
        self.syrk_streams = syrk_streams
        # "fused" factorizes diagonal tiles with the fused kernel
        # (§III-E1); "naive" uses the pre-fusion generic potf2 sweep
        # (the [13]-era baseline that Fig 4 compares against).
        self.panel_mode = panel_mode

    def plan(self, batch: VBatch, max_n: int) -> LaunchPlan:
        """Emit the per-step potf2/trsm/syrk launch DAG."""
        if max_n <= 0:
            raise ArgumentError(3, f"max_n must be positive, got {max_n}")
        NB = self.panel_nb
        inner_nb = self.inner_nb or default_fused_nb(NB, batch.precision)
        stats = SeparatedRunStats()
        sizes = batch.sizes_host
        k = batch.batch_count
        numerics = self.device.execute_numerics
        pb = PlanBuilder(self.device, batch)

        try:
            remaining_dev = pb.workspace((k,), np.int64)
            panel_dev = pb.workspace((k,), np.int64)
            stats_dev = pb.workspace((2,), np.int64)
            # trsm workspace: inverted diagonal blocks of every panel.
            inv_ws = pb.workspace((k, NB, NB), batch.matrices[0].dtype)

            steps = -(-max_n // NB)
            for s in range(steps):
                offset = s * NB
                # Metadata for the downstream kernels stays on the device;
                # the host shapes launches from the interface max (§III-F).
                pb.aux(
                    StepSizesKernel(batch.sizes_dev, offset, NB, remaining_dev, panel_dev, stats_dev)
                )
                stats.aux_launches += 1
                if max_n - offset <= 0:
                    break
                stats.steps += 1

                remaining = np.maximum(0, sizes - offset)
                jbs = np.minimum(remaining, NB)
                max_jb = int(jbs.max())
                jb_list = jbs.tolist()
                rem_list = remaining.tolist()

                # 1) Panel factorization on the diagonal tiles.
                if self.panel_mode == "fused":
                    for t in range(-(-max_jb // inner_nb)):
                        # Pre-group the sub-step's live tile heights on
                        # the host; the kernel's timing plane consumes
                        # the buckets directly.
                        pb.launch(
                            PanelPotf2StepKernel(
                                batch, offset, t, inner_nb, jbs, max_jb, etm="aggressive",
                                groups=grouping.grouped_first_seen(
                                    np.maximum(0, jbs - t * inner_nb)
                                ),
                            ),
                            tag="potf2",
                        )
                        stats.potf2_launches += 1
                else:
                    stats.potf2_launches += self._naive_panel(
                        pb, batch, offset, jbs, max_jb, inv_ws, numerics
                    )

                # 2) Triangular solve for the rows below each tile.
                items = []
                for i in range(k):
                    jb = jb_list[i]
                    m_below = rem_list[i] - jb
                    if jb <= 0:
                        items.append(TrsmPanelItem(0, 0))
                        continue
                    if numerics:
                        a = batch.matrix_view(i)
                        j1 = offset + jb
                        items.append(
                            TrsmPanelItem(
                                m=max(0, m_below),
                                jb=jb,
                                l11=a[offset:j1, offset:j1],
                                b=a[j1 : offset + rem_list[i], offset:j1],
                                inv_ws=inv_ws.data[i, :jb, :jb],
                            )
                        )
                    else:
                        items.append(TrsmPanelItem(m=max(0, m_below), jb=jb))
                if any(it.jb > 0 and it.m > 0 for it in items):
                    with pb.tagged("trsm"):
                        stats.trsm_launches += vbatched_trsm_panel(
                            pb, items, batch.precision, self.ib, self.tiling
                        )

                # 3) Trailing update: C -= B B^H on what remains.
                tasks = []
                for i in range(k):
                    jb = jb_list[i]
                    n_trail = rem_list[i] - jb
                    if jb <= 0 or n_trail <= 0:
                        tasks.append(SyrkTask(0, 0))
                        continue
                    if numerics:
                        a = batch.matrix_view(i)
                        j1 = offset + jb
                        tasks.append(
                            SyrkTask(
                                n=n_trail,
                                k=jb,
                                a=a[j1:, offset:j1],
                                c=a[j1:, j1:],
                            )
                        )
                    else:
                        tasks.append(SyrkTask(n=n_trail, k=jb))
                if any(t.n > 0 for t in tasks):
                    if self.syrk_mode == "streamed":
                        # cuBLAS-style alternative: one kernel per matrix,
                        # round-robin across logical streams, joined by a
                        # host barrier before the next step's aux launch.
                        live = [(i, t) for i, t in enumerate(tasks) if t.n > 0]
                        for slot, (i, task) in enumerate(live):
                            kernel = VbatchedSyrkKernel([task], batch.precision, self.tiling)
                            kernel.name = f"streamed_syrk:{kernel._info.name}"
                            kernel.matrix_indices = (i,)
                            pb.launch(kernel, stream=1 + slot % self.syrk_streams, tag="syrk")
                        stats.syrk_launches += len(live)
                        pb.barrier()
                    else:
                        kernel = VbatchedSyrkKernel(tasks, batch.precision, self.tiling)
                        kernel.matrix_indices = tuple(range(len(tasks)))
                        pb.launch(kernel, tag="syrk")
                        stats.syrk_launches += 1
        except BaseException:
            pb.abandon()
            raise
        return pb.build(
            run_stats=stats, meta={"planner": "separated", "panel_nb": NB, "max_n": max_n}
        )

    def factorize(self, batch: VBatch, max_n: int) -> SeparatedRunStats:
        from ..device.executor import PlanExecutor

        plan = self.plan(batch, max_n)
        try:
            PlanExecutor(self.device).execute(plan)
        finally:
            plan.close()
        return plan.run_stats

    def _naive_panel(self, pb, batch, offset, jbs, max_jb, inv_ws, numerics) -> int:
        """Pre-fusion tile factorization: generic potf2 + gemm + trsm.

        Sweeps the ``jb x jb`` diagonal tiles in ``ib``-wide sub-steps,
        each costing a generic gemm update, a global-memory potf2 and a
        tile-local trsm — the launch pattern kernel fusion collapses
        into one kernel.
        """
        ib = self.ib
        launches = 0
        k_count = batch.batch_count
        for t in range(-(-max_jb // ib)):
            local = t * ib
            sub_jbs = np.clip(jbs - local, 0, ib)
            if int(sub_jbs.max()) == 0:
                break
            col0 = offset + local
            # Left-looking update of this sub-panel from the tile-local
            # history columns.
            if local > 0:
                tasks = []
                for i in range(k_count):
                    rows = max(0, int(jbs[i]) - local)
                    width = int(sub_jbs[i])
                    if width == 0:
                        tasks.append(GemmTask(0, 0, 0))
                        continue
                    if numerics:
                        a = batch.matrix_view(i)
                        tasks.append(
                            GemmTask(
                                m=rows, n=width, k=local,
                                a=a[col0 : offset + int(jbs[i]), offset:col0],
                                b=a[col0 : col0 + width, offset:col0],
                                c=a[col0 : offset + int(jbs[i]), col0 : col0 + width],
                                transb="c", alpha=-1.0, beta=1.0,
                            )
                        )
                    else:
                        tasks.append(GemmTask(m=rows, n=width, k=local))
                pb.launch(
                    VbatchedGemmKernel(tasks, batch.precision, self.tiling, label="panel_update"),
                    tag="potf2",
                )
                launches += 1

            pb.launch(NaivePotf2Kernel(batch, col0, sub_jbs, int(sub_jbs.max())), tag="potf2")
            launches += 1

            # Tile-local trsm for panel rows below the ib sub-tile.
            items = []
            for i in range(k_count):
                width = int(sub_jbs[i])
                rows_below = max(0, int(jbs[i]) - local - width)
                if width == 0 or rows_below == 0:
                    items.append(TrsmPanelItem(0, 0))
                    continue
                if numerics:
                    a = batch.matrix_view(i)
                    c1 = col0 + width
                    items.append(
                        TrsmPanelItem(
                            m=rows_below, jb=width,
                            l11=a[col0:c1, col0:c1],
                            b=a[c1 : offset + int(jbs[i]), col0:c1],
                            inv_ws=inv_ws.data[i, :width, :width],
                        )
                    )
                else:
                    items.append(TrsmPanelItem(m=rows_below, jb=width))
            if any(it.m > 0 for it in items):
                with pb.tagged("potf2"):
                    launches += vbatched_trsm_panel(pb, items, batch.precision, ib, self.tiling)
        return launches
