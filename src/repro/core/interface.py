"""Public vbatched API (paper §III-A).

Two interfaces, exactly as proposed:

* :func:`potrf_vbatched_max` — the expert interface: the caller supplies
  the maximum dimension across the batch, "recommended when the user has
  such information so that computing the maximums is waived";
* :func:`potrf_vbatched` — the LAPACK-like interface: the maximum is
  computed by a GPU reduction kernel, whose overhead "in most cases ...
  is negligible" (measured by ``benchmarks/test_aux_overhead.py``).

Plus :func:`potrf_batched_fixed` for the classic fixed-size case.
"""

from __future__ import annotations

from ..errors import ArgumentError
from ..kernels.aux import compute_max_size
from .batch import VBatch
from .driver import PotrfOptions, PotrfResult, run_potrf_vbatched
from .fixed import potrf_batched_fixed_run

__all__ = [
    "potrf_vbatched",
    "potrf_vbatched_max",
    "potrf_batched_fixed",
    "PotrfOptions",
    "PotrfResult",
]


def potrf_vbatched_max(
    device,
    batch: VBatch,
    max_n: int,
    options: PotrfOptions | None = None,
    *,
    devices=None,
    plan_cache=None,
    optimize: str | None = None,
) -> PotrfResult:
    """Cholesky-factorize a variable-size batch, trusting ``max_n``.

    Every matrix in ``batch`` is overwritten with its lower Cholesky
    factor (strictly-upper triangles untouched).  Per-matrix LAPACK
    ``info`` codes are collected in the result.

    ``devices`` shards the batch across a
    :class:`~repro.device.topology.DeviceGroup` (or device sequence);
    ``plan_cache`` (a :class:`~repro.core.plan.PlanCache`) re-serves
    launch plans across calls with identical size vectors; ``optimize``
    selects the :mod:`~repro.core.optimizer` pass level (overriding
    ``options.optimize``).
    """
    if max_n <= 0:
        raise ArgumentError(3, f"max_n must be positive, got {max_n}")
    return run_potrf_vbatched(
        device,
        batch,
        max_n,
        options or PotrfOptions(),
        devices=devices,
        plan_cache=plan_cache,
        optimize=optimize,
    )


def potrf_vbatched(
    device,
    batch: VBatch,
    options: PotrfOptions | None = None,
    *,
    devices=None,
    plan_cache=None,
    optimize: str | None = None,
) -> PotrfResult:
    """LAPACK-like interface: the max size is reduced on the device.

    Wraps :func:`potrf_vbatched_max` after a GPU max-reduction kernel
    plus an 8-byte download — both on the simulated clock, so the
    interface overhead the paper discusses is measurable here.
    """
    max_n = compute_max_size(device, batch)
    if max_n <= 0:
        raise ArgumentError(2, "batch contains only empty matrices")
    return potrf_vbatched_max(
        device,
        batch,
        max_n,
        options,
        devices=devices,
        plan_cache=plan_cache,
        optimize=optimize,
    )


def potrf_batched_fixed(
    device,
    batch: VBatch,
    n: int,
    approach: str = "fused",
    nb: int | None = None,
    panel_nb: int = 128,
) -> dict:
    """Fixed-size batched Cholesky (the pre-existing MAGMA routine)."""
    return potrf_batched_fixed_run(device, batch, n, approach, nb, panel_nb)
