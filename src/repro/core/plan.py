"""The launch-plan IR: what a driver *wants* to run, not how it runs.

The paper's driver (§III-F) is a host loop that eagerly launches fused
or separated kernels.  Here that loop is split in two:

* **Planning** — the drivers in :mod:`repro.core.fused`,
  :mod:`repro.core.separated`, :mod:`repro.core.blas_steps`,
  :mod:`repro.core.partial` and :mod:`repro.core.fixed` emit a
  :class:`LaunchPlan`: an ordered DAG of :class:`KernelLaunch` /
  :class:`AuxLaunch` / :class:`Barrier` nodes with explicit logical
  streams and dependency edges.  Planning never touches the simulated
  clock.
* **Execution** — :class:`repro.device.executor.PlanExecutor` walks the
  DAG on a device, mapping logical streams to real
  :class:`~repro.device.stream.Stream` objects.

A plan's node order is a valid topological order by construction
(:class:`PlanBuilder` only lets a node depend on earlier nodes).  Nodes
on the same logical stream are implicitly ordered by the stream's
in-order queue; cross-stream edges are realized with events, and
:class:`Barrier` nodes join streams back to the host.

Plans built against a batch with live numerics (kernels holding views
into that batch's device arrays) are *bound* to it; :class:`PlanCache`
only re-serves such a plan for the identical batch object.  Timing-only
plans (``execute_numerics=False``) depend on nothing but the size
vector, so repeated sweeps over equal-size batches — the figure
harness's hot path — skip planning and grouping entirely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import PlanError
from ..observability.trace import Track, current_tracer

__all__ = [
    "AuxLaunch",
    "Barrier",
    "KernelLaunch",
    "LaunchPlan",
    "PlanBuilder",
    "PlanCache",
    "PlanNode",
    "batch_fingerprint",
]

DEFAULT_STREAM = 0


def _cache_track(device) -> Track:
    """Trace track for plan-cache events: the device's planner row."""
    return Track(getattr(device, "name", "planner"), "planner")


@dataclass(frozen=True)
class PlanNode:
    """Common shape of every node in a :class:`LaunchPlan`.

    ``index`` is the node's position in the plan (its id); ``deps`` are
    indices of earlier nodes this node must wait for.  Same-stream
    ordering is implicit, so ``deps`` only matters across streams.
    """

    index: int
    stream: int = DEFAULT_STREAM
    deps: tuple[int, ...] = ()


@dataclass(frozen=True)
class KernelLaunch(PlanNode):
    """Launch one compute kernel on a logical stream."""

    kernel: object = None
    tag: str = "kernel"


@dataclass(frozen=True)
class AuxLaunch(KernelLaunch):
    """Launch a metadata/auxiliary kernel (step sizes, reductions)."""

    tag: str = "aux"


@dataclass(frozen=True)
class Barrier(PlanNode):
    """Join point: the host drains ``streams`` (``None`` = every stream
    the plan has touched) and then the whole device."""

    streams: tuple[int, ...] | None = None


@dataclass
class LaunchPlan:
    """An executable DAG of launches plus the resources it owns.

    ``workspaces`` are pool blocks acquired at plan time; they stay
    alive for the plan's lifetime (a cached plan re-executes against the
    same workspace memory) and return to the pool on :meth:`close`.
    ``bound_numerics`` records whether node kernels hold live views into
    ``batch_ref``'s device arrays — the cache-invalidation bit.
    ``owns_batch`` additionally makes :meth:`close` free ``batch_ref``:
    set by callers (the sharded driver) that materialized a batch solely
    to back this plan, so cache eviction releases its device memory.
    """

    device: object
    nodes: list[PlanNode] = field(default_factory=list)
    workspaces: list[object] = field(default_factory=list)
    batch_ref: object = None
    bound_numerics: bool = False
    owns_batch: bool = False
    run_stats: object = None
    meta: dict = field(default_factory=dict)
    closed: bool = False

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def kernel_launches(self) -> int:
        return sum(1 for n in self.nodes if isinstance(n, KernelLaunch))

    @property
    def streams_used(self) -> tuple[int, ...]:
        return tuple(sorted({n.stream for n in self.nodes if isinstance(n, KernelLaunch)}))

    def validate(self) -> None:
        """Check the node list is a well-formed DAG in topological order."""
        for node in self.nodes:
            if any(d >= node.index or d < 0 for d in node.deps):
                raise PlanError(
                    f"node {node.index} depends on {node.deps}: edges must point backwards"
                )
            if isinstance(node, KernelLaunch) and node.kernel is None:
                raise PlanError(f"node {node.index} is a launch without a kernel")

    def close(self) -> None:
        """Release owned workspaces (and batch) back to the device (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for ws in self.workspaces:
            self.device.pool.release(ws)
        self.workspaces.clear()
        if self.owns_batch and self.batch_ref is not None:
            self.batch_ref.free()


class PlanBuilder:
    """Append-only constructor the planners drive.

    Exposes a :meth:`launch` with the same calling shape as
    ``Device.launch`` so kernel-emitting helpers (e.g. the trsm panel
    builder) work unchanged against either target.
    """

    def __init__(self, device, batch=None):
        self.device = device
        self.batch = batch
        self._nodes: list[PlanNode] = []
        self._workspaces: list[object] = []
        self._tag: str | None = None
        self._built = False

    # -- node emission --------------------------------------------------
    def launch(self, kernel, stream: int = DEFAULT_STREAM, after=(), tag: str | None = None):
        """Append a compute-kernel launch; returns its node index."""
        node = KernelLaunch(
            index=len(self._nodes),
            stream=int(stream),
            deps=tuple(after),
            kernel=kernel,
            tag=tag or self._tag or "kernel",
        )
        self._nodes.append(node)
        return node.index

    def aux(self, kernel, stream: int = DEFAULT_STREAM, after=()):
        """Append an auxiliary (metadata) launch; returns its node index."""
        node = AuxLaunch(
            index=len(self._nodes), stream=int(stream), deps=tuple(after), kernel=kernel
        )
        self._nodes.append(node)
        return node.index

    def barrier(self, streams=None, after=()):
        """Append a host join over ``streams`` (``None`` = all)."""
        node = Barrier(
            index=len(self._nodes),
            deps=tuple(after),
            streams=None if streams is None else tuple(streams),
        )
        self._nodes.append(node)
        return node.index

    @contextmanager
    def tagged(self, tag: str):
        """Default ``tag`` for launches emitted inside the block (lets
        helpers that call plain ``launch(kernel)`` land in the right
        stats counter)."""
        prev, self._tag = self._tag, tag
        try:
            yield self
        finally:
            self._tag = prev

    # -- resources ------------------------------------------------------
    @property
    def pool(self):
        """Pool facade: ``builder.pool.get`` acquires a plan-owned block."""
        return _PlanPool(self)

    def workspace(self, shape, dtype):
        """Acquire a pool block owned by the resulting plan."""
        ws = self.device.pool.get(shape, dtype)
        self._workspaces.append(ws)
        return ws

    # -- lifecycle ------------------------------------------------------
    def build(self, run_stats=None, meta=None, bound_numerics: bool | None = None) -> LaunchPlan:
        if self._built:
            raise PlanError("builder already produced its plan")
        self._built = True
        plan = LaunchPlan(
            device=self.device,
            nodes=self._nodes,
            workspaces=self._workspaces,
            batch_ref=self.batch,
            bound_numerics=(
                self.device.execute_numerics if bound_numerics is None else bound_numerics
            ),
            run_stats=run_stats,
            meta=meta or {},
        )
        plan.validate()
        return plan

    def abandon(self) -> None:
        """Release acquired workspaces after a failed planning attempt."""
        for ws in self._workspaces:
            self.device.pool.release(ws)
        self._workspaces.clear()
        self._built = True


class _PlanPool:
    """``WorkspacePool``-shaped view whose gets belong to the plan and
    whose releases are deferred to ``LaunchPlan.close``."""

    __slots__ = ("builder",)

    def __init__(self, builder: PlanBuilder):
        self.builder = builder

    def get(self, shape, dtype):
        return self.builder.workspace(shape, dtype)

    def release(self, arr) -> None:
        # Ownership stays with the plan; the executor may re-run it.
        if arr not in self.builder._workspaces:
            raise PlanError("array was not acquired through this plan builder")


def batch_fingerprint(batch) -> tuple:
    """Hashable identity of everything planning reads from a batch."""
    return (
        batch.batch_count,
        batch.precision.value,
        hash(batch.sizes_host.tobytes()),
        hash(batch.ldas_host.tobytes()),
    )


class PlanCache:
    """LRU cache of :class:`LaunchPlan` keyed on the planning inputs.

    The key covers the device, planner label, options fingerprint and
    the batch's size/lda/precision fingerprint — everything a planner
    reads.  A hit additionally requires the plan not to be *bound* to a
    different batch's numerics (see :class:`LaunchPlan`); a bound plan
    requested for a new batch object counts as a miss and is replaced.

    The cache is thread-safe: one instance may be shared by the serving
    worker loop and the per-device dispatch threads of a
    :class:`~repro.device.topology.DeviceGroup`.  An internal reentrant
    lock guards the LRU map and the hit/miss counters;
    :meth:`get_or_build` holds it across ``build()`` so concurrent
    requests for the same key never race to double-build (and close)
    one another's plans.
    """

    def __init__(self, max_plans: int = 32):
        if max_plans <= 0:
            raise PlanError(f"max_plans must be positive, got {max_plans}")
        self.max_plans = max_plans
        self._plans: OrderedDict[tuple, LaunchPlan] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.planner_calls = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    @staticmethod
    def key_for(device, batch, max_n: int, label: str, options_key,
                optimize: str = "none", streams: int | None = None,
                op: str = "potrf") -> tuple:
        """Cache key for one (device, op, batch-shape, planner, options) combo.

        ``op`` is the *operation tag* (potrf, geqrf, getrf, gesvj, ...)
        and is a structural element of the key, distinct from ``label``
        (the free-form planner/approach name): two operations planned
        for identical (device, sizes, options) must never collide even
        if a planner reuses a label string.  ``optimize`` (the
        plan-optimizer level) and ``streams`` (the device's hardware
        queue count, which bounds the optimizer's stream rebalancing)
        are part of the key: an optimized plan and an unoptimized plan
        for the same ``batch_fingerprint`` are different DAGs.
        ``id(device)`` stays the leading element — :meth:`evict` matches
        on it.
        """
        if streams is None:
            streams = int(getattr(getattr(device, "spec", None), "hardware_queues", 0) or 0)
        return (
            id(device), str(op), label, int(max_n), options_key,
            str(optimize), int(streams), batch_fingerprint(batch),
        )

    def get(self, key: tuple, batch=None) -> LaunchPlan | None:
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            if plan.bound_numerics and batch is not None and plan.batch_ref is not batch:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: tuple, plan: LaunchPlan) -> LaunchPlan:
        with self._lock:
            old = self._plans.pop(key, None)
            if old is not None and old is not plan:
                old.close()
            self._plans[key] = plan
            evicted_count = 0
            while len(self._plans) > self.max_plans:
                _, evicted = self._plans.popitem(last=False)
                evicted.close()
                self.evictions += 1
                evicted_count += 1
            if evicted_count:
                tracer = current_tracer()
                if tracer:
                    tracer.instant(
                        "plan-cache-evict", _cache_track(plan.device),
                        cat="plan-cache", args={"count": evicted_count},
                    )
            return plan

    def get_or_build(self, key: tuple, batch, build) -> LaunchPlan:
        """Serve a cached plan or call ``build()`` (counted) and store it.

        With a tracer active the lookup outcome becomes a
        ``plan-cache-hit`` / ``plan-cache-miss`` instant and the build
        itself a wall-clock ``plan-build`` span — the "plan build" leg
        of the trace report's critical-path breakdown.
        """
        with self._lock:
            tracer = current_tracer()
            plan = self.get(key, batch)
            if plan is None:
                self.planner_calls += 1
                if tracer:
                    track = _cache_track(getattr(batch, "device", None))
                    tracer.instant("plan-cache-miss", track, cat="plan-cache")
                    t0 = tracer.wall_clock()
                    plan = self.put(key, build())
                    tracer.add_span(
                        "plan-build", track, t0, tracer.wall_clock(),
                        cat="plan", clock="wall", args={"nodes": len(plan)},
                    )
                else:
                    plan = self.put(key, build())
            elif tracer:
                tracer.instant(
                    "plan-cache-hit", _cache_track(plan.device), cat="plan-cache"
                )
            return plan

    def publish(self, registry, prefix: str = "plan_cache") -> None:
        """Snapshot the traffic counters into a metrics registry.

        Gauges (idempotent set), so a caller may re-publish after every
        repeat without double counting — the ``profile --repeat`` path.
        """
        with self._lock:
            values = {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "planner_calls": self.planner_calls,
                "size": len(self._plans),
                "hit_ratio": self.hits / (self.hits + self.misses)
                if (self.hits + self.misses)
                else 0.0,
            }
        for name, value in values.items():
            registry.gauge(f"{prefix}_{name}", f"plan cache {name}").set(value)

    def evict(self, device=None) -> int:
        """Drop (and close) cached plans; returns how many were evicted.

        ``device=None`` clears everything; otherwise only plans keyed to
        that device go — the serving loop calls this when a device
        leaves the dispatch group, so its workspace pool drains without
        disturbing the plans of its peers.
        """
        with self._lock:
            if device is None:
                doomed = list(self._plans)
            else:
                doomed = [k for k in self._plans if k[0] == id(device)]
            for key in doomed:
                self._plans.pop(key).close()
            self.evictions += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            for plan in self._plans.values():
                plan.close()
            self._plans.clear()
