"""LaunchPlan optimizer: a pass pipeline over the plan DAG.

The planners emit a *conservative* plan shape: full :class:`Barrier`
joins between factorization steps, one :class:`KernelLaunch` per size
bucket (even a tiny one), and launches that cover matrices which
already finished.  This module rewrites that shape without touching the
numerics plane — the paper's "ignore finished matrices" driver behavior
(§IV) done at plan time, plus the dependency-pruned synchronization of
BLASX-style runtime DAG scheduling.

Four passes, applied in a fixed order by :func:`optimize_plan`:

``elide``
    Drop whole-device :class:`Barrier` nodes.  Correct ordering is
    restored by the dependency-synthesis stage, which computes minimal
    cross-stream event edges from each launch's true read/write set —
    so step *k+1* work on matrices that finished step *k* early starts
    as soon as its own inputs are ready.
``prune``
    Drop launches whose per-matrix active set is empty, and shrink
    launches (fused windows, vbatched syrk/gemm task lists) to their
    live matrices, removing ETM'd dead blocks from the timing plane.
``coalesce``
    Merge adjacent same-stream launches of the same kernel class whose
    size buckets fall in the same grouping class (identical launch
    configuration / tile class) into one batched launch, cutting
    per-launch overhead for tiny-matrix tails.
``lpt``
    Re-assign runs of mutually independent launches to streams by
    calibrated-duration longest-processing-time scheduling, so the
    trace report's per-stream occupancy evens out.  The independent
    runs are recorded in ``plan.meta`` so the executor can run their
    numerics on a thread pool.

Numerics safety argument: the executor runs ``run_numerics`` strictly
in node-list order, so results depend only on that order.  No pass
reorders two launches that *conflict* (write/write or read/write on the
same matrix or workspace); pruning only removes work whose functional
plane already filters to live matrices.  Optimized plans are therefore
bit-identical to unoptimized ones on the numerics plane.

Access tokens: a launch's read/write sets contain batch indices
(``int``), workspace identities (``("ws", id(array))``), the wildcard
``"*"`` (any matrix) or ``"**"`` (anything at all, for unknown
kernels).  Compute kernels in this codebase never read the auxiliary
workspaces on the host path (group keys are passed host-side by the
planners), which is what lets :class:`~repro.kernels.aux
.StepSizesKernel` launches float freely between compute launches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import PlanError
from ..kernels import grouping
from ..kernels.aux import IMaxReduceKernel, StepSizesKernel
from ..kernels.fused_potrf import FusedPotrfStepKernel
from ..kernels.gemm import VbatchedGemmKernel
from ..kernels.naive import NaivePotf2Kernel
from ..kernels.potf2 import PanelPotf2StepKernel
from ..kernels.syrk import VbatchedSyrkKernel
from ..kernels.trtri import VbatchedTrtriDiagKernel
from ..observability.trace import Track, current_tracer
from .plan import AuxLaunch, Barrier, KernelLaunch, LaunchPlan, PlanNode

__all__ = [
    "PASS_NAMES",
    "ancestor_masks",
    "node_access",
    "optimize_plan",
    "publish_optimizer_counters",
    "resolve_passes",
]

#: Canonical pass order; ``optimize="all"`` runs every pass.
PASS_NAMES = ("elide", "prune", "coalesce", "lpt")

#: Wildcard token: conflicts with every matrix index.
STAR = "*"
#: Wildcard token: conflicts with everything (unknown kernel types).
STAR_ALL = "**"

#: Counter names the passes publish (issue-mandated registry names).
OPTIMIZER_COUNTERS = (
    ("plan_opt_barriers_elided", "barriers_elided",
     "Barrier nodes removed by the plan optimizer's elide pass"),
    ("plan_opt_launches_merged", "launches_merged",
     "Kernel launches coalesced into an earlier launch"),
    ("plan_opt_launches_pruned", "launches_pruned",
     "Dead kernel launches dropped by the plan optimizer"),
)


def resolve_passes(level) -> tuple[str, ...]:
    """Normalize an optimization level to an ordered pass tuple.

    Accepts ``"none"``/``None``/``""``, ``"all"``, a single pass name,
    or a ``"+"``-joined combination (``"elide+prune"``).  Raises
    :class:`ValueError` for unknown pass names.
    """
    if level is None or level in ("none", ""):
        return ()
    if level == "all":
        return PASS_NAMES
    wanted = set()
    for part in str(level).split("+"):
        part = part.strip()
        if part in ("", "none"):
            continue
        if part == "all":
            return PASS_NAMES
        if part not in PASS_NAMES:
            raise ValueError(
                f"unknown optimization pass {part!r}; "
                f"expected 'none', 'all', or '+'-joined {PASS_NAMES}"
            )
        wanted.add(part)
    return tuple(p for p in PASS_NAMES if p in wanted)


# ----------------------------------------------------------------------
# access sets
# ----------------------------------------------------------------------
def _kernel_access(kernel) -> tuple[set, set]:
    """(reads, writes) token sets for one kernel launch."""
    if isinstance(kernel, FusedPotrfStepKernel):
        return set(), {int(i) for i in kernel.indices}
    if isinstance(kernel, PanelPotf2StepKernel):
        local = kernel.inner_step * kernel.nb
        return set(), {int(i) for i in np.flatnonzero(kernel.jbs > local)}
    if isinstance(kernel, NaivePotf2Kernel):
        return set(), {int(i) for i in np.flatnonzero(kernel.jbs > 0)}
    if isinstance(kernel, StepSizesKernel):
        return set(), {
            ("ws", id(kernel.remaining_dev)),
            ("ws", id(kernel.panel_dev)),
            ("ws", id(kernel.stats_dev)),
        }
    if isinstance(kernel, IMaxReduceKernel):
        return {("ws", id(kernel.values_dev))}, {("ws", id(kernel.result_dev))}
    indices = getattr(kernel, "matrix_indices", None)
    if indices is not None:
        return set(), {int(i) for i in indices}
    if isinstance(kernel, (VbatchedSyrkKernel, VbatchedGemmKernel, VbatchedTrtriDiagKernel)):
        return set(), {STAR}
    return {STAR_ALL}, {STAR_ALL}


def node_access(node: PlanNode) -> tuple[frozenset, frozenset]:
    """Public (reads, writes) access sets for a plan node.

    Barriers return empty sets — they order by fencing, not by data.
    """
    if isinstance(node, KernelLaunch) and node.kernel is not None:
        r, w = _kernel_access(node.kernel)
        return frozenset(r), frozenset(w)
    return frozenset(), frozenset()


def _intersects(a: set, b: set) -> bool:
    if not a or not b:
        return False
    if STAR_ALL in a or STAR_ALL in b:
        return True
    if STAR in a and (STAR in b or any(isinstance(t, int) for t in b)):
        return True
    if STAR in b and any(isinstance(t, int) for t in a):
        return True
    return not a.isdisjoint(b)


def _conflicts(w1: set, r1: set, w2: set, r2: set) -> bool:
    return _intersects(w1, w2) or _intersects(w1, r2) or _intersects(r1, w2)


# ----------------------------------------------------------------------
# working representation
# ----------------------------------------------------------------------
@dataclass
class _Work:
    """Mutable per-node state while the passes rewrite the plan."""

    node: PlanNode
    stream: int
    kernel: object = None
    reads: set = field(default_factory=set)
    writes: set = field(default_factory=set)
    origin: tuple = ()

    @property
    def is_barrier(self) -> bool:
        return isinstance(self.node, Barrier)

    @property
    def is_aux(self) -> bool:
        return isinstance(self.node, AuxLaunch)


def _build_works(plan: LaunchPlan) -> list[_Work]:
    works = []
    for node in plan.nodes:
        if isinstance(node, Barrier):
            works.append(_Work(node=node, stream=node.stream, origin=(node.index,)))
        else:
            reads, writes = _kernel_access(node.kernel)
            works.append(
                _Work(
                    node=node,
                    stream=node.stream,
                    kernel=node.kernel,
                    reads=reads,
                    writes=writes,
                    origin=(node.index,),
                )
            )
    return works


# ----------------------------------------------------------------------
# pass 1: barrier elision
# ----------------------------------------------------------------------
def _pass_elide(works: list[_Work], device, report: dict) -> list[_Work]:
    kept = [w for w in works if not w.is_barrier]
    report["barriers_elided"] += len(works) - len(kept)
    return kept


# ----------------------------------------------------------------------
# pass 2: dead-launch pruning
# ----------------------------------------------------------------------
def _copy_matrix_indices(kernel, keep: list[bool], task_count: int):
    """Filter a kernel's ``matrix_indices`` by a task keep-mask."""
    indices = getattr(kernel, "matrix_indices", None)
    if indices is None:
        return None
    if len(indices) == task_count:
        return tuple(int(i) for i, k in zip(indices, keep) if k)
    return tuple(indices)  # unknown mapping: keep the (superset) annotation


def _shrink_kernel(kernel):
    """Drop a launch's finished matrices; ``(kernel', tasks_removed)``.

    Returns the same object when nothing is dead, ``None`` when the
    whole launch is dead.  Never mutates the input — cached plans may
    share kernel objects.
    """
    if isinstance(kernel, FusedPotrfStepKernel):
        sizes = np.asarray(kernel.batch.sizes_host)
        remaining = sizes[kernel.indices] - kernel.step * kernel.nb
        live = remaining > 0
        dead = int(len(kernel.indices) - live.sum())
        if not dead:
            return kernel, 0
        if not live.any():
            return None, dead
        shrunk = FusedPotrfStepKernel(
            kernel.batch,
            kernel.step,
            kernel.nb,
            kernel.indices[live],
            int(remaining[live].max()),
            etm=kernel.etm_mode,
            groups=grouping.grouped_first_seen(remaining[live]),
        )
        shrunk.name = kernel.name
        return shrunk, dead
    if isinstance(kernel, (PanelPotf2StepKernel, NaivePotf2Kernel)):
        local = kernel.inner_step * kernel.nb if isinstance(kernel, PanelPotf2StepKernel) else 0
        if not np.any(kernel.jbs > local):
            return None, int(len(kernel.jbs))
        return kernel, 0  # jbs is batch-position-aligned; cannot compress
    if isinstance(kernel, VbatchedSyrkKernel):
        keep = [t.n > 0 for t in kernel.tasks]
        dead = len(keep) - sum(keep)
        if not dead:
            return kernel, 0
        if not any(keep):
            return None, dead
        shrunk = VbatchedSyrkKernel(
            [t for t, k in zip(kernel.tasks, keep) if k], kernel._prec, kernel.tiling
        )
        shrunk.name = kernel.name
        shrunk.matrix_indices = _copy_matrix_indices(kernel, keep, len(keep))
        return shrunk, dead
    if isinstance(kernel, VbatchedGemmKernel):
        # k == 0 tasks with m, n > 0 stay: they scale C by beta.
        keep = [t.m > 0 and t.n > 0 for t in kernel.tasks]
        dead = len(keep) - sum(keep)
        if not dead:
            return kernel, 0
        if not any(keep):
            return None, dead
        shrunk = VbatchedGemmKernel(
            [t for t, k in zip(kernel.tasks, keep) if k], kernel._prec, kernel.tiling
        )
        shrunk.name = kernel.name
        shrunk.matrix_indices = _copy_matrix_indices(kernel, keep, len(keep))
        return shrunk, dead
    return kernel, 0


def _pass_prune(works: list[_Work], device, report: dict) -> list[_Work]:
    out = []
    for w in works:
        if w.is_barrier or w.kernel is None or w.is_aux:
            out.append(w)
            continue
        shrunk, removed = _shrink_kernel(w.kernel)
        if shrunk is None:
            report["launches_pruned"] += 1
            report["tasks_pruned"] += removed
            continue
        if shrunk is not w.kernel:
            w.kernel = shrunk
            w.reads, w.writes = _kernel_access(shrunk)
            report["tasks_pruned"] += removed
        out.append(w)
    return out


# ----------------------------------------------------------------------
# pass 3: launch coalescing
# ----------------------------------------------------------------------
def _tiling_key(tiling):
    return (tiling.blk_m, tiling.blk_n, tiling.blk_k, tiling.threads, tiling.regs_per_thread)


def _coalesce_key(w: _Work):
    """Grouping-class key; only same-key launches may merge.

    Fused windows merge when their launch configuration is identical
    (same warp-rounded ``max_m``, hence same threads + shared memory);
    vbatched syrk launches merge within a tile class (same
    ``ceil(max_n / blk_m)``), which keeps the merged grid — and the
    timing plane's dead-block accounting — exact.
    """
    k = w.kernel
    if isinstance(k, FusedPotrfStepKernel):
        cfg = k.launch_config()
        return (
            "fused", id(k.batch), k.step, k.nb, k.etm_mode,
            cfg.threads_per_block, cfg.shared_mem_per_block, w.node.tag, w.stream,
        )
    if isinstance(k, VbatchedSyrkKernel):
        tiles = max(1, -(-k.max_n // k.tiling.blk_m))
        return ("syrk", k.name, k._prec, _tiling_key(k.tiling), tiles, w.node.tag, w.stream)
    return None


def _merge_grouped(a, b):
    """First-seen merge of two ``(values, counts)`` group tuples."""
    acc: dict = {}
    for values, counts in (a, b):
        for v, c in zip(np.asarray(values).tolist(), np.asarray(counts).tolist()):
            acc[v] = acc.get(v, 0) + int(c)
    values = np.asarray(list(acc.keys()), dtype=np.asarray(a[0]).dtype)
    counts = np.asarray(list(acc.values()), dtype=np.int64)
    return values, counts


def _merge_kernels(a, b):
    """One batched launch covering both, or ``None`` if unsupported."""
    if isinstance(a, FusedPotrfStepKernel) and isinstance(b, FusedPotrfStepKernel):
        groups = None
        if a.groups is not None and b.groups is not None:
            groups = _merge_grouped(a.groups, b.groups)
        merged = FusedPotrfStepKernel(
            a.batch,
            a.step,
            a.nb,
            np.concatenate([a.indices, b.indices]),
            max(a.max_m, b.max_m),
            etm=a.etm_mode,
            groups=groups,
        )
        merged.name = a.name
        return merged
    if isinstance(a, VbatchedSyrkKernel) and isinstance(b, VbatchedSyrkKernel):
        merged = VbatchedSyrkKernel(list(a.tasks) + list(b.tasks), a._prec, a.tiling)
        merged.name = a.name
        if a.matrix_indices is not None and b.matrix_indices is not None:
            merged.matrix_indices = tuple(a.matrix_indices) + tuple(b.matrix_indices)
        return merged
    return None


def _pass_coalesce(works: list[_Work], device, report: dict) -> list[_Work]:
    # pending: key -> [position in out, reads-between, writes-between].
    # The "between" accumulators hold the accesses of every node emitted
    # after the pending head; a later candidate may only jump back and
    # merge when it conflicts with none of them (its numerics commute
    # with everything it moves ahead of).
    pending: dict = {}
    out: list[_Work] = []
    for w in works:
        if w.is_barrier:
            pending.clear()
            out.append(w)
            continue
        key = _coalesce_key(w) if (w.kernel is not None and not w.is_aux) else None
        merged_into = None
        if key is not None and key in pending:
            pos, between_r, between_w = pending[key]
            head = out[pos]
            safe = not _conflicts(head.writes, head.reads, w.writes, w.reads)
            safe = safe and not _conflicts(between_w, between_r, w.writes, w.reads)
            if safe:
                merged = _merge_kernels(head.kernel, w.kernel)
                if merged is not None:
                    head.kernel = merged
                    head.reads = head.reads | w.reads
                    head.writes = head.writes | w.writes
                    head.origin = head.origin + w.origin
                    report["launches_merged"] += 1
                    merged_into = key
            if merged_into is None:
                del pending[key]  # stale/unmergeable; w reopens the slot below
        for other, entry in pending.items():
            if other != merged_into:
                entry[1].update(w.reads)
                entry[2].update(w.writes)
        if merged_into is not None:
            continue
        out.append(w)
        if key is not None:
            pending[key] = [len(out) - 1, set(), set()]
    return out


# ----------------------------------------------------------------------
# pass 4: LPT stream rebalancing
# ----------------------------------------------------------------------
def estimate_launch_duration(device, kernel) -> float:
    """Calibrated single-launch duration (seconds) from the cost model.

    Pure: reads the device spec/calibration without touching its clock.
    Falls back to a block-count proxy if the kernel rejects its own
    configuration.
    """
    try:
        _, schedule, _ = _prepared(device, kernel)
        return float(schedule.makespan) + float(device.spec.kernel_launch_overhead)
    except Exception:
        return float(max(1, kernel.total_blocks())) * 1e-6


def _prepared(device, kernel):
    """Cost-model inputs for a launch, cached on the kernel object.

    The cache is the optimizer's warm-execution win: a cached plan
    re-executes the same kernel objects, so ``Device.launch`` skips
    ``block_works``/``_block_durations``/``makespan`` entirely on every
    repeat.  The tuple layout matches what :meth:`Device.launch`
    honours; the entry self-invalidates if device or calibration change.
    """
    cached = getattr(kernel, "_schedule_cache", None)
    if cached is not None and cached[0] is device and cached[1] is device.calibration:
        return cached[2], cached[3], cached[4]
    occ, schedule, total_blocks = device.prepare_launch(kernel)
    kernel._schedule_cache = (device, device.calibration, occ, schedule, total_blocks)
    return occ, schedule, total_blocks


def _cache_schedules(works: list[_Work], device, report: dict) -> None:
    cached = 0
    for w in works:
        if w.kernel is None:
            continue
        try:
            _prepared(device, w.kernel)
            cached += 1
        except Exception:
            continue
    report["schedules_cached"] = cached


def _pass_lpt(works: list[_Work], device, max_streams: int, report: dict) -> list[_Work]:
    groups: list[list[int]] = []
    members: list[int] = []
    acc_r: set = set()
    acc_w: set = set()

    def close():
        if len(members) > 1:
            groups.append(list(members))
        members.clear()
        acc_r.clear()
        acc_w.clear()

    for pos, w in enumerate(works):
        if w.is_barrier:
            close()
            continue
        if w.is_aux or w.kernel is None:
            # Aux launches only touch workspace tokens, which compute
            # kernels never read — they float unless they conflict.
            if _conflicts(acc_w, acc_r, w.writes, w.reads):
                close()
            continue
        if _conflicts(acc_w, acc_r, w.writes, w.reads):
            close()
        members.append(pos)
        acc_r |= w.reads
        acc_w |= w.writes
    close()

    parallel_groups = []
    for group in groups:
        durations = [estimate_launch_duration(device, works[p].kernel) for p in group]
        total, longest = sum(durations), max(durations)
        # Densest width that still hides the work: never narrower than
        # the planner's own stream spread (so simulated overlap cannot
        # regress), never wider than the hardware queues.
        original_width = len({works[p].stream for p in group})
        dense = max(1, math.ceil(total / longest)) if longest > 0 else len(group)
        width = min(len(group), max_streams, max(dense, original_width))
        order = sorted(range(len(group)), key=lambda j: (-durations[j], j))
        loads = [0.0] * width
        for j in order:
            target = min(range(width), key=lambda s: (loads[s], s))
            works[group[j]].stream = 1 + target
            loads[target] += durations[j]
        report["groups_rebalanced"] += 1
        parallel_groups.append([int(p) for p in group])
    report["parallel_groups"] = parallel_groups
    return works


# ----------------------------------------------------------------------
# dependency synthesis
# ----------------------------------------------------------------------
def _writer_hits(last_writer: dict, token) -> list[int]:
    if token == STAR_ALL:
        return list(last_writer.values())
    if token == STAR:
        return [v for k, v in last_writer.items()
                if isinstance(k, int) or k in (STAR, STAR_ALL)]
    keys = (token, STAR, STAR_ALL) if isinstance(token, int) else (token, STAR_ALL)
    return [last_writer[k] for k in keys if k in last_writer]


def _reader_hits(readers: dict, token) -> list[int]:
    if token == STAR_ALL:
        return [i for group in readers.values() for i in group]
    if token == STAR:
        return [i for k, group in readers.items()
                if isinstance(k, int) or k in (STAR, STAR_ALL) for i in group]
    keys = (token, STAR, STAR_ALL) if isinstance(token, int) else (token, STAR_ALL)
    return [i for k in keys if k in readers for i in readers[k]]


def _commit_write(last_writer: dict, readers: dict, token, idx: int) -> None:
    if token == STAR_ALL:
        last_writer.clear()
        readers.clear()
        last_writer[STAR_ALL] = idx
        return
    if token == STAR:
        for k in [k for k in last_writer if isinstance(k, int) or k == STAR]:
            del last_writer[k]
        for k in [k for k in readers if isinstance(k, int) or k == STAR]:
            del readers[k]
        last_writer[STAR] = idx
        return
    last_writer[token] = idx
    readers.pop(token, None)


def _synthesize_deps(works: list[_Work]) -> list[tuple[int, ...]]:
    """Minimal cross-stream event edges from the access sets.

    Walks the final node order keeping last-writer / readers-since-write
    maps per token.  Same-stream ordering is implicit, barriers are full
    fences, and redundant edges are dropped with per-node vector clocks
    (``clock[stream] = latest index already ordered before this node``).
    """
    last_writer: dict = {}
    readers: dict = {}
    fence = -1
    prev_on_stream: dict = {}
    clocks: list[dict] = []
    deps_out: list[tuple[int, ...]] = []
    for i, w in enumerate(works):
        if w.is_barrier:
            fence = i
            clocks.append({})
            deps_out.append(())
            continue
        required = set()
        for token in w.reads:
            required.update(_writer_hits(last_writer, token))
        for token in w.writes:
            required.update(_writer_hits(last_writer, token))
            required.update(_reader_hits(readers, token))
        required = {p for p in required if p > fence and p != i}

        clock: dict = {}
        prev = prev_on_stream.get(w.stream)
        if prev is not None:
            clock.update(clocks[prev])
            clock[w.stream] = prev
        deps = []
        for p in sorted(required, reverse=True):
            p_stream = works[p].stream
            if p_stream == w.stream:
                continue  # implicit in-order stream queue
            if clock.get(p_stream, -1) >= p:
                continue  # already transitively ordered
            deps.append(p)
            for s, v in clocks[p].items():
                if clock.get(s, -1) < v:
                    clock[s] = v
            if clock.get(p_stream, -1) < p:
                clock[p_stream] = p
        clocks.append(clock)
        deps_out.append(tuple(sorted(deps)))
        prev_on_stream[w.stream] = i
        for token in w.reads:
            readers.setdefault(token, set()).add(i)
        for token in w.writes:
            _commit_write(last_writer, readers, token, i)
    return deps_out


def ancestor_masks(plan: LaunchPlan) -> list[int]:
    """Happens-before closure as bitmasks: bit ``j`` of ``masks[i]`` is
    set iff node ``j`` is ordered before node ``i`` under the executor's
    semantics (same-stream order, event edges, barrier fences).
    """
    masks: list[int] = []
    prev_on_stream: dict = {}
    fence_mask = 0
    for i, node in enumerate(plan.nodes):
        if isinstance(node, Barrier):
            before = (1 << i) - 1
            masks.append(before)
            fence_mask = before | (1 << i)
            continue
        mask = fence_mask
        prev = prev_on_stream.get(node.stream)
        if prev is not None:
            mask |= masks[prev] | (1 << prev)
        for dep in node.deps:
            mask |= masks[dep] | (1 << dep)
        masks.append(mask)
        prev_on_stream[node.stream] = i
    return masks


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
def _rebuild_nodes(works: list[_Work], deps: list[tuple[int, ...]]) -> list[PlanNode]:
    # Remap any planner-authored edges through the origin mapping so
    # they survive the rewrite (no current planner authors edges, but
    # the contract is preserved for future ones).
    position_of: dict = {}
    for i, w in enumerate(works):
        for origin in w.origin:
            position_of[origin] = i
    nodes: list[PlanNode] = []
    for i, w in enumerate(works):
        if w.is_barrier:
            nodes.append(Barrier(index=i, stream=w.stream, deps=(), streams=w.node.streams))
            continue
        carried = {
            position_of[d]
            for d in w.node.deps
            if d in position_of and position_of[d] < i
        }
        merged_deps = tuple(sorted(set(deps[i]) | carried))
        cls = AuxLaunch if w.is_aux else KernelLaunch
        nodes.append(
            cls(index=i, stream=w.stream, deps=merged_deps, kernel=w.kernel, tag=w.node.tag)
        )
    return nodes


def optimize_plan(
    plan: LaunchPlan,
    level="all",
    max_streams: int | None = None,
    registry=None,
) -> LaunchPlan:
    """Run the pass pipeline over ``plan`` in place and return it.

    ``level`` is ``"none"``, ``"all"``, a pass name, or a ``"+"``-joined
    combination; ``max_streams`` caps LPT stream spread (default: the
    device spec's ``hardware_queues``).  The rewrite report lands in
    ``plan.meta["optimizer"]`` and, when ``registry`` is given, on the
    issue's ``plan_opt_*`` counters.
    """
    passes = resolve_passes(level)
    if not passes:
        return plan
    if plan.closed:
        raise PlanError("cannot optimize a closed plan")
    device = plan.device
    if max_streams is None:
        spec = getattr(device, "spec", None)
        max_streams = int(getattr(spec, "hardware_queues", 8) or 8)
    max_streams = max(1, int(max_streams))

    tracer = current_tracer()
    track = Track(getattr(device, "name", "device"), "planner")
    report = {
        "level": str(level),
        "passes": list(passes),
        "nodes_before": len(plan.nodes),
        "barriers_elided": 0,
        "launches_merged": 0,
        "launches_pruned": 0,
        "tasks_pruned": 0,
        "groups_rebalanced": 0,
        "parallel_groups": [],
    }
    works = _build_works(plan)
    for name in passes:
        with tracer.span(f"plan-opt:{name}", track=track, cat="plan-opt"):
            if name == "elide":
                works = _pass_elide(works, device, report)
            elif name == "prune":
                works = _pass_prune(works, device, report)
            elif name == "coalesce":
                works = _pass_coalesce(works, device, report)
            elif name == "lpt":
                works = _pass_lpt(works, device, max_streams, report)
    with tracer.span("plan-opt:deps", track=track, cat="plan-opt"):
        deps = _synthesize_deps(works)
        plan.nodes = _rebuild_nodes(works, deps)
    with tracer.span("plan-opt:schedule-cache", track=track, cat="plan-opt"):
        _cache_schedules(works, device, report)
    plan.validate()
    report["nodes_after"] = len(plan.nodes)
    plan.meta["optimizer"] = report
    if registry is not None:
        publish_optimizer_counters(plan, registry)
    return plan


def publish_optimizer_counters(plan, registry) -> None:
    """Bump the ``plan_opt_*`` registry counters from a plan's report."""
    meta = plan.meta.get("optimizer") if hasattr(plan, "meta") else None
    if not meta:
        return
    for counter_name, key, help_text in OPTIMIZER_COUNTERS:
        amount = int(meta.get(key, 0))
        counter = registry.counter(counter_name, help_text)
        if amount:
            counter.inc(amount)
