"""The paper's contribution: variable-size batched (vbatched) routines.

Public entry points live in :mod:`repro.core.interface`; the drivers
implementing Approach 1 (fused kernels, §III-D), Approach 2 (separated
vbatched BLAS, §III-E) and the crossover policy (§IV-E) are composed in
:mod:`repro.core.driver`.
"""

from .batch import VBatch
from .interface import (
    potrf_vbatched,
    potrf_vbatched_max,
    potrf_batched_fixed,
    PotrfOptions,
    PotrfResult,
)
from .crossover import CrossoverPolicy
from .driver import LaunchStats
from .optimizer import optimize_plan, resolve_passes
from .plan import (
    AuxLaunch,
    Barrier,
    KernelLaunch,
    LaunchPlan,
    PlanBuilder,
    PlanCache,
)

__all__ = [
    "VBatch",
    "potrf_vbatched",
    "potrf_vbatched_max",
    "potrf_batched_fixed",
    "PotrfOptions",
    "PotrfResult",
    "CrossoverPolicy",
    "LaunchStats",
    "LaunchPlan",
    "PlanBuilder",
    "PlanCache",
    "KernelLaunch",
    "AuxLaunch",
    "Barrier",
    "optimize_plan",
    "resolve_passes",
]
