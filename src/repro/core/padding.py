"""The padding baseline: variable sizes through a fixed-size routine.

"The users need to pad the matrices with zeros in order to make them
fixed-size" (paper §IV-F).  Padding embeds each ``n x n`` matrix in the
leading corner of an ``Nmax x Nmax`` buffer whose remaining diagonal is
the identity — keeping the padded matrix SPD so the fixed-size POTRF
still succeeds — then factorizes the whole batch at size ``Nmax``.

Costs modeled exactly as the paper observes: a lot of extra flops
(every matrix pays the ``Nmax`` factorization) and a memory footprint
of ``batch * Nmax^2`` elements that genuinely exhausts the 12 GB card
(the truncated curves of Figs 8-9 come from the
:class:`~repro.errors.DeviceOutOfMemory` this raises).
"""

from __future__ import annotations

import numpy as np

from ..errors import ArgumentError
from ..types import Precision, precision_info
from .batch import VBatch

__all__ = ["pad_to_fixed", "padding_extra_flops"]


def pad_to_fixed(device, sizes: np.ndarray, max_n: int,
                 precision: Precision | str = Precision.D,
                 host_matrices: list[np.ndarray] | None = None) -> VBatch:
    """Build the padded fixed-size batch (allocates ``k * Nmax^2``).

    With ``host_matrices`` given, each is embedded into its padded
    buffer (identity elsewhere); otherwise buffers stay unmaterialized
    for timing-only runs.  Raises :class:`DeviceOutOfMemory` when the
    padded batch exceeds device capacity — deliberately not caught here.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0:
        raise ArgumentError(2, "batch must contain at least one matrix")
    if max_n < int(sizes.max()):
        raise ArgumentError(3, f"max_n={max_n} smaller than largest matrix {int(sizes.max())}")
    prec = Precision(precision)
    padded_sizes = np.full(sizes.size, max_n, dtype=np.int64)
    batch = VBatch.allocate(device, padded_sizes, prec)
    if host_matrices is not None and device.execute_numerics:
        if len(host_matrices) != sizes.size:
            raise ArgumentError(5, "host_matrices length mismatch")
        dtype = precision_info(prec).dtype
        for i, (n, src) in enumerate(zip(sizes, host_matrices)):
            n = int(n)
            buf = batch.matrices[i].data
            buf[...] = np.eye(max_n, dtype=dtype)
            buf[:n, :n] = src
    return batch


def padding_extra_flops(sizes: np.ndarray, max_n: int) -> float:
    """Wasted flops: the padded batch factorizes every matrix at ``Nmax``."""
    from .. import flops as _flops

    sizes = np.asarray(sizes, dtype=np.int64)
    useful = _flops.batch_flops(sizes)
    padded = sizes.size * _flops.potrf_flops(max_n)
    return padded - useful
