"""Fused/separated selection policy (paper §IV-E).

"For the test cases generated here, the crossover point is marked by
the maximum size in the batch.  The reason behind choosing the maximum
as the deciding criteria is that the kernel fusion approach cannot work
for any matrix size, due to its shared memory requirements."

Two rules compose:

* a **hard feasibility bound** — beyond it the fused kernel cannot be
  launched at all (shared memory / block-dimension limits), so the
  separated approach is the only choice;
* a **tuned crossover size** — below the bound, whichever approach is
  faster; defaults come from sweeping both approaches on the simulator
  (see :mod:`repro.autotune`), and Fig 7 regenerates the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ArgumentError
from ..types import Precision
from .fused import fused_max_feasible_size

__all__ = ["CrossoverPolicy", "DEFAULT_CROSSOVER"]

# Tuned on the simulated K40c by benchmarks/test_fig07_crossover.py:
# the size of the batch maximum at which the separated approach starts
# to win (batch 800, uniform sizes).  Single precision crosses later
# (smaller elements -> the fused panel fits longer in shared memory and
# stays occupancy-friendly); the z entry never crosses before the fused
# feasibility bound, so it is clamped there.
DEFAULT_CROSSOVER = {
    Precision.S: 832,
    Precision.D: 304,
    Precision.C: 832,
    Precision.Z: 1024,
}


@dataclass(frozen=True)
class CrossoverPolicy:
    """Chooses an approach from the batch's maximum size."""

    precision: Precision
    crossover_size: int | None = None

    def resolved_crossover(self) -> int:
        cross = (
            self.crossover_size
            if self.crossover_size is not None
            else DEFAULT_CROSSOVER[self.precision]
        )
        return min(cross, fused_max_feasible_size(self.precision))

    def choose(self, max_n: int) -> str:
        """Return ``"fused"`` or ``"separated"`` for a batch max size."""
        if max_n <= 0:
            raise ArgumentError(1, f"max_n must be positive, got {max_n}")
        return "fused" if max_n <= self.resolved_crossover() else "separated"
