"""Name -> runner map used by the figure harness.

Each entry builds its own fresh device/batch state from a
(sizes, precision) specification, so baselines never contaminate each
other's clocks or memory.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import VBatch
from ..core.driver import PotrfOptions
from ..device import Device
from ..types import Precision
from .cpu_mkl import run_cpu_multithreaded
from .cpu_percore import run_cpu_percore
from .gpu import run_padding, run_vbatched
from .hybrid import run_hybrid
from .result import BaselineResult

__all__ = ["BASELINES", "run_baseline"]


def _vbatched(sizes, precision, max_n, **kwargs):
    device = Device(execute_numerics=False)
    batch = VBatch.allocate(device, sizes, precision)
    device.reset_clock()
    return run_vbatched(device, batch, max_n, PotrfOptions(**kwargs))


def _padding(sizes, precision, max_n, **kwargs):
    device = Device(execute_numerics=False)
    return run_padding(device, sizes, max_n, precision)


def _hybrid(sizes, precision, max_n, **kwargs):
    device = Device(execute_numerics=False)
    batch = VBatch.allocate(device, sizes, precision)
    device.reset_clock()
    return run_hybrid(device, batch, precision)


def _cpu_mt(sizes, precision, max_n, **kwargs):
    return run_cpu_multithreaded(sizes, precision)


def _cpu_static(sizes, precision, max_n, **kwargs):
    return run_cpu_percore(sizes, precision, scheduling="static")


def _cpu_dynamic(sizes, precision, max_n, **kwargs):
    return run_cpu_percore(sizes, precision, scheduling="dynamic")


BASELINES = {
    "magma-vbatched": _vbatched,
    "magma-hybrid": _hybrid,
    "fixed-batched+padding": _padding,
    "cpu-mkl-mt": _cpu_mt,
    "cpu-1core-static": _cpu_static,
    "cpu-1core-dynamic": _cpu_dynamic,
}


def run_baseline(
    name: str,
    sizes: np.ndarray,
    precision: Precision | str,
    max_n: int | None = None,
    **kwargs,
) -> BaselineResult:
    """Run a named baseline on a size sample (timing-only device)."""
    try:
        runner = BASELINES[name]
    except KeyError:
        known = ", ".join(sorted(BASELINES))
        raise ValueError(f"unknown baseline {name!r}; known: {known}") from None
    sizes = np.asarray(sizes, dtype=np.int64)
    if max_n is None:
        max_n = int(sizes.max())
    return runner(sizes, Precision(precision), max_n, **kwargs)
