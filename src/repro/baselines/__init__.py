"""The comparison points of the paper's overall evaluation (Figs 8-9).

Five alternatives to the proposed vbatched routines:

* :func:`run_cpu_multithreaded` — all 16 cores on one matrix at a time
  (MKL multithreaded), the paper's "not a wise option";
* :func:`run_cpu_percore` — one core per matrix, static or dynamic
  scheduling; dynamic is "the best competitor";
* :func:`run_hybrid` — MAGMA's hybrid CPU-panel + GPU-update algorithm
  applied to each matrix in sequence, "not the correct choice";
* :func:`run_padding` — fixed-size batched routine over zero-padded
  matrices, wasting flops and (beyond ~1.4k sizes) device memory;
* the proposed routines themselves via :func:`run_vbatched`.

Every runner returns a :class:`BaselineResult` so the figure harness
can tabulate them uniformly.
"""

from .result import BaselineResult
from .cpu_mkl import run_cpu_multithreaded
from .cpu_percore import run_cpu_percore, run_cpu_percore_measured
from .hybrid import run_hybrid
from .gpu import run_padding, run_vbatched
from .registry import BASELINES, run_baseline

__all__ = [
    "BaselineResult",
    "run_cpu_multithreaded",
    "run_cpu_percore",
    "run_cpu_percore_measured",
    "run_hybrid",
    "run_padding",
    "run_vbatched",
    "BASELINES",
    "run_baseline",
]
