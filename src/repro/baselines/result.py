"""Uniform result record for every baseline runner."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import flops as _flops

__all__ = ["BaselineResult"]


@dataclass
class BaselineResult:
    """Outcome of one baseline run over one batch.

    ``core_busy`` (CPU runs) and ``gpu_timeline`` (GPU runs) carry what
    the energy model needs; either may be ``None`` for the other class
    of runner.
    """

    label: str
    elapsed: float
    total_flops: float
    extra: dict = field(default_factory=dict)
    core_busy: np.ndarray | None = None
    gpu_timeline: object | None = None

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)

    def __post_init__(self):
        if self.elapsed < 0 or self.total_flops < 0:
            raise ValueError(f"negative result fields: {self.label}")
