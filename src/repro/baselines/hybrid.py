"""The MAGMA-hybrid baseline (paper §II, §IV-F).

Classic hybrid one-sided factorization: the CPU factorizes each panel
while the GPU applies the trailing-matrix update, one matrix at a time.
"For small problems ... hybrid algorithms lose efficiency due to lack
of parallelism, especially in the trailing matrix updates which fail to
hide the latency of both the panel factorization and the data movement
between the CPU and the GPU."

Per matrix: upload, then for each ``nb`` panel a panel download, a CPU
panel factorization, a panel upload, and a single-matrix GPU ``syrk``
(few blocks — the device idles); finally a result download.  Matrices
are processed in sequence, exactly how an application would call the
hybrid ``magma_dpotrf`` per problem.
"""

from __future__ import annotations

import numpy as np

from .. import flops as _flops
from ..cpu import MklModel
from ..device.member import CpuMember
from ..hostblas import potrf as host_potrf
from ..kernels.syrk import SyrkTask, VbatchedSyrkKernel
from ..types import Precision, precision_info
from .result import BaselineResult

__all__ = ["run_hybrid", "HYBRID_PANEL_NB"]

HYBRID_PANEL_NB = 128


def run_hybrid(
    device,
    batch,
    precision: Precision | str | None = None,
    panel_nb: int = HYBRID_PANEL_NB,
    mkl: MklModel | None = None,
) -> BaselineResult:
    """Run the hybrid algorithm over a :class:`~repro.core.batch.VBatch`.

    GPU kernel and PCIe costs land on the simulated device clock; CPU
    panel time is added as host time between launches (the host blocks
    on each panel, which is precisely why the hybrid loses here).
    """
    if panel_nb <= 0:
        raise ValueError(f"panel_nb must be positive, got {panel_nb}")
    prec = Precision(precision) if precision is not None else batch.precision
    info = precision_info(prec)
    mkl = mkl or MklModel()
    elem = info.bytes_per_element
    # One CPU core drives the hybrid loop; model it as a compute
    # member so the panel-time formula lives with the other backend
    # cost models (the numbers are the member's, unchanged).
    cpu = CpuMember(spec=mkl.spec, cores=1, mkl=mkl, name="hybrid:cpu")

    t0 = device.synchronize()
    for i in range(batch.batch_count):
        n = int(batch.sizes_host[i])
        if n == 0:
            continue
        # Matrix is assumed GPU-resident (as in the batched runs);
        # panels bounce over PCIe each step.
        for j0 in range(0, n, panel_nb):
            jb = min(panel_nb, n - j0)
            m = n - j0
            panel_bytes = m * jb * elem
            device._transfer(panel_bytes, "hybrid:panel_d2h", None)
            # CPU panel: potf2 on the tile + trsm below, single core
            # rate is what a lone panel achieves (the rest of the
            # machine has nothing to do for this matrix).
            panel_flops = _flops.potf2_flops(jb, prec) + _flops.trsm_flops(
                m - jb, jb, "right", prec
            )
            cpu_time = cpu.panel_time(jb, panel_flops, prec)
            device.host_time += cpu_time
            cpu.advance(cpu_time)
            device._transfer(panel_bytes, "hybrid:panel_h2d", None)
            n_trail = m - jb
            if n_trail > 0:
                device.launch(
                    VbatchedSyrkKernel([SyrkTask(n=n_trail, k=jb)], prec)
                )
        if device.execute_numerics:
            a = batch.matrix_view(i)
            info_code = host_potrf(a, "l", nb=panel_nb)
            if info_code != 0:
                batch.infos_dev.data[i] = info_code

    elapsed = device.synchronize() - t0
    busy = np.zeros(16)
    busy[0] = cpu.synchronize()  # one core drives the hybrid loop
    return BaselineResult(
        label="magma-hybrid",
        elapsed=elapsed,
        total_flops=_flops.batch_flops(batch.sizes_host, "potrf", prec),
        core_busy=busy,
        gpu_timeline=device.timeline,
        extra={"panel_nb": panel_nb},
    )
