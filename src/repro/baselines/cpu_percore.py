"""CPU baseline: one core per matrix (paper §IV-F).

"The best competitor to the proposed approach is dynamic assignment of
one CPU core at a time for a given matrix" — most small matrices fit
the fast cache levels and the work queue balances the load.  The static
round-robin variant is also provided ("results in some performance
oscillations").

Two flavors live here:

* :func:`run_cpu_percore` — the *modeled* baseline: a
  :class:`~repro.device.member.CpuMember` (per-matrix task times from
  the MKL model, scheduled by the simulated
  :class:`~repro.cpu.CoreScheduler`) — the same backend a
  :class:`~repro.device.hetero.HeteroGroup` places buckets on, pinned
  to the paper's full-machine contention so the figures are unchanged.
* :func:`run_cpu_percore_measured` — a *real* ``concurrent.futures``
  pool factorizing actual SPD matrices on this machine.  Dynamic
  scheduling is the pool's shared work queue (a worker takes the next
  matrix the moment it frees — OpenMP ``schedule(dynamic)``); static is
  a round-robin pre-assignment of one chunk per worker.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from .. import flops as _flops
from ..cpu import CpuSpec, MklModel, SANDY_BRIDGE_2X8
from ..device.member import CpuMember
from ..hostblas import make_spd_batch, potrf
from ..types import Precision
from .result import BaselineResult

__all__ = ["run_cpu_percore", "run_cpu_percore_measured"]


def run_cpu_percore(
    sizes: np.ndarray,
    precision: Precision | str = Precision.D,
    scheduling: str = "dynamic",
    spec: CpuSpec = SANDY_BRIDGE_2X8,
    mkl: MklModel | None = None,
    cores: int | None = None,
) -> BaselineResult:
    """One single-threaded ``potrf`` per matrix, scheduled onto cores."""
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0:
        raise ValueError("batch must contain at least one matrix")
    if np.any(sizes <= 0):
        raise ValueError("matrix sizes must be positive")
    prec = Precision(precision)
    mkl = mkl or MklModel(spec)

    # The paper's baseline charges full-machine contention no matter
    # how many matrices are in flight; ``contention_cores`` pins the
    # member to that convention (a HeteroGroup member would instead
    # scale contention with the bucket it was handed).
    member = CpuMember(
        spec,
        cores=cores,
        mkl=mkl,
        scheduling=scheduling,
        contention_cores=cores or spec.total_cores,
        name="cpu-baseline",
    )
    run = member.schedule(sizes, prec)
    return BaselineResult(
        label=f"cpu-1core-{scheduling}",
        elapsed=run.makespan,
        total_flops=_flops.batch_flops(sizes, "potrf", prec),
        core_busy=run.core_busy,
        extra={"imbalance": run.imbalance, "utilization": run.utilization},
    )


def _timed_potrf(a: np.ndarray) -> tuple[tuple[int, int], float, int]:
    """Pool task: factorize one matrix in place; report who ran it."""
    t0 = time.perf_counter()
    info = potrf(a, "l")
    dt = time.perf_counter() - t0
    # (pid, thread ident) tells workers apart in both pool kinds: a
    # thread pool varies the ident, a process pool varies the pid.
    return (os.getpid(), threading.get_ident()), dt, info


def _timed_chunk(mats: list[np.ndarray]) -> tuple[float, int]:
    """Pool task for the static variant: one worker's whole chunk."""
    t0 = time.perf_counter()
    info = 0
    for a in mats:
        info = info or potrf(a, "l")
    return time.perf_counter() - t0, info


def run_cpu_percore_measured(
    sizes: np.ndarray,
    precision: Precision | str = Precision.D,
    scheduling: str = "dynamic",
    workers: int | None = None,
    executor: str = "thread",
    seed: int = 0,
    matrices: list[np.ndarray] | None = None,
) -> BaselineResult:
    """Actually factorize a batch, one matrix per pool worker at a time.

    Unlike :func:`run_cpu_percore` (an analytic model on simulated
    cores), this runs the host-BLAS ``potrf`` over real SPD matrices on
    a ``concurrent.futures`` pool and reports measured wall-clock.
    ``executor`` selects ``"thread"`` or ``"process"`` workers; the
    matrix-generation cost is excluded from the timing.  With thread
    workers the factors land in ``matrices`` in place; process workers
    factorize copies (only the timings travel back).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0:
        raise ValueError("batch must contain at least one matrix")
    if np.any(sizes <= 0):
        raise ValueError("matrix sizes must be positive")
    if scheduling not in ("static", "dynamic"):
        raise ValueError(f"scheduling must be 'static' or 'dynamic', got {scheduling!r}")
    if executor not in ("thread", "process"):
        raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
    prec = Precision(precision)
    if matrices is None:
        matrices = make_spd_batch(sizes.tolist(), prec, seed=seed)
    elif len(matrices) != sizes.size:
        raise ValueError(f"got {len(matrices)} matrices for {sizes.size} sizes")
    workers = workers or min(os.cpu_count() or 1, len(matrices))
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")

    pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    busy = np.zeros(workers)
    bad = 0
    wall0 = time.perf_counter()
    with pool_cls(max_workers=workers) as pool:
        if scheduling == "dynamic":
            # The pool's shared queue *is* the dynamic scheduler: each
            # worker pulls the next matrix the moment it frees.
            slots: dict[tuple[int, int], int] = {}
            for key, dt, info in pool.map(_timed_potrf, matrices):
                slot = slots.setdefault(key, len(slots) % workers)
                busy[slot] += dt
                bad += info != 0
        else:
            # Static round-robin: worker i owns matrices i, i+w, i+2w...
            # oblivious to their sizes (the paper's oscillating variant).
            chunks = [matrices[i::workers] for i in range(workers)]
            futs = [pool.submit(_timed_chunk, c) for c in chunks]
            for i, fut in enumerate(futs):
                dt, info = fut.result()
                busy[i] = dt
                bad += info != 0
    elapsed = time.perf_counter() - wall0

    mean = float(busy.mean())
    return BaselineResult(
        label=f"cpu-1core-{scheduling}-measured",
        elapsed=elapsed,
        total_flops=_flops.batch_flops(sizes, "potrf", prec),
        core_busy=busy,
        extra={
            "imbalance": float(busy.max()) / mean if mean > 0 else 1.0,
            "utilization": float(busy.sum()) / (workers * elapsed) if elapsed > 0 else 0.0,
            "workers": workers,
            "executor": executor,
            "failed": bad,
        },
    )
