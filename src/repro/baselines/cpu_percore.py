"""CPU baseline: one core per matrix (paper §IV-F).

"The best competitor to the proposed approach is dynamic assignment of
one CPU core at a time for a given matrix" — most small matrices fit
the fast cache levels and the work queue balances the load.  The static
round-robin variant is also provided ("results in some performance
oscillations").
"""

from __future__ import annotations

import numpy as np

from .. import flops as _flops
from ..cpu import CoreScheduler, CpuSpec, MklModel, SANDY_BRIDGE_2X8
from ..types import Precision
from .result import BaselineResult

__all__ = ["run_cpu_percore"]


def run_cpu_percore(
    sizes: np.ndarray,
    precision: Precision | str = Precision.D,
    scheduling: str = "dynamic",
    spec: CpuSpec = SANDY_BRIDGE_2X8,
    mkl: MklModel | None = None,
    cores: int | None = None,
) -> BaselineResult:
    """One single-threaded ``potrf`` per matrix, scheduled onto cores."""
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0:
        raise ValueError("batch must contain at least one matrix")
    if np.any(sizes <= 0):
        raise ValueError("matrix sizes must be positive")
    prec = Precision(precision)
    mkl = mkl or MklModel(spec)

    active = cores or spec.total_cores
    task_times = np.fromiter(
        (mkl.contended_potrf_time(int(n), prec, active) for n in sizes),
        dtype=np.float64,
        count=sizes.size,
    )
    run = CoreScheduler(spec).run(task_times, scheduling, cores=cores)
    return BaselineResult(
        label=f"cpu-1core-{scheduling}",
        elapsed=run.makespan,
        total_flops=_flops.batch_flops(sizes, "potrf", prec),
        core_busy=run.core_busy,
        extra={"imbalance": run.imbalance, "utilization": run.utilization},
    )
