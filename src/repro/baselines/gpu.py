"""GPU-side runners: the proposed vbatched routine and the padding baseline."""

from __future__ import annotations

import numpy as np

from .. import flops as _flops
from ..core.batch import VBatch
from ..core.driver import PotrfOptions, run_potrf_vbatched
from ..core.fixed import potrf_batched_fixed_run
from ..core.fused import fused_max_feasible_size
from ..core.padding import pad_to_fixed
from ..types import Precision
from .result import BaselineResult

__all__ = ["run_vbatched", "run_padding"]


def run_vbatched(
    device,
    batch: VBatch,
    max_n: int,
    options: PotrfOptions | None = None,
) -> BaselineResult:
    """The proposed routine, as a baseline-shaped runner."""
    res = run_potrf_vbatched(device, batch, max_n, options or PotrfOptions())
    return BaselineResult(
        label=f"magma-vbatched[{res.approach}]",
        elapsed=res.elapsed,
        total_flops=res.total_flops,
        gpu_timeline=device.timeline,
        extra={"approach": res.approach, **res.launch_stats},
    )


def run_padding(
    device,
    sizes: np.ndarray,
    max_n: int,
    precision: Precision | str = Precision.D,
    host_matrices: list[np.ndarray] | None = None,
) -> BaselineResult:
    """Fixed-size batched routine over zero-padded matrices.

    Useful flops are counted (Gflop/s stays comparable across series,
    per §IV-B), but the *time* covers factorizing every matrix at
    ``max_n`` — plus the allocation may simply exhaust device memory
    (:class:`DeviceOutOfMemory` propagates; Figs 8-9 truncate there).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    prec = Precision(precision)
    padded = pad_to_fixed(device, sizes, max_n, prec, host_matrices)
    approach = (
        "fused" if max_n <= fused_max_feasible_size(prec) else "separated"
    )
    t0 = device.synchronize()
    stats = potrf_batched_fixed_run(device, padded, max_n, approach=approach)
    elapsed = device.synchronize() - t0
    return BaselineResult(
        label="fixed-batched+padding",
        elapsed=elapsed,
        total_flops=_flops.batch_flops(sizes, "potrf", prec),
        gpu_timeline=device.timeline,
        extra={
            "padded_flops": sizes.size * _flops.potrf_flops(max_n, prec),
            "approach": stats["approach"],
        },
    )
