"""CPU baseline: multithreaded MKL, one matrix at a time (paper §IV-F).

"A multithreaded CPU scheme is not a wise option ... since each
individual matrix is too small to have multiple cores working on it."
The matrices are processed serially; each ``potrf`` call uses all
cores, paying the fork-join cost and extracting little parallelism.
"""

from __future__ import annotations

import numpy as np

from .. import flops as _flops
from ..cpu import CpuSpec, MklModel, SANDY_BRIDGE_2X8
from ..types import Precision
from .result import BaselineResult

__all__ = ["run_cpu_multithreaded"]


def run_cpu_multithreaded(
    sizes: np.ndarray,
    precision: Precision | str = Precision.D,
    spec: CpuSpec = SANDY_BRIDGE_2X8,
    mkl: MklModel | None = None,
    threads: int | None = None,
) -> BaselineResult:
    """Serial loop of multithreaded ``potrf`` calls over the batch."""
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0:
        raise ValueError("batch must contain at least one matrix")
    if np.any(sizes <= 0):
        raise ValueError("matrix sizes must be positive")
    prec = Precision(precision)
    mkl = mkl or MklModel(spec)
    threads = threads or spec.total_cores

    elapsed = 0.0
    busy_core_seconds = 0.0
    for n in sizes:
        t = mkl.potrf_time(int(n), prec, threads=threads)
        elapsed += t
        # Only the effectively-parallel cores do work; the rest spin at
        # the barrier (still drawing power, which the energy model
        # charges via makespan idle draw).
        busy_core_seconds += t * mkl.effective_threads(int(n), threads)

    per_core = busy_core_seconds / spec.total_cores
    return BaselineResult(
        label=f"cpu-mkl-mt[{threads}]",
        elapsed=elapsed,
        total_flops=_flops.batch_flops(sizes, "potrf", prec),
        core_busy=np.full(spec.total_cores, per_core),
        extra={"threads": threads},
    )
