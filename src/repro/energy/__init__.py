"""Energy-to-solution measurement (paper §IV-G, Figure 10)."""

from .measure import (
    EnergyReading,
    EnergyComparison,
    measure_cpu_energy,
    measure_gpu_energy,
    run_energy_experiment,
)

__all__ = [
    "EnergyReading",
    "EnergyComparison",
    "measure_cpu_energy",
    "measure_gpu_energy",
    "run_energy_experiment",
]
