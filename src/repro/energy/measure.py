"""Energy-to-solution comparison (paper §IV-G, Fig 10).

The paper integrates PAPI (CPU package) and NVML (GPU board) power over
each run and finds the GPU design "up to 3x more energy efficient".  We
integrate the corresponding power models over the simulated runs.  Both
implementations charge the *whole node*: the CPU run includes the idle
GPU board sitting in the chassis, and the GPU run includes the
near-idle CPU driving the launches — exactly what a wall-socket
measurement (and the paper's "total energy consumed by both hardware")
sees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.cpu_percore import run_cpu_percore
from ..baselines.gpu import run_vbatched
from ..core.batch import VBatch
from ..core.driver import PotrfOptions
from ..cpu.power import CpuPowerModel, SANDY_BRIDGE_POWER
from ..device import Device
from ..device.power import GpuPowerModel, K40C_POWER
from ..types import Precision

__all__ = [
    "EnergyReading",
    "EnergyComparison",
    "measure_cpu_energy",
    "measure_gpu_energy",
    "run_energy_experiment",
]


@dataclass(frozen=True)
class EnergyReading:
    """One implementation's time and energy to solution."""

    label: str
    elapsed: float
    joules: float

    @property
    def average_watts(self) -> float:
        return self.joules / self.elapsed if self.elapsed > 0 else 0.0


@dataclass(frozen=True)
class EnergyComparison:
    """CPU-vs-GPU energy result for one workload bucket."""

    workload: str
    cpu: EnergyReading
    gpu: EnergyReading

    @property
    def energy_ratio(self) -> float:
        """CPU joules / GPU joules (>1 means the GPU is more efficient)."""
        return self.cpu.joules / self.gpu.joules

    @property
    def time_ratio(self) -> float:
        return self.cpu.elapsed / self.gpu.elapsed


def measure_cpu_energy(
    sizes: np.ndarray,
    precision: Precision | str = Precision.D,
    cpu_power: CpuPowerModel = SANDY_BRIDGE_POWER,
    gpu_power: GpuPowerModel = K40C_POWER,
) -> EnergyReading:
    """Energy of the fastest CPU implementation (dynamic one-core-per-matrix).

    The paper's CPU reference "calls the optimized MKL library within a
    dynamically unrolled parallel OpenMP loop, assigning one core per
    matrix at a time".
    """
    run = run_cpu_percore(sizes, precision, scheduling="dynamic")
    joules = cpu_power.energy(run.core_busy, run.elapsed)
    joules += gpu_power.idle_watts * run.elapsed  # idle board in the node
    return EnergyReading("cpu-1core-dynamic", run.elapsed, joules)


def measure_gpu_energy(
    sizes: np.ndarray,
    precision: Precision | str = Precision.D,
    cpu_power: CpuPowerModel = SANDY_BRIDGE_POWER,
    gpu_power: GpuPowerModel = K40C_POWER,
    options: PotrfOptions | None = None,
) -> EnergyReading:
    """Energy of the proposed vbatched routine on the simulated K40c."""
    sizes = np.asarray(sizes, dtype=np.int64)
    device = Device(execute_numerics=False)
    batch = VBatch.allocate(device, sizes, precision)
    device.reset_clock()
    run = run_vbatched(device, batch, int(sizes.max()), options)
    joules = gpu_power.energy(device.timeline, run.elapsed)
    # The host spins on launches: one core busy, the package powered.
    host_busy = np.zeros(cpu_power.spec.total_cores)
    host_busy[0] = run.elapsed
    joules += cpu_power.energy(host_busy, run.elapsed)
    return EnergyReading(run.label, run.elapsed, joules)


def run_energy_experiment(
    size_low: int,
    size_high: int,
    batch_count: int,
    precision: Precision | str = Precision.D,
    seed: int = 0,
) -> EnergyComparison:
    """One Fig-10 bucket: sizes uniform in ``[size_low, size_high]``."""
    if not 0 < size_low <= size_high:
        raise ValueError(f"invalid size range [{size_low}, {size_high}]")
    if batch_count <= 0:
        raise ValueError(f"batch_count must be positive, got {batch_count}")
    rng = np.random.default_rng(seed)
    sizes = rng.integers(size_low, size_high + 1, size=batch_count, dtype=np.int64)
    return EnergyComparison(
        workload=f"[{size_low}:{size_high}]x{batch_count}",
        cpu=measure_cpu_energy(sizes, precision),
        gpu=measure_gpu_energy(sizes, precision),
    )
