"""One-core-per-matrix scheduling simulation (paper §IV-F CPU baselines).

Each matrix is a task whose duration comes from the MKL model; tasks go
to cores either **statically** (round-robin pre-assignment — the paper's
oscillating variant) or **dynamically** (an OpenMP ``schedule(dynamic)``
work queue: a core takes the next matrix the moment it frees).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .clockutil import busy_fraction
from .spec import CpuSpec, SANDY_BRIDGE_2X8

__all__ = ["CoreScheduler", "CpuRunResult"]


@dataclass
class CpuRunResult:
    """Outcome of scheduling a batch onto cores."""

    makespan: float
    core_busy: np.ndarray  # per-core busy seconds
    cores: int
    scheduling: str

    @property
    def utilization(self) -> float:
        return busy_fraction(self.core_busy, self.makespan)

    @property
    def imbalance(self) -> float:
        """Max/mean core busy time; 1.0 is perfectly balanced."""
        mean = float(self.core_busy.mean())
        return float(self.core_busy.max()) / mean if mean > 0 else 1.0


class CoreScheduler:
    """Assigns per-matrix task durations to cores."""

    def __init__(self, spec: CpuSpec = SANDY_BRIDGE_2X8, dispatch_overhead: float = 0.5e-6):
        if dispatch_overhead < 0:
            raise ValueError("dispatch_overhead cannot be negative")
        self.spec = spec
        self.dispatch_overhead = dispatch_overhead

    def run(
        self,
        task_times: np.ndarray,
        scheduling: str = "dynamic",
        cores: int | None = None,
    ) -> CpuRunResult:
        """Schedule tasks (in the given order) onto ``cores`` workers."""
        cores = self.spec.total_cores if cores is None else cores
        if cores <= 0 or cores > self.spec.total_cores:
            raise ValueError(f"cores must be in [1, {self.spec.total_cores}], got {cores}")
        t = np.asarray(task_times, dtype=np.float64)
        if t.ndim != 1:
            raise ValueError("task_times must be 1-D")
        if np.any(t < 0):
            raise ValueError("task times must be non-negative")
        if t.size == 0:
            return CpuRunResult(0.0, np.zeros(cores), cores, scheduling)

        if scheduling == "static":
            busy = np.zeros(cores)
            # Round-robin pre-assignment, oblivious to task length.
            np.add.at(busy, np.arange(t.size) % cores, t)
            return CpuRunResult(float(busy.max()), busy, cores, scheduling)

        if scheduling == "dynamic":
            # Work-queue: tasks dispatched in order to the earliest-free
            # core; each dispatch pays the queue-synchronization cost.
            free = [(0.0, i) for i in range(cores)]
            heapq.heapify(free)
            busy = np.zeros(cores)
            for dur in t:
                when, core = heapq.heappop(free)
                dur_total = dur + self.dispatch_overhead
                busy[core] += dur_total
                heapq.heappush(free, (when + dur_total, core))
            makespan = max(when for when, _ in free)
            return CpuRunResult(float(makespan), busy, cores, scheduling)

        raise ValueError(f"scheduling must be 'static' or 'dynamic', got {scheduling!r}")
