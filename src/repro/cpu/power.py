"""CPU package power model (the PAPI/RAPL stand-in for Fig 10).

A Sandy Bridge package idles near 20 W and approaches its 115 W TDP
with all cores active; draw between those points is close to linear in
active cores.  Energy to solution integrates package draw over the run,
using the scheduler's per-core busy times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import CpuSpec, SANDY_BRIDGE_2X8

__all__ = ["CpuPowerModel", "SANDY_BRIDGE_POWER"]


@dataclass(frozen=True)
class CpuPowerModel:
    """Linear active-core -> package-power map."""

    spec: CpuSpec
    idle_watts_per_socket: float
    active_watts_per_core: float

    def __post_init__(self):
        if self.idle_watts_per_socket < 0 or self.active_watts_per_core < 0:
            raise ValueError(f"negative power constants: {self}")

    @property
    def idle_watts(self) -> float:
        return self.idle_watts_per_socket * self.spec.sockets

    @property
    def max_watts(self) -> float:
        return self.idle_watts + self.active_watts_per_core * self.spec.total_cores

    def power(self, active_cores: float) -> float:
        """Instantaneous draw with a given number of busy cores."""
        if active_cores < 0 or active_cores > self.spec.total_cores:
            raise ValueError(
                f"active_cores must be in [0, {self.spec.total_cores}], got {active_cores}"
            )
        return self.idle_watts + self.active_watts_per_core * active_cores

    def energy(self, core_busy: np.ndarray, makespan: float) -> float:
        """Joules over a run: idle draw for the span + dynamic per busy core-second."""
        if makespan < 0:
            raise ValueError("makespan cannot be negative")
        busy = np.asarray(core_busy, dtype=np.float64)
        if np.any(busy < 0):
            raise ValueError("core busy times must be non-negative")
        return self.idle_watts * makespan + self.active_watts_per_core * float(busy.sum())


SANDY_BRIDGE_POWER = CpuPowerModel(
    spec=SANDY_BRIDGE_2X8,
    idle_watts_per_socket=20.0,
    active_watts_per_core=11.0,
)
