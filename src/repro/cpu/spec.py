"""CPU hardware description.

:data:`SANDY_BRIDGE_2X8` is the paper's host: two 8-core Intel Xeon
E5-2670 (Sandy Bridge) at 2.6 GHz.  With AVX, each core retires 8
double-precision (16 single-precision) flops per cycle, giving peaks of
332.8 Gflop/s DP and 665.6 Gflop/s SP for the pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import PrecisionInfo

__all__ = ["CpuSpec", "SANDY_BRIDGE_2X8"]


@dataclass(frozen=True)
class CpuSpec:
    """Immutable description of a multicore host."""

    name: str
    sockets: int
    cores_per_socket: int
    clock_hz: float
    fp64_flops_per_cycle: int  # per core, vector FMA width x2
    fp32_flops_per_cycle: int
    l2_per_core: int  # bytes
    l3_per_socket: int  # bytes
    mem_bandwidth_per_socket: float  # bytes/s
    tdp_per_socket: float  # watts

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def peak_flops_per_core(self, info: PrecisionInfo) -> float:
        """Peak weighted flops/s of one core for a precision.

        Complex arithmetic uses the same vector units, so the weighted
        peak equals the real peak of the matching width.
        """
        per_cycle = (
            self.fp64_flops_per_cycle if info.uses_fp64_units else self.fp32_flops_per_cycle
        )
        return per_cycle * self.clock_hz

    def peak_flops(self, info: PrecisionInfo) -> float:
        return self.peak_flops_per_core(info) * self.total_cores

    @property
    def l3_per_core(self) -> float:
        return self.l3_per_socket / self.cores_per_socket


SANDY_BRIDGE_2X8 = CpuSpec(
    name="2x Intel Xeon E5-2670 (simulated)",
    sockets=2,
    cores_per_socket=8,
    clock_hz=2.6e9,
    fp64_flops_per_cycle=8,
    fp32_flops_per_cycle=16,
    l2_per_core=256 * 1024,
    l3_per_socket=20 * 1024 * 1024,
    mem_bandwidth_per_socket=51.2e9,
    tdp_per_socket=115.0,
)
