"""Simulated multicore CPU substrate (the paper's 2x Sandy Bridge + MKL).

The CPU baselines in the paper are scheduling-and-efficiency phenomena:
a vendor library runs small factorizations at a modest fraction of peak
(call overhead, short vectors), multithreading one small matrix at a
time barely scales, and one-core-per-matrix scheduling wins — dynamic
assignment beating static.  This package models exactly those effects.
"""

from .spec import CpuSpec, SANDY_BRIDGE_2X8
from .mkl import MklModel
from .scheduler import CoreScheduler, CpuRunResult
from .power import CpuPowerModel, SANDY_BRIDGE_POWER

__all__ = [
    "CpuSpec",
    "SANDY_BRIDGE_2X8",
    "MklModel",
    "CoreScheduler",
    "CpuRunResult",
    "CpuPowerModel",
    "SANDY_BRIDGE_POWER",
]
