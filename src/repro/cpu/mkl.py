"""MKL-like per-call cost model for small dense factorizations.

The model captures the three effects the paper leans on:

* **small-size inefficiency** — a vendor ``potrf`` on an ``n x n``
  matrix sustains only ``e_max * n / (n + n_half)`` of a core's peak
  (short vectors, blocking overhead), plus a fixed call overhead;
* **cache tiers** — matrices spilling L2/L3 lose a further factor;
* **poor multithreaded scaling on one small matrix** — the effective
  parallelism is capped by how many panel tiles the matrix offers, and
  every parallel call pays a fork-join cost.  This is why "all cores on
  one matrix at a time" loses to "one core per matrix" (paper §IV-F).

Constants are calibrated to published MKL 11.x dpotrf measurements on
Sandy Bridge (e.g. ~80% of core peak by n~1000 single-threaded).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import flops as _flops
from ..types import Precision, precision_info
from .spec import CpuSpec, SANDY_BRIDGE_2X8

__all__ = ["MklModel"]


@dataclass(frozen=True)
class _MklConstants:
    e_max: float = 0.82  # asymptotic fraction of core peak
    n_half: float = 48.0  # size at which half of e_max is reached
    call_overhead: float = 1.5e-6  # seconds per library call
    l2_spill_factor: float = 0.90
    l3_spill_factor: float = 0.70
    fork_join_overhead: float = 8.0e-6  # per parallel MKL call
    mt_tile: float = 96.0  # panel tile granting one extra core
    mt_efficiency: float = 0.72  # parallel-region efficiency
    # Throughput factors when many cores each run their own
    # factorization (one-core-per-matrix schemes): shared-LLC pressure,
    # and DRAM contention once the aggregate working set spills L3.
    contention_cached: float = 0.90
    contention_spilled: float = 0.72


class MklModel:
    """Cost model for MKL-style BLAS/LAPACK calls on a :class:`CpuSpec`."""

    def __init__(self, spec: CpuSpec = SANDY_BRIDGE_2X8, constants: _MklConstants | None = None):
        self.spec = spec
        self.constants = constants or _MklConstants()

    # ------------------------------------------------------------------
    def sequential_rate(self, n: int, precision: Precision | str) -> float:
        """Sustained flop/s of one core factorizing an ``n x n`` matrix."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        info = precision_info(Precision(precision))
        c = self.constants
        eff = c.e_max * n / (n + c.n_half)
        nbytes = n * n * info.bytes_per_element
        if nbytes > self.spec.l3_per_core:
            eff *= c.l3_spill_factor
        elif nbytes > self.spec.l2_per_core:
            eff *= c.l2_spill_factor
        return eff * self.spec.peak_flops_per_core(info)

    def potrf_time(self, n: int, precision: Precision | str, threads: int = 1) -> float:
        """Wall time of one ``potrf`` call with the given thread count."""
        if threads <= 0 or threads > self.spec.total_cores:
            raise ValueError(
                f"threads must be in [1, {self.spec.total_cores}], got {threads}"
            )
        prec = Precision(precision)
        work = _flops.potrf_flops(n, prec)
        c = self.constants
        if threads == 1:
            return work / self.sequential_rate(n, prec) + c.call_overhead
        # A small matrix offers ~n/mt_tile independent panel tiles; more
        # threads than that just spin at the barrier.
        p_eff = min(threads, max(1.0, n / c.mt_tile))
        rate = self.sequential_rate(n, prec) * (1.0 + (p_eff - 1.0) * c.mt_efficiency)
        return work / rate + c.fork_join_overhead + c.call_overhead

    def contended_potrf_time(self, n: int, precision: Precision | str, active_cores: int) -> float:
        """Single-core potrf time when ``active_cores`` peers run alongside.

        One-core-per-matrix schemes keep every core busy with its own
        factorization; the shared last-level cache and memory bus make
        each of them slower than a lone run.
        """
        if active_cores <= 0 or active_cores > self.spec.total_cores:
            raise ValueError(
                f"active_cores must be in [1, {self.spec.total_cores}], got {active_cores}"
            )
        info = precision_info(Precision(precision))
        c = self.constants
        aggregate = active_cores * n * n * info.bytes_per_element
        total_l3 = self.spec.l3_per_socket * self.spec.sockets
        factor = c.contention_cached if aggregate <= total_l3 / 2 else c.contention_spilled
        base = self.potrf_time(n, precision, threads=1)
        return (base - c.call_overhead) / factor + c.call_overhead

    def effective_threads(self, n: int, threads: int) -> float:
        """Diagnostic: parallelism actually extracted for size ``n``."""
        return min(threads, max(1.0, n / self.constants.mt_tile))

    def gemm_time(self, m: int, n: int, k: int, precision: Precision | str, threads: int = 1) -> float:
        """Wall time of a gemm call (used by the hybrid baseline)."""
        prec = Precision(precision)
        work = _flops.gemm_flops(m, n, k, prec)
        size_proxy = max(1, min(m, n, k))
        if threads == 1:
            return work / self.sequential_rate(size_proxy, prec) + self.constants.call_overhead
        c = self.constants
        p_eff = min(threads, max(1.0, min(m, n) / c.mt_tile))
        rate = self.sequential_rate(size_proxy, prec) * (1.0 + (p_eff - 1.0) * c.mt_efficiency)
        return work / rate + c.fork_join_overhead + c.call_overhead
