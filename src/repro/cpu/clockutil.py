"""Small shared helpers for CPU-side accounting."""

from __future__ import annotations

import numpy as np

__all__ = ["busy_fraction"]


def busy_fraction(core_busy: np.ndarray, makespan: float) -> float:
    """Fraction of core-seconds actually used over a run."""
    if makespan <= 0:
        return 0.0
    return float(core_busy.sum() / (core_busy.size * makespan))
