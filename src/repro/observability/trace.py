"""Context-propagated tracing over the serving → plan → execute stack.

The paper's performance story (Figs. 3–9) is a story about *where time
goes* — idle thread blocks, padded flops, kernel overlap.  This module
is the recording half of making that visible end-to-end: a
:class:`Tracer` collects structured :class:`TraceEvent` records from
every layer (request admission, batch window close, plan-cache traffic,
per-kernel execution on each logical stream, event waits, barriers) and
:mod:`repro.observability.export` turns them into Chrome-trace /
Perfetto JSON and a JSONL event log.

Two clocks coexist, mirroring the serving metrics:

* **wall** spans time the host-side machinery itself (queueing,
  windowing, planning) via :meth:`Tracer.span`, a context manager that
  also maintains the span parent stack;
* **sim** spans replay the simulated device timeline via
  :meth:`Tracer.add_span` with explicit timestamps taken from the
  device (``LaunchRecord.start/end``, ``stream.ready_time``), so the
  trace shows exactly what the cost model computed — recording never
  touches the simulated clock.

Instrumented call sites fetch the ambient tracer with
:func:`current_tracer` (a :mod:`contextvars` lookup) and guard with a
plain truthiness check: the default :data:`NULL_TRACER` is falsy and
every one of its methods is a no-op, so the disabled-tracing fast path
costs one context-variable read per instrumented operation and the
bit-identical timing tests keep pinning.

Cross-thread propagation (the executor's thread-per-device fan-out)
uses :func:`propagating` to capture the submitting thread's context —
active tracer *and* current span — so per-shard kernel spans nest under
the dispatching span.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SIM",
    "Tracer",
    "TraceEvent",
    "Track",
    "WALL",
    "activate",
    "current_tracer",
    "current_span_id",
    "propagating",
]

WALL = "wall"
SIM = "sim"

SPAN = "span"
INSTANT = "instant"
COUNTER = "counter"


@dataclass(frozen=True)
class Track:
    """Where an event renders: one (process, thread) row in the viewer.

    ``process`` groups related rows (a device, a server); ``thread`` is
    one row inside the group (a logical stream, the serving queue).
    The exporter assigns stable Chrome-trace pid/tid numbers per track.
    """

    process: str
    thread: str = "main"

    @classmethod
    def for_stream(cls, device, stream_id: int) -> "Track":
        """The track of one logical stream on one device."""
        return cls(getattr(device, "name", "device"), f"stream{int(stream_id)}")

    @classmethod
    def for_host(cls, device) -> "Track":
        """The device's host-interaction row (barriers, syncs)."""
        return cls(getattr(device, "name", "device"), "host")


@dataclass
class TraceEvent:
    """One recorded span / instant / counter sample.

    ``start`` is in the event's ``clock`` domain (seconds); spans also
    carry ``end``.  ``span_id`` / ``parent_id`` encode nesting — the
    parent is whatever wall span was open on the recording (or
    propagated) context, regardless of the event's own clock domain.
    """

    phase: str
    name: str
    cat: str
    track: Track
    start: float
    end: float | None = None
    clock: str = WALL
    span_id: int = 0
    parent_id: int | None = None
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start


class NullTracer:
    """The disabled-tracing fast path: falsy, and every method no-ops.

    Call sites write ``tr = current_tracer()`` once, then guard hot
    work with ``if tr:`` — with the null tracer that is a single falsy
    branch, so tracing costs nothing when off.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    @contextmanager
    def span(self, name, track=None, cat="span", args=None):
        yield {}

    def add_span(self, name, track, start, end, **kwargs) -> None:
        return None

    def instant(self, name, track, **kwargs) -> None:
        return None

    def counter(self, name, track, values, **kwargs) -> None:
        return None


NULL_TRACER = NullTracer()

_ACTIVE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_tracer", default=NULL_TRACER
)
_SPAN: contextvars.ContextVar = contextvars.ContextVar("repro_span", default=None)


def current_tracer():
    """The context's active tracer (:data:`NULL_TRACER` when disabled)."""
    return _ACTIVE.get()


def current_span_id() -> int | None:
    """The id of the innermost open wall span on this context."""
    return _SPAN.get()


@contextmanager
def activate(tracer):
    """Make ``tracer`` the ambient tracer for the enclosed block.

    The binding is a :mod:`contextvars` set, so it follows the logical
    context — including into threads entered via :func:`propagating`.
    """
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def propagating(fn):
    """Wrap ``fn`` so it runs under the *submitting* thread's context.

    ``ThreadPoolExecutor`` workers do not inherit context variables;
    wrapping the submitted callable keeps the active tracer and the
    open span visible inside the pool thread (each wrapper owns a
    private context copy, so concurrent shards do not collide).
    """
    ctx = contextvars.copy_context()

    def run(*args, **kwargs):
        return ctx.run(fn, *args, **kwargs)

    return run


class Tracer:
    """Thread-safe collector of :class:`TraceEvent` records.

    Recording is append-only under one lock; the simulated clocks are
    never read or written by the tracer itself, so an active tracer
    cannot perturb modeled timing.  ``wall_clock`` is injectable for
    deterministic tests.
    """

    enabled = True

    def __init__(self, wall_clock=time.perf_counter):
        self.wall_clock = wall_clock
        self.events: list[TraceEvent] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)

    # -- recording -------------------------------------------------------
    def _record(self, event: TraceEvent) -> TraceEvent:
        with self._lock:
            self.events.append(event)
        return event

    @contextmanager
    def span(self, name: str, track: Track, cat: str = "span", args: dict | None = None):
        """Open a wall-clock span; yields a dict merged into ``args``.

        The span becomes the parent of everything recorded inside the
        block (on this context), nesting the trace without any explicit
        plumbing through call signatures.
        """
        span_id = next(self._ids)
        parent = _SPAN.get()
        start = self.wall_clock()
        token = _SPAN.set(span_id)
        extra: dict = {}
        try:
            yield extra
        finally:
            _SPAN.reset(token)
            merged = dict(args or {})
            merged.update(extra)
            self._record(
                TraceEvent(
                    SPAN, name, cat, track, start, self.wall_clock(),
                    clock=WALL, span_id=span_id, parent_id=parent, args=merged,
                )
            )

    def add_span(
        self,
        name: str,
        track: Track,
        start: float,
        end: float,
        *,
        cat: str = "span",
        clock: str = SIM,
        args: dict | None = None,
    ) -> TraceEvent:
        """Record a span with explicit timestamps (simulated-clock path)."""
        return self._record(
            TraceEvent(
                SPAN, name, cat, track, float(start), float(end),
                clock=clock, span_id=next(self._ids), parent_id=_SPAN.get(),
                args=dict(args or {}),
            )
        )

    def instant(
        self,
        name: str,
        track: Track,
        *,
        ts: float | None = None,
        cat: str = "instant",
        clock: str = WALL,
        args: dict | None = None,
    ) -> TraceEvent:
        """Record a zero-duration marker (admission, cache hit, ...)."""
        when = self.wall_clock() if ts is None else float(ts)
        return self._record(
            TraceEvent(
                INSTANT, name, cat, track, when,
                clock=clock, span_id=next(self._ids), parent_id=_SPAN.get(),
                args=dict(args or {}),
            )
        )

    def counter(
        self,
        name: str,
        track: Track,
        values: dict,
        *,
        ts: float | None = None,
        clock: str = WALL,
    ) -> TraceEvent:
        """Record a counter sample (rendered as a stacked area row)."""
        when = self.wall_clock() if ts is None else float(ts)
        return self._record(
            TraceEvent(
                COUNTER, name, "counter", track, when,
                clock=clock, span_id=next(self._ids),
                args={k: float(v) for k, v in values.items()},
            )
        )

    # -- inspection ------------------------------------------------------
    def snapshot(self) -> list[TraceEvent]:
        """A consistent copy of the event list (any thread)."""
        with self._lock:
            return list(self.events)

    def spans(self, cat: str | None = None) -> list[TraceEvent]:
        """Recorded spans, optionally filtered by category."""
        return [
            e for e in self.snapshot()
            if e.phase == SPAN and (cat is None or e.cat == cat)
        ]
