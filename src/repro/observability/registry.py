"""Unified metrics registry: counters, gauges, histograms, summaries.

One process-wide sink for every number the stack used to keep in ad-hoc
dicts — the serving tier's counters and latency lists
(:mod:`repro.serving.metrics`), the driver's
:class:`~repro.core.driver.LaunchStats`, the executor's
:class:`~repro.device.executor.ExecutionStats` tag map and the
:class:`~repro.core.plan.PlanCache` traffic counters.  Metrics are
created lazily through the registry (``registry.counter(name)``
get-or-creates), are label-aware, thread-safe under one shared lock,
and render to the Prometheus text exposition format via
:meth:`MetricsRegistry.expose` so a scrape endpoint (or a test) can
read the whole system state in one pass.

Four primitives cover the stack's needs:

* :class:`Counter` — monotone accumulator (requests, launches, hits);
* :class:`Gauge` — set-to-current value (queue depth, cache size);
* :class:`Histogram` — fixed cumulative buckets plus sum/count, the
  Prometheus shape (batch sizes, padded-waste ratios);
* :class:`Summary` — raw-sample reservoir with exact linear-interpolated
  percentiles; this is the one home of the quantile code the serving
  metrics previously duplicated (:func:`percentile`,
  :func:`latency_summary` live here now and are re-exported from
  :mod:`repro.serving.metrics` for compatibility).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

import numpy as np

from ..errors import ArgumentError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "Summary",
    "latency_summary",
    "percentile",
]


def percentile(values, q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]); 0.0 if empty."""
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def latency_summary(values) -> dict:
    """The count/mean/p50/p95/p99/max block the serving reports use."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": percentile(arr, 50),
        "p95": percentile(arr, 95),
        "p99": percentile(arr, 99),
        "max": float(arr.max()),
    }


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ArgumentError(1, f"bad metric name {name!r} (alnum/underscore only)")
    return name


def _labelkey(label_names: tuple, labels: dict) -> tuple:
    if set(labels) != set(label_names):
        raise ArgumentError(
            2, f"metric expects labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[k]) for k in label_names)


def _fmt_labels(label_names: tuple, key: tuple, extra: str = "") -> str:
    parts = [f'{n}="{v}"' for n, v in zip(label_names, key)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Metric:
    """Base: name, help text, label names, per-label-value children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: tuple = (), lock=None):
        self.name = _validate_name(name)
        self.help = help
        self.label_names = tuple(labels)
        self._lock = lock if lock is not None else threading.Lock()
        self._children: dict[tuple, object] = {}

    def _child(self, labels: dict):
        key = _labelkey(self.label_names, labels)
        with self._lock:
            if key not in self._children:
                self._children[key] = self._new_child()
            return key, self._children[key]

    def _new_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def expose(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            lines.extend(self._expose_children())
        return lines

    def _expose_children(self) -> list[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """Monotone accumulator; ``inc`` only moves forward."""

    kind = "counter"

    def _new_child(self):
        return [0.0]

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ArgumentError(3, f"counter {self.name} cannot decrease (inc {amount})")
        _, cell = self._child(labels)
        with self._lock:
            cell[0] += amount

    def value(self, **labels) -> float:
        _, cell = self._child(labels)
        with self._lock:
            return cell[0]

    def items(self) -> list[tuple[tuple, float]]:
        """Every labelled child as ``((name, value) pairs, total)`` —
        the iteration surface fleet snapshots aggregate over."""
        with self._lock:
            return [
                (tuple(zip(self.label_names, key)), cell[0])
                for key, cell in sorted(self._children.items())
            ]

    def _expose_children(self) -> list[str]:
        return [
            f"{self.name}{_fmt_labels(self.label_names, key)} {cell[0]:g}"
            for key, cell in sorted(self._children.items())
        ]


class Gauge(Metric):
    """Set-to-current value; may move in either direction."""

    kind = "gauge"

    def _new_child(self):
        return [0.0]

    def set(self, value: float, **labels) -> None:
        _, cell = self._child(labels)
        with self._lock:
            cell[0] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        _, cell = self._child(labels)
        with self._lock:
            cell[0] += amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        _, cell = self._child(labels)
        with self._lock:
            return cell[0]

    def _expose_children(self) -> list[str]:
        return [
            f"{self.name}{_fmt_labels(self.label_names, key)} {cell[0]:g}"
            for key, cell in sorted(self._children.items())
        ]


DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Histogram(Metric):
    """Fixed cumulative buckets plus sum/count (the Prometheus shape)."""

    kind = "histogram"

    def __init__(self, name, help="", labels=(), buckets=DEFAULT_BUCKETS, lock=None):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ArgumentError(4, f"histogram {name} needs at least one bucket")
        self.buckets = bounds
        super().__init__(name, help, labels, lock)

    def _new_child(self):
        # [per-bucket counts..., +Inf count, sum]
        return [0.0] * (len(self.buckets) + 2)

    def observe(self, value: float, **labels) -> None:
        _, cell = self._child(labels)
        idx = bisect_left(self.buckets, float(value))
        with self._lock:
            cell[idx] += 1
            cell[-1] += float(value)

    def counts(self, **labels) -> dict:
        """Cumulative bucket counts plus count/sum (snapshot)."""
        _, cell = self._child(labels)
        with self._lock:
            raw = list(cell)
        out, running = {}, 0.0
        for bound, c in zip(self.buckets, raw):
            running += c
            out[bound] = running
        count = running + raw[len(self.buckets)]
        return {"buckets": out, "count": count, "sum": raw[-1]}

    def _expose_children(self) -> list[str]:
        lines = []
        for key, cell in sorted(self._children.items()):
            running = 0.0
            for bound, c in zip(self.buckets, cell):
                running += c
                le = _fmt_labels(self.label_names, key, f'le="{bound:g}"')
                lines.append(f"{self.name}_bucket{le} {running:g}")
            total = running + cell[len(self.buckets)]
            inf = _fmt_labels(self.label_names, key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{inf} {total:g}")
            plain = _fmt_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{plain} {cell[-1]:g}")
            lines.append(f"{self.name}_count{plain} {total:g}")
        return lines


class Summary(Metric):
    """Raw-sample accumulator with exact percentiles.

    Keeps every observation (bench-sized runs; a production tier would
    reservoir-sample), so :meth:`percentile` is exact — this is the
    primitive the serving latency p50/p95/p99 blocks are built on.
    """

    kind = "summary"
    quantiles = (50.0, 95.0, 99.0)

    def _new_child(self):
        return []

    def observe(self, value: float, **labels) -> None:
        _, cell = self._child(labels)
        with self._lock:
            cell.append(float(value))

    def values(self, **labels) -> list[float]:
        _, cell = self._child(labels)
        with self._lock:
            return list(cell)

    def percentile(self, q: float, **labels) -> float:
        return percentile(self.values(**labels), q)

    def summary(self, **labels) -> dict:
        """The count/mean/p50/p95/p99/max dict the serving snapshot embeds."""
        return latency_summary(self.values(**labels))

    def count(self, **labels) -> int:
        return len(self.values(**labels))

    def mean(self, **labels) -> float:
        vals = self.values(**labels)
        return float(np.mean(vals)) if vals else 0.0

    def max(self, **labels) -> float:
        vals = self.values(**labels)
        return max(vals, default=0.0)

    def _expose_children(self) -> list[str]:
        lines = []
        for key, cell in sorted(self._children.items()):
            for q in self.quantiles:
                ql = _fmt_labels(self.label_names, key, f'quantile="{q / 100:g}"')
                lines.append(f"{self.name}{ql} {percentile(cell, q):g}")
            plain = _fmt_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{plain} {sum(cell):g}")
            lines.append(f"{self.name}_count{plain} {len(cell):g}")
        return lines


class MetricsRegistry:
    """Get-or-create factory and exposition point for a metric family.

    One registry per server / CLI run; every metric it creates shares
    the registry's lock, so cross-metric snapshots (``expose``,
    ``as_dict``) are consistent.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, tuple(labels), lock=self._lock, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls) or metric.label_names != tuple(labels):
            raise ArgumentError(
                5,
                f"metric {name!r} already registered as {metric.kind} "
                f"with labels {metric.label_names}",
            )
        return metric

    def counter(self, name, help="", labels=()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name, help="", labels=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def summary(self, name, help="", labels=()) -> Summary:
        return self._get_or_create(Summary, name, help, labels)

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def expose(self, prefix: str | None = None) -> str:
        """Prometheus text exposition of every (matching) metric."""
        with self._lock:
            metrics = [
                m for n, m in sorted(self._metrics.items())
                if prefix is None or n.startswith(prefix)
            ]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> dict:
        """Flat name -> value snapshot (unlabelled scalar metrics only)."""
        out = {}
        with self._lock:
            items = list(self._metrics.items())
        for name, metric in items:
            if isinstance(metric, (Counter, Gauge)) and not metric.label_names:
                out[name] = metric.value()
        return out
