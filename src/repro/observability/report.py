"""Trace-driven bottleneck analysis: where did the time actually go?

Consumes the structured events a :class:`~repro.observability.trace.Tracer`
recorded (or a Chrome-trace JSON re-loaded from disk) and computes the
quantities the paper's performance story turns on:

* **per-stream occupancy** — busy fraction of every device stream track
  over the device's active window: the visible form of the SM-idle
  problem implicit sorting fights (Figs. 5–6);
* **critical-path breakdown** — simulated queue wait vs. wall-clock
  plan building vs. simulated execution per serving group, the
  request's journey decomposed;
* **padded-flops waste per batch** — useful vs. padded flops of every
  dispatched batch, aggregated per group; matches the serving metrics'
  ``batching`` block (the ``BENCH_pr3.json`` headline numbers) because
  both read the same per-batch accounting;
* **top-N bottlenecks** — kernel/wait/barrier names ranked by total
  simulated time;
* **per-operation breakdown** — mixed-op traces (PR 8) attribute
  stream time, padded-flops waste and top kernels to each operation:
  every plan stamps ``meta["op"]`` onto its kernel spans and every
  dispatch span carries its batch's op, so one shared-queue trace
  decomposes into per-op POTRF/QR/LU/SVD accounts;
* **adaptive decisions** — traces of servers running the online tuner
  (PR 9) carry ``cat="adaptive"`` instants at every decision epoch:
  per server, the report counts controller actions by kind
  (explore/exploit/hold/rollback/converged), fingerprint drifts and
  cache warm-starts, and shows the final converged knob settings.

``python -m repro trace-report out.json`` prints all the tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .trace import INSTANT, SPAN, SIM, TraceEvent

__all__ = [
    "AdaptiveReport",
    "GroupReport",
    "OpReport",
    "TraceAnalysis",
    "TrackOccupancy",
    "analyze_trace",
    "format_trace_report",
]


def _group_of(process: str) -> str:
    """Serving group of a track process: ``greedy-window:dev0`` and
    ``greedy-window:serving`` both belong to ``greedy-window``."""
    return process.split(":", 1)[0] if ":" in process else ""


@dataclass(frozen=True)
class TrackOccupancy:
    """Busy fraction of one stream track over its device's window."""

    process: str
    thread: str
    spans: int
    busy: float
    window: float

    @property
    def occupancy(self) -> float:
        return self.busy / self.window if self.window > 0 else 0.0


@dataclass
class GroupReport:
    """Per-serving-group aggregates (one group per bench policy)."""

    group: str
    batches: int = 0
    requests: int = 0
    useful_flops: float = 0.0
    padded_flops: float = 0.0
    queue_wait_sim: float = 0.0
    execute_sim: float = 0.0
    plan_build_wall: float = 0.0
    plan_builds: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    @property
    def efficiency(self) -> float:
        return self.useful_flops / self.padded_flops if self.padded_flops else 0.0

    @property
    def waste_pct(self) -> float:
        """Padded-flops waste percentage — the BENCH_pr3 headline."""
        return 100.0 * (1.0 - self.efficiency) if self.padded_flops else 0.0

    @property
    def critical_path(self) -> dict:
        """Where a request's life went, by phase (seconds)."""
        return {
            "queue_wait_sim_s": self.queue_wait_sim,
            "plan_build_wall_s": self.plan_build_wall,
            "execute_sim_s": self.execute_sim,
        }


@dataclass
class OpReport:
    """Per-operation aggregates of a mixed-op trace (PR 8).

    ``stream_busy`` sums the op's kernel spans on device stream tracks
    (simulated seconds); ``stream_window`` is the total stream-seconds
    available across every stream track in the trace, so
    :attr:`occupancy` reads "fraction of the trace's stream capacity
    this operation kept busy".  ``kernels`` maps kernel name to
    ``(calls, total_sim_seconds)`` for the per-op top-kernels table.
    """

    op: str
    batches: int = 0
    requests: int = 0
    useful_flops: float = 0.0
    padded_flops: float = 0.0
    execute_sim: float = 0.0
    stream_busy: float = 0.0
    stream_window: float = 0.0
    kernels: dict = field(default_factory=dict)

    @property
    def efficiency(self) -> float:
        return self.useful_flops / self.padded_flops if self.padded_flops else 0.0

    @property
    def waste_pct(self) -> float:
        return 100.0 * (1.0 - self.efficiency) if self.padded_flops else 0.0

    @property
    def occupancy(self) -> float:
        return self.stream_busy / self.stream_window if self.stream_window > 0 else 0.0

    def top_kernels(self, top: int = 5) -> list[tuple]:
        """``(name, calls, total)`` rows, heaviest first."""
        ranked = sorted(self.kernels.items(), key=lambda kv: -kv[1][1])
        return [(name, calls, total) for name, (calls, total) in ranked[:top]]


@dataclass
class AdaptiveReport:
    """One tuner-equipped server's decision history (PR 9 traces).

    Aggregated from the ``cat="adaptive"`` instants the
    :class:`~repro.adaptive.OnlineTuner` emits on its server's
    ``adaptive`` track: ``actions`` counts ``adaptive-decision`` events
    by controller action, ``final_knobs`` is the knob map of the last
    warm-start or convergence event (the settings the server ended on).
    """

    server: str
    decisions: int = 0
    actions: dict = field(default_factory=dict)  # action -> count
    explore_starts: int = 0
    drifts: int = 0
    warm_starts: int = 0
    convergences: int = 0
    final_knobs: dict = field(default_factory=dict)


@dataclass
class TraceAnalysis:
    """Everything :func:`analyze_trace` extracts from one trace."""

    events: int = 0
    occupancy: list[TrackOccupancy] = field(default_factory=list)
    groups: dict[str, GroupReport] = field(default_factory=dict)
    ops: dict[str, OpReport] = field(default_factory=dict)
    adaptive: dict[str, AdaptiveReport] = field(default_factory=dict)
    bottlenecks: list[tuple] = field(default_factory=list)  # (name, cat, calls, total)

    def group(self, name: str) -> GroupReport:
        return self.groups[name]

    def waste_by_group(self) -> dict[str, float]:
        """group -> padded-waste %, the acceptance-criteria view."""
        return {g: r.waste_pct for g, r in sorted(self.groups.items())}

    def waste_by_op(self) -> dict[str, float]:
        """op -> padded-waste %, the mixed-op acceptance view."""
        return {op: r.waste_pct for op, r in sorted(self.ops.items())}


def analyze_trace(events, top: int = 10) -> TraceAnalysis:
    """Aggregate a trace (Tracer, event list, or Chrome dict) into a
    :class:`TraceAnalysis`."""
    if hasattr(events, "snapshot"):
        events = events.snapshot()
    elif isinstance(events, dict):
        from .export import trace_events_from_chrome

        events = trace_events_from_chrome(events)
    events = [e for e in events if isinstance(e, TraceEvent)]
    analysis = TraceAnalysis(events=len(events))

    # -- per-stream occupancy (simulated spans on device tracks) --------
    windows: dict[str, tuple[float, float]] = {}
    busy: dict[tuple[str, str], tuple[int, float]] = {}

    def op_report(op: str) -> OpReport:
        if op not in analysis.ops:
            analysis.ops[op] = OpReport(op)
        return analysis.ops[op]

    for ev in events:
        if ev.phase != SPAN or ev.clock != SIM:
            continue
        lo, hi = windows.get(ev.track.process, (ev.start, ev.end))
        windows[ev.track.process] = (min(lo, ev.start), max(hi, ev.end))
        if ev.track.thread.startswith("stream"):
            n, t = busy.get((ev.track.process, ev.track.thread), (0, 0.0))
            busy[(ev.track.process, ev.track.thread)] = (n + 1, t + ev.duration)
            op = ev.args.get("op")
            if op:
                rep = op_report(str(op))
                rep.stream_busy += ev.duration
                calls, total = rep.kernels.get(ev.name, (0, 0.0))
                rep.kernels[ev.name] = (calls + 1, total + ev.duration)
    for (process, thread), (spans, total) in sorted(busy.items()):
        lo, hi = windows[process]
        analysis.occupancy.append(
            TrackOccupancy(process, thread, spans, total, hi - lo)
        )
    stream_window = sum(
        windows[process][1] - windows[process][0] for process, _ in busy
    )
    for rep in analysis.ops.values():
        rep.stream_window = stream_window

    # -- per-group aggregates -------------------------------------------
    def group_for(ev) -> GroupReport:
        g = _group_of(ev.track.process)
        if g not in analysis.groups:
            analysis.groups[g] = GroupReport(g)
        return analysis.groups[g]

    hot: dict[tuple[str, str], tuple[int, float]] = {}
    for ev in events:
        if ev.phase == SPAN and ev.cat == "dispatch":
            rep = group_for(ev)
            rep.batches += 1
            rep.requests += int(ev.args.get("size", 0))
            rep.useful_flops += float(ev.args.get("useful_flops", 0.0))
            rep.padded_flops += float(ev.args.get("padded_flops", 0.0))
            rep.queue_wait_sim += float(ev.args.get("queue_wait_sim", 0.0))
            rep.execute_sim += float(ev.args.get("sim_elapsed", 0.0))
            op = ev.args.get("op")
            if op:
                orep = op_report(str(op))
                orep.batches += 1
                orep.requests += int(ev.args.get("size", 0))
                orep.useful_flops += float(ev.args.get("useful_flops", 0.0))
                orep.padded_flops += float(ev.args.get("padded_flops", 0.0))
                orep.execute_sim += float(ev.args.get("sim_elapsed", 0.0))
        elif ev.phase == SPAN and ev.cat == "plan":
            rep = group_for(ev)
            rep.plan_builds += 1
            rep.plan_build_wall += ev.duration
        elif ev.phase == INSTANT and ev.cat == "plan-cache":
            rep = group_for(ev)
            if ev.name == "plan-cache-hit":
                rep.cache_hits += 1
            elif ev.name == "plan-cache-miss":
                rep.cache_misses += 1
            elif ev.name == "plan-cache-evict":
                rep.cache_evictions += int(ev.args.get("count", 1))
        elif ev.phase == INSTANT and ev.cat == "adaptive":
            server = ev.track.process
            arep = analysis.adaptive.get(server)
            if arep is None:
                arep = analysis.adaptive[server] = AdaptiveReport(server)
            if ev.name == "adaptive-decision":
                arep.decisions += 1
                action = str(ev.args.get("action", "?"))
                arep.actions[action] = arep.actions.get(action, 0) + 1
            elif ev.name == "adaptive-explore-start":
                arep.explore_starts += 1
            elif ev.name == "adaptive-drift":
                arep.drifts += 1
            elif ev.name == "adaptive-warm-start":
                arep.warm_starts += 1
                arep.final_knobs = dict(ev.args.get("knobs", {}))
            elif ev.name == "adaptive-converged":
                arep.convergences += 1
                arep.final_knobs = dict(ev.args.get("knobs", {}))
        if ev.phase == SPAN and ev.clock == SIM:
            n, t = hot.get((ev.name, ev.cat), (0, 0.0))
            hot[(ev.name, ev.cat)] = (n + 1, t + ev.duration)

    ranked = sorted(hot.items(), key=lambda kv: -kv[1][1])
    analysis.bottlenecks = [
        (name, cat, calls, total) for (name, cat), (calls, total) in ranked[:top]
    ]
    return analysis


def format_trace_report(analysis: TraceAnalysis, top: int = 10) -> str:
    """Render the full bottleneck report as aligned text tables."""
    # Imported here: repro.bench pulls in the figure harness (and through
    # it the whole driver stack), which itself imports observability.
    from ..bench.report import format_table

    blocks: list[str] = [f"trace: {analysis.events} events"]

    if analysis.occupancy:
        rows = [
            [o.process, o.thread, o.spans, o.busy * 1e3, o.occupancy * 100]
            for o in analysis.occupancy
        ]
        blocks.append(
            "== stream occupancy ==\n"
            + format_table(["device", "stream", "spans", "busy_ms", "occupancy_%"], rows)
        )

    groups = [g for g in sorted(analysis.groups.values(), key=lambda r: r.group)
              if g.batches or g.plan_builds or g.cache_hits or g.cache_misses]
    if groups:
        rows = [
            [
                g.group or "-", g.batches, g.requests,
                g.queue_wait_sim * 1e3, g.plan_build_wall * 1e3, g.execute_sim * 1e3,
            ]
            for g in groups
        ]
        blocks.append(
            "== critical path (per group) ==\n"
            + format_table(
                ["group", "batches", "requests", "queue_wait_sim_ms",
                 "plan_build_wall_ms", "execute_sim_ms"],
                rows,
            )
        )
        rows = [
            [
                g.group or "-", g.useful_flops / 1e9, g.padded_flops / 1e9,
                g.waste_pct, g.cache_hits, g.cache_misses, g.cache_evictions,
            ]
            for g in groups
        ]
        blocks.append(
            "== padded flops + plan cache (per group) ==\n"
            + format_table(
                ["group", "useful_Gflop", "padded_Gflop", "waste_%",
                 "cache_hits", "cache_misses", "evictions"],
                rows,
            )
        )

    ops = [analysis.ops[op] for op in sorted(analysis.ops)]
    if ops:
        rows = [
            [
                o.op, o.batches, o.requests, o.useful_flops / 1e9,
                o.padded_flops / 1e9, o.waste_pct, o.stream_busy * 1e3,
                o.occupancy * 100,
            ]
            for o in ops
        ]
        blocks.append(
            "== per-operation breakdown ==\n"
            + format_table(
                ["op", "batches", "requests", "useful_Gflop", "padded_Gflop",
                 "waste_%", "stream_busy_ms", "occupancy_%"],
                rows,
            )
        )
        rows = [
            [o.op, name, calls, total * 1e3]
            for o in ops
            for name, calls, total in o.top_kernels()
        ]
        if rows:
            blocks.append(
                "== top kernels (per operation) ==\n"
                + format_table(["op", "kernel", "calls", "total_ms"], rows)
            )

    if analysis.adaptive:
        servers = [analysis.adaptive[s] for s in sorted(analysis.adaptive)]
        rows = [
            [
                a.server, a.decisions,
                a.actions.get("explore", 0), a.actions.get("exploit", 0),
                a.actions.get("hold", 0), a.actions.get("rollback", 0),
                a.drifts, a.warm_starts, a.convergences,
            ]
            for a in servers
        ]
        blocks.append(
            "== adaptive decisions (per server) ==\n"
            + format_table(
                ["server", "decisions", "explore", "exploit", "hold",
                 "rollback", "drifts", "warm_starts", "converged"],
                rows,
            )
        )
        finals = [
            f"{a.server}: "
            + ", ".join(f"{k}={v}" for k, v in sorted(a.final_knobs.items()))
            for a in servers
            if a.final_knobs
        ]
        if finals:
            blocks.append("final knob settings:\n" + "\n".join(finals))

    if analysis.bottlenecks:
        grand = sum(t for _, _, _, t in analysis.bottlenecks) or 1.0
        rows = [
            [name, cat, calls, total * 1e3, 100.0 * total / grand]
            for name, cat, calls, total in analysis.bottlenecks[:top]
        ]
        blocks.append(
            f"== top {min(top, len(rows))} bottlenecks (simulated time) ==\n"
            + format_table(["name", "cat", "calls", "total_ms", "share_%"], rows)
        )
    return "\n\n".join(blocks)
