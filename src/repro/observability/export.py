"""Trace serialization: Chrome-trace (Perfetto) JSON and JSONL logs.

The Chrome trace-event format is the lingua franca of timeline viewers
(``chrome://tracing``, https://ui.perfetto.dev): complete events
(``ph="X"``) render as bars, instants (``"i"``) as ticks, counters
(``"C"``) as stacked area rows, and metadata events name the process
and thread rows.  :func:`to_chrome_trace` maps every
:class:`~repro.observability.trace.Track` to a stable (pid, tid) pair —
one process per device (or serving tier), one thread row per logical
stream — which is exactly the "one track per device stream plus a
serving-queue track" layout the bottleneck reports analyze.

Timestamps are normalized per clock domain (wall and simulated events
each start at zero) and emitted in microseconds, the unit the viewers
expect.  The JSONL export (:func:`write_trace_jsonl`) is the
machine-readable twin: one structured event per line, no viewer
conventions, for ad-hoc analysis pipelines.

:func:`validate_chrome_trace` is the schema check CI runs on every
``serve-bench --trace`` artifact.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .trace import COUNTER, INSTANT, SPAN, TraceEvent, Track

__all__ = [
    "load_chrome_trace",
    "to_chrome_trace",
    "trace_events_from_chrome",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
]

_PHASES = {SPAN: "X", INSTANT: "i", COUNTER: "C"}
_PHASES_BACK = {v: k for k, v in _PHASES.items()}


def _natural(text: str):
    return [int(p) if p.isdigit() else p for p in re.split(r"(\d+)", text)]


def _track_table(events) -> dict[Track, tuple[int, int]]:
    """Assign stable (pid, tid) pairs: sorted processes, natural-sorted
    thread rows within each (stream2 before stream10)."""
    processes: dict[str, list[str]] = {}
    for ev in events:
        threads = processes.setdefault(ev.track.process, [])
        if ev.track.thread not in threads:
            threads.append(ev.track.thread)
    table: dict[Track, tuple[int, int]] = {}
    for pid, process in enumerate(sorted(processes), start=1):
        for tid, thread in enumerate(sorted(processes[process], key=_natural), start=1):
            table[Track(process, thread)] = (pid, tid)
    return table


def to_chrome_trace(events) -> dict:
    """Render trace events as a Chrome trace-event JSON object.

    ``events`` is a :class:`~repro.observability.trace.Tracer` or a
    sequence of :class:`~repro.observability.trace.TraceEvent`.  Wall
    and simulated timestamps are normalized independently so both
    domains start at zero on the shared microsecond axis.
    """
    if hasattr(events, "snapshot"):
        events = events.snapshot()
    events = list(events)
    table = _track_table(events)

    zero: dict[str, float] = {}
    for ev in events:
        zero[ev.clock] = min(zero.get(ev.clock, ev.start), ev.start)

    out = []
    for track, (pid, tid) in sorted(table.items(), key=lambda kv: kv[1]):
        if tid == 1:
            out.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": track.process},
            })
        out.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": track.thread},
        })

    for ev in events:
        pid, tid = table[ev.track]
        ts = (ev.start - zero[ev.clock]) * 1e6
        record = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": _PHASES[ev.phase],
            "ts": ts,
            "pid": pid,
            "tid": tid,
        }
        if ev.phase == SPAN:
            record["dur"] = max(ev.duration, 0.0) * 1e6
        if ev.phase == INSTANT:
            record["s"] = "t"
        args = dict(ev.args)
        if ev.phase != COUNTER:
            args.setdefault("clock", ev.clock)
            if ev.parent_id is not None:
                args.setdefault("parent", ev.parent_id)
            args.setdefault("span_id", ev.span_id)
        record["args"] = args
        out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(events, path: str | Path) -> Path:
    """Validate and write the Chrome-trace JSON file; returns its path."""
    data = to_chrome_trace(events)
    problems = validate_chrome_trace(data)
    if problems:  # pragma: no cover - exporter always emits valid traces
        raise ValueError("refusing to write an invalid trace: " + "; ".join(problems))
    path = Path(path)
    path.write_text(json.dumps(data))
    return path


def write_trace_jsonl(events, path: str | Path) -> Path:
    """Write the structured-event log: one JSON object per line."""
    if hasattr(events, "snapshot"):
        events = events.snapshot()
    path = Path(path)
    with path.open("w") as fh:
        for ev in events:
            fh.write(json.dumps({
                "phase": ev.phase,
                "name": ev.name,
                "cat": ev.cat,
                "process": ev.track.process,
                "thread": ev.track.thread,
                "clock": ev.clock,
                "start": ev.start,
                "end": ev.end,
                "span_id": ev.span_id,
                "parent_id": ev.parent_id,
                "args": ev.args,
            }) + "\n")
    return path


def validate_chrome_trace(data) -> list[str]:
    """Schema check for the Chrome trace-event format (CI gate).

    Returns a list of problems (empty means valid): the object shape,
    per-event required fields, non-negative durations, and that every
    (pid, tid) used by an event is named by metadata events — the
    invariant that gives "one track per device stream".
    """
    problems: list[str] = []
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        return ["top level must be an object with a traceEvents list"]
    named_pids, named_tids = set(), set()
    for i, ev in enumerate(data["traceEvents"]):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev.get("pid"))
            elif ev.get("name") == "thread_name":
                named_tids.add((ev.get("pid"), ev.get("tid")))
            continue
        for field_ in ("name", "ph", "ts", "pid", "tid"):
            if field_ not in ev:
                problems.append(f"event {i}: missing {field_!r}")
        if ph not in ("X", "i", "C"):
            problems.append(f"event {i}: unsupported phase {ph!r}")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                problems.append(f"event {i}: X event needs a non-negative dur")
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"event {i}: ts must be numeric")
    for i, ev in enumerate(data["traceEvents"]):
        if not isinstance(ev, dict) or ev.get("ph") in ("M", None):
            continue
        if ev.get("pid") not in named_pids:
            problems.append(f"event {i}: pid {ev.get('pid')} has no process_name metadata")
        elif ev.get("ph") != "C" and (ev.get("pid"), ev.get("tid")) not in named_tids:
            problems.append(f"event {i}: tid {ev.get('tid')} has no thread_name metadata")
    return problems


def load_chrome_trace(path: str | Path) -> dict:
    """Read and validate a Chrome-trace JSON file."""
    data = json.loads(Path(path).read_text())
    problems = validate_chrome_trace(data)
    if problems:
        raise ValueError(f"{path}: invalid Chrome trace: " + "; ".join(problems[:5]))
    return data


def trace_events_from_chrome(data) -> list[TraceEvent]:
    """Rebuild :class:`TraceEvent` records from a Chrome-trace object.

    The inverse of :func:`to_chrome_trace` up to timestamp
    normalization: timestamps come back in seconds relative to each
    clock domain's zero.  Used by the trace analyzer so it can consume
    a file straight off disk.
    """
    pid_names: dict[int, str] = {}
    tid_names: dict[tuple, str] = {}
    for ev in data["traceEvents"]:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            pid_names[ev["pid"]] = ev["args"]["name"]
        elif ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tid_names[(ev["pid"], ev["tid"])] = ev["args"]["name"]
    out = []
    for ev in data["traceEvents"]:
        ph = ev.get("ph")
        if ph not in _PHASES_BACK:
            continue
        track = Track(
            pid_names.get(ev["pid"], f"pid{ev['pid']}"),
            tid_names.get((ev["pid"], ev["tid"]), f"tid{ev['tid']}"),
        )
        args = dict(ev.get("args", {}))
        clock = args.pop("clock", "wall") if ph != "C" else "wall"
        start = ev["ts"] / 1e6
        out.append(TraceEvent(
            phase=_PHASES_BACK[ph],
            name=ev["name"],
            cat=ev.get("cat", ""),
            track=track,
            start=start,
            end=start + ev.get("dur", 0.0) / 1e6 if ph == "X" else None,
            clock=clock,
            span_id=args.pop("span_id", 0),
            parent_id=args.pop("parent", None),
            args=args,
        ))
    return out
