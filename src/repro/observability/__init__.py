"""Observability: end-to-end tracing, unified metrics, bottleneck reports.

The measurement layer the ROADMAP's "fast as the hardware allows"
north star requires: before optimizing further we must *see* a single
request's journey (admission → window close → plan → per-stream kernel
execution → response) and a device's stream occupancy.  Three pieces:

* :mod:`repro.observability.trace` — a context-propagated
  :class:`Tracer` spanning both the wall clock (serving machinery) and
  the simulated device clock (kernel timeline), guarded everywhere by
  the falsy :data:`NULL_TRACER` so disabled tracing is free;
* :mod:`repro.observability.registry` — a counter/gauge/histogram/
  summary :class:`MetricsRegistry` with Prometheus text exposition,
  the single sink behind the serving metrics, ``LaunchStats`` and
  ``ExecutionStats``;
* :mod:`repro.observability.export` / :mod:`~repro.observability.report`
  — Chrome-trace (Perfetto) + JSONL serialization and the trace
  analyzer behind ``python -m repro trace-report`` (per-stream
  occupancy, critical-path breakdown, padded-flops waste, top-N
  bottlenecks).

Quickstart::

    from repro.observability import Tracer, activate, write_chrome_trace

    tracer = Tracer()
    with activate(tracer):
        run_potrf_vbatched(device, batch, max_n, options)
    write_chrome_trace(tracer, "out.json")   # open in ui.perfetto.dev

See DESIGN.md §5d for the request → batch → plan → stream-track
architecture.
"""

from .export import (
    load_chrome_trace,
    to_chrome_trace,
    trace_events_from_chrome,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    Summary,
    latency_summary,
    percentile,
)
from .report import (
    AdaptiveReport,
    GroupReport,
    OpReport,
    TraceAnalysis,
    TrackOccupancy,
    analyze_trace,
    format_trace_report,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    SIM,
    Tracer,
    TraceEvent,
    Track,
    WALL,
    activate,
    current_tracer,
    current_span_id,
    propagating,
)

__all__ = [
    "AdaptiveReport",
    "Counter",
    "Gauge",
    "GroupReport",
    "OpReport",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SIM",
    "Summary",
    "TraceAnalysis",
    "TraceEvent",
    "Tracer",
    "Track",
    "TrackOccupancy",
    "WALL",
    "activate",
    "analyze_trace",
    "current_span_id",
    "current_tracer",
    "format_trace_report",
    "latency_summary",
    "load_chrome_trace",
    "percentile",
    "propagating",
    "to_chrome_trace",
    "trace_events_from_chrome",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
]
