"""Tunable serving knobs: discrete arm sets + how to apply a choice.

A :class:`Knob` binds one controller to one server setting.  Every arm
is a JSON-serializable primitive so converged winners persist to the
:class:`~repro.autotune.TuningCache` verbatim.  ``default_knobs`` reads
the server's live configuration and puts the *current* setting first in
each arm tuple — the controller's initial incumbent must be what the
server is actually running, or the first epoch's reward would be
credited to the wrong arm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..device.topology import DeviceGroup

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serving.server import BatchServer

__all__ = ["Knob", "compact_knobs", "default_knobs"]


@dataclass(frozen=True)
class Knob:
    """One adaptive dimension: its arm set and its application hook."""

    name: str
    arms: tuple
    apply: Callable[["BatchServer", object], None]

    def __post_init__(self) -> None:
        if not self.arms:
            raise ValueError(f"knob {self.name!r} has no arms")


def _current_first(current, candidates: tuple) -> tuple:
    """Arm tuple with the server's live setting as the incumbent."""
    rest = tuple(c for c in candidates if c != current)
    return (current, *rest)


def _apply_max_batch(server: "BatchServer", arm) -> None:
    server.reconfigure(max_batch=int(arm))


def _apply_policy(server: "BatchServer", arm) -> None:
    server.reconfigure(policy=str(arm))


def _apply_max_wait(server: "BatchServer", arm) -> None:
    server.reconfigure(max_wait=float(arm))


def _apply_crossover(server: "BatchServer", arm) -> None:
    server.reconfigure(crossover_size=None if arm is None else int(arm))


def _apply_optimize(server: "BatchServer", arm) -> None:
    server.reconfigure(optimize=str(arm))


def _apply_partition(server: "BatchServer", arm) -> None:
    server.group.partition = str(arm)


def default_knobs(server: "BatchServer") -> tuple[Knob, ...]:
    """The standard knob set for one server, seeded from its live config.

    ``max_batch`` arms stay within the admission queue limit (tuning the
    window above the queue bound would starve it), and the partitioner
    knob only exists when the server shards over a plain
    :class:`~repro.device.topology.DeviceGroup` (heterogeneous groups
    place greedily; their partitioner is not a free dial).
    """
    batcher = server._batcher
    knobs = [
        Knob(
            "max_batch",
            _current_first(
                batcher.max_batch,
                tuple(m for m in (16, 32, 64, 128) if m <= server.queue_limit),
            ),
            _apply_max_batch,
        ),
        Knob(
            "policy",
            _current_first(
                batcher.policy.name,
                ("greedy-window", "cross-op", "size-bucket", "fifo"),
            ),
            _apply_policy,
        ),
        Knob(
            "crossover",
            _current_first(server.options.crossover_size, (None, 64, 128)),
            _apply_crossover,
        ),
        Knob(
            "optimize",
            _current_first(server.options.optimize, ("none", "all")),
            _apply_optimize,
        ),
        Knob(
            "max_wait",
            _current_first(batcher.max_wait, (2e-3, 5e-3)),
            _apply_max_wait,
        ),
    ]
    if isinstance(server.group, DeviceGroup):
        knobs.append(
            Knob(
                "partition",
                _current_first(
                    server.group.partition,
                    ("flops", "size-stratified", "round-robin", "contiguous"),
                ),
                _apply_partition,
            )
        )
    return tuple(knobs)


def compact_knobs(server: "BatchServer") -> tuple[Knob, ...]:
    """A trimmed knob set for smoke runs: the two dominant dials only.

    Small arm sets converge in a handful of epochs, which keeps CI smoke
    benches fast while still exercising the full explore → converge →
    persist → warm-start loop.
    """
    batcher = server._batcher
    return (
        Knob(
            "max_batch",
            _current_first(
                batcher.max_batch,
                tuple(m for m in (32, 64, 128) if m <= server.queue_limit),
            ),
            _apply_max_batch,
        ),
        Knob(
            "policy",
            _current_first(batcher.policy.name, ("greedy-window", "fifo")),
            _apply_policy,
        ),
        Knob(
            "crossover",
            _current_first(server.options.crossover_size, (None, 64)),
            _apply_crossover,
        ),
    )
