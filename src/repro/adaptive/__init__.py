"""Online autotuning: close the observability → policy loop.

The paper (§III) defers final tuning "to the moment of execution at the
user site"; this package does that *while serving*.  A
:class:`WorkloadFingerprint` summarizes each decision window's traffic
(log-size histogram + op mix + arrival-rate band), a
:class:`SignalSource` reads epoch-delta rewards out of the existing
MetricsRegistry, per-knob :class:`Controller` bandits (UCB with
min-dwell hysteresis and rollback-on-regression) pick arms for the
serving knobs (max-batch, batcher policy, window, fused/separated
crossover, plan-optimizer level, partitioner), and the
:class:`OnlineTuner` orchestrates them at batch-window boundaries
inside :class:`~repro.serving.server.BatchServer`, persisting converged
winners to the autotune :class:`~repro.autotune.TuningCache` keyed by
(device spec, workload fingerprint) so warm restarts skip exploration
entirely.

Enable it with ``BatchServer(..., adaptive=True)`` /
``build_fleet(..., adaptive=True)`` or benchmark it A/B against every
static policy with ``python -m repro serve-bench --adaptive``.
"""

from .bench import check_adaptive_acceptance, run_adaptive_bench
from .controller import ArmStats, Controller, Decision
from .fingerprint import FingerprintBuilder, WindowSample, WorkloadFingerprint
from .knobs import Knob, compact_knobs, default_knobs
from .signals import EpochSignals, SignalSource
from .tuner import OnlineTuner

__all__ = [
    "ArmStats",
    "Controller",
    "Decision",
    "EpochSignals",
    "FingerprintBuilder",
    "Knob",
    "OnlineTuner",
    "SignalSource",
    "WindowSample",
    "WorkloadFingerprint",
    "check_adaptive_acceptance",
    "compact_knobs",
    "default_knobs",
    "run_adaptive_bench",
]
