"""Workload fingerprints: compact, stable signatures of a traffic mix.

The online tuner persists converged knob settings keyed by *what the
workload looks like*, not when it arrived.  A fingerprint therefore has
to be invariant to request order and to uniform duplication of the
stream (twice the same traffic is the same workload), while still
separating workloads whose winning configuration differs: size mix,
operation mix, and how hard requests arrive.

Three quantized components give that:

* a normalized log2-size histogram (sizes bucketed by ``floor(log2 n)``,
  counts normalized and quantized to a coarse grid),
* the operation mix (per-op request fractions on the same grid),
* an arrival-rate band (log-scale bucket of requests per sim-second).

Quantization makes near-identical mixes collide on purpose — the tuned
config for 10.1k req/s uniform[32..96] potrf traffic is the right warm
start for 9.8k req/s of the same shape.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass, field

__all__ = ["WindowSample", "WorkloadFingerprint", "FingerprintBuilder"]

# Histogram fractions snap to this many levels; coarse on purpose so
# sampling noise between decision windows maps to the same fingerprint.
_QUANT_LEVELS = 8
# Arrival-rate bands double per step: band = round(log2(rate)) clamped.
_RATE_BAND_MIN = -4
_RATE_BAND_MAX = 32


def _quantize(fraction: float) -> int:
    """Snap a fraction in [0, 1] to one of ``_QUANT_LEVELS`` + 1 levels."""
    return round(fraction * _QUANT_LEVELS)


def _log2_bucket(n: int) -> int:
    return max(0, n - 1).bit_length()


@dataclass(frozen=True)
class WorkloadFingerprint:
    """Order- and scale-invariant signature of one decision window."""

    size_histogram: tuple[tuple[int, int], ...]  # (log2 bucket, quantized frac)
    op_mix: tuple[tuple[str, int], ...]  # (op, quantized frac)
    rate_band: int  # round(log2(requests per sim second))

    def key(self) -> str:
        """Stable string form used as the TuningCache key component."""
        sizes = ",".join(f"{b}:{q}" for b, q in self.size_histogram)
        ops = ",".join(f"{op}:{q}" for op, q in self.op_mix)
        return f"sz[{sizes}]|op[{ops}]|rate[{self.rate_band}]"

    def similar_to(self, other: "WorkloadFingerprint", *, tolerance: int = 1) -> bool:
        """Structurally the same workload, up to quantization wobble.

        Two windows of the same traffic can land one quantization level
        apart when a bucket's true fraction sits on a grid boundary
        (0.083 of 8 levels flips between 0 and 1).  Exact equality would
        read that wobble as drift, so similarity allows each size-bucket
        and op level to differ by up to ``tolerance`` (a missing entry
        counts as level 0).  The arrival-rate band is ignored: rate is a
        closed-loop function of our own knob choices.
        """
        for mine, theirs in (
            (dict(self.size_histogram), dict(other.size_histogram)),
            (dict(self.op_mix), dict(other.op_mix)),
        ):
            for key in mine.keys() | theirs.keys():
                if abs(mine.get(key, 0) - theirs.get(key, 0)) > tolerance:
                    return False
        return True

    @classmethod
    def from_requests(
        cls,
        sizes: list[int],
        ops: list[str],
        *,
        window_sim_s: float,
    ) -> "WorkloadFingerprint":
        if not sizes:
            raise ValueError("cannot fingerprint an empty window")
        if len(sizes) != len(ops):
            raise ValueError("sizes and ops must be the same length")
        total = len(sizes)

        size_counts = Counter(_log2_bucket(n) for n in sizes)
        histogram = tuple(
            (bucket, q)
            for bucket, count in sorted(size_counts.items())
            if (q := _quantize(count / total)) > 0
        )

        op_counts = Counter(ops)
        mix = tuple(
            (op, q)
            for op, count in sorted(op_counts.items())
            if (q := _quantize(count / total)) > 0
        )

        if window_sim_s <= 0:
            rate_band = _RATE_BAND_MAX
        else:
            rate = total / window_sim_s
            band = math.log2(rate) if rate > 0 else _RATE_BAND_MIN
            rate_band = max(_RATE_BAND_MIN, min(_RATE_BAND_MAX, round(band)))
        return cls(size_histogram=histogram, op_mix=mix, rate_band=rate_band)


@dataclass
class WindowSample:
    """Sliding sample of the last ``maxlen`` observed requests.

    ``maxlen=None`` accumulates without bound (useful for one-shot
    fingerprinting); the builder uses a bounded window so consecutive
    snapshots overlap heavily and quantization noise stays small.
    """

    maxlen: int | None = None
    sizes: deque = field(init=False)
    ops: deque = field(init=False)
    times: deque = field(init=False)

    def __post_init__(self) -> None:
        self.sizes = deque(maxlen=self.maxlen)
        self.ops = deque(maxlen=self.maxlen)
        self.times = deque(maxlen=self.maxlen)

    def add(self, n: int, op: str, sim_now: float) -> None:
        self.sizes.append(n)
        self.ops.append(op)
        self.times.append(sim_now)

    def add_batch(self, sizes: list[int], op: str, sim_now: float) -> None:
        for n in sizes:
            self.add(n, op, sim_now)

    @property
    def count(self) -> int:
        return len(self.sizes)

    @property
    def span_sim_s(self) -> float:
        if not self.times:
            return 0.0
        return self.times[-1] - self.times[0]

    def clear(self) -> None:
        self.sizes.clear()
        self.ops.clear()
        self.times.clear()


class FingerprintBuilder:
    """Sliding-window fingerprint over the live *arrival* stream.

    The builder must be fed at admission, not at dispatch: dispatched
    batches are size-clustered by the batching policy (that is the
    policy's whole job), so a per-batch feed would make the fingerprint
    a function of our own knob settings — every policy or max-batch
    change would read as workload drift.  Admission order is the
    workload as the client sent it.

    ``snapshot`` fingerprints the last ``window`` requests; consecutive
    snapshots share most of their sample, so the fingerprint moves only
    when the traffic actually shifts.
    """

    def __init__(self, window: int = 1024) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._window = WindowSample(maxlen=int(window))
        self.last: WorkloadFingerprint | None = None

    def observe_request(self, n: int, op: str, sim_now: float) -> None:
        self._window.add(n, op, sim_now)

    def observe_batch(self, sizes: list[int], op: str, sim_now: float) -> None:
        self._window.add_batch(sizes, op, sim_now)

    @property
    def window_count(self) -> int:
        return self._window.count

    def snapshot(self) -> WorkloadFingerprint | None:
        """Fingerprint the current window; None if the window is empty."""
        if self._window.count == 0:
            return None
        fp = WorkloadFingerprint.from_requests(
            list(self._window.sizes),
            list(self._window.ops),
            window_sim_s=max(self._window.span_sim_s, 1e-9),
        )
        self.last = fp
        return fp
