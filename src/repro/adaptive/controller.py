"""Per-knob discrete-arm controllers for the online tuner.

Each serving knob (max-batch, batcher policy, crossover n, optimize
level, partitioner) gets one :class:`Controller` over a small discrete
arm set.  The controller is a UCB1 bandit with three serving-specific
guards layered on top:

* **min-dwell hysteresis** — an arm must stay active for at least
  ``min_dwell`` decision epochs before the controller may switch away,
  so one noisy window cannot thrash a knob;
* **rollback on regression** — if a newly explored arm's reward falls
  more than ``rollback_ratio`` below the best arm's running mean, the
  controller snaps back to that best arm immediately (no dwell) and
  penalizes the offender so UCB does not re-try it soon;
* **indifference hold** — once every arm is covered, switch proposals
  are ignored while the incumbent's mean sits within ``indifference``
  of the best mean; flat-reward knobs would otherwise ping-pong on the
  exploration bonus and never settle;
* **convergence detection** — once every arm has minimum coverage and
  the incumbent has held for ``converged_after`` consecutive epochs,
  the controller freezes (pure exploitation) until ``reset()``.

Rewards are normalized upstream (epoch useful Gflop/s), higher is
better.  All exploration order is deterministic given the seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

__all__ = ["ArmStats", "Controller", "Decision"]


@dataclass
class ArmStats:
    pulls: int = 0
    total_reward: float = 0.0
    penalty: float = 0.0  # subtracted from the UCB score after a rollback

    @property
    def mean(self) -> float:
        return self.total_reward / self.pulls if self.pulls else 0.0


@dataclass(frozen=True)
class Decision:
    """What the controller chose for the next epoch, and why."""

    arm: object
    action: str  # "hold" | "explore" | "exploit" | "rollback" | "converged"
    reason: str


@dataclass
class Controller:
    """UCB1 bandit over a discrete arm set with dwell + rollback guards."""

    name: str
    arms: tuple
    min_dwell: int = 2
    rollback_ratio: float = 0.15
    converged_after: int = 6
    exploration: float = 1.2  # UCB confidence width multiplier
    epsilon: float = 0.0  # optional epsilon-greedy jitter on top of UCB
    #: Relative reward band within which arms count as equivalent.  Once
    #: every arm is pulled and the incumbent's mean is within this
    #: fraction of the best mean, UCB switch proposals are held instead
    #: of followed — without it, two flat-reward arms oscillate forever
    #: (the exploration bonus always favors whichever was pulled less)
    #: and the controller never converges.
    indifference: float = 0.02
    seed: int = 0

    _stats: dict = field(default_factory=dict, init=False, repr=False)
    _rng: random.Random = field(init=False, repr=False)
    current: object = field(default=None, init=False)
    dwell: int = field(default=0, init=False)
    hold_streak: int = field(default=0, init=False)
    converged: bool = field(default=False, init=False)
    rollbacks: int = field(default=0, init=False)
    switches: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.arms:
            raise ValueError(f"controller {self.name!r} needs at least one arm")
        if len(set(map(repr, self.arms))) != len(self.arms):
            raise ValueError(f"controller {self.name!r} has duplicate arms")
        self._rng = random.Random(self.seed)
        self._stats = {arm: ArmStats() for arm in self.arms}
        self.current = self.arms[0]

    # -- bookkeeping ---------------------------------------------------

    def stats(self, arm: object) -> ArmStats:
        return self._stats[arm]

    @property
    def best_arm(self) -> object:
        pulled = [a for a in self.arms if self._stats[a].pulls]
        if not pulled:
            return self.current
        return max(pulled, key=lambda a: self._stats[a].mean)

    @property
    def total_pulls(self) -> int:
        return sum(s.pulls for s in self._stats.values())

    def force(self, arm: object, *, converged: bool = False) -> None:
        """Pin an arm externally (warm start from the tuning cache)."""
        if arm not in self._stats:
            raise ValueError(f"unknown arm {arm!r} for controller {self.name!r}")
        self.current = arm
        self.dwell = 0
        self.converged = converged
        if converged:
            self.hold_streak = self.converged_after

    def reset(self) -> None:
        """Drop learned state (workload drift => the past is stale)."""
        for stats in self._stats.values():
            stats.pulls = 0
            stats.total_reward = 0.0
            stats.penalty = 0.0
        self.dwell = 0
        self.hold_streak = 0
        self.converged = False

    # -- the decision step ---------------------------------------------

    def observe(self, reward: float) -> Decision:
        """Record the epoch reward for the current arm and pick the next."""
        stats = self._stats[self.current]
        stats.pulls += 1
        stats.total_reward += reward
        self.dwell += 1

        if self.converged:
            return Decision(self.current, "converged", "frozen on winner")

        best = self.best_arm
        best_mean = self._stats[best].mean

        # Rollback: the active arm regressed hard against the known best.
        if (
            best is not self.current
            and best_mean > 0
            and stats.mean < best_mean * (1.0 - self.rollback_ratio)
        ):
            stats.penalty += best_mean * self.rollback_ratio
            prev = self.current
            self._switch(best)
            self.rollbacks += 1
            return Decision(
                best,
                "rollback",
                f"{prev!r} mean {stats.mean:.3g} < "
                f"{1.0 - self.rollback_ratio:.2f}x best {best_mean:.3g}",
            )

        # Hysteresis: hold the arm until it has earned a full dwell.
        if self.dwell < self.min_dwell:
            self.hold_streak += 1
            return Decision(
                self.current, "hold", f"dwell {self.dwell}/{self.min_dwell}"
            )

        choice = self._select()
        covered = all(s.pulls > 0 for s in self._stats.values())
        if choice is not self.current and covered:
            # Indifference hold: every arm is covered and the incumbent is
            # within ``indifference`` of the best mean — the proposed switch
            # is exploration-bonus noise, not signal.  Following it would
            # oscillate between equivalent arms forever.
            if stats.mean >= best_mean * (1.0 - self.indifference):
                choice = self.current
        if choice is self.current:
            self.hold_streak += 1
            if self.hold_streak >= self.converged_after and covered:
                self.converged = True
                return Decision(self.current, "converged", "incumbent stable")
            return Decision(self.current, "exploit", "incumbent still best")

        self._switch(choice)
        action = "explore" if self._stats[choice].pulls == 0 else "exploit"
        return Decision(choice, action, f"ucb prefers {choice!r}")

    def _switch(self, arm: object) -> None:
        if arm is not self.current:
            self.switches += 1
        self.current = arm
        self.dwell = 0
        self.hold_streak = 0

    def _select(self) -> object:
        unpulled = [a for a in self.arms if self._stats[a].pulls == 0]
        if unpulled:
            return unpulled[0]
        if self.epsilon and self._rng.random() < self.epsilon:
            return self._rng.choice(self.arms)
        total = self.total_pulls
        scale = max(abs(self._stats[a].mean) for a in self.arms) or 1.0

        def score(arm: object) -> float:
            stats = self._stats[arm]
            bonus = self.exploration * scale * math.sqrt(
                math.log(total) / stats.pulls
            )
            return stats.mean - stats.penalty + bonus

        return max(self.arms, key=score)

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "current": repr(self.current),
            "converged": self.converged,
            "switches": self.switches,
            "rollbacks": self.rollbacks,
            "arms": {
                repr(arm): {
                    "pulls": s.pulls,
                    "mean_reward": s.mean,
                    "penalty": s.penalty,
                }
                for arm, s in self._stats.items()
            },
        }
