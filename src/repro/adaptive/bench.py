"""A/B benchmark: the online tuner vs every static serving policy.

Each traffic mix replays the *same* deterministic arrival trace under

* every static policy (fixed knobs, the PR3 serve-bench baselines),
* a cold adaptive server (explores, converges, persists winners), and
* a warm adaptive server sharing the cold run's
  :class:`~repro.autotune.TuningCache` (must skip exploration entirely).

The warm run is the tuned controller's steady state — exploration cost
is isolated in the cold run's numbers instead of polluting the A/B —
and doubles as the warm-restart acceptance probe: zero exploration
batches and throughput within tolerance of the cold run's converged
configuration.

Three mixes stress different knobs:

* ``uniform`` — continuous sizes; batching any wider pads heavily, so
  the waste guard must hold max-batch at the incumbent while the
  crossover knob finds the serving-regime fused/separated switch point;
* ``bursty-small`` — single-size bursts of small matrices (recurring
  standardized shapes); batches stay pure at any width, so growing
  max-batch is free throughput the statics leave on the table;
* ``diurnal-mixed`` — a potrf-only phase, a mixed potrf+geqrf phase,
  then the first phase again; exercises fingerprint drift, per-phase
  re-convergence, and the in-run cache warm-start on the phase return.

Acceptance (:func:`check_adaptive_acceptance`): per mix the warm
adaptive run's throughput is at least the best static's and its padded
-flops waste ratio is no worse than the best-throughput static's (small
absolute slack for tail batches); on at least one mix it strictly beats
*every* static; the warm run explores exactly zero batches and lands
within 5% of the cold run's throughput.
"""

from __future__ import annotations

import json
import os
import random
import tempfile

import numpy as np

from ..autotune.cache import TuningCache
from ..core.plan import PlanCache
from ..device.device import Device
from ..device.topology import DeviceGroup
from ..observability.trace import activate, current_tracer
from ..serving.server import BatchServer

__all__ = ["ADAPTIVE_MIXES", "check_adaptive_acceptance", "run_adaptive_bench"]

ADAPTIVE_MIXES = ("uniform", "bursty-small", "diurnal-mixed")
STATIC_POLICIES = ("per-request", "fifo", "size-bucket", "greedy-window")

# Burst size grids are spaced by more than the greedy window's 1.5x
# ratio, so a window never mixes adjacent sizes: batches stay pure and
# padding waste measures policy behaviour, not grid coincidence.
_BURST_SMALL = (8, 13, 20, 31, 48)
_BURST_LARGE = (76, 120)
_DIURNAL_SIZES = (16, 25, 40, 64, 97)


def _uniform_workload(requests: int, seed: int) -> list[tuple[int, str]]:
    rng = random.Random(seed)
    return [(rng.randint(1, 96), "potrf") for _ in range(requests)]


def _bursty_workload(requests: int, seed: int) -> list[tuple[int, str]]:
    """Single-size bursts: 80% small-size bursts of 96, 20% large of 32."""
    rng = random.Random(seed)
    work: list[tuple[int, str]] = []
    while len(work) < requests:
        if rng.random() < 0.8:
            n, burst = rng.choice(_BURST_SMALL), 96
        else:
            n, burst = rng.choice(_BURST_LARGE), 32
        work.extend((n, "potrf") for _ in range(burst))
    return work[:requests]


def _diurnal_workload(requests: int, seed: int) -> list[tuple[int, str]]:
    """potrf-only -> mixed potrf/geqrf -> potrf-only, 40/40/20 split."""
    rng = random.Random(seed)
    a, b = int(requests * 0.4), int(requests * 0.4)
    phases = (
        [("potrf",)] * a,
        [("potrf", "geqrf")] * b,
        [("potrf",)] * (requests - a - b),
    )
    work: list[tuple[int, str]] = []
    for phase in phases:
        for i, ops in enumerate(phase):
            work.append((rng.choice(_DIURNAL_SIZES), ops[i % len(ops)]))
    return work


_WORKLOADS = {
    "uniform": _uniform_workload,
    "bursty-small": _bursty_workload,
    "diurnal-mixed": _diurnal_workload,
}


def _closed_loop_ops(server: BatchServer, workload, concurrency: int) -> None:
    """Closed-loop pump over an (n, op) stream; timing-mode payloads."""
    futures = []
    stream = iter(workload)
    exhausted = False
    payloads: dict[int, np.ndarray] = {}
    while True:
        while not exhausted and server.queue_depth < concurrency:
            try:
                n, op = next(stream)
            except StopIteration:
                exhausted = True
                break
            matrix = payloads.get(n)
            if matrix is None:
                matrix = payloads.setdefault(n, np.zeros((n, n)))
            futures.append(server.submit(matrix, op=op))
        if server.pump(force=True) == 0 and exhausted:
            break
    for f in futures:
        f.result(timeout=60.0)


def _make_server(label: str, *, device_count: int, adaptive: bool = False,
                 tuning_cache=None, adaptive_options=None, policy="greedy-window",
                 max_batch=32, queue_limit=2048) -> BatchServer:
    prefix = f"{label}:" if current_tracer() else None
    if device_count > 1:
        target = {"devices": DeviceGroup.simulated(
            device_count, execute_numerics=False, name_prefix=prefix)}
    else:
        target = {"device": Device(
            execute_numerics=False,
            name=None if prefix is None else f"{prefix}dev0")}
    if policy == "per-request":
        policy, max_batch = "fifo", 1
    return BatchServer(
        policy=policy,
        max_batch=max_batch,
        max_wait=2e-3,
        queue_limit=queue_limit,
        plan_cache=PlanCache(max_plans=64),
        name=f"{label}:serving",
        adaptive=adaptive,
        tuning_cache=tuning_cache,
        adaptive_options=adaptive_options,
        **target,
    )


def _run_case(label, workload, concurrency, **server_kwargs) -> dict:
    server = _make_server(label, **server_kwargs)
    _closed_loop_ops(server, workload, concurrency)
    m = server.metrics.snapshot()
    batching = m["batching"]
    padded = batching["padded_flops"]
    result = {
        "throughput_per_sim_s": m["throughput"]["matrices_per_sim_s"],
        "useful_gflops_sim": m["throughput"]["useful_gflops_sim"],
        "waste_ratio": (batching["wasted_flops"] / padded) if padded else 0.0,
        "mean_batch_size": m["throughput"]["mean_batch_size"],
        "latency_sim_p95": m["latency_sim_s"]["p95"],
        "completed": m["requests"]["completed"],
    }
    if server.tuner is not None:
        result["tuner"] = server.tuner.snapshot()
    server.shutdown()
    return result


def run_adaptive_bench(
    requests: int = 9000,
    concurrency: int = 768,
    seed: int = 0,
    device_count: int = 1,
    mixes=ADAPTIVE_MIXES,
    statics=STATIC_POLICIES,
    max_batch: int = 32,
    knobs: str = "compact",
    epoch_batches: int = 6,
    cache_path: str | None = None,
    smoke: bool = False,
    tracer=None,
) -> dict:
    """Replay each mix under every static policy, then cold and warm
    adaptive servers sharing one tuning cache; returns the A/B report.

    ``requests`` sizes the single-phase mixes; the diurnal mix runs
    longer (its phases each need room to re-converge).  ``smoke``
    shrinks everything for CI.

    The bench pins a faster tuner cadence than the production defaults
    (short epochs, two-epoch convergence holds): bench traces are
    finite, and once ``max_batch`` converges onto wide batches each
    epoch consumes ``epoch_batches * max_batch`` requests — long
    production epochs would spend the whole trace mid-exploration.
    """
    if smoke:
        requests = min(requests, 8000)
        concurrency = min(concurrency, 512)
    adaptive_options = {
        "knobs": knobs,
        "epoch_batches": epoch_batches,
        "converged_after": 2,
        # The A/B gate demands waste parity with the best static policy
        # (absolute slack WASTE_SLACK), so the tuner's waste budget must
        # mirror the gate exactly: baseline * 1.0 + slack.  Two pieces
        # make the baseline honest: four observing windows (first
        # excluded — it carries the queue-fill startup transient, ~60%
        # above steady state) pin it to the steady-state waste of the
        # entry config, and the tuner's quartic overrun penalty then
        # separates noisy-but-honest epochs from padding-bought
        # throughput.
        "observe_epochs": 4,
        "waste_tolerance": 1.0,
    }
    own_cache_dir = None
    if cache_path is None:
        own_cache_dir = tempfile.mkdtemp(prefix="adaptive-bench-")
        cache_path = os.path.join(own_cache_dir, "tuning_cache.json")

    report: dict = {
        "config": {
            "requests": requests,
            "concurrency": concurrency,
            "seed": seed,
            "device_count": device_count,
            "max_batch": max_batch,
            "knobs": knobs,
            "epoch_batches": epoch_batches,
            "smoke": bool(smoke),
            "statics": list(statics),
        },
        "mixes": {},
    }
    with activate(tracer if tracer is not None else current_tracer()):
        _run_mixes(report, mixes, requests, seed, statics, concurrency,
                   device_count, max_batch, adaptive_options, cache_path)
    report["acceptance"] = {
        "violations": check_adaptive_acceptance(report),
    }
    report["acceptance"]["passed"] = not report["acceptance"]["violations"]
    return report


def _run_mixes(report, mixes, requests, seed, statics, concurrency,
               device_count, max_batch, adaptive_options, cache_path) -> None:
    for mix in mixes:
        # The diurnal mix needs each phase long enough for the sliding
        # fingerprint window to turn over *and* re-converge; the bursty
        # mix converges onto wide pure batches, so its epochs consume
        # more requests each.  Both get proportionally longer traces.
        if mix == "diurnal-mixed":
            count = int(requests * 2.5)
        elif mix == "bursty-small":
            count = int(requests * 1.5)
        else:
            count = requests
        workload = _WORKLOADS[mix](count, seed)
        cache = TuningCache(path=f"{cache_path}.{mix}")
        entry: dict = {"requests": count, "static": {}, "adaptive": {}}
        for policy in statics:
            entry["static"][policy] = _run_case(
                f"{mix}:{policy}", workload, concurrency,
                device_count=device_count, policy=policy, max_batch=max_batch,
            )
        entry["adaptive"]["cold"] = _run_case(
            f"{mix}:adaptive-cold", workload, concurrency,
            device_count=device_count, max_batch=max_batch,
            adaptive=True, tuning_cache=cache,
            adaptive_options=adaptive_options,
        )
        entry["adaptive"]["warm"] = _run_case(
            f"{mix}:adaptive-warm", workload, concurrency,
            device_count=device_count, max_batch=max_batch,
            adaptive=True, tuning_cache=cache,
            adaptive_options=adaptive_options,
        )
        entry["cache_entries"] = len(cache)
        entry["comparison"] = _compare(entry)
        report["mixes"][mix] = entry


def _compare(entry: dict) -> dict:
    statics = entry["static"]
    warm = entry["adaptive"]["warm"]
    cold = entry["adaptive"]["cold"]
    best_policy = max(
        statics, key=lambda p: statics[p]["throughput_per_sim_s"]
    )
    best = statics[best_policy]
    return {
        "best_static": best_policy,
        "best_static_throughput": best["throughput_per_sim_s"],
        "best_static_waste": best["waste_ratio"],
        "warm_vs_best_static": (
            warm["throughput_per_sim_s"] / best["throughput_per_sim_s"]
            if best["throughput_per_sim_s"] else 0.0
        ),
        "strictly_beats_all_statics": all(
            warm["throughput_per_sim_s"] > s["throughput_per_sim_s"]
            for s in statics.values()
        ),
        "warm_waste_ratio": warm["waste_ratio"],
        "warm_vs_cold": (
            warm["throughput_per_sim_s"] / cold["throughput_per_sim_s"]
            if cold["throughput_per_sim_s"] else 0.0
        ),
        "warm_exploration_batches": warm["tuner"]["exploration_batches"],
    }


#: Absolute waste-ratio slack for the per-mix comparison: the warm run's
#: tail batches (queue drain) can pad slightly differently than the
#: static's without signalling a real efficiency regression.
WASTE_SLACK = 0.01


def check_adaptive_acceptance(report: dict, waste_slack: float = WASTE_SLACK) -> list[str]:
    """ISSUE acceptance for the A/B bench; returns human-readable violations."""
    violations = []
    strict_wins = 0
    for mix, entry in report["mixes"].items():
        cmp = entry["comparison"]
        if cmp["warm_vs_best_static"] < 0.999:
            violations.append(
                f"{mix}: adaptive throughput {cmp['warm_vs_best_static']:.3f}x "
                f"of best static ({cmp['best_static']})"
            )
        if cmp["warm_waste_ratio"] > cmp["best_static_waste"] + waste_slack:
            violations.append(
                f"{mix}: adaptive waste {cmp['warm_waste_ratio']:.3f} worse than "
                f"best static {cmp['best_static_waste']:.3f} (+{waste_slack})"
            )
        if cmp["warm_exploration_batches"] != 0:
            violations.append(
                f"{mix}: warm restart explored "
                f"{cmp['warm_exploration_batches']} batches (want 0)"
            )
        if cmp["warm_vs_cold"] < 0.95:
            violations.append(
                f"{mix}: warm throughput {cmp['warm_vs_cold']:.3f}x of cold "
                "(want >= 0.95)"
            )
        if cmp["strictly_beats_all_statics"]:
            strict_wins += 1
    if len(report["mixes"]) >= 2 and strict_wins == 0:
        violations.append("no mix where adaptive strictly beats every static")
    return violations


def main(argv=None) -> int:  # pragma: no cover - exercised via __main__
    import argparse

    parser = argparse.ArgumentParser(
        description="A/B bench: adaptive tuner vs static serving policies"
    )
    parser.add_argument("--requests", type=int, default=9000)
    parser.add_argument("--concurrency", type=int, default=768)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--devices", type=int, default=1)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("-o", "--output", default=None)
    args = parser.parse_args(argv)
    report = run_adaptive_bench(
        requests=args.requests,
        concurrency=args.concurrency,
        seed=args.seed,
        device_count=args.devices,
        smoke=args.smoke,
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    ok = report["acceptance"]["passed"]
    for v in report["acceptance"]["violations"]:
        print(f"ACCEPTANCE: {v}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
