"""Epoch-delta signal extraction from the serving metrics registry.

The online tuner scores each decision epoch on what happened *during*
that epoch, but the MetricsRegistry is cumulative.  :class:`SignalSource`
keeps cursors into the registry (counter values, summary lengths,
batch-list index) and yields :class:`EpochSignals` deltas at decision
boundaries — no second bookkeeping path in the dispatch hot loop, the
signals are read from the same counters the Prometheus exposition and
``serve-bench`` reports already use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..observability.registry import percentile
from ..serving.metrics import ServerMetrics

__all__ = ["EpochSignals", "SignalSource"]


@dataclass(frozen=True)
class EpochSignals:
    """What one decision epoch looked like, as deltas."""

    batches: int
    completed: int
    useful_flops: float
    padded_flops: float
    sim_busy_s: float
    mean_batch_size: float
    mean_queue_depth: float
    latency_sim_p50: float
    latency_sim_p95: float

    @property
    def wasted_flops(self) -> float:
        return self.padded_flops - self.useful_flops

    @property
    def waste_ratio(self) -> float:
        return self.wasted_flops / self.padded_flops if self.padded_flops else 0.0

    @property
    def useful_gflops(self) -> float:
        """Useful Gflop/s over the epoch's busy time — the tuner reward.

        Useful (not padded) flops per simulated busy second folds both
        levers into one number: bigger batches amortize launch overhead
        (raises the numerator per second), while sloppy windowing pads
        (burns busy seconds for zero useful flops).
        """
        if self.sim_busy_s <= 0:
            return 0.0
        return self.useful_flops / self.sim_busy_s / 1e9


class SignalSource:
    """Cursor-based epoch-delta reader over one server's metrics."""

    def __init__(self, metrics: ServerMetrics):
        self._metrics = metrics
        self._batch_index = 0
        self._completed = 0
        self._useful = 0.0
        self._padded = 0.0
        self._sim_busy = 0.0
        self._queue_index = 0
        self._latency_index = 0

    def read_epoch(self) -> EpochSignals:
        """Snapshot the deltas since the previous call and advance."""
        m = self._metrics
        with m._lock:
            batches = m.batches[self._batch_index :]
            self._batch_index = len(m.batches)

        completed = m.completed
        useful = sum(b.useful_flops for b in batches)
        padded = sum(b.padded_flops for b in batches)
        sim_busy = sum(b.sim_elapsed for b in batches)
        matrices = sum(b.size for b in batches)

        depths = m._queue_depth.values()
        new_depths = depths[self._queue_index :]
        self._queue_index = len(depths)

        sims = m._latency.values(clock="sim")
        new_sims = sims[self._latency_index :]
        self._latency_index = len(sims)

        signals = EpochSignals(
            batches=len(batches),
            completed=completed - self._completed,
            useful_flops=useful,
            padded_flops=padded,
            sim_busy_s=sim_busy,
            mean_batch_size=matrices / len(batches) if batches else 0.0,
            mean_queue_depth=(
                sum(new_depths) / len(new_depths) if new_depths else 0.0
            ),
            latency_sim_p50=percentile(new_sims, 50.0),
            latency_sim_p95=percentile(new_sims, 95.0),
        )
        self._completed = completed
        self._useful += useful
        self._padded += padded
        self._sim_busy += sim_busy
        return signals
