"""The online tuner: fingerprint → signals → controllers → knobs.

:class:`OnlineTuner` closes the observability → policy loop inside one
:class:`~repro.serving.server.BatchServer`.  It is driven entirely by
the server's dispatch path — ``on_batch`` after every dispatched batch
— and makes decisions only at *epoch* boundaries (every
``epoch_batches`` batches), so the hot loop pays one counter increment
and a list append per batch.

Decision state machine::

    observing --first epoch--> [cache hit]  --> converged
                               [cache miss] --> exploring
    exploring --all controllers converged--> converged (persist winners)
    exploring/converged --fingerprint drift--> observing (re-enter)

* **observing** — the first ``observe_epochs`` windows after attach (or
  after drift): knobs stay put, traffic is fingerprinted, nothing is
  credited.  The waste baseline is flops-weighted over the observing
  windows *excluding the first* when more than one is observed — the
  first window after attach carries the queue-fill startup transient,
  and a baseline inflated by it would admit genuinely padding-heavy
  arms.  At the last observing boundary the fingerprint keys a
  TuningCache lookup: a hit forces every knob to the cached winner and
  skips exploration entirely (the warm restart path); a miss starts
  exploration.
* **exploring** — coordinate descent over the knobs: the first
  still-open controller owns consecutive epochs until it converges,
  then the next knob takes the floor — one active knob at a time keeps
  credit assignment unambiguous.  The epoch reward is useful Gflop/s of
  simulated busy time, *waste-guarded*: an epoch whose padded-flops
  waste ratio exceeds the observing-window baseline (by
  ``waste_tolerance`` relative plus ``waste_slack`` absolute) has its
  reward scaled down quartically with the overrun, so arms that buy
  throughput with padding roll back immediately.
* **converged** — pure exploitation; the winning arms are persisted to
  the cache keyed by ``(device key, entry fingerprint)``.

Fingerprint drift (the size/op mix changed, not the self-inflicted
arrival-rate shift of a faster config) resets the controllers and
re-enters observation, where the cache may already hold the new phase's
winner — a diurnal workload explores each phase once, then flips
between cached configs.
"""

from __future__ import annotations

from ..autotune.cache import TuningCache
from ..observability.trace import Track, current_tracer
from .controller import Controller
from .fingerprint import FingerprintBuilder, WorkloadFingerprint
from .knobs import Knob, compact_knobs, default_knobs
from .signals import EpochSignals, SignalSource

__all__ = ["OnlineTuner"]

_CACHE_PREFIX = "adaptive"


class OnlineTuner:
    """Per-server online knob tuner; see the module docstring."""

    def __init__(
        self,
        server,
        *,
        cache: TuningCache | None = None,
        knobs: tuple[Knob, ...] | str | None = None,
        epoch_batches: int = 12,
        seed: int = 0,
        min_dwell: int = 1,
        converged_after: int = 3,
        rollback_ratio: float = 0.3,
        waste_tolerance: float = 1.15,
        waste_slack: float = 0.01,
        observe_epochs: int = 1,
        drift_windows: int = 2,
        fingerprint_window: int = 4096,
    ):
        if epoch_batches <= 0:
            raise ValueError(f"epoch_batches must be positive, got {epoch_batches}")
        self.server = server
        self.cache = cache
        self.epoch_batches = int(epoch_batches)
        self.waste_tolerance = float(waste_tolerance)
        self.waste_slack = float(waste_slack)
        self.observe_epochs = max(1, int(observe_epochs))
        self.drift_windows = max(1, int(drift_windows))
        if knobs is None or knobs == "default":
            self.knobs = default_knobs(server)
        elif knobs == "compact":
            self.knobs = compact_knobs(server)
        else:
            self.knobs = tuple(knobs)
        self.controllers = {
            knob.name: Controller(
                name=knob.name,
                arms=knob.arms,
                min_dwell=min_dwell,
                converged_after=converged_after,
                rollback_ratio=rollback_ratio,
                seed=seed + i,
            )
            for i, knob in enumerate(self.knobs)
        }
        self.signals = SignalSource(server.metrics)
        self.fingerprints = FingerprintBuilder(window=fingerprint_window)
        self.state = "observing"
        self.epoch = 0
        self.exploration_batches = 0
        self.last_signals: EpochSignals | None = None
        self.entry_fingerprint: WorkloadFingerprint | None = None
        #: Waste ratio measured in the observing window under the entry
        #: config; arms whose epoch waste blows past it earn a reward
        #: scaled down quartically with the overrun.
        self.baseline_waste: float = 0.0
        self._observe_seen = 0
        self._observe_wasted = 0.0
        self._observe_padded = 0.0
        self._drift_streak = 0
        self._prev_fingerprint: WorkloadFingerprint | None = None
        self._batches_in_epoch = 0
        self.track = Track(server.name, "adaptive")

        r = server.metrics.registry
        self._m_epochs = r.counter("autotune_epochs_total", "decision epochs")
        self._m_decisions = r.counter(
            "autotune_decisions_total",
            "controller decisions by knob and action",
            labels=("knob", "action"),
        )
        self._m_exploration = r.counter(
            "autotune_exploration_batches_total",
            "batches dispatched while exploring",
        )
        self._m_cache = r.counter(
            "autotune_cache_events_total",
            "tuning-cache interactions",
            labels=("event",),
        )
        self._m_drift = r.counter(
            "autotune_fingerprint_drift_total", "workload fingerprint changes"
        )
        self._m_reward = r.gauge(
            "autotune_epoch_reward_gflops", "last epoch useful Gflop/s reward"
        )
        self._m_converged = r.gauge(
            "autotune_converged", "1 once every controller froze"
        )

    # -- identity -------------------------------------------------------

    def device_key(self) -> str:
        """Stable hardware identity for the cache key."""
        spec = self.server.device.spec.name
        group = self.server.group
        width = len(getattr(group, "devices", None) or ()) or 1
        return f"{spec}x{width}"

    def cache_key(self, fingerprint: WorkloadFingerprint) -> str:
        return f"{_CACHE_PREFIX}:{self.device_key()}:{fingerprint.key()}"

    # -- hot-path hook --------------------------------------------------

    def on_admit(self, n: int, op: str) -> None:
        """Admission-path hook: feed the arrival stream's fingerprint.

        Fed at admission (not dispatch) so the fingerprint reflects the
        traffic as sent, not as re-clustered by the batching policy.
        """
        self.fingerprints.observe_request(int(n), op, self.server._sim_now())

    def on_batch(self, sizes: list[int], op: str) -> None:
        """Dispatch-path hook; called after every recorded batch."""
        if self.state == "exploring":
            self.exploration_batches += 1
            self._m_exploration.inc()
        self._batches_in_epoch += 1
        if self._batches_in_epoch >= self.epoch_batches:
            self._batches_in_epoch = 0
            self._epoch_boundary()

    # -- decision epochs ------------------------------------------------

    def _epoch_boundary(self) -> None:
        signals = self.signals.read_epoch()
        fingerprint = self.fingerprints.snapshot()
        if fingerprint is None:
            return
        self.epoch += 1
        self.last_signals = signals
        self._m_epochs.inc()
        self._m_reward.set(signals.useful_gflops)
        tracer = current_tracer()

        if self.state == "observing":
            self._observe_seen += 1
            # The first window after attach carries the queue-fill
            # startup transient; with a multi-window observation it is
            # excluded from the baseline.
            if self.observe_epochs == 1 or self._observe_seen > 1:
                self._observe_wasted += signals.wasted_flops
                self._observe_padded += signals.padded_flops
            if self._observe_seen < self.observe_epochs:
                return
            self.entry_fingerprint = fingerprint
            self.baseline_waste = (
                self._observe_wasted / self._observe_padded
                if self._observe_padded
                else 0.0
            )
            self._observe_seen = 0
            self._observe_wasted = 0.0
            self._observe_padded = 0.0
            if self._try_warm_start(fingerprint, tracer):
                self._enter_converged(signals, persist=False, tracer=tracer)
            else:
                self.state = "exploring"
                self._emit(
                    tracer, "adaptive-explore-start",
                    {"fingerprint": fingerprint.key(), "epoch": self.epoch},
                )
            return

        if self._drifted(fingerprint):
            self._on_drift(fingerprint, tracer)
            return

        if self.state == "converged":
            return

        active = self._active_controller()
        if active is None:
            self._enter_converged(signals, persist=True, tracer=tracer)
            return

        previous = active.current
        decision = active.observe(self._reward(signals))
        self._m_decisions.inc(knob=active.name, action=decision.action)
        if decision.arm != previous:
            self._apply(active.name, decision.arm)
        self._emit(
            tracer, "adaptive-decision",
            {
                "epoch": self.epoch,
                "knob": active.name,
                "action": decision.action,
                "arm": repr(decision.arm),
                "reason": decision.reason,
                "reward_gflops": signals.useful_gflops,
                "waste_ratio": signals.waste_ratio,
                "mean_batch_size": signals.mean_batch_size,
            },
        )
        if all(c.converged for c in self.controllers.values()):
            self._enter_converged(signals, persist=True, tracer=tracer)

    def _active_controller(self) -> Controller | None:
        """Coordinate descent: the first still-open knob owns the epoch.

        One knob explores at a time (clean credit assignment); a knob
        keeps the floor until it converges, so its dwell and hold-streak
        logic sees consecutive epochs.  Knob order is the ``knobs``
        tuple order — highest-impact dials first.
        """
        for knob in self.knobs:
            controller = self.controllers[knob.name]
            if not controller.converged:
                return controller
        return None

    def _apply(self, knob_name: str, arm) -> None:
        knob = next(k for k in self.knobs if k.name == knob_name)
        knob.apply(self.server, arm)

    def waste_budget(self) -> float:
        """Maximum epoch waste ratio that still earns full reward."""
        return self.baseline_waste * self.waste_tolerance + self.waste_slack

    def _reward(self, signals: EpochSignals) -> float:
        """Waste-guarded useful throughput.

        Reward is useful Gflop/s of simulated busy time; an epoch whose
        padded-flops waste ratio exceeds the baseline budget
        (``waste_tolerance`` relative + ``waste_slack`` absolute) has
        its reward scaled by ``(budget / waste)**4``.  Such an arm buys
        its throughput with padding — the one degenerate solution an
        amortization-driven cost model would otherwise always converge
        to — so a heavy overrun crushes the reward toward zero and the
        rollback guard fires on the next observation.  Two shape
        choices matter:

        * *smooth*, not a hard zero: per-epoch waste is noisy, and a
          hard gate lets one marginal incumbent epoch zero the
          incumbent's mean — after which every arm scores zero,
          rollback can never fire (it needs a positive best mean), and
          the controller converges on whatever arm it happens to hold;
        * *quartic*, not quadratic: measured on the uniform mix,
          doubling max_batch buys ~1.7x useful Gflop/s for ~2.1x the
          waste, so the penalty's falloff must beat amortization's
          rise by enough margin that one lucky padded epoch vs one
          unlucky honest epoch cannot flip the comparison.  A 2x
          overrun keeps 6% of its reward.
        """
        budget = self.waste_budget()
        waste = signals.waste_ratio
        if waste <= budget:
            return signals.useful_gflops
        overrun = budget / waste
        return signals.useful_gflops * overrun ** 4

    # -- state transitions ----------------------------------------------

    def _drifted(self, fingerprint: WorkloadFingerprint) -> bool:
        """Debounced structural drift: size histogram or op mix moved.

        The reference depends on the state.  While *exploring*, each
        window is compared against the previous one: a stochastic
        workload slowly wanders away from the exploration-start
        fingerprint, and anchoring there would reset mid-exploration
        over and over, while a genuine phase flip makes even adjacent
        windows dissimilar.  Once *converged*, windows are compared
        against the entry fingerprint, so a gradual shift that
        accumulates past tolerance still re-triggers observation.

        Two guards against false resets: similarity tolerates one
        quantization level of per-bucket wobble (a fraction on a grid
        boundary flips levels between otherwise identical windows), and
        the dissimilarity must persist for ``drift_windows`` consecutive
        epochs.  The arrival-rate band is excluded entirely — in a
        closed loop our own tuning changes the served rate, and chasing
        that feedback would reset exploration forever.
        """
        if self.state == "converged":
            reference = self.entry_fingerprint
        else:
            reference = self._prev_fingerprint
        self._prev_fingerprint = fingerprint
        if reference is None:
            return False
        if fingerprint.similar_to(reference):
            self._drift_streak = 0
            return False
        self._drift_streak += 1
        return self._drift_streak >= self.drift_windows

    def _on_drift(self, fingerprint: WorkloadFingerprint, tracer) -> None:
        self._m_drift.inc()
        self._m_converged.set(0)
        self._drift_streak = 0
        self._observe_seen = 0
        self._observe_wasted = 0.0
        self._observe_padded = 0.0
        for controller in self.controllers.values():
            controller.reset()
        # Re-enter observation: the next window (under the still-applied
        # previous winners) re-measures the waste baseline and re-keys
        # the cache lookup for the new phase.
        self.state = "observing"
        self.entry_fingerprint = None
        self._emit(
            tracer, "adaptive-drift",
            {"epoch": self.epoch, "fingerprint": fingerprint.key()},
        )

    def _similar_entry(self, fingerprint: WorkloadFingerprint) -> dict | None:
        """Fallback cache scan: a stored fingerprint one wobble away.

        Exact key lookup can miss when two runs of the same workload
        quantize a boundary bucket differently; stored entries carry
        their fingerprint components, so scan this device's entries for
        a structurally similar one.
        """
        prefix = f"{_CACHE_PREFIX}:{self.device_key()}:"
        for key in self.cache.keys():
            if not key.startswith(prefix):
                continue
            entry = self.cache.get_entry(key)
            stored = (entry or {}).get("fingerprint")
            if not stored:
                continue
            candidate = WorkloadFingerprint(
                size_histogram=tuple(
                    (int(b), int(q)) for b, q in stored.get("size_histogram", ())
                ),
                op_mix=tuple(
                    (str(op), int(q)) for op, q in stored.get("op_mix", ())
                ),
                rate_band=int(stored.get("rate_band", 0)),
            )
            # Wider tolerance than drift detection: an entry fingerprint
            # snapshotted mid-phase-transition (the sliding window still
            # holds a tail of the previous phase) should still match the
            # settled phase it converged for.
            if fingerprint.similar_to(candidate, tolerance=2):
                return entry
        return None

    def _try_warm_start(self, fingerprint: WorkloadFingerprint, tracer) -> bool:
        if self.cache is None:
            return False
        entry = self.cache.get_entry(self.cache_key(fingerprint))
        if entry is None:
            entry = self._similar_entry(fingerprint)
        if entry is None:
            self._m_cache.inc(event="miss")
            return False
        known = {k.name for k in self.knobs}
        winners = {
            name: arm for name, arm in entry.get("knobs", {}).items() if name in known
        }
        for knob in self.knobs:
            if knob.name not in winners:
                continue
            arm = _match_arm(knob.arms, winners[knob.name])
            if arm is _NO_ARM:
                self._m_cache.inc(event="stale")
                return False
        for knob in self.knobs:
            if knob.name not in winners:
                continue
            arm = _match_arm(knob.arms, winners[knob.name])
            self.controllers[knob.name].force(arm, converged=True)
            knob.apply(self.server, arm)
        for controller in self.controllers.values():
            controller.converged = True
        self._m_cache.inc(event="hit")
        self._emit(
            tracer, "adaptive-warm-start",
            {"epoch": self.epoch, "knobs": {k: repr(v) for k, v in winners.items()}},
        )
        return True

    def _enter_converged(self, signals: EpochSignals, *, persist: bool, tracer) -> None:
        self.state = "converged"
        self._m_converged.set(1)
        winners = {
            knob.name: self.controllers[knob.name].current for knob in self.knobs
        }
        if persist and self.cache is not None and self.entry_fingerprint is not None:
            entry_fp = self.entry_fingerprint
            self.cache.put_entry(
                self.cache_key(entry_fp),
                {
                    "knobs": winners,
                    "fingerprint": {
                        "size_histogram": [list(p) for p in entry_fp.size_histogram],
                        "op_mix": [list(p) for p in entry_fp.op_mix],
                        "rate_band": entry_fp.rate_band,
                    },
                    "reward_gflops": signals.useful_gflops,
                    "epochs": self.epoch,
                    "device": self.device_key(),
                },
            )
            self._m_cache.inc(event="persist")
        self._emit(
            tracer, "adaptive-converged",
            {
                "epoch": self.epoch,
                "persisted": bool(persist and self.cache is not None),
                "knobs": {k: repr(v) for k, v in winners.items()},
                "reward_gflops": signals.useful_gflops,
            },
        )

    # -- reporting ------------------------------------------------------

    def _emit(self, tracer, name: str, args: dict) -> None:
        if tracer:
            tracer.instant(name, self.track, cat="adaptive", args=args)

    def snapshot(self) -> dict:
        """JSON-ready view for bench reports and ``FleetRouter.snapshot``."""
        return {
            "state": self.state,
            "epochs": self.epoch,
            "exploration_batches": self.exploration_batches,
            "baseline_waste": self.baseline_waste,
            "entry_fingerprint": (
                self.entry_fingerprint.key() if self.entry_fingerprint else None
            ),
            "knobs": {
                knob.name: self.controllers[knob.name].snapshot()
                for knob in self.knobs
            },
        }


class _NoArm:
    """Sentinel: a cached winner no longer present in the arm set."""


_NO_ARM = _NoArm()


def _match_arm(arms: tuple, cached):
    for arm in arms:
        if arm == cached:
            return arm
    return _NO_ARM
