"""The operation registry: one descriptor per vbatched routine.

Everything downstream of the drivers — serving, autotune, sharding,
trace reporting — used to hard-code POTRF.  The registry replaces that
with dispatch on an ``op`` tag: an :class:`Operation` bundles the
routine's flop model, input requirements, planner entry point and
fused/separated crossover default, and :func:`get_op` resolves tags.

Two kinds of entries coexist:

* **plannable** operations (``potrf``, ``geqrf``, ``getrf``,
  ``gesvj``) carry a ``planner`` and run through
  :func:`repro.ops.driver.run_op_vbatched`;
* **serving aliases** (``posv``, ``gesv``) describe solve requests the
  BatchServer accepts — they factor via their ``base`` operation and
  only differ in accounting metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import flops as _flops
from ..core.crossover import CrossoverPolicy
from ..errors import ArgumentError
from ..types import Precision

__all__ = ["Operation", "get_op", "list_ops", "register"]


@dataclass(frozen=True)
class Operation:
    """Descriptor for one vbatched routine.

    ``matrix_flops(n, precision)`` is the *useful* flop count of one
    ``n x n`` problem (the paper's Gflop/s numerator and the serving
    fleet's padded-waste denominator).  ``planner(device, batch, max_n,
    options, approach)`` emits the LaunchPlan; ``None`` marks a serving
    alias that factors via ``base``.  ``default_crossover`` feeds the
    fused/separated :class:`~repro.core.crossover.CrossoverPolicy` when
    ``options.approach == "auto"`` (``None`` = the potrf-tuned
    per-precision table).
    """

    name: str
    doc: str
    matrix_flops: Callable[[int, object], float]
    planner: Callable | None = None
    base: str | None = None
    approaches: tuple = ("fused", "separated")
    default_crossover: int | None = None
    spd_input: bool = False
    real_only: bool = False
    needs_rhs: bool = False
    output_keys: tuple = field(default=())

    def choose_approach(self, precision: Precision, max_n: int, options) -> str:
        """Resolve ``options.approach`` ("auto" -> crossover policy)."""
        approach = options.approach
        if approach != "auto":
            if approach not in self.approaches:
                raise ArgumentError(
                    1, f"op {self.name!r} has no {approach!r} approach"
                )
            return approach
        if len(self.approaches) == 1:
            return self.approaches[0]
        cross = options.crossover_size
        if cross is None:
            cross = self.default_crossover
        policy = CrossoverPolicy(precision, cross)
        return policy.choose(max_n)

    def batch_flops(self, sizes, precision) -> float:
        return float(sum(self.matrix_flops(int(n), precision) for n in sizes))


_REGISTRY: dict[str, Operation] = {}


def register(op: Operation) -> Operation:
    if op.name in _REGISTRY:
        raise ArgumentError(1, f"op {op.name!r} already registered")
    _REGISTRY[op.name] = op
    return op


def get_op(name: str) -> Operation:
    """Resolve an op tag; raises ``ArgumentError`` for unknown tags."""
    try:
        return _REGISTRY[str(name)]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ArgumentError(2, f"unknown op {name!r} (known: {known})") from None


def list_ops(*, plannable: bool | None = None) -> tuple:
    """Registered op names, optionally filtered to plannable ones."""
    names = sorted(_REGISTRY)
    if plannable is None:
        return tuple(names)
    return tuple(n for n in names if (_REGISTRY[n].planner is not None) == plannable)


# ---------------------------------------------------------------------------
# Builtin registrations.  Planners are imported lazily inside adapters so
# repro.ops stays importable before the extensions package.


def _plan_potrf_adapter(device, batch, max_n, options, approach):
    from ..core.driver import PotrfOptions, plan_potrf

    return plan_potrf(
        device,
        batch,
        max_n,
        PotrfOptions(
            approach=approach,
            panel_nb=options.panel_nb,
            sorting=options.sorting,
            crossover_size=options.crossover_size,
            on_error=options.on_error,
        ),
    )


def _plan_geqrf_adapter(device, batch, max_n, options, approach):
    from ..extensions.geqrf import plan_geqrf

    return plan_geqrf(
        device, batch, max_n,
        panel_nb=options.panel_nb, approach=approach, sorting=options.sorting,
    )


def _plan_getrf_adapter(device, batch, max_n, options, approach):
    from ..extensions.getrf import plan_getrf

    return plan_getrf(
        device, batch, max_n,
        panel_nb=options.panel_nb, approach=approach, sorting=options.sorting,
    )


def _plan_gesvj_adapter(device, batch, max_n, options, approach):
    from ..extensions.gesvj import plan_gesvj

    return plan_gesvj(
        device, batch, max_n,
        sweeps=options.sweeps, tol=options.tol,
        sorting=options.sorting, panel_nb=options.panel_nb,
    )


register(
    Operation(
        name="potrf",
        doc="Cholesky factorization of SPD matrices (paper §IV)",
        matrix_flops=_flops.potrf_flops,
        planner=_plan_potrf_adapter,
        spd_input=True,
        # None -> the potrf-tuned DEFAULT_CROSSOVER table.
        default_crossover=None,
    )
)

register(
    Operation(
        name="geqrf",
        doc="Householder QR factorization (paper §V)",
        matrix_flops=lambda n, p=None: _flops.geqrf_flops(n, n, p),
        planner=_plan_geqrf_adapter,
        # The whole-matrix geqr2 panel serializes ~3n column steps, so
        # fusion pays off only for small matrices; tuned on the
        # simulated K40c (benchmarks sweep, PR 8).
        default_crossover=96,
        output_keys=("taus",),
    )
)

register(
    Operation(
        name="getrf",
        doc="LU factorization with partial pivoting (paper §V)",
        matrix_flops=lambda n, p=None: _flops.getrf_flops(n, n, p),
        planner=_plan_getrf_adapter,
        default_crossover=96,
        output_keys=("ipivs",),
    )
)

register(
    Operation(
        name="gesvj",
        doc="One-sided Jacobi SVD (hierarchical-matrix compression)",
        matrix_flops=_flops.gesvj_flops,
        planner=_plan_gesvj_adapter,
        approaches=("jacobi",),
        real_only=True,
        output_keys=("singular_values", "vt", "sweeps_done"),
    )
)

register(
    Operation(
        name="posv",
        doc="SPD solve served as factor + triangular solves",
        # Useful flops: the factorization cost (solve flops excluded to
        # keep the serving accounting aligned with pre-registry fleets).
        matrix_flops=_flops.potrf_flops,
        base="potrf",
        spd_input=True,
        needs_rhs=True,
    )
)

register(
    Operation(
        name="gesv",
        doc="General solve served as pivoted LU + swaps + solves",
        matrix_flops=lambda n, p=None: _flops.getrf_flops(n, n, p),
        base="getrf",
        needs_rhs=True,
    )
)
