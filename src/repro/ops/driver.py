"""Generic vbatched-operation driver: plan, execute, shard, place.

:func:`run_op_vbatched` is the registry-dispatched twin of
:func:`repro.core.driver.run_potrf_vbatched`: resolve the op tag, pick
an approach (per-op crossover), plan (or re-serve from a
:class:`~repro.core.plan.PlanCache` — the op tag is a structural key
component), execute, and collect a uniform :class:`OpResult`.  POTRF
itself delegates to the original driver so its tuned defaults, hetero
placement and work-stealing behaviour stay byte-identical.

Scaling hooks mirror the POTRF driver:

* a :class:`~repro.device.topology.DeviceGroup` shards the batch with
  the *op's own* flop model weighing the partition and runs per-shard
  plans concurrently (:func:`run_op_sharded`);
* a :class:`~repro.device.hetero.HeteroGroup` places size strata on its
  GPU members by earliest predicted finish
  (:func:`run_op_hetero`) — the members' potrf-calibrated cost models
  are rescaled by the op/potrf flop ratio, and the CPU member (a
  potrf-only core model) sits placement out.

Per-shard planner outputs (``taus``, ``ipivs``, singular values ...)
are scattered back into batch-global containers, so results are
placement-independent at the caller exactly like the factors
themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .. import flops as _flops
from ..core.batch import VBatch
from ..core.driver import LaunchStats, stats_from_execution
from ..core.optimizer import optimize_plan
from ..core.plan import PlanCache
from ..errors import ArgumentError, BatchNumericalError
from ..kernels.aux import compute_max_size
from ..observability.trace import Track, current_tracer
from .options import OpOptions
from .registry import Operation, get_op

__all__ = ["OpResult", "plan_op", "run_op_vbatched"]


@dataclass
class OpResult:
    """Outcome of one generic vbatched run.

    ``outputs`` maps the op's output keys (``taus``, ``ipivs``,
    ``singular_values``, ``vt``, ``sweeps_done``) to batch-global
    containers; ``meta`` is the executed plan's metadata (single-device
    runs) or a small summary (sharded/hetero runs).  With a
    ``plan_cache`` the single-device output arrays belong to the cached
    plan — a later re-serve of the same plan refreshes them in place.
    """

    op: str
    approach: str
    elapsed: float
    total_flops: float
    infos: np.ndarray
    launch_stats: LaunchStats = field(default_factory=LaunchStats)
    max_n: int = 0
    outputs: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    placement: list | None = None
    member_stats: list | None = None

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)

    @property
    def failed_count(self) -> int:
        return int(np.count_nonzero(self.infos))


def plan_op(
    device,
    batch: VBatch,
    max_n: int,
    op_desc: Operation,
    options: OpOptions,
    approach: str,
    plan_cache: PlanCache | None = None,
):
    """Produce (or fetch from cache) the plan for one op on one batch."""

    def build():
        plan = op_desc.planner(device, batch, max_n, options, approach)
        return optimize_plan(plan, options.optimize)

    if plan_cache is None:
        return build(), None
    key = plan_cache.key_for(
        device, batch, max_n, approach, options,
        optimize=options.optimize, op=op_desc.name,
    )
    before = plan_cache.planner_calls
    plan = plan_cache.get_or_build(key, batch, build)
    return plan, plan_cache.planner_calls == before


def _check_precision(op_desc: Operation, batch: VBatch) -> None:
    if op_desc.real_only and batch.precision.value not in ("s", "d"):
        raise ArgumentError(
            2,
            f"op {op_desc.name!r} supports real precisions only, "
            f"got {batch.precision.value}",
        )


def _raise_failures(op_desc: Operation, batch: VBatch, infos: np.ndarray) -> None:
    failing = {int(i): int(v) for i, v in enumerate(infos) if v != 0}
    if failing:
        raise BatchNumericalError(
            failing, f"{op_desc.name}_vbatched[{batch.precision.value}]"
        )


def _scatter_outputs(acc: dict, shard_outputs: dict, idx: np.ndarray, k: int, max_n: int):
    """Fold one shard plan's output containers into batch-global ones.

    2-D arrays scatter rows (left-aligned — shard planners size columns
    by the shard's own ``max_n``), 1-D arrays scatter elements, dicts
    (per-matrix ragged results like ``vt``) remap local keys to source
    indices.
    """
    for name, val in shard_outputs.items():
        if isinstance(val, dict):
            dest = acc.setdefault(name, {})
            for local, item in val.items():
                dest[int(idx[int(local)])] = item
        elif isinstance(val, np.ndarray) and val.ndim == 2:
            dest = acc.get(name)
            if dest is None:
                dest = acc[name] = np.zeros((k, max_n), dtype=val.dtype)
            dest[idx, : val.shape[1]] = val
        elif isinstance(val, np.ndarray) and val.ndim == 1:
            dest = acc.get(name)
            if dest is None:
                dest = acc[name] = np.zeros(k, dtype=val.dtype)
            dest[idx] = val


def _wrap_potrf(result) -> OpResult:
    return OpResult(
        op="potrf",
        approach=result.approach,
        elapsed=result.elapsed,
        total_flops=result.total_flops,
        infos=result.infos,
        launch_stats=result.launch_stats,
        max_n=result.max_n,
        meta={"op": "potrf"},
        placement=result.placement,
        member_stats=result.member_stats,
    )


def run_op_vbatched(
    device,
    batch: VBatch,
    max_n: int | None,
    op: str,
    options: OpOptions | None = None,
    *,
    devices=None,
    plan_cache: PlanCache | None = None,
    optimize: str | None = None,
) -> OpResult:
    """Execute one vbatched operation and collect the result record.

    ``op`` is a registered plannable tag (see
    :mod:`repro.ops.registry`); serving aliases (``posv``/``gesv``)
    factor via their base op at the serving layer, not here.  ``max_n``
    defaults to a device-side reduction (the LAPACK-like interface
    path).  ``devices``/``plan_cache``/``optimize`` match the POTRF
    driver.
    """
    op_desc = get_op(op)
    if op_desc.planner is None:
        raise ArgumentError(
            1,
            f"op {op_desc.name!r} is a serving alias (factor via "
            f"{op_desc.base!r}); run_op_vbatched needs a plannable op",
        )
    if options is None:
        options = OpOptions()
    if optimize is not None and optimize != options.optimize:
        options = replace(options, optimize=optimize)
    if max_n is None:
        max_n = compute_max_size(device, batch)

    if op_desc.name == "potrf":
        # The original driver keeps its tuned defaults (ETM, sorting,
        # NB=128 panels, CPU members, work-stealing); only the knobs
        # OpOptions actually carries are forwarded.
        from ..core.driver import PotrfOptions, run_potrf_vbatched

        potrf_options = PotrfOptions(
            approach=options.approach,
            crossover_size=options.crossover_size,
            on_error=options.on_error,
            optimize=options.optimize,
        )
        return _wrap_potrf(
            run_potrf_vbatched(
                device, batch, max_n, potrf_options,
                devices=devices, plan_cache=plan_cache,
            )
        )

    from ..device.executor import PlanExecutor

    _check_precision(op_desc, batch)
    if max_n < batch.max_size_host:
        raise ArgumentError(3, f"max_n={max_n} smaller than largest matrix in batch")
    approach = op_desc.choose_approach(batch.precision, max_n, options)

    if devices is not None:
        from ..device.hetero import HeteroGroup
        from ..device.topology import DeviceGroup

        if isinstance(devices, HeteroGroup):
            result = run_op_hetero(devices, batch, max_n, op_desc, options, plan_cache)
            if options.on_error == "raise":
                _raise_failures(op_desc, batch, result.infos)
            return result
        group = devices if isinstance(devices, DeviceGroup) else DeviceGroup(devices)
        if len(group) > 1:
            result = run_op_sharded(
                group, batch, max_n, op_desc, options, approach, plan_cache
            )
            if options.on_error == "raise":
                _raise_failures(op_desc, batch, result.infos)
            return result
        device = group.devices[0]

    plan, cache_hit = plan_op(device, batch, max_n, op_desc, options, approach, plan_cache)
    try:
        t0 = device.synchronize()
        exec_stats = PlanExecutor(device).execute(plan)
        elapsed = device.synchronize() - t0
        launch_stats = stats_from_execution(plan, exec_stats, cache_hit)
        outputs = dict(plan.meta.get("outputs", {}))
        meta = dict(plan.meta)
    finally:
        if plan_cache is None:
            plan.close()

    if device.execute_numerics:
        infos = batch.download_infos()
    else:
        infos = np.zeros(batch.batch_count, dtype=np.int64)
    result = OpResult(
        op=op_desc.name,
        approach=approach,
        elapsed=elapsed,
        total_flops=op_desc.batch_flops(batch.sizes_host, batch.precision),
        infos=infos,
        launch_stats=launch_stats,
        max_n=max_n,
        outputs=outputs,
        meta=meta,
    )
    if options.on_error == "raise":
        _raise_failures(op_desc, batch, infos)
    return result


def run_op_sharded(
    group,
    batch: VBatch,
    max_n: int,
    op_desc: Operation,
    options: OpOptions,
    approach: str,
    plan_cache: PlanCache | None = None,
) -> OpResult:
    """Run one op across a device group and merge the results.

    Mirrors :func:`repro.device.topology.run_potrf_sharded` — the
    source batch stays authoritative, ``elapsed`` is the slowest shard,
    plan/batch ownership follows the same cache-aware triage — but the
    partition is weighed by the op's own flop model and planner outputs
    are scattered back into batch-global containers.
    """
    from ..device.executor import execute_concurrently

    tracer = current_tracer()
    sizes = batch.sizes_host
    k = batch.batch_count
    shards = []
    with tracer.span(
        "shard-plan", Track("topology", "sharder"), cat="shard",
        args={"devices": len(group), "batch": int(k), "op": op_desc.name},
    ) as shard_args:
        parts = group.partition_indices(sizes, batch.precision, routine=op_desc.name)
        for dev, idx in zip(group.devices, parts):
            if idx.size == 0:
                continue
            if batch.device.execute_numerics and dev.execute_numerics:
                shard_batch = VBatch.from_host(
                    dev, [np.ascontiguousarray(batch.matrix_view(int(j))) for j in idx]
                )
            else:
                shard_batch = VBatch.allocate(
                    dev, sizes[idx], batch.precision,
                    ldas=np.maximum(batch.ldas_host[idx], 1),
                )
            shard_max = int(sizes[idx].max())
            plan, cache_hit = plan_op(
                dev, shard_batch, shard_max, op_desc, options, approach, plan_cache
            )
            shards.append((dev, idx, shard_batch, plan, cache_hit))
        if tracer:
            shard_args["shard_sizes"] = [int(idx.size) for _, idx, _, _, _ in shards]

    for dev, _, _, _, _ in shards:
        dev.synchronize()
    starts = {id(dev): dev.host_time for dev, _, _, _, _ in shards}
    try:
        exec_stats = execute_concurrently([plan for _, _, _, plan, _ in shards])
    except BaseException as exc:
        partial = getattr(exc, "partial", None)
        if partial:
            salvaged = LaunchStats(devices_used=0)
            for (dev, _, _, plan, cache_hit), es in zip(shards, partial):
                if es is None:
                    continue
                salvaged.merge(stats_from_execution(plan, es, cache_hit))
                salvaged.devices_used += 1
            exc.partial_launch_stats = salvaged
        for _, _, shard_batch, plan, _ in shards:
            if plan_cache is None:
                plan.close()
                shard_batch.free()
            elif plan.batch_ref is not shard_batch:
                shard_batch.free()
            else:
                plan.owns_batch = True
        raise

    elapsed = 0.0
    infos = np.zeros(k, dtype=np.int64)
    outputs: dict = {}
    merged = LaunchStats(devices_used=len(shards))
    with tracer.span("shard-gather", Track("topology", "sharder"), cat="shard"):
        for (dev, idx, shard_batch, plan, cache_hit), es in zip(shards, exec_stats):
            elapsed = max(elapsed, dev.synchronize() - starts[id(dev)])
            merged.merge(stats_from_execution(plan, es, cache_hit))
            _scatter_outputs(outputs, plan.meta.get("outputs", {}), idx, k, max_n)
            if dev.execute_numerics:
                infos[idx] = shard_batch.download_infos()
                for local, j in enumerate(idx):
                    batch.matrix_view(int(j))[...] = shard_batch.matrix_view(local)
            if plan_cache is None:
                plan.close()
                shard_batch.free()
            elif plan.batch_ref is not shard_batch:
                shard_batch.free()
            else:
                plan.owns_batch = True

    return OpResult(
        op=op_desc.name,
        approach=approach,
        elapsed=elapsed,
        total_flops=op_desc.batch_flops(sizes, batch.precision),
        infos=infos,
        launch_stats=merged,
        max_n=max_n,
        outputs=outputs,
        meta={"op": op_desc.name, "planner": approach, "shards": len(shards)},
    )


def _member_cost(member, op_desc: Operation, chunk_sizes, precision, approach: str) -> float:
    """A GPU member's predicted seconds for one chunk of this op.

    The member cost models are potrf-calibrated; the op estimate scales
    the potrf prediction by the op/potrf flop ratio of the chunk (both
    are panel-sweep factorizations on the same size vector, so the
    ratio transfers the fit to first order).
    """
    cost_approach = approach if approach in ("fused", "separated") else "separated"
    base = member.estimate_cost(chunk_sizes, precision, cost_approach)
    potrf = _flops.batch_flops(chunk_sizes, "potrf", precision)
    ours = op_desc.batch_flops(chunk_sizes, precision)
    return base * (ours / potrf if potrf > 0.0 else 1.0)


def run_op_hetero(
    group,
    batch: VBatch,
    max_n: int,
    op_desc: Operation,
    options: OpOptions,
    plan_cache: PlanCache | None = None,
) -> OpResult:
    """Run one op across a heterogeneous group's GPU members.

    Size strata place by greedy earliest predicted finish, exactly like
    the POTRF hetero path, with two deliberate restrictions: CPU
    members sit out (their core model only knows POTRF) and the
    placement is static — no work-stealing loop, since the flop-ratio
    cost rescaling is too coarse to arbitrate steals profitably.
    """
    from ..device.executor import MemberStats, PlanExecutor
    from ..device.member import ChunkRun

    gpus = group.gpu_members
    if not gpus:
        raise ArgumentError(
            6, f"op {op_desc.name!r} needs at least one GPU member in the group"
        )
    tracer = current_tracer()
    sizes = batch.sizes_host
    precision = batch.precision
    k = batch.batch_count
    base = {m.name: m.synchronize() for m in gpus}
    members = {m.name: m for m in gpus}

    with tracer.span(
        "hetero-place",
        Track("hetero", "placer"),
        cat="hetero",
        args={"members": list(members), "batch": int(k),
              "placement": group.placement, "op": op_desc.name},
    ) as place_args:
        queues: dict[str, list] = {m.name: [] for m in gpus}
        projected = {m.name: 0.0 for m in gpus}
        placement = []
        for ordinal, idx in enumerate(group.chunk_indices(sizes, precision)):
            chunk_sizes = sizes[idx]
            chunk_max = int(chunk_sizes.max())
            approach = op_desc.choose_approach(precision, chunk_max, options)
            bids = {
                m.name: _member_cost(m, op_desc, chunk_sizes, precision, approach)
                for m in gpus
            }
            winner = min(gpus, key=lambda m: (projected[m.name] + bids[m.name], m.name))
            projected[winner.name] += bids[winner.name]
            queues[winner.name].append((ordinal, idx, approach))
            placement.append(
                {
                    "chunk": ordinal,
                    "member": winner.name,
                    "kind": "gpu",
                    "approach": approach,
                    "count": int(idx.size),
                    "max_n": chunk_max,
                    "est_s": float(bids[winner.name]),
                    "alternatives_s": {n: float(v) for n, v in bids.items()},
                }
            )
        if tracer:
            place_args["chunks"] = len(placement)
            place_args["decisions"] = [
                {key: d[key] for key in ("chunk", "member", "approach", "count", "max_n", "est_s")}
                for d in placement
            ]

    merged = LaunchStats(devices_used=0)
    stats = {m.name: MemberStats(name=m.name, kind="gpu") for m in gpus}
    infos = np.zeros(k, dtype=np.int64)
    outputs: dict = {}
    try:
        for name, queue in queues.items():
            m = members[name]
            dev = m.device
            for ordinal, idx, approach in queue:
                chunk_sizes = sizes[idx]
                chunk_max = int(chunk_sizes.max())
                with tracer.span(
                    "hetero-chunk",
                    Track("hetero", name),
                    cat="hetero",
                    args={"chunk": ordinal, "count": int(idx.size),
                          "max_n": chunk_max, "approach": approach,
                          "op": op_desc.name, "stolen": False},
                ):
                    if batch.device.execute_numerics and dev.execute_numerics:
                        chunk_batch = VBatch.from_host(
                            dev,
                            [np.ascontiguousarray(batch.matrix_view(int(j))) for j in idx],
                        )
                    else:
                        chunk_batch = VBatch.allocate(
                            dev, chunk_sizes, precision,
                            ldas=np.maximum(batch.ldas_host[idx], 1),
                        )
                    plan, cache_hit = plan_op(
                        dev, chunk_batch, chunk_max, op_desc, options, approach, plan_cache
                    )
                    start = dev.synchronize()
                    try:
                        exec_stats = PlanExecutor(dev).execute(plan)
                        chunk_elapsed = dev.synchronize() - start
                        chunk_stats = stats_from_execution(plan, exec_stats, cache_hit)
                        _scatter_outputs(
                            outputs, plan.meta.get("outputs", {}), idx, k, max_n
                        )
                        if dev.execute_numerics:
                            infos[idx] = chunk_batch.download_infos()
                            for local, j in enumerate(idx):
                                batch.matrix_view(int(j))[...] = chunk_batch.matrix_view(local)
                    finally:
                        if plan_cache is None:
                            plan.close()
                            chunk_batch.free()
                        elif plan.batch_ref is not chunk_batch:
                            chunk_batch.free()
                        else:
                            plan.owns_batch = True
                stats[name].record(
                    ChunkRun(
                        member=name,
                        kind="gpu",
                        approach=approach,
                        count=int(idx.size),
                        max_n=chunk_max,
                        flops=op_desc.batch_flops(chunk_sizes, precision),
                        start=start,
                        elapsed=chunk_elapsed,
                        launch_stats=chunk_stats,
                    )
                )
                merged.merge(chunk_stats)
                merged.chunks += 1
    except BaseException as exc:
        merged.devices_used = sum(1 for s in stats.values() if s.chunks)
        exc.partial_launch_stats = merged
        raise

    elapsed = 0.0
    for name, m in members.items():
        busy = m.synchronize() - base[name]
        stats[name].busy_s = busy
        if stats[name].chunks:
            elapsed = max(elapsed, busy)
    merged.devices_used = sum(1 for s in stats.values() if s.chunks)
    approaches = sorted({d["approach"] for d in placement})
    return OpResult(
        op=op_desc.name,
        approach="hetero[" + "+".join(approaches) + "]",
        elapsed=elapsed,
        total_flops=op_desc.batch_flops(sizes, precision),
        infos=infos,
        launch_stats=merged,
        max_n=max_n,
        outputs=outputs,
        meta={"op": op_desc.name, "planner": "hetero", "chunks": len(placement)},
        placement=placement,
        member_stats=[stats[m.name] for m in gpus],
    )
