"""Operation registry and the generic vbatched-operation driver.

The mixed-operation subsystem (PR 8): drivers, serving, autotune and
trace reporting dispatch on an ``op`` tag instead of hard-coding POTRF.
See :mod:`repro.ops.registry` for the descriptors and
:mod:`repro.ops.driver` for the plan/execute/shard/place machinery.
"""

from .driver import OpResult, plan_op, run_op_vbatched
from .options import OpOptions
from .registry import Operation, get_op, list_ops, register

__all__ = [
    "OpOptions",
    "OpResult",
    "Operation",
    "get_op",
    "list_ops",
    "plan_op",
    "register",
    "run_op_vbatched",
]
