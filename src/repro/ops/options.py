"""Options shared by the extension-operation drivers (QR/LU/SVD).

A deliberately small, frozen (hashable — it rides in plan-cache keys)
subset of :class:`~repro.core.driver.PotrfOptions`: the knobs every
panel-sweep planner has, plus the Jacobi-SVD sweep controls.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.optimizer import resolve_passes
from ..errors import ArgumentError

__all__ = ["OpOptions"]


@dataclass(frozen=True)
class OpOptions:
    """Knobs of the generic vbatched operation driver.

    ``approach`` is ``"auto"`` (per-op crossover policy), ``"fused"``
    (one whole-matrix launch per size window) or ``"separated"`` (the
    blocked panel sweep); the SVD ignores it (single Jacobi path).
    ``sorting`` enables implicit-sorting windows (fused) / sorted task
    order (separated) — off by default so the default path is
    launch-for-launch identical to the historical eager drivers.
    ``sweeps``/``tol`` drive the Jacobi SVD.  ``on_error`` mirrors the
    POTRF option: ``"raise"`` turns failed infos into
    :class:`~repro.errors.BatchNumericalError`.
    """

    approach: str = "auto"
    panel_nb: int = 64
    sorting: bool = False
    crossover_size: int | None = None
    sweeps: int | None = None
    tol: float = 1.0e-10
    on_error: str = "info"
    #: Plan-optimizer level: "none", "all", a pass name, or a
    #: "+"-joined combination (see :mod:`repro.core.optimizer`).
    optimize: str = "none"

    def __post_init__(self):
        try:
            resolve_passes(self.optimize)
        except ValueError as exc:
            raise ArgumentError(9, str(exc)) from None
        if self.approach not in ("auto", "fused", "separated"):
            raise ArgumentError(1, f"bad approach {self.approach!r}")
        if self.panel_nb <= 0:
            raise ArgumentError(4, f"panel_nb must be positive, got {self.panel_nb}")
        if self.sweeps is not None and self.sweeps <= 0:
            raise ArgumentError(5, f"sweeps must be positive, got {self.sweeps}")
        if self.tol <= 0.0:
            raise ArgumentError(7, f"tol must be positive, got {self.tol}")
        if self.on_error not in ("info", "raise"):
            raise ArgumentError(8, f"bad on_error {self.on_error!r}")
