"""Size-aware request aggregation: windowing policies and the batcher.

The paper's implicit sorting (§III-D) keeps each *launch* over
nearly-equal matrix sizes so thread-block durations cluster and the SM
schedule stays dense.  A serving front door faces the same problem one
level up: which of the queued requests should share the next vbatched
launch?  The policies here answer that question; the :class:`Batcher`
enforces the invariants around them:

* a batch never exceeds ``max_batch`` requests;
* a flush is due once the most urgent request has waited ``max_wait``
  (or its deadline minus ``deadline_margin`` has arrived), and every
  emitted batch contains that most urgent request — no starvation;
* a batch never mixes dtypes (one :class:`~repro.core.batch.VBatch`
  holds one precision) nor factor operations (one launch runs one
  kernel DAG; ``posv`` rides with ``potrf`` and ``gesv`` with
  ``getrf`` because they share the factor launch).

Policies choose *which* compatible requests ride along:

* ``"fifo"`` — arrival order, sizes ignored (the baseline the paper's
  unsorted launches correspond to);
* ``"size-bucket"`` — quantize ``n`` into fixed-width buckets, serve
  the urgent request's bucket (the serving analogue of the fixed-size
  batched + padding baseline, without the padding); the bucket key is
  op-aware because compatibility is;
* ``"greedy-window"`` — grow a window around the urgent request's size,
  always absorbing the closest remaining size, while the window's
  max/min ratio stays under ``max_ratio`` (implicit sorting as an
  admission rule);
* ``"cross-op"`` — the greedy window tuned for mixed-operation queues:
  each flush still serves one operation (the urgent request's), but
  when that operation's backlog cannot fill the batch the size window
  relaxes to ``relaxed_ratio`` so minority-op flushes leave full, and
  majority-op flushes keep the tight homogeneous window.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ArgumentError, ServingError
from ..observability.trace import Track, current_tracer
from .request import Request

__all__ = [
    "Batcher",
    "BatchingPolicy",
    "CrossOpGreedyPolicy",
    "FifoPolicy",
    "GreedyWindowPolicy",
    "SizeBucketPolicy",
    "POLICIES",
    "make_policy",
]


class BatchingPolicy:
    """Strategy interface: pick the requests that share the next launch.

    ``select`` receives the pending queue (arrival order), the index of
    the most urgent request, and the batch budget; it returns indices
    into ``pending``.  The :class:`Batcher` validates the contract:
    non-empty, unique, within budget, urgent included, one dtype, one
    factor operation.
    """

    name = "abstract"

    def select(self, pending: Sequence[Request], urgent: int, max_batch: int) -> list[int]:
        raise NotImplementedError

    def compatible(self, pending: Sequence[Request], urgent: int) -> list[int]:
        """Indices sharing the urgent request's dtype *and* factor op
        (arrival order) — the two things one vbatched launch cannot
        mix.  Every policy's candidate set starts here, which is what
        makes size buckets and greedy windows op-aware for free."""
        dtype = pending[urgent].dtype
        op_key = pending[urgent].factor_op
        return [
            i
            for i, r in enumerate(pending)
            if r.dtype == dtype and r.factor_op == op_key
        ]


class FifoPolicy(BatchingPolicy):
    """Arrival order, size-blind — the baseline every paper figure
    measures implicit sorting against."""

    name = "fifo"

    def select(self, pending: Sequence[Request], urgent: int, max_batch: int) -> list[int]:
        picks = self.compatible(pending, urgent)[:max_batch]
        if urgent not in picks:  # urgent is oldest compatible, but be safe
            picks = [urgent] + picks[: max_batch - 1]
        return picks


class SizeBucketPolicy(BatchingPolicy):
    """Quantize sizes into ``bucket_width``-wide bands; a batch serves
    one band.  Small widths give near-homogeneous launches but smaller
    batches; ``bucket_width=1`` is exact-size grouping."""

    name = "size-bucket"

    def __init__(self, bucket_width: int = 32):
        if bucket_width <= 0:
            raise ArgumentError(1, f"bucket_width must be positive, got {bucket_width}")
        self.bucket_width = int(bucket_width)

    def bucket(self, n: int) -> int:
        return (max(int(n), 1) - 1) // self.bucket_width

    def select(self, pending: Sequence[Request], urgent: int, max_batch: int) -> list[int]:
        want = self.bucket(pending[urgent].n)
        same = [
            i for i in self.compatible(pending, urgent) if self.bucket(pending[i].n) == want
        ]
        picks = same[:max_batch]
        if urgent not in picks:
            picks = [urgent] + picks[: max_batch - 1]
        return picks


class GreedyWindowPolicy(BatchingPolicy):
    """Grow a size window outward from the urgent request.

    Candidates are taken closest-size-first (ties: smaller ``n``, then
    arrival) while the window's ``max(n)/max(1, min(n))`` stays at most
    ``max_ratio``.  ``max_ratio=1.0`` serves exact-size groups only;
    larger ratios trade launch homogeneity for batch fill.
    """

    name = "greedy-window"

    def __init__(self, max_ratio: float = 1.5):
        if max_ratio < 1.0:
            raise ArgumentError(1, f"max_ratio must be >= 1.0, got {max_ratio}")
        self.max_ratio = float(max_ratio)

    def select(self, pending: Sequence[Request], urgent: int, max_batch: int) -> list[int]:
        return self._window(pending, urgent, max_batch, self.max_ratio)

    def _window(
        self, pending: Sequence[Request], urgent: int, max_batch: int, ratio: float
    ) -> list[int]:
        anchor = pending[urgent].n
        picks = [urgent]
        lo = hi = max(anchor, 1)
        candidates = sorted(
            (i for i in self.compatible(pending, urgent) if i != urgent),
            key=lambda i: (abs(pending[i].n - anchor), pending[i].n, pending[i].arrival, i),
        )
        for i in candidates:
            if len(picks) >= max_batch:
                break
            n = max(pending[i].n, 1)
            if max(hi, n) / min(lo, n) > ratio:
                continue
            picks.append(i)
            lo, hi = min(lo, n), max(hi, n)
        return picks


class CrossOpGreedyPolicy(GreedyWindowPolicy):
    """The greedy window specialized for mixed-operation queues.

    A dispatched batch still runs one factor op (a vbatched launch is
    one kernel DAG), so the cross-op leverage is in *when the window
    widens*: with the urgent op's backlog at or above ``max_batch`` the
    tight ``max_ratio`` window applies unchanged (plenty of same-op
    fill to choose from), but a minority op that could only scrape
    together a sliver of a batch relaxes to ``relaxed_ratio`` — its
    rare flushes leave full instead of trickling out padded singletons
    between the majority op's batches.  The per-op flush cadence itself
    falls out of the urgency rule: whichever op's oldest request
    expires first gets the next window.
    """

    name = "cross-op"

    def __init__(self, max_ratio: float = 1.5, relaxed_ratio: float = 4.0):
        super().__init__(max_ratio)
        if relaxed_ratio < max_ratio:
            raise ArgumentError(
                1, f"relaxed_ratio must be >= max_ratio, got {relaxed_ratio} < {max_ratio}"
            )
        self.relaxed_ratio = float(relaxed_ratio)

    def select(self, pending: Sequence[Request], urgent: int, max_batch: int) -> list[int]:
        same_op = self.compatible(pending, urgent)
        ratio = self.max_ratio if len(same_op) >= max_batch else self.relaxed_ratio
        return self._window(pending, urgent, max_batch, ratio)


POLICIES = {
    "fifo": FifoPolicy,
    "size-bucket": SizeBucketPolicy,
    "greedy-window": GreedyWindowPolicy,
    "cross-op": CrossOpGreedyPolicy,
}


def make_policy(policy: str | BatchingPolicy, **kwargs) -> BatchingPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, BatchingPolicy):
        return policy
    try:
        cls = POLICIES[policy]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ArgumentError(1, f"unknown batching policy {policy!r}; known: {known}") from None
    return cls(**kwargs)


class Batcher:
    """The windowing state machine between the queue and the dispatcher.

    Holds pending requests in arrival order and decides *when* a batch
    must leave (max-batch fill, max-wait age, deadline pressure) and
    *which* requests it contains (delegated to the policy, validated
    here).  Thread safety is the server's job; the batcher itself is a
    plain data structure so the policies stay trivially testable.
    """

    def __init__(
        self,
        policy: str | BatchingPolicy = "greedy-window",
        max_batch: int = 32,
        max_wait: float = 2e-3,
        deadline_margin: float = 0.0,
    ):
        if max_batch <= 0:
            raise ArgumentError(2, f"max_batch must be positive, got {max_batch}")
        if max_wait < 0:
            raise ArgumentError(3, f"max_wait cannot be negative, got {max_wait}")
        if deadline_margin < 0:
            raise ArgumentError(4, f"deadline_margin cannot be negative, got {deadline_margin}")
        self.policy = make_policy(policy)
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.deadline_margin = float(deadline_margin)
        self._pending: list[Request] = []
        # Trace row for window-close events; the owning server points
        # this at its queue track so events group under the server.
        self.trace_track = Track("serving", "queue")

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> tuple[Request, ...]:
        """Read-only view of the queue (tests and metrics)."""
        return tuple(self._pending)

    def add(self, request: Request) -> None:
        self._pending.append(request)

    def remove(self, req_id: int) -> Request | None:
        """Pull one pending request out of the queue by id (cancellation
        path); returns it, or ``None`` if it is no longer pending —
        already batched, served, or never queued here."""
        for i, req in enumerate(self._pending):
            if req.req_id == req_id:
                return self._pending.pop(i)
        return None

    def urgent_index(self) -> int | None:
        """The request the next batch must contain: soonest effective
        deadline, ties broken by arrival then id (FIFO among equals)."""
        if not self._pending:
            return None
        return min(
            range(len(self._pending)),
            key=lambda i: (
                self._pending[i].effective_deadline(self.max_wait),
                self._pending[i].arrival,
                self._pending[i].req_id,
            ),
        )

    def flush_due(self, now: float) -> bool:
        """Whether a batch must leave at time ``now``."""
        if not self._pending:
            return False
        if len(self._pending) >= self.max_batch:
            return True
        urgent = self._pending[self.urgent_index()]
        return now >= urgent.effective_deadline(self.max_wait) - self.deadline_margin

    def next_wakeup(self, now: float) -> float | None:
        """Earliest future instant a flush could become due (worker
        wait timeout); ``None`` when the queue is empty."""
        if not self._pending:
            return None
        if len(self._pending) >= self.max_batch:
            return now
        soonest = min(
            r.effective_deadline(self.max_wait) - self.deadline_margin for r in self._pending
        )
        return max(soonest, now)

    def next_batch(self, now: float, force: bool = False) -> list[Request] | None:
        """Pop and return the next batch, or ``None`` if nothing is due.

        ``force`` flushes regardless of the window triggers (drain and
        closed-loop pumping).  The returned batch satisfies the batcher
        invariants; a policy that violates them raises
        :class:`~repro.errors.ServingError` rather than mis-serving.
        """
        if not self._pending:
            return None
        if not force and not self.flush_due(now):
            return None
        urgent = self.urgent_index()
        picks = self.policy.select(self._pending, urgent, self.max_batch)
        self._validate(picks, urgent)
        chosen = set(picks)
        batch = [self._pending[i] for i in sorted(chosen)]
        tracer = current_tracer()
        if tracer:
            urgent_req = self._pending[urgent]
            if force:
                reason = "force"
            elif len(self._pending) >= self.max_batch:
                reason = "full"
            elif (
                urgent_req.deadline is not None
                and urgent_req.effective_deadline(self.max_wait)
                < urgent_req.arrival + self.max_wait
            ):
                reason = "deadline"
            else:
                reason = "max-wait"
            tracer.instant(
                "window-close", self.trace_track, cat="serving",
                args={"reason": reason, "size": len(batch),
                      "pending_left": len(self._pending) - len(chosen),
                      "waited": max(now - urgent_req.arrival, 0.0)},
            )
        self._pending = [r for i, r in enumerate(self._pending) if i not in chosen]
        return batch

    def drain_all(self) -> list[list[Request]]:
        """Flush everything into policy-shaped batches (shutdown path)."""
        batches = []
        while self._pending:
            batches.append(self.next_batch(now=0.0, force=True))
        return batches

    def _validate(self, picks: list[int], urgent: int) -> None:
        name = type(self.policy).__name__
        if not picks:
            raise ServingError(f"{name} returned an empty batch")
        if len(set(picks)) != len(picks):
            raise ServingError(f"{name} selected a request twice")
        if len(picks) > self.max_batch:
            raise ServingError(f"{name} exceeded max_batch={self.max_batch}")
        if urgent not in picks:
            raise ServingError(f"{name} starved the most urgent request")
        if any(i < 0 or i >= len(self._pending) for i in picks):
            raise ServingError(f"{name} selected out-of-range indices")
        dtypes = {self._pending[i].dtype for i in picks}
        if len(dtypes) != 1:
            raise ServingError(f"{name} mixed dtypes in one batch: {sorted(map(str, dtypes))}")
        ops = {self._pending[i].factor_op for i in picks}
        if len(ops) != 1:
            raise ServingError(f"{name} mixed operations in one batch: {sorted(ops)}")
