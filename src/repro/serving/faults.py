"""Deterministic fault injection, retry policy, and replica health.

A serving fleet is only as good as its failure story, and a failure
story is only testable if failures are *reproducible*.  This module
supplies the three pieces the :class:`~repro.serving.router.FleetRouter`
composes:

* :class:`FaultInjector` — a seeded schedule of modeled faults, hooked
  into :class:`~repro.serving.server.BatchServer` dispatch.  Each
  dispatched batch is hashed ``(seed, server name, batch id)`` into its
  own RNG stream, so whether batch 17 on replica ``r2`` faults — and
  how — is a pure function of the seed, independent of host timing,
  thread interleaving, or how many other replicas exist.  Three fault
  kinds mirror the real hazards of long-running vbatched work:

  - ``"device-oom"`` raises :class:`~repro.errors.DeviceOutOfMemory`
    (the paper's padding baseline dies exactly this way on the K40c);
  - ``"shard-failure"`` raises
    :class:`~repro.errors.PlanExecutionError` — the typed error the
    PR5 ``execute_concurrently`` path produces when one shard of a
    multi-device launch dies;
  - ``"stall"`` returns extra simulated service seconds (a slow device:
    thermal throttling, a contended PCIe link) — no exception, just a
    batch that takes far longer than it should.

* :class:`RetryPolicy` — bounded retry with exponential backoff and a
  typed retryable-error classification (device faults and shard
  failures retry; argument and numerical errors never do — a non-SPD
  matrix is non-SPD on every replica).

* :class:`ReplicaHealth` — a per-replica circuit breaker: consecutive
  failures (or stall-slow dispatches) eject the replica for a cooldown;
  the first success after re-entry closes the circuit.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    ArgumentError,
    DeviceError,
    DeviceOutOfMemory,
    LaunchError,
    PlanExecutionError,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "ReplicaHealth",
    "RetryPolicy",
]

FAULT_KINDS = ("device-oom", "shard-failure", "stall")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as the injector's log remembers it."""

    server: str
    batch_id: int
    kind: str
    batch_size: int
    stall_s: float = 0.0


class FaultInjector:
    """Seeded, per-dispatch fault schedule.

    Parameters
    ----------
    rate:
        Probability that any given dispatched batch faults.
    kinds:
        Fault kinds to draw from (uniformly), a subset of
        :data:`FAULT_KINDS`.
    seed:
        Schedule seed; two injectors with equal seeds produce identical
        fault decisions for equal ``(server, batch_id)`` pairs.
    stall_s:
        Simulated seconds a ``"stall"`` fault adds to its batch.
    max_faults:
        Optional cap on total injections (first-come across servers);
        ``None`` is unlimited.
    """

    def __init__(
        self,
        rate: float = 0.08,
        kinds=FAULT_KINDS,
        seed: int = 0,
        stall_s: float = 0.05,
        max_faults: int | None = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ArgumentError(1, f"fault rate must be in [0, 1], got {rate}")
        kinds = tuple(kinds)
        unknown = [k for k in kinds if k not in FAULT_KINDS]
        if unknown:
            raise ArgumentError(2, f"unknown fault kinds {unknown}; known: {FAULT_KINDS}")
        if not kinds:
            raise ArgumentError(2, "need at least one fault kind")
        if stall_s < 0:
            raise ArgumentError(4, f"stall_s cannot be negative, got {stall_s}")
        self.rate = float(rate)
        self.kinds = kinds
        self.seed = int(seed)
        self.stall_s = float(stall_s)
        self.max_faults = max_faults
        self.events: list[FaultEvent] = []
        self._lock = threading.Lock()

    def _rng(self, server: str, batch_id: int) -> np.random.Generator:
        """One RNG stream per (seed, server, batch) — crc32 keeps the
        server-name hash stable across processes (``hash()`` is not)."""
        return np.random.default_rng(
            [self.seed, zlib.crc32(str(server).encode()), int(batch_id)]
        )

    def peek(self, server: str, batch_id: int) -> str | None:
        """The fault kind this (server, batch) pair draws — without
        injecting or logging.  Ignores ``max_faults``."""
        rng = self._rng(server, batch_id)
        if rng.random() >= self.rate:
            return None
        return self.kinds[int(rng.integers(len(self.kinds)))]

    def on_dispatch(self, server: str, batch_id: int, sizes) -> float:
        """The :class:`~repro.serving.server.BatchServer` dispatch hook.

        Returns stall seconds to surcharge the batch's simulated
        service time (usually ``0.0``); raises the modeled error for
        ``device-oom`` / ``shard-failure`` draws.
        """
        kind = self.peek(server, batch_id)
        if kind is None:
            return 0.0
        with self._lock:
            if self.max_faults is not None and len(self.events) >= self.max_faults:
                return 0.0
            event = FaultEvent(
                server=str(server),
                batch_id=int(batch_id),
                kind=kind,
                batch_size=len(sizes),
                stall_s=self.stall_s if kind == "stall" else 0.0,
            )
            self.events.append(event)
        if kind == "device-oom":
            requested = int(sum(int(n) * int(n) for n in sizes)) * 8
            raise DeviceOutOfMemory(requested, free=0, total=requested // 2)
        if kind == "shard-failure":
            shard = int(self._rng(server, batch_id).integers(max(len(sizes), 1)))
            raise PlanExecutionError(
                shard, f"{server}:dev{shard}", LaunchError("injected shard failure")
            )
        return self.stall_s

    def injected(self, kind: str | None = None) -> int:
        """How many faults have been injected (optionally by kind)."""
        with self._lock:
            if kind is None:
                return len(self.events)
            return sum(1 for e in self.events if e.kind == kind)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for faulted batches.

    ``max_retries`` counts *re*-dispatches: a request is attempted at
    most ``max_retries + 1`` times.  ``backoff * factor ** (attempt-1)``
    is the delay before retry attempt ``attempt`` (1-based), on the
    router's clock.  Only :meth:`retryable` errors re-dispatch — a
    deterministic failure (bad argument, non-SPD matrix) terminates
    immediately no matter the budget.
    """

    max_retries: int = 3
    backoff: float = 2e-3
    backoff_factor: float = 2.0
    retry_on: tuple = (DeviceError, PlanExecutionError)

    def __post_init__(self):
        if self.max_retries < 0:
            raise ArgumentError(1, f"max_retries cannot be negative, got {self.max_retries}")
        if self.backoff < 0:
            raise ArgumentError(2, f"backoff cannot be negative, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ArgumentError(
                3, f"backoff_factor must be >= 1.0, got {self.backoff_factor}"
            )

    def retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retry_on)

    def delay(self, attempt: int) -> float:
        """Backoff before (1-based) retry ``attempt``."""
        return self.backoff * self.backoff_factor ** max(int(attempt) - 1, 0)


@dataclass
class ReplicaHealth:
    """Circuit breaker for one replica.

    ``record_failure`` counts consecutive hard faults (and
    ``record_slow`` stall-slow dispatches); at ``failure_threshold``
    the replica is *ejected* until ``now + cooldown``.  After the
    cooldown it is half-open: eligible for routing again, and the next
    success resets the breaker while the next failure re-ejects it.
    """

    failure_threshold: int = 2
    cooldown: float = 0.25
    consecutive_failures: int = 0
    ejected_until: float = field(default=float("-inf"))
    ejections: int = 0
    failures: int = 0
    slow_dispatches: int = 0

    def healthy(self, now: float) -> bool:
        return now >= self.ejected_until

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> bool:
        """Count one hard fault; returns True if this ejected the replica."""
        self.failures += 1
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self.ejected_until = now + self.cooldown
            self.ejections += 1
            self.consecutive_failures = 0
            return True
        return False

    def record_slow(self, now: float) -> bool:
        """Count one stall-slow dispatch; slowness trips the same breaker
        as hard faults (a stalling device is a failing device)."""
        self.slow_dispatches += 1
        return self.record_failure(now)
