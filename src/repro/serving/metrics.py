"""Serving telemetry: throughput, latency percentiles, batch shapes.

Everything the load generator and the ``serve-bench`` CLI report comes
from here.  Two clocks coexist: the *wall* clock times the serving tier
itself (queueing, windowing), while the *simulated* clock times the
modeled hardware — latency percentiles are tracked on both.

Batching efficiency is measured in *padded flops*: a launch covering
sizes ``n_i`` with maximum ``m`` is charged ``count * potrf_flops(m)``
padded flops against ``sum(potrf_flops(n_i))`` useful ones — the cost a
fixed-size padded launch would have paid, i.e. how far the batch is
from the homogeneous ideal the paper's implicit sorting chases.  The
gap between a size-aware policy's padded total and FIFO's is the
"padded flops saved" headline in ``BENCH_pr3.json``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..core.driver import LaunchStats
from .. import flops as _flops

__all__ = ["BatchRecord", "ServerMetrics", "latency_summary", "percentile"]


def percentile(values, q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]); 0.0 if empty."""
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def latency_summary(values) -> dict:
    """The p50/p95/p99 block the acceptance criteria ask for."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": percentile(arr, 50),
        "p95": percentile(arr, 95),
        "p99": percentile(arr, 99),
        "max": float(arr.max()),
    }


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch, as the metrics remember it."""

    batch_id: int
    size: int
    max_n: int
    useful_flops: float
    padded_flops: float
    sim_elapsed: float
    devices_used: int = 1

    @property
    def efficiency(self) -> float:
        """useful/padded — 1.0 means a perfectly homogeneous launch."""
        return self.useful_flops / self.padded_flops if self.padded_flops else 0.0


class ServerMetrics:
    """Thread-safe accumulator for one server's lifetime.

    The worker thread records; any thread may :meth:`snapshot`.  Raw
    per-request latencies are kept (serving runs here are bench-sized);
    a production tier would reservoir-sample instead.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.deadline_misses = 0
        self.batches: list[BatchRecord] = []
        self.queue_depths: list[int] = []
        self.latencies_wall: list[float] = []
        self.latencies_sim: list[float] = []
        self.queue_waits_wall: list[float] = []
        self.sim_busy = 0.0
        self.launch_stats = LaunchStats()
        self.wall_started: float | None = None
        self.wall_stopped: float | None = None

    # -- recording hooks (called by the server) -------------------------
    def record_submit(self, queue_depth: int) -> None:
        with self._lock:
            self.submitted += 1
            self.queue_depths.append(int(queue_depth))

    def record_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_cancelled(self, count: int) -> None:
        with self._lock:
            self.cancelled += int(count)

    def record_failure(self, count: int) -> None:
        with self._lock:
            self.failed += int(count)

    def record_batch(self, record: BatchRecord, responses, launch_stats=None) -> None:
        """Fold one dispatched batch and its per-request outcomes in."""
        with self._lock:
            self.batches.append(record)
            self.sim_busy += record.sim_elapsed
            if launch_stats is not None:
                self.launch_stats.merge(launch_stats)
            for resp in responses:
                self.completed += 1
                self.latencies_wall.append(resp.latency)
                self.latencies_sim.append(resp.latency_sim)
                self.queue_waits_wall.append(resp.queue_wait)
                if resp.deadline_missed:
                    self.deadline_misses += 1

    # -- derived views ---------------------------------------------------
    @staticmethod
    def padded_flops_for(sizes, precision) -> tuple[float, float]:
        """(useful, padded) POTRF flops of one launch over ``sizes``."""
        sizes = [int(n) for n in sizes]
        useful = sum(_flops.potrf_flops(n, precision) for n in sizes)
        padded = len(sizes) * _flops.potrf_flops(max(sizes), precision) if sizes else 0.0
        return useful, padded

    def batch_size_histogram(self) -> dict[int, int]:
        """batch size -> how many batches dispatched at that size."""
        with self._lock:
            hist: dict[int, int] = {}
            for rec in self.batches:
                hist[rec.size] = hist.get(rec.size, 0) + 1
            return dict(sorted(hist.items()))

    def snapshot(self) -> dict:
        """One JSON-ready dict with every headline number."""
        with self._lock:
            useful = sum(b.useful_flops for b in self.batches)
            padded = sum(b.padded_flops for b in self.batches)
            wall = None
            if self.wall_started is not None and self.wall_stopped is not None:
                wall = self.wall_stopped - self.wall_started
            sim_busy = self.sim_busy
            completed = self.completed
            hist: dict[int, int] = {}
            for rec in self.batches:
                hist[rec.size] = hist.get(rec.size, 0) + 1
            return {
                "requests": {
                    "submitted": self.submitted,
                    "completed": completed,
                    "rejected": self.rejected,
                    "failed": self.failed,
                    "cancelled": self.cancelled,
                    "deadline_misses": self.deadline_misses,
                },
                "throughput": {
                    "batches": len(self.batches),
                    "mean_batch_size": (completed / len(self.batches)) if self.batches else 0.0,
                    "sim_busy_s": sim_busy,
                    "matrices_per_sim_s": (completed / sim_busy) if sim_busy else 0.0,
                    "useful_gflops_sim": (useful / sim_busy / 1e9) if sim_busy else 0.0,
                    "wall_s": wall,
                    "matrices_per_wall_s": (completed / wall) if wall else 0.0,
                },
                "latency_sim_s": latency_summary(self.latencies_sim),
                "latency_wall_s": latency_summary(self.latencies_wall),
                "queue": {
                    "max_depth": max(self.queue_depths, default=0),
                    "mean_depth": float(np.mean(self.queue_depths)) if self.queue_depths else 0.0,
                    "mean_wait_wall_s": (
                        float(np.mean(self.queue_waits_wall)) if self.queue_waits_wall else 0.0
                    ),
                },
                "batch_size_histogram": {str(k): v for k, v in sorted(hist.items())},
                "batching": {
                    "useful_flops": useful,
                    "padded_flops": padded,
                    "wasted_flops": padded - useful,
                    "efficiency": (useful / padded) if padded else 0.0,
                },
                "plan_cache": {
                    "hits": self.launch_stats.plan_cache_hits,
                    "misses": self.launch_stats.plan_cache_misses,
                },
                "launches": {
                    "executed": self.launch_stats.executed_launches,
                    "plan_nodes": self.launch_stats.plan_nodes,
                    "batches": self.launch_stats.batches,
                },
            }

