"""Serving telemetry: throughput, latency percentiles, batch shapes.

Everything the load generator and the ``serve-bench`` CLI report comes
from here.  Two clocks coexist: the *wall* clock times the serving tier
itself (queueing, windowing), while the *simulated* clock times the
modeled hardware — latency percentiles are tracked on both.

Since the observability subsystem landed, :class:`ServerMetrics` is a
facade over one :class:`~repro.observability.registry.MetricsRegistry`:
request outcomes are a labelled counter, latencies and queue depths are
:class:`~repro.observability.registry.Summary` metrics (the one home of
the percentile code this module used to duplicate), batch sizes feed a
Prometheus-shaped histogram, and :meth:`ServerMetrics.expose` renders
the whole tier — driver :class:`~repro.core.driver.LaunchStats`
included — in the Prometheus text format.  ``percentile`` and
``latency_summary`` are re-exported from the registry module for
backward compatibility.

Batching efficiency is measured in *padded flops*: a launch covering
sizes ``n_i`` with maximum ``m`` is charged ``count * potrf_flops(m)``
padded flops against ``sum(potrf_flops(n_i))`` useful ones — the cost a
fixed-size padded launch would have paid, i.e. how far the batch is
from the homogeneous ideal the paper's implicit sorting chases.  The
gap between a size-aware policy's padded total and FIFO's is the
"padded flops saved" headline in ``BENCH_pr3.json``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..core.driver import LaunchStats
from ..observability.registry import MetricsRegistry, latency_summary, percentile
from .. import flops as _flops

__all__ = ["BatchRecord", "ServerMetrics", "latency_summary", "percentile"]

_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch, as the metrics remember it.

    ``launch_stats`` keeps the batch's own
    :class:`~repro.core.driver.LaunchStats` (not the server's running
    merge) so a fleet router can account one dispatch attempt exactly
    once when batches are retried across replicas.
    """

    batch_id: int
    size: int
    max_n: int
    useful_flops: float
    padded_flops: float
    sim_elapsed: float
    devices_used: int = 1
    launch_stats: LaunchStats | None = None
    #: Factor operation the batch dispatched (``posv`` batches record
    #: their ``potrf`` factor launch, ``gesv`` their ``getrf``).
    op: str = "potrf"

    @property
    def efficiency(self) -> float:
        """useful/padded — 1.0 means a perfectly homogeneous launch."""
        return self.useful_flops / self.padded_flops if self.padded_flops else 0.0


class ServerMetrics:
    """Registry-backed accumulator for one server's lifetime.

    The worker thread records; any thread may :meth:`snapshot` (the
    JSON-ready dict the bench reports embed) or :meth:`expose` (the
    Prometheus text format).  Raw per-request latencies live in
    registry summaries (serving runs here are bench-sized; a production
    tier would reservoir-sample).  Per-batch :class:`BatchRecord` rows
    are kept as data — exact batch-size histograms and padded-flops
    sums come from them.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        r = self.registry
        self._requests = r.counter(
            "serving_requests_total", "requests by outcome", labels=("outcome",)
        )
        self._sim_busy = r.counter(
            "serving_sim_busy_seconds_total", "simulated device-busy seconds"
        )
        self._flops = r.counter(
            "serving_batch_flops_total", "potrf flops by accounting", labels=("kind",)
        )
        self._op_batches = r.counter(
            "serving_op_batches_total", "dispatched batches by operation", labels=("op",)
        )
        self._op_flops = r.counter(
            "serving_op_flops_total",
            "flops by operation and accounting",
            labels=("op", "kind"),
        )
        self._op_busy = r.counter(
            "serving_op_sim_busy_seconds_total",
            "simulated device-busy seconds by operation",
            labels=("op",),
        )
        self._latency = r.summary(
            "serving_latency_seconds", "request latency by clock", labels=("clock",)
        )
        self._queue_wait = r.summary(
            "serving_queue_wait_seconds", "wall time queued before dispatch"
        )
        self._queue_depth = r.summary(
            "serving_queue_depth", "queue depth sampled at each admission"
        )
        self._batch_sizes = r.histogram(
            "serving_batch_size", "requests per dispatched batch", buckets=_BATCH_BUCKETS
        )
        self.batches: list[BatchRecord] = []
        self.launch_stats = LaunchStats()
        #: Accumulated per-member placement outcomes (heterogeneous
        #: groups only), keyed by member name.
        self.member_stats: dict[str, object] = {}
        self.wall_started: float | None = None
        self.wall_stopped: float | None = None

    # -- counter views (back-compat attribute API) ----------------------
    def _outcome(self, outcome: str) -> int:
        return int(self._requests.value(outcome=outcome))

    @property
    def submitted(self) -> int:
        return self._outcome("submitted")

    @property
    def rejected(self) -> int:
        return self._outcome("rejected")

    @property
    def completed(self) -> int:
        return self._outcome("completed")

    @property
    def failed(self) -> int:
        return self._outcome("failed")

    @property
    def cancelled(self) -> int:
        return self._outcome("cancelled")

    @property
    def deadline_misses(self) -> int:
        return self._outcome("deadline_missed")

    @property
    def sim_busy(self) -> float:
        return self._sim_busy.value()

    # -- recording hooks (called by the server) -------------------------
    def record_submit(self, queue_depth: int) -> None:
        self._requests.inc(outcome="submitted")
        self._queue_depth.observe(int(queue_depth))

    def record_reject(self) -> None:
        self._requests.inc(outcome="rejected")

    def record_cancelled(self, count: int) -> None:
        self._requests.inc(int(count), outcome="cancelled")

    def record_failure(self, count: int) -> None:
        self._requests.inc(int(count), outcome="failed")

    def record_batch(self, record: BatchRecord, responses, launch_stats=None) -> None:
        """Fold one dispatched batch and its per-request outcomes in."""
        with self._lock:
            self.batches.append(record)
            if launch_stats is not None:
                self.launch_stats.merge(launch_stats)
        self._sim_busy.inc(record.sim_elapsed)
        self._flops.inc(record.useful_flops, kind="useful")
        self._flops.inc(record.padded_flops, kind="padded")
        self._op_batches.inc(op=record.op)
        self._op_flops.inc(record.useful_flops, op=record.op, kind="useful")
        self._op_flops.inc(record.padded_flops, op=record.op, kind="padded")
        self._op_busy.inc(record.sim_elapsed, op=record.op)
        self._batch_sizes.observe(record.size)
        for resp in responses:
            self._requests.inc(outcome="completed")
            self._latency.observe(resp.latency, clock="wall")
            self._latency.observe(resp.latency_sim, clock="sim")
            self._queue_wait.observe(resp.queue_wait)
            if resp.deadline_missed:
                self._requests.inc(outcome="deadline_missed")

    def record_placement(self, member_stats) -> None:
        """Fold a heterogeneous dispatch's per-member outcomes in.

        Each :class:`~repro.device.executor.MemberStats` is accumulated
        under its member name and published to the registry
        (``hetero_chunks_total{member,kind}``, ``hetero_steals_total``,
        ``hetero_matrices_total``, ``hetero_busy_seconds``), so
        placement decisions surface in both :meth:`snapshot` and the
        Prometheus exposition.
        """
        if not member_stats:
            return
        with self._lock:
            for ms in member_stats:
                acc = self.member_stats.get(ms.name)
                if acc is None:
                    self.member_stats[ms.name] = acc = type(ms)(
                        name=ms.name, kind=ms.kind
                    )
                acc.merge(ms)
        for ms in member_stats:
            ms.publish(self.registry)

    # -- derived views ---------------------------------------------------
    @staticmethod
    def padded_flops_for(sizes, precision, op: str = "potrf") -> tuple[float, float]:
        """(useful, padded) flops of one ``op`` launch over ``sizes``.

        The padded total is what a fixed-size batched launch of the
        same operation would have paid — the denominator of the
        batching-efficiency headline, per operation.
        """
        from ..ops.registry import get_op

        sizes = [int(n) for n in sizes]
        matrix_flops = get_op(op).matrix_flops
        useful = sum(matrix_flops(n, precision) for n in sizes)
        padded = len(sizes) * matrix_flops(max(sizes), precision) if sizes else 0.0
        return useful, padded

    def batch_size_histogram(self) -> dict[int, int]:
        """batch size -> how many batches dispatched at that size."""
        with self._lock:
            hist: dict[int, int] = {}
            for rec in self.batches:
                hist[rec.size] = hist.get(rec.size, 0) + 1
            return dict(sorted(hist.items()))

    def expose(self) -> str:
        """Prometheus text exposition of the whole serving tier."""
        with self._lock:
            self.launch_stats.publish(self.registry, prefix="serving_driver")
        return self.registry.expose()

    def snapshot(self) -> dict:
        """One JSON-ready dict with every headline number."""
        with self._lock:
            batches = list(self.batches)
            launch = self.launch_stats
            placement = {
                name: ms.as_dict() for name, ms in sorted(self.member_stats.items())
            }
            wall = None
            if self.wall_started is not None and self.wall_stopped is not None:
                wall = self.wall_stopped - self.wall_started
        useful = sum(b.useful_flops for b in batches)
        padded = sum(b.padded_flops for b in batches)
        per_op: dict[str, dict] = {}
        for rec in batches:
            row = per_op.setdefault(
                rec.op,
                {"batches": 0, "matrices": 0, "sim_busy_s": 0.0,
                 "useful_flops": 0.0, "padded_flops": 0.0},
            )
            row["batches"] += 1
            row["matrices"] += rec.size
            row["sim_busy_s"] += rec.sim_elapsed
            row["useful_flops"] += rec.useful_flops
            row["padded_flops"] += rec.padded_flops
        for row in per_op.values():
            row["wasted_flops"] = row["padded_flops"] - row["useful_flops"]
            row["efficiency"] = (
                row["useful_flops"] / row["padded_flops"] if row["padded_flops"] else 0.0
            )
            row["mean_batch_size"] = row["matrices"] / row["batches"]
        sim_busy = self.sim_busy
        completed = self.completed
        hist: dict[int, int] = {}
        for rec in batches:
            hist[rec.size] = hist.get(rec.size, 0) + 1
        depths = self._queue_depth.values()
        return {
            "requests": {
                "submitted": self.submitted,
                "completed": completed,
                "rejected": self.rejected,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "deadline_misses": self.deadline_misses,
            },
            "throughput": {
                "batches": len(batches),
                "mean_batch_size": (completed / len(batches)) if batches else 0.0,
                "sim_busy_s": sim_busy,
                "matrices_per_sim_s": (completed / sim_busy) if sim_busy else 0.0,
                "useful_gflops_sim": (useful / sim_busy / 1e9) if sim_busy else 0.0,
                "wall_s": wall,
                "matrices_per_wall_s": (completed / wall) if wall else 0.0,
            },
            "latency_sim_s": self._latency.summary(clock="sim"),
            "latency_wall_s": self._latency.summary(clock="wall"),
            "queue": {
                "max_depth": int(self._queue_depth.max()),
                "mean_depth": float(np.mean(depths)) if depths else 0.0,
                "mean_wait_wall_s": self._queue_wait.mean(),
            },
            "batch_size_histogram": {str(k): v for k, v in sorted(hist.items())},
            "ops": {op: dict(row) for op, row in sorted(per_op.items())},
            "batching": {
                "useful_flops": useful,
                "padded_flops": padded,
                "wasted_flops": padded - useful,
                "efficiency": (useful / padded) if padded else 0.0,
            },
            "plan_cache": {
                "hits": launch.plan_cache_hits,
                "misses": launch.plan_cache_misses,
            },
            "launches": {
                "executed": launch.executed_launches,
                "plan_nodes": launch.plan_nodes,
                "batches": launch.batches,
            },
            "placement": placement,
        }
