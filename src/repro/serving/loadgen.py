"""Closed-loop load generation and the ``serve-bench`` harness.

The benchmark drives a :class:`~repro.serving.server.BatchServer` in
synchronous pump mode with a *closed loop*: ``concurrency`` requests
are kept outstanding — the queue refills from a fixed-seed synthetic
size stream after every dispatched batch, so batch composition (and
therefore every reported number) is a pure function of the seed, not
of host timing.  Arrival/latency accounting runs on the simulated
clock, where queueing delay means "batches the device served while
this request waited".

Four configurations run over the identical stream:

* ``per-request`` — ``max_batch=1`` dispatch, the no-batching floor;
* ``fifo`` — arrival-order windows (batching, size-blind);
* ``size-bucket`` / ``greedy-window`` — the size-aware policies.

The headline comparisons the PR acceptance criteria ask for —
size-aware throughput vs. per-request dispatch, padded-flops waste vs.
FIFO — come out of :func:`run_serve_bench` ready for
``BENCH_pr3.json``.
"""

from __future__ import annotations

import numpy as np

from ..core.driver import PotrfOptions
from ..core.plan import PlanCache
from ..device.device import Device
from ..device.topology import DeviceGroup
from ..distributions import generate_sizes
from ..errors import ArgumentError
from ..observability.trace import activate, current_tracer
from .server import BatchServer

__all__ = ["closed_loop", "run_serve_bench", "check_acceptance", "BENCH_POLICIES"]

BENCH_POLICIES = ("per-request", "fifo", "size-bucket", "greedy-window")


def closed_loop(server: BatchServer, matrices, concurrency: int = 128) -> list:
    """Pump ``server`` through ``matrices`` with a fixed outstanding set.

    Submits until ``concurrency`` requests are queued, dispatches one
    batch (`force=True`: composition depends only on queue content),
    refills, and repeats until the stream and queue are empty.  Returns
    every request's resolved :class:`~repro.serving.request.Response`
    in submission order.
    """
    if concurrency <= 0:
        raise ArgumentError(3, f"concurrency must be positive, got {concurrency}")
    futures = []
    stream = iter(matrices)
    exhausted = False
    while True:
        while not exhausted and server.queue_depth < concurrency:
            try:
                futures.append(server.submit(next(stream)))
            except StopIteration:
                exhausted = True
        if server.pump(force=True) == 0 and exhausted:
            break
    return [f.result(timeout=60.0) for f in futures]


def _bench_matrices(sizes, dtype=np.float64) -> list[np.ndarray]:
    """Timing-mode payloads: zero matrices (the cost model never reads
    values, and a numerics-off device never copies them)."""
    return [np.zeros((int(n), int(n)), dtype=dtype) for n in sizes]


def _make_server(
    policy: str,
    device_count: int,
    max_batch: int,
    max_wait: float,
    optimize: str = "none",
) -> BatchServer:
    """A fresh timing-mode server (own devices, own shared plan cache).

    When a tracer is active the policy name prefixes the device names
    and the server's trace process (``greedy-window:dev0``,
    ``greedy-window:serving``), so one merged bench trace keeps each
    policy's tracks — and the trace report's per-group numbers — apart.
    """
    label = policy
    prefix = f"{policy}:" if current_tracer() else None
    if device_count > 1:
        group = DeviceGroup.simulated(
            device_count, execute_numerics=False, name_prefix=prefix
        )
        target = {"devices": group}
    else:
        target = {
            "device": Device(
                execute_numerics=False,
                name=None if prefix is None else f"{prefix}dev0",
            )
        }
    if policy == "per-request":
        policy, max_batch = "fifo", 1
    return BatchServer(
        policy=policy,
        max_batch=max_batch,
        max_wait=max_wait,
        plan_cache=PlanCache(max_plans=64),
        options=PotrfOptions(optimize=optimize),
        name=f"{label}:serving",
        **target,
    )


def run_serve_bench(
    requests: int = 2000,
    max_size: int = 256,
    distribution: str = "uniform",
    seed: int = 0,
    max_batch: int = 32,
    concurrency: int = 128,
    device_count: int = 1,
    policies=BENCH_POLICIES,
    max_wait: float = 2e-3,
    tracer=None,
    optimize: str = "none",
) -> dict:
    """Run every policy over one fixed-seed stream; return the report.

    The report maps policy name to its metrics snapshot and adds the
    acceptance-criteria comparisons: size-aware throughput speedup over
    per-request dispatch (simulated matrices/s) and padded-flops waste
    relative to FIFO.

    ``tracer`` (a :class:`~repro.observability.trace.Tracer`) records
    one merged end-to-end trace across every policy run; each policy's
    tracks carry a ``{policy}:`` process prefix so the trace report can
    break the numbers out per group.
    """
    sizes = generate_sizes(distribution, requests, max_size, seed=seed)
    matrices = _bench_matrices(sizes)
    report: dict = {
        "config": {
            "requests": int(requests),
            "max_size": int(max_size),
            "distribution": distribution,
            "seed": int(seed),
            "max_batch": int(max_batch),
            "concurrency": int(concurrency),
            "device_count": int(device_count),
            "optimize": str(optimize),
            "loop": "closed",
        },
        "policies": {},
    }
    for policy in policies:
        with activate(tracer if tracer is not None else current_tracer()):
            server = _make_server(policy, device_count, max_batch, max_wait, optimize)
            responses = closed_loop(server, matrices, concurrency=concurrency)
            server.shutdown(drain=True)
        snap = server.metrics.snapshot()
        snap["served"] = len(responses)
        report["policies"][policy] = snap

    snaps = report["policies"]
    comparison: dict = {}
    if "per-request" in snaps:
        base = snaps["per-request"]["throughput"]["matrices_per_sim_s"]
        comparison["speedup_vs_per_request"] = {
            name: (snaps[name]["throughput"]["matrices_per_sim_s"] / base if base else 0.0)
            for name in snaps
            if name != "per-request"
        }
    if "fifo" in snaps:
        fifo_waste = snaps["fifo"]["batching"]["wasted_flops"]
        comparison["padded_flops_saved_vs_fifo"] = {
            name: fifo_waste - snaps[name]["batching"]["wasted_flops"]
            for name in snaps
            if name != "fifo"
        }
    report["comparison"] = comparison
    return report


def check_acceptance(report: dict, min_speedup: float = 2.0) -> list[str]:
    """The PR's acceptance assertions; returns failure messages (empty = pass)."""
    failures = []
    snaps = report["policies"]
    comparison = report.get("comparison", {})
    for name in ("size-bucket", "greedy-window"):
        if name not in snaps:
            continue
        speedup = comparison.get("speedup_vs_per_request", {}).get(name, 0.0)
        if speedup < min_speedup:
            failures.append(
                f"{name}: {speedup:.2f}x over per-request dispatch (need >= {min_speedup}x)"
            )
        saved = comparison.get("padded_flops_saved_vs_fifo", {}).get(name, 0.0)
        if "fifo" in snaps and saved <= 0:
            failures.append(f"{name}: no padded-flops saved vs fifo ({saved:.3g})")
    return failures
