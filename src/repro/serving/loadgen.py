"""Closed-loop load generation and the ``serve-bench`` harness.

The benchmark drives a :class:`~repro.serving.server.BatchServer` in
synchronous pump mode with a *closed loop*: ``concurrency`` requests
are kept outstanding — the queue refills from a fixed-seed synthetic
size stream after every dispatched batch, so batch composition (and
therefore every reported number) is a pure function of the seed, not
of host timing.  Arrival/latency accounting runs on the simulated
clock, where queueing delay means "batches the device served while
this request waited".

Four configurations run over the identical stream:

* ``per-request`` — ``max_batch=1`` dispatch, the no-batching floor;
* ``fifo`` — arrival-order windows (batching, size-blind);
* ``size-bucket`` / ``greedy-window`` — the size-aware policies.

The headline comparisons the PR acceptance criteria ask for —
size-aware throughput vs. per-request dispatch, padded-flops waste vs.
FIFO — come out of :func:`run_serve_bench` ready for
``BENCH_pr3.json``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..core.driver import PotrfOptions
from ..core.plan import PlanCache
from ..device.device import Device
from ..device.topology import DeviceGroup
from ..distributions import generate_sizes
from ..errors import AdmissionError, ArgumentError, OverloadShedError
from ..observability.trace import activate, current_tracer
from .faults import FaultInjector, RetryPolicy
from .metrics import latency_summary
from .router import DEFAULT_SLOS, FleetRouter, SLOClass
from .server import BatchServer

__all__ = [
    "ARRIVAL_PATTERNS",
    "BENCH_POLICIES",
    "VirtualClock",
    "arrival_trace",
    "check_acceptance",
    "check_fleet_acceptance",
    "closed_loop",
    "open_loop",
    "run_fleet_bench",
    "run_serve_bench",
]

BENCH_POLICIES = ("per-request", "fifo", "size-bucket", "greedy-window")


def closed_loop(server: BatchServer, matrices, concurrency: int = 128) -> list:
    """Pump ``server`` through ``matrices`` with a fixed outstanding set.

    Submits until ``concurrency`` requests are queued, dispatches one
    batch (`force=True`: composition depends only on queue content),
    refills, and repeats until the stream and queue are empty.  Returns
    every request's resolved :class:`~repro.serving.request.Response`
    in submission order.
    """
    if concurrency <= 0:
        raise ArgumentError(3, f"concurrency must be positive, got {concurrency}")
    futures = []
    stream = iter(matrices)
    exhausted = False
    while True:
        while not exhausted and server.queue_depth < concurrency:
            try:
                futures.append(server.submit(next(stream)))
            except StopIteration:
                exhausted = True
        if server.pump(force=True) == 0 and exhausted:
            break
    return [f.result(timeout=60.0) for f in futures]


def _bench_matrices(sizes, dtype=np.float64) -> list[np.ndarray]:
    """Timing-mode payloads: zero matrices (the cost model never reads
    values, and a numerics-off device never copies them)."""
    return [np.zeros((int(n), int(n)), dtype=dtype) for n in sizes]


def _make_server(
    policy: str,
    device_count: int,
    max_batch: int,
    max_wait: float,
    optimize: str = "none",
) -> BatchServer:
    """A fresh timing-mode server (own devices, own shared plan cache).

    When a tracer is active the policy name prefixes the device names
    and the server's trace process (``greedy-window:dev0``,
    ``greedy-window:serving``), so one merged bench trace keeps each
    policy's tracks — and the trace report's per-group numbers — apart.
    """
    label = policy
    prefix = f"{policy}:" if current_tracer() else None
    if device_count > 1:
        group = DeviceGroup.simulated(
            device_count, execute_numerics=False, name_prefix=prefix
        )
        target = {"devices": group}
    else:
        target = {
            "device": Device(
                execute_numerics=False,
                name=None if prefix is None else f"{prefix}dev0",
            )
        }
    if policy == "per-request":
        policy, max_batch = "fifo", 1
    return BatchServer(
        policy=policy,
        max_batch=max_batch,
        max_wait=max_wait,
        plan_cache=PlanCache(max_plans=64),
        options=PotrfOptions(optimize=optimize),
        name=f"{label}:serving",
        **target,
    )


def run_serve_bench(
    requests: int = 2000,
    max_size: int = 256,
    distribution: str = "uniform",
    seed: int = 0,
    max_batch: int = 32,
    concurrency: int = 128,
    device_count: int = 1,
    policies=BENCH_POLICIES,
    max_wait: float = 2e-3,
    tracer=None,
    optimize: str = "none",
) -> dict:
    """Run every policy over one fixed-seed stream; return the report.

    The report maps policy name to its metrics snapshot and adds the
    acceptance-criteria comparisons: size-aware throughput speedup over
    per-request dispatch (simulated matrices/s) and padded-flops waste
    relative to FIFO.

    ``tracer`` (a :class:`~repro.observability.trace.Tracer`) records
    one merged end-to-end trace across every policy run; each policy's
    tracks carry a ``{policy}:`` process prefix so the trace report can
    break the numbers out per group.
    """
    sizes = generate_sizes(distribution, requests, max_size, seed=seed)
    matrices = _bench_matrices(sizes)
    report: dict = {
        "config": {
            "requests": int(requests),
            "max_size": int(max_size),
            "distribution": distribution,
            "seed": int(seed),
            "max_batch": int(max_batch),
            "concurrency": int(concurrency),
            "device_count": int(device_count),
            "optimize": str(optimize),
            "loop": "closed",
        },
        "policies": {},
    }
    for policy in policies:
        with activate(tracer if tracer is not None else current_tracer()):
            server = _make_server(policy, device_count, max_batch, max_wait, optimize)
            responses = closed_loop(server, matrices, concurrency=concurrency)
            server.shutdown(drain=True)
        snap = server.metrics.snapshot()
        snap["served"] = len(responses)
        report["policies"][policy] = snap

    snaps = report["policies"]
    comparison: dict = {}
    if "per-request" in snaps:
        base = snaps["per-request"]["throughput"]["matrices_per_sim_s"]
        comparison["speedup_vs_per_request"] = {
            name: (snaps[name]["throughput"]["matrices_per_sim_s"] / base if base else 0.0)
            for name in snaps
            if name != "per-request"
        }
    if "fifo" in snaps:
        fifo_waste = snaps["fifo"]["batching"]["wasted_flops"]
        comparison["padded_flops_saved_vs_fifo"] = {
            name: fifo_waste - snaps[name]["batching"]["wasted_flops"]
            for name in snaps
            if name != "fifo"
        }
    report["comparison"] = comparison
    return report


# ----------------------------------------------------------------------
# open-loop arrival traces (the fleet bench's traffic shapes)
# ----------------------------------------------------------------------
ARRIVAL_PATTERNS = ("poisson", "bursty", "diurnal", "heavy-tail")


class VirtualClock:
    """A settable clock shared by router, replicas, and the event loop.

    The open-loop bench advances it explicitly (``clock.t = now``), so
    every latency the fleet records is a pure function of the workload
    seed — host speed and thread timing never leak into the numbers.
    """

    def __init__(self, t: float = 0.0):
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += float(dt)
        return self.t


def arrival_trace(pattern: str, count: int, rate: float, seed: int = 0) -> np.ndarray:
    """``count`` open-loop arrival instants averaging ``rate`` req/s.

    Unlike the closed loop (which can never overload anything — it waits
    for completions), these traces keep offering work at their own pace:

    * ``"poisson"`` — memoryless arrivals, the M/G/k textbook shape;
    * ``"bursty"`` — an on/off mixture: most gaps come from a fast
      in-burst process, an occasional long off-gap separates bursts
      (flash crowds hitting an inference tier);
    * ``"diurnal"`` — an inhomogeneous Poisson process whose rate swings
      sinusoidally ±80% around the mean (day/night load);
    * ``"heavy-tail"`` — Pareto (``alpha=1.5``) inter-arrivals: long
      quiet stretches punctured by dense clumps.
    """
    if pattern not in ARRIVAL_PATTERNS:
        raise ArgumentError(
            1, f"unknown arrival pattern {pattern!r} (use one of {ARRIVAL_PATTERNS})"
        )
    if count <= 0:
        raise ArgumentError(2, f"count must be positive, got {count}")
    if rate <= 0:
        raise ArgumentError(3, f"rate must be positive, got {rate}")
    rng = np.random.default_rng([seed, hash_pattern(pattern)])
    mean_gap = 1.0 / rate
    if pattern == "poisson":
        gaps = rng.exponential(mean_gap, size=count)
    elif pattern == "bursty":
        burst = rng.exponential(mean_gap / 4.0, size=count)
        idle = rng.exponential(mean_gap * 4.0, size=count)
        off = rng.random(count) < 0.2
        gaps = np.where(off, idle, burst)
    elif pattern == "diurnal":
        # Scale each memoryless gap by the instantaneous rate at the
        # running arrival time (one sine period spans ~count arrivals).
        period = max(count * mean_gap, 1e-9)
        gaps = np.empty(count)
        t = 0.0
        unit = rng.exponential(1.0, size=count)
        for i in range(count):
            local = rate * (1.0 + 0.8 * np.sin(2.0 * np.pi * t / period))
            gaps[i] = unit[i] / max(local, 0.05 * rate)
            t += gaps[i]
    else:  # heavy-tail
        alpha = 1.5
        xm = (alpha - 1.0) / alpha * mean_gap  # Pareto mean = 1/rate
        gaps = xm * (1.0 + rng.pareto(alpha, size=count))
    return np.cumsum(gaps)


def hash_pattern(pattern: str) -> int:
    """Stable small-int stream id per pattern (``hash()`` is salted)."""
    return ARRIVAL_PATTERNS.index(pattern)


# ----------------------------------------------------------------------
# the open-loop event simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkItem:
    """One planned arrival of the open-loop workload."""

    at: float
    matrix: np.ndarray
    tenant: str
    slo: str
    deadline: float | None = None
    timeout: float | None = None
    #: The class this request *wanted*; differs from ``slo`` only in the
    #: flat-queue baseline, which serves everything as one class but
    #: still reports latencies per intended class.
    intended: str | None = None


def open_loop(router, workload, clock: VirtualClock, max_events: int | None = None):
    """Drive ``router`` through ``workload`` on the virtual clock.

    A textbook discrete-event loop: repeatedly jump the clock to the
    earlier of the next arrival and the router's next actionable
    instant (:meth:`~repro.serving.router.FleetRouter.next_event_time`
    — a replica freeing up, a retry backoff expiring, an ejection
    cooling down), submit or pump accordingly, and keep going until the
    workload is exhausted *and* the fleet is idle.  Admission refusals
    are part of the result, not exceptions: returns one ``(item,
    ticket-or-AdmissionError)`` pair per work item, in arrival order.
    """
    items = sorted(workload, key=lambda w: w.at)
    pairs = []
    limit = max_events if max_events is not None else 200 * max(len(items), 1)
    i = 0
    now = clock()
    for _ in range(limit):
        next_arrival = items[i].at if i < len(items) else None
        next_fleet = router.next_event_time(now)
        if next_arrival is None and next_fleet is None:
            break
        if next_fleet is None or (next_arrival is not None and next_arrival <= next_fleet):
            now = max(now, next_arrival)
            clock.t = now
            item = items[i]
            i += 1
            try:
                ticket = router.submit(
                    item.matrix,
                    tenant=item.tenant,
                    slo=item.slo,
                    deadline=item.deadline,
                    timeout=item.timeout,
                )
                pairs.append((item, ticket))
            except AdmissionError as exc:
                pairs.append((item, exc))
            continue
        progressed_to = max(now, next_fleet)
        clock.t = progressed_to
        if router.pump(progressed_to) == 0 and progressed_to <= now:
            # Nothing moved and time did not either: nudge the clock so
            # a pathological schedule cannot spin the loop in place.
            progressed_to = now + 1e-4
            clock.t = progressed_to
        now = progressed_to
    else:
        raise ArgumentError(4, f"open_loop exceeded {limit} events without draining")
    return pairs


def check_acceptance(report: dict, min_speedup: float = 2.0) -> list[str]:
    """The PR's acceptance assertions; returns failure messages (empty = pass)."""
    failures = []
    snaps = report["policies"]
    comparison = report.get("comparison", {})
    for name in ("size-bucket", "greedy-window"):
        if name not in snaps:
            continue
        speedup = comparison.get("speedup_vs_per_request", {}).get(name, 0.0)
        if speedup < min_speedup:
            failures.append(
                f"{name}: {speedup:.2f}x over per-request dispatch (need >= {min_speedup}x)"
            )
        saved = comparison.get("padded_flops_saved_vs_fifo", {}).get(name, 0.0)
        if "fifo" in snaps and saved <= 0:
            failures.append(f"{name}: no padded-flops saved vs fifo ({saved:.3g})")
    return failures


# ----------------------------------------------------------------------
# the ``fleet-bench`` harness
# ----------------------------------------------------------------------
FLEET_MIX = (
    # (slo, share) — interactive must fit inside one fleet's capacity at
    # 2x total overload, so the priority classes have something to
    # protect and the shed classes something to give up.
    ("interactive", 0.30),
    ("batch", 0.30),
    ("best-effort", 0.40),
)
FLEET_TENANTS = ("acme", "globex", "initech")


def _fleet_workload(
    requests: int,
    max_size: int,
    distribution: str,
    pattern: str,
    rate: float,
    seed: int,
    flat: str | None = None,
) -> list[WorkItem]:
    """One deterministic open-loop workload: arrivals from the trace,
    sizes from the bench distribution, class/tenant from a seeded mix.

    ``flat`` collapses every request into the single named class while
    keeping the *intended* class on the item — the no-fleet baseline
    serves one undifferentiated queue, yet the report still breaks its
    latencies out by what each request wanted to be.
    """
    sizes = generate_sizes(distribution, requests, max_size, seed=seed)
    arrivals = arrival_trace(pattern, requests, rate, seed=seed)
    rng = np.random.default_rng([seed, 97])
    shares = np.array([s for _, s in FLEET_MIX])
    classes = rng.choice(len(FLEET_MIX), size=requests, p=shares / shares.sum())
    tenants = rng.choice(len(FLEET_TENANTS), size=requests)
    matrices = _bench_matrices(sizes)
    items = []
    for i in range(requests):
        intended = FLEET_MIX[int(classes[i])][0]
        items.append(
            WorkItem(
                at=float(arrivals[i]),
                matrix=matrices[i],
                tenant=FLEET_TENANTS[int(tenants[i])],
                slo=flat if flat is not None else intended,
                intended=intended,
            )
        )
    return items


def _measure_capacity(
    max_size: int, distribution: str, seed: int, max_batch: int, cal_requests: int = 160
) -> float:
    """Measured single-replica service rate (matrices per simulated
    second), from a short closed-loop run — the yardstick the bench
    scales its offered load against."""
    server = BatchServer(
        device=Device(execute_numerics=False),
        policy="greedy-window",
        max_batch=max_batch,
        plan_cache=PlanCache(max_plans=64),
    )
    sizes = generate_sizes(distribution, cal_requests, max_size, seed=seed + 17)
    closed_loop(server, _bench_matrices(sizes), concurrency=2 * max_batch)
    server.shutdown(drain=True)
    return server.metrics.snapshot()["throughput"]["matrices_per_sim_s"]


def _summarize_pairs(pairs) -> dict:
    """Per-intended-class outcome counts and completed-request latency
    summaries, plus the lost-request tally the chaos gate keys on."""
    per: dict[str, dict] = {}
    hung = 0
    for item, out in pairs:
        cls = item.intended or item.slo
        rec = per.setdefault(
            cls,
            {
                "offered": 0,
                "admitted": 0,
                "completed": 0,
                "failed": 0,
                "cancelled": 0,
                "shed": 0,
                "rejected_other": 0,
                "_latencies": [],
            },
        )
        rec["offered"] += 1
        if isinstance(out, AdmissionError):
            if isinstance(out, OverloadShedError):
                rec["shed"] += 1
            else:
                rec["rejected_other"] += 1
            continue
        rec["admitted"] += 1
        if out.outcome is None:
            hung += 1
        else:
            rec[out.outcome] += 1
        if out.outcome == "completed":
            rec["_latencies"].append(out.completed_at - out.arrival)
    classes = {}
    for cls, rec in sorted(per.items()):
        lat = rec.pop("_latencies")
        admitted = rec["admitted"]
        classes[cls] = {
            **rec,
            "completion_ratio": (rec["completed"] / admitted) if admitted else 1.0,
            "latency_s": latency_summary(lat),
        }
    offered = sum(c["offered"] for c in classes.values())
    shed = sum(c["shed"] for c in classes.values())
    return {
        "classes": classes,
        "offered": offered,
        "shed": shed,
        "shed_ratio": (shed / offered) if offered else 0.0,
        "hung": hung,
    }


def _run_fleet_case(
    items,
    *,
    replica_count: int,
    max_batch: int,
    max_wait: float,
    queue_limit: int,
    injector: FaultInjector | None,
    retry: RetryPolicy,
    shed: bool,
    admission: bool,
    slos=None,
    default_slo: str = "batch",
    adaptive: bool = False,
    tuning_cache=None,
    adaptive_options: dict | None = None,
) -> dict:
    """Stand up one fleet, run one workload to completion, report."""
    clock = VirtualClock()
    router = FleetRouter(
        replica_count=replica_count,
        max_batch=max_batch,
        max_wait=max_wait,
        queue_limit=queue_limit,
        slos=slos,
        default_slo=default_slo,
        retry=retry,
        fault_injector=injector,
        shed=shed,
        admission_control=admission,
        execute_numerics=False,
        # The default breaker cooldown (250 ms) is wall-clock scale; on
        # the virtual clock a batch takes tens of microseconds, so an
        # ejection must cost milliseconds, not the whole run.
        health_cooldown=5e-3,
        clock=clock,
        adaptive=adaptive,
        tuning_cache=tuning_cache,
        adaptive_options=adaptive_options,
    )
    router.set_tenant("acme", weight=2.0)
    pairs = open_loop(router, items, clock)
    router.shutdown(drain=True)
    summary = _summarize_pairs(pairs)
    summary["makespan_sim_s"] = clock()
    summary["fleet"] = router.snapshot()
    if adaptive:
        summary["tuners"] = {
            r.name: r.server.tuner.snapshot()
            for r in router.replicas
            if r.server.tuner is not None
        }
    if injector is not None:
        summary["faults"] = {
            "injected": injector.injected(),
            "by_kind": {k: injector.injected(k) for k in sorted(set(e.kind for e in injector.events))},
        }
    return summary


def run_fleet_bench(
    requests: int = 600,
    max_size: int = 128,
    distribution: str = "uniform",
    seed: int = 0,
    replica_count: int = 3,
    max_batch: int = 16,
    max_wait: float = 2e-3,
    pattern: str = "bursty",
    overload: float = 2.0,
    load: float = 0.5,
    queue_limit: int = 128,
    fault_rate: float = 0.08,
    fault_seed: int | None = None,
    faults: str = "seeded",
    max_retries: int = 3,
    smoke: bool = False,
    adaptive: bool = False,
    tuning_cache_path: str | None = None,
) -> dict:
    """The ``fleet-bench``: graceful overload vs. single-server collapse.

    Three runs over workloads drawn from the same seeded generator:

    * ``unloaded`` — the full fleet at ``load`` (default 0.5x) of its
      measured capacity, faults off: the interactive p95 yardstick;
    * ``overload`` — the same fleet at ``overload`` (default 2x)
      capacity with seeded faults injected: the run that must *degrade
      gracefully* (shed best-effort, keep interactive p95 within 3x of
      unloaded, lose nothing it admitted);
    * ``baseline`` — one replica, one undifferentiated class, no
      shedding, no deadline admission, no retries, offered the identical
      overload trace: the collapse the fleet machinery exists to avoid.

    ``faults`` is ``"seeded"`` (deterministic
    :class:`~repro.serving.faults.FaultInjector` on the overload run) or
    ``"off"``.  ``smoke=True`` shrinks the workload for CI.  The report
    carries its own acceptance verdict
    (:func:`check_fleet_acceptance`); ``BENCH_pr6.json`` is this dict.

    ``adaptive=True`` attaches online tuners to every replica in the
    unloaded and overload runs (the collapse baseline stays static — it
    exists to show the *untuned* single server).  All replicas share one
    :class:`~repro.autotune.TuningCache` at ``tuning_cache_path`` (a
    temp file when unset), so the overload fleet warm-starts from
    whatever the unloaded fleet converged onto.
    """
    if faults not in ("seeded", "off"):
        raise ArgumentError(13, f"faults must be 'seeded' or 'off', got {faults!r}")
    if smoke:
        requests = min(requests, 240)
        max_size = min(max_size, 96)
    tuning_cache = None
    adaptive_options = None
    if adaptive:
        import tempfile

        from ..autotune import TuningCache

        if tuning_cache_path is None:
            tuning_cache_path = os.path.join(
                tempfile.mkdtemp(prefix="fleet-adaptive-"), "tuning_cache.json"
            )
        tuning_cache = TuningCache(path=tuning_cache_path)
        # Open-loop fleet traces are short; the compact knob set and a
        # fast cadence give the tuners a chance to act within one run.
        adaptive_options = {
            "knobs": "compact",
            "epoch_batches": 6,
            "converged_after": 2,
        }
    per_replica = _measure_capacity(max_size, distribution, seed, max_batch)
    fleet_rate = per_replica * replica_count
    # Backoff on the virtual clock: a couple of batch service times, not
    # the wall-clock default — a retried request should rejoin the fight
    # while its peers are still in the same traffic burst.
    retry = RetryPolicy(max_retries=max_retries, backoff=2e-4)
    report: dict = {
        "config": {
            "requests": int(requests),
            "max_size": int(max_size),
            "distribution": distribution,
            "seed": int(seed),
            "replica_count": int(replica_count),
            "max_batch": int(max_batch),
            "pattern": pattern,
            "overload": float(overload),
            "load": float(load),
            "queue_limit": int(queue_limit),
            "fault_rate": float(fault_rate) if faults == "seeded" else 0.0,
            "faults": faults,
            "max_retries": int(max_retries),
            "smoke": bool(smoke),
            "adaptive": bool(adaptive),
            "interactive_target_p95_s": DEFAULT_SLOS["interactive"].target_p95,
            "loop": "open",
        },
        "capacity": {
            "per_replica_matrices_per_sim_s": per_replica,
            "fleet_matrices_per_sim_s": fleet_rate,
        },
        "runs": {},
    }
    report["runs"]["unloaded"] = _run_fleet_case(
        _fleet_workload(requests, max_size, distribution, pattern, load * fleet_rate, seed),
        replica_count=replica_count,
        max_batch=max_batch,
        max_wait=max_wait,
        queue_limit=queue_limit,
        injector=None,
        retry=retry,
        shed=True,
        admission=True,
        adaptive=adaptive,
        tuning_cache=tuning_cache,
        adaptive_options=adaptive_options,
    )
    injector = (
        FaultInjector(rate=fault_rate, seed=seed if fault_seed is None else fault_seed)
        if faults == "seeded"
        else None
    )
    report["runs"]["overload"] = _run_fleet_case(
        _fleet_workload(
            requests, max_size, distribution, pattern, overload * fleet_rate, seed
        ),
        replica_count=replica_count,
        max_batch=max_batch,
        max_wait=max_wait,
        queue_limit=queue_limit,
        injector=injector,
        retry=retry,
        shed=True,
        admission=True,
        adaptive=adaptive,
        tuning_cache=tuning_cache,
        adaptive_options=adaptive_options,
    )
    report["runs"]["baseline"] = _run_fleet_case(
        _fleet_workload(
            requests, max_size, distribution, pattern, overload * fleet_rate, seed,
            flat="flat",
        ),
        replica_count=1,
        max_batch=max_batch,
        max_wait=max_wait,
        queue_limit=100 * queue_limit,
        injector=None,
        retry=RetryPolicy(max_retries=0),
        shed=False,
        admission=False,
        slos={"flat": SLOClass("flat", 0)},
        default_slo="flat",
    )
    # The smoke workload is too short for the flat queue to build a 10x
    # backlog; it still must visibly collapse (5x) while the recorded
    # full-scale BENCH artifact holds the strict bound.
    failures = check_fleet_acceptance(report, collapse_factor=5.0 if smoke else 10.0)
    report["acceptance"] = {"pass": not failures, "failures": failures}
    return report


def check_fleet_acceptance(
    report: dict,
    max_degradation: float = 3.0,
    min_completion: float = 0.99,
    collapse_factor: float = 10.0,
) -> list[str]:
    """The chaos/overload gate; returns failure messages (empty = pass).

    Asserts the PR's acceptance criteria: no admitted request is ever
    lost (zero hangs, everything terminal), the overloaded fleet sheds
    best-effort while holding interactive p95 within ``max_degradation``
    of unloaded *and* under the class SLO target, at least
    ``min_completion`` of admitted interactive requests complete, seeded
    faults actually fired, and the no-fleet baseline really collapses
    (``collapse_factor`` x unloaded p95) — otherwise the fleet layer is
    not buying anything.
    """
    failures = []
    runs = report["runs"]
    for name, run in runs.items():
        if run["hung"]:
            failures.append(f"{name}: {run['hung']} requests never reached a terminal state")
    unloaded = runs["unloaded"]["classes"].get("interactive", {})
    overloaded = runs["overload"]["classes"].get("interactive", {})
    base_p95 = max(unloaded.get("latency_s", {}).get("p95", 0.0), 1e-9)
    over_p95 = overloaded.get("latency_s", {}).get("p95", 0.0)
    if over_p95 > max_degradation * base_p95:
        failures.append(
            f"overload: interactive p95 {over_p95 * 1e3:.3f} ms exceeds "
            f"{max_degradation}x unloaded ({base_p95 * 1e3:.3f} ms)"
        )
    target = report["config"].get("interactive_target_p95_s")
    if target is not None and over_p95 > target:
        failures.append(
            f"overload: interactive p95 {over_p95 * 1e3:.3f} ms over the "
            f"{target * 1e3:.0f} ms SLO target"
        )
    ratio = overloaded.get("completion_ratio", 0.0)
    if ratio < min_completion:
        failures.append(
            f"overload: only {ratio:.4f} of admitted interactive requests completed "
            f"(need >= {min_completion})"
        )
    if runs["overload"]["shed_ratio"] <= 0.0:
        failures.append("overload: shed ratio is 0 — overload protection never engaged")
    if report["config"]["faults"] == "seeded":
        injected = runs["overload"].get("faults", {}).get("injected", 0)
        if injected <= 0:
            failures.append("overload: fault injection was requested but nothing fired")
        fleet_counts = runs["overload"]["fleet"]["requests"]
        admitted = fleet_counts["admitted"]
        terminal = sum(
            cls["outcomes"].get(o, 0)
            for cls in runs["overload"]["fleet"]["classes"].values()
            for o in ("completed", "failed", "cancelled")
        )
        if terminal != admitted:
            failures.append(
                f"overload: {admitted} admitted but only {terminal} reached a terminal "
                "state — an injected fault lost a request"
            )
    flat = runs["baseline"]["classes"].get("interactive", {})
    flat_p95 = flat.get("latency_s", {}).get("p95", 0.0)
    if flat_p95 <= collapse_factor * base_p95 and flat.get("completion_ratio", 1.0) >= 1.0:
        failures.append(
            f"baseline: single-server p95 {flat_p95 * 1e3:.3f} ms did not collapse "
            f"(need > {collapse_factor}x unloaded {base_p95 * 1e3:.3f} ms) — "
            "the fleet comparison is vacuous"
        )
    return failures
