"""The fleet front door: SLO classes, fair queuing, retries, shedding.

:class:`FleetRouter` sits in front of N :class:`~repro.serving.fleet.Replica`
batch servers and owns everything a single server cannot:

* **SLO classes** — every request belongs to one of the
  :data:`DEFAULT_SLOS` classes (``interactive`` / ``batch`` /
  ``best-effort``): a strict dispatch priority, a p95 target, and a
  shed level.  Under overload the router rejects the *lowest* classes
  first (typed :class:`~repro.errors.OverloadShedError`), which is what
  keeps the interactive tail flat instead of letting one shared queue
  collapse for everyone.
* **Weighted-fair tenancy** — within a class, tenants share capacity by
  start-time fair queuing (SFQ) over per-tenant FIFO queues: each
  admitted request gets a virtual start tag
  ``max(V, tenant_finish)`` and advances its tenant's finish tag by
  ``cost / weight``; dispatch always takes the smallest start tag, so
  no backlogged tenant is ever starved and long-run service tracks the
  configured weights.  Per-tenant quotas bound outstanding requests
  (typed :class:`~repro.errors.QuotaExceededError`).
* **Deadline-aware admission** — a request whose relative deadline the
  current backlog-delay estimate already dooms is refused up front
  (:class:`~repro.errors.DeadlineUnmeetableError`) instead of being
  served as a guaranteed miss.
* **Faults, retries, health** — a dispatch that dies with a retryable
  device fault (:class:`~repro.errors.DeviceError`,
  :class:`~repro.errors.PlanExecutionError`) is retried as a group on a
  *different* healthy replica with exponential backoff, bounded by the
  :class:`~repro.serving.faults.RetryPolicy`; repeated faults (or
  stall-slow batches) trip the replica's circuit breaker and eject it
  for a cooldown.  Retries exhausted resolve the client future with
  :class:`~repro.errors.RetriesExhaustedError` — an admitted request
  always terminates with a response or a typed error, never a hang.
* **Cancellation** — :meth:`FleetRouter.cancel` (and per-request hard
  ``timeout``) propagates through every stage: queued tickets drop out
  of the fair queues, forwarded tickets are pulled back out of the
  replica's batcher (``BatchServer.cancel``), and a dispatch that
  already launched completes but has its result discarded.

Two driving modes mirror :class:`~repro.serving.server.BatchServer`:
the deterministic synchronous :meth:`pump` loop on an injected
(virtual) clock — what the open-loop ``fleet-bench`` and the chaos CI
job drive — and a threaded mode (:meth:`start`) where each replica's
own worker batches and the router forwards/retries via future
callbacks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    AdmissionError,
    ArgumentError,
    DeadlineUnmeetableError,
    OverloadShedError,
    QuotaExceededError,
    RequestCancelled,
    RetriesExhaustedError,
    ServingError,
)
from ..types import Precision
from .. import flops as _flops
from .faults import RetryPolicy
from .fleet import FleetMetrics, Replica, build_fleet
from .request import RequestFuture

__all__ = ["DEFAULT_SLOS", "FleetRouter", "SLOClass", "Ticket"]


@dataclass(frozen=True)
class SLOClass:
    """One service class: priority, latency target, shed behaviour.

    ``priority`` — smaller dispatches first (strict across classes).
    ``target_p95`` — the class's latency objective (seconds); the
    router never enforces it directly, but the chaos CI job asserts the
    interactive class stays under it while shedding.  ``shed_at`` —
    fraction of the router's ``queue_limit`` above which *new*
    submissions of this class are shed (``None`` = never shed early;
    only the hard queue limit refuses).  ``default_deadline`` — relative
    deadline applied when the caller gives none.
    """

    name: str
    priority: int
    target_p95: float | None = None
    default_deadline: float | None = None
    shed_at: float | None = None


DEFAULT_SLOS = {
    "interactive": SLOClass("interactive", 0, target_p95=0.05, default_deadline=0.1),
    "batch": SLOClass("batch", 1, shed_at=0.85),
    "best-effort": SLOClass("best-effort", 2, shed_at=0.5),
}


@dataclass(eq=False)
class Ticket:
    """One admitted request, as the router tracks it end to end.

    The client-facing handle: ``ticket.future.result()`` blocks for the
    terminal :class:`~repro.serving.request.Response` or typed error;
    ``router.cancel(ticket)`` abandons it.  ``outcome`` is one of
    ``"completed"`` / ``"failed"`` / ``"cancelled"`` once terminal, and
    ``completed_at`` stamps the router clock at that instant.
    """

    ticket_id: int
    matrix: np.ndarray
    rhs: np.ndarray | None
    tenant: str
    slo: SLOClass
    arrival: float
    cost: float
    deadline: float | None = None
    timeout: float | None = None
    future: RequestFuture = field(default_factory=RequestFuture)
    attempts: int = 0
    not_before: float = 0.0
    start_tag: float = 0.0
    cancelled: bool = False
    last_error: BaseException | None = None
    replica: Replica | None = None
    replica_future: RequestFuture | None = None
    outcome: str | None = None
    completed_at: float | None = None

    @property
    def n(self) -> int:
        return int(self.matrix.shape[0])


class _ClassQueue:
    """Start-time fair queuing across tenants within one SLO class."""

    def __init__(self):
        self.virtual = 0.0
        self.queues: dict[str, deque[Ticket]] = {}
        self.finish: dict[str, float] = {}
        self.size = 0

    def push(self, ticket: Ticket, weight: float) -> None:
        start = max(self.virtual, self.finish.get(ticket.tenant, 0.0))
        ticket.start_tag = start
        self.finish[ticket.tenant] = start + ticket.cost / max(weight, 1e-9)
        self.queues.setdefault(ticket.tenant, deque()).append(ticket)
        self.size += 1

    def _prune(self, q: deque) -> None:
        while q and q[0].outcome is not None:
            q.popleft()
            self.size -= 1

    def pop(self, now: float) -> Ticket | None:
        """The eligible head with the smallest start tag, or ``None``.

        A tenant whose head is backing off (``not_before`` in the
        future) is skipped — retries never block other tenants.
        """
        best = None
        for q in self.queues.values():
            self._prune(q)
            if not q:
                continue
            head = q[0]
            if head.not_before > now:
                continue
            if best is None or (head.start_tag, head.ticket_id) < (
                best.start_tag, best.ticket_id
            ):
                best = head
        if best is None:
            return None
        q = self.queues[best.tenant]
        q.popleft()
        self.size -= 1
        self.virtual = max(self.virtual, best.start_tag)
        return best

    def earliest_wakeup(self, now: float) -> float | None:
        """Soonest future instant a currently-blocked head unblocks."""
        times = []
        for q in self.queues.values():
            self._prune(q)
            if q and q[0].not_before > now:
                times.append(q[0].not_before)
        return min(times, default=None)

    def tickets(self) -> list[Ticket]:
        return [t for q in self.queues.values() for t in q if t.outcome is None]


@dataclass
class _TenantState:
    name: str
    weight: float = 1.0
    quota: int | None = None
    outstanding: int = 0


@dataclass
class _RetryGroup:
    not_before: float
    tickets: list
    exclude: str | None = None


class FleetRouter:
    """Front-end router over N replicated batch servers.

    Parameters
    ----------
    replicas:
        Pre-built :class:`~repro.serving.fleet.Replica` list; ``None``
        builds ``replica_count`` fresh ones via
        :func:`~repro.serving.fleet.build_fleet` (each with its own
        device group of ``devices_per_replica``, all sharing one plan
        cache, ``fault_injector`` installed on every server).
    queue_limit:
        Hard bound on admitted-but-unfinished requests; SLO shed levels
        are fractions of it.
    slos:
        Class table (name -> :class:`SLOClass`); defaults to
        :data:`DEFAULT_SLOS`.
    retry:
        :class:`~repro.serving.faults.RetryPolicy`; ``RetryPolicy(0)``
        disables re-dispatch.
    shed / admission_control:
        Master switches for overload shedding and deadline-aware
        admission (both on by default; the "no-fleet" bench baseline
        turns them off).
    slow_factor:
        A successful batch slower than ``slow_factor`` x the EMA batch
        time counts against its replica's health (stall detection).
    clock:
        Wall-clock source; the deterministic bench injects a virtual
        clock shared with every replica server.
    """

    def __init__(
        self,
        replicas: list[Replica] | None = None,
        *,
        replica_count: int = 2,
        devices_per_replica: int = 1,
        policy: str = "greedy-window",
        max_batch: int = 32,
        max_wait: float = 2e-3,
        queue_limit: int = 4096,
        slos: dict[str, SLOClass] | None = None,
        default_slo: str = "batch",
        default_weight: float = 1.0,
        retry: RetryPolicy | None = None,
        fault_injector=None,
        shed: bool = True,
        admission_control: bool = True,
        slow_factor: float = 8.0,
        options=None,
        optimize: str | None = None,
        plan_cache=None,
        execute_numerics: bool = True,
        health_threshold: int = 2,
        health_cooldown: float = 0.25,
        clock=time.monotonic,
        name: str = "fleet",
        adaptive: bool = False,
        tuning_cache=None,
        adaptive_options: dict | None = None,
    ):
        if queue_limit <= 0:
            raise ArgumentError(7, f"queue_limit must be positive, got {queue_limit}")
        if default_weight <= 0:
            raise ArgumentError(10, f"default_weight must be positive, got {default_weight}")
        self.name = str(name)
        self.clock = clock
        self.max_batch = int(max_batch)
        self.queue_limit = int(queue_limit)
        self.retry = retry if retry is not None else RetryPolicy()
        self.shed_enabled = bool(shed)
        self.admission_control = bool(admission_control)
        self.slow_factor = float(slow_factor)
        self.default_weight = float(default_weight)
        self.slos = dict(slos) if slos is not None else dict(DEFAULT_SLOS)
        if default_slo not in self.slos:
            raise ArgumentError(9, f"default_slo {default_slo!r} not in slo table")
        self.default_slo = default_slo
        if replicas is None:
            replicas = build_fleet(
                replica_count,
                devices_per_replica=devices_per_replica,
                policy=policy,
                max_batch=max_batch,
                max_wait=max_wait,
                options=options,
                optimize=optimize,
                plan_cache=plan_cache,
                fault_injector=fault_injector,
                execute_numerics=execute_numerics,
                clock=clock,
                health_threshold=health_threshold,
                health_cooldown=health_cooldown,
                name=name,
                adaptive=adaptive,
                tuning_cache=tuning_cache,
                adaptive_options=adaptive_options,
            )
        if not replicas:
            raise ArgumentError(1, "fleet needs at least one replica")
        self.replicas = list(replicas)
        self.metrics = FleetMetrics()
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._queues = {
            c.name: _ClassQueue()
            for c in sorted(self.slos.values(), key=lambda c: c.priority)
        }
        self._class_order = sorted(self.slos.values(), key=lambda c: c.priority)
        self._tenants: dict[str, _TenantState] = {}
        self._retry_groups: list[_RetryGroup] = []
        self._pending = 0
        self._next_ticket = 0
        self._rr = 0
        self._accepting = True
        self._stopping = False
        self._threaded = False
        self._thread: threading.Thread | None = None
        self._service_ema: float | None = None
        self._batch_ema: float | None = None
        self._seen_errors: deque[int] = deque(maxlen=256)

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    def set_tenant(self, name: str, *, weight: float | None = None, quota: int | None = None):
        """Register/update one tenant's fair-share weight and quota."""
        with self._lock:
            state = self._tenant(name)
            if weight is not None:
                if weight <= 0:
                    raise ArgumentError(2, f"tenant weight must be positive, got {weight}")
                state.weight = float(weight)
            state.quota = quota if quota is None else int(quota)
            return state

    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = self._tenants[name] = _TenantState(name, weight=self.default_weight)
        return state

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: np.ndarray,
        rhs: np.ndarray | None = None,
        *,
        tenant: str = "default",
        slo: str | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> Ticket:
        """Admit one problem into the fleet; returns its :class:`Ticket`.

        ``deadline`` (relative seconds) is scheduling pressure and a
        miss statistic; ``timeout`` (relative seconds) is a hard cancel:
        a request still unserved at ``arrival + timeout`` resolves with
        :class:`~repro.errors.RequestCancelled`.  Refusals raise typed
        :class:`~repro.errors.AdmissionError` subclasses and count in
        the fleet metrics under their own outcome.
        """
        slo_cls = self.slos.get(slo if slo is not None else self.default_slo)
        if slo_cls is None:
            known = ", ".join(sorted(self.slos))
            raise ArgumentError(4, f"unknown slo class {slo!r}; known: {known}")
        if deadline is None:
            deadline = slo_cls.default_deadline
        if deadline is not None and deadline < 0:
            raise ArgumentError(5, f"deadline cannot be negative, got {deadline}")
        if timeout is not None and timeout <= 0:
            raise ArgumentError(6, f"timeout must be positive, got {timeout}")
        with self._lock:
            now = self.clock()
            self.metrics.record_outcome(tenant, slo_cls.name, "submitted")
            if not self._accepting:
                raise AdmissionError("fleet router is not accepting requests")
            state = self._tenant(tenant)
            if state.quota is not None and state.outstanding >= state.quota:
                self.metrics.record_outcome(tenant, slo_cls.name, "rejected_quota")
                raise QuotaExceededError(tenant, state.quota)
            if self._pending >= self.queue_limit:
                self.metrics.record_outcome(tenant, slo_cls.name, "rejected_full")
                raise AdmissionError(
                    f"fleet backlog full ({self.queue_limit} outstanding); request rejected"
                )
            if (
                self.shed_enabled
                and slo_cls.shed_at is not None
                and self._pending >= slo_cls.shed_at * self.queue_limit
            ):
                self.metrics.record_outcome(tenant, slo_cls.name, "shed")
                raise OverloadShedError(
                    slo_cls.name, self._pending, int(slo_cls.shed_at * self.queue_limit)
                )
            if self.admission_control and deadline is not None:
                estimate = self._backlog_delay(slo_cls)
                # Refuse only clearly-doomed requests: the estimate is
                # an EMA-based guess, so demand a 2x margin before
                # turning a maybe-miss into a certain rejection.
                if estimate > 2.0 * deadline:
                    self.metrics.record_outcome(tenant, slo_cls.name, "rejected_deadline")
                    raise DeadlineUnmeetableError(deadline, estimate)
            precision = Precision.from_dtype(matrix.dtype)
            ticket = Ticket(
                ticket_id=self._next_ticket,
                matrix=matrix,
                rhs=rhs,
                tenant=tenant,
                slo=slo_cls,
                arrival=now,
                cost=_flops.potrf_flops(int(matrix.shape[0]), precision) / 1e9,
                deadline=None if deadline is None else now + deadline,
                timeout=None if timeout is None else now + timeout,
            )
            self._next_ticket += 1
            self._queues[slo_cls.name].push(ticket, state.weight)
            state.outstanding += 1
            self._pending += 1
            self.metrics.record_admit(tenant, slo_cls.name, self._pending)
            self._cond.notify_all()
            return ticket

    def _backlog_delay(self, slo_cls: SLOClass) -> float:
        """Estimated queueing delay a new request of this class faces:
        same-or-higher-priority backlog over the fleet's healthy
        service rate (EMA of per-request simulated service time)."""
        if self._service_ema is None:
            return 0.0
        ahead = sum(
            q.size
            for cls, q in (
                (self.slos[name], queue) for name, queue in self._queues.items()
            )
            if cls.priority <= slo_cls.priority
        )
        ahead += sum(r.outstanding for r in self.replicas)
        now = self.clock()
        healthy = sum(1 for r in self.replicas if r.health.healthy(now)) or 1
        return ahead * self._service_ema / healthy

    @property
    def pending(self) -> int:
        """Admitted requests not yet terminal (queued + in flight)."""
        with self._lock:
            return self._pending

    def idle(self) -> bool:
        with self._lock:
            return (
                all(q.size == 0 for q in self._queues.values())
                and not self._retry_groups
                and all(not r.assigned for r in self.replicas)
            )

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, ticket: Ticket, reason: str = "cancelled by client") -> bool:
        """Abandon one admitted request; returns False if already terminal.

        Propagation: still fair-queued -> dropped and resolved now;
        forwarded but not yet launched -> pulled out of the replica's
        batcher (or flagged so its dispatch drops it); already launched
        -> the batch completes, the result is discarded and the future
        still resolves with :class:`~repro.errors.RequestCancelled`.
        """
        with self._lock:
            if ticket.outcome is not None:
                return False
            ticket.cancelled = True
            if ticket.replica_future is None:
                # Still in a class queue; lazily pruned from the deque.
                self._terminal(ticket, "cancelled", error=RequestCancelled(reason))
                return True
            if not ticket.replica_future.done():
                outcome = ticket.replica.server.cancel(ticket.replica_future.req_id)
                if outcome == "cancelled" and not self._threaded:
                    # Replica future just resolved; finalize inline so
                    # sync-mode callers see the cancel without a pump.
                    ticket.replica.assigned.pop(ticket.replica_future.req_id, None)
                    self._terminal(ticket, "cancelled", error=RequestCancelled(reason))
            return True

    def _expire(self, now: float) -> None:
        """Hard-timeout sweep: cancel overdue tickets wherever they are."""
        with self._lock:
            overdue = [
                t
                for q in self._queues.values()
                for t in q.tickets()
                if t.timeout is not None and t.timeout <= now
            ]
            for group in self._retry_groups:
                overdue.extend(
                    t
                    for t in group.tickets
                    if t.outcome is None and t.timeout is not None and t.timeout <= now
                )
            for replica in self.replicas:
                overdue.extend(
                    t
                    for t in list(replica.assigned.values())
                    if t.outcome is None
                    and not t.cancelled
                    and t.timeout is not None
                    and t.timeout <= now
                )
        for ticket in overdue:
            self.cancel(ticket, reason=f"client timeout after {now - ticket.arrival:.3f}s")

    # ------------------------------------------------------------------
    # dispatch (synchronous pump mode)
    # ------------------------------------------------------------------
    def pump(self, now: float | None = None) -> int:
        """Advance the fleet at instant ``now``: expire timeouts, feed
        free healthy replicas in priority/fair order, dispatch one batch
        each, and sweep outcomes (complete / retry / eject).  Returns
        the number of batches dispatched — the deterministic engine the
        open-loop bench drives on a virtual clock.
        """
        now = self.clock() if now is None else float(now)
        self._expire(now)
        dispatched = 0
        count = len(self.replicas)
        order = [self.replicas[(self._rr + i) % count] for i in range(count)]
        self._rr = (self._rr + 1) % count
        for replica in order:
            if not replica.free_at(now):
                continue
            self._feed(replica, now)
            if replica.server.queue_depth == 0:
                continue
            try:
                replica.server.pump(force=True)
            except Exception:
                # The batch's futures carry the typed error; the sweep
                # below turns it into retries/terminal failures.
                pass
            dispatched += 1
            self._sweep(replica, now)
        return dispatched

    def _feed(self, replica: Replica, now: float) -> None:
        """Move due work onto one free replica, retry groups first."""
        with self._lock:
            for group in list(self._retry_groups):
                if group.not_before > now:
                    continue
                if group.exclude == replica.name and len(self.replicas) > 1:
                    continue
                self._retry_groups.remove(group)
                live = [t for t in group.tickets if t.outcome is None]
                for ticket in live:
                    if ticket.cancelled:
                        self._terminal(
                            ticket, "cancelled",
                            error=RequestCancelled("cancelled while awaiting retry"),
                        )
                    else:
                        self._forward(ticket, replica, now)
                if live:
                    # Keep the retried group its own dispatch: its batch
                    # key then matches the failed attempt's and the
                    # stats merge stays idempotent.
                    return
            while replica.server.queue_depth < self.max_batch:
                ticket = self._next_ticket_for_dispatch(now)
                if ticket is None:
                    break
                self._forward(ticket, replica, now)

    def _next_ticket_for_dispatch(self, now: float) -> Ticket | None:
        for cls in self._class_order:
            ticket = self._queues[cls.name].pop(now)
            if ticket is not None:
                return ticket
        return None

    def _forward(self, ticket: Ticket, replica: Replica, now: float) -> None:
        rel_deadline = (
            None if ticket.deadline is None else max(ticket.deadline - now, 0.0)
        )
        fut = replica.server.submit(ticket.matrix, ticket.rhs, deadline=rel_deadline)
        ticket.replica = replica
        ticket.replica_future = fut
        ticket.attempts += 1
        replica.assigned[fut.req_id] = ticket
        if self._threaded:
            fut.add_done_callback(lambda _fut, t=ticket: self._on_replica_done(t))

    def _sweep(self, replica: Replica, now: float) -> None:
        """Collect resolved replica futures after a sync-mode dispatch."""
        with self._lock:
            done = [
                (rid, t)
                for rid, t in replica.assigned.items()
                if t.replica_future.done()
            ]
            for rid, _ in done:
                del replica.assigned[rid]
        successes: dict[int, list] = {}
        failures: dict[int, list] = {}
        for _, ticket in done:
            err = ticket.replica_future.exception(timeout=0)
            if err is None:
                resp = ticket.replica_future.result(timeout=0)
                successes.setdefault(resp.batch_id, []).append((ticket, resp))
            else:
                failures.setdefault(id(err), []).append((ticket, err))

        elapsed = 0.0
        for batch_id, pairs in sorted(successes.items()):
            e = pairs[0][1].service_sim
            elapsed = max(elapsed, e)
            completion = now + e
            self._record_success_batch(replica, batch_id, pairs, now, completion, e)
        replica.busy_until = max(replica.busy_until, now) + elapsed
        replica.dispatches += len(successes)

        for _, pairs in failures.items():
            self._handle_failed_batch(replica, pairs, now)

    def _record_success_batch(
        self, replica: Replica, batch_id: int, pairs, now: float, completion: float, e: float
    ) -> None:
        key = (replica.name, frozenset(t.ticket_id for t, _ in pairs))
        self.metrics.record_attempt(key, self._batch_launch_stats(replica, batch_id))
        replica.health.record_success()
        # Stall detection: a "successful" batch that took slow_factor x
        # the EMA batch time still counts against the replica's health.
        if (
            self._batch_ema is not None
            and self._batch_ema > 0
            and e > self.slow_factor * self._batch_ema
        ):
            if replica.health.record_slow(now):
                self.metrics.record_ejection(replica.name)
        self._batch_ema = e if self._batch_ema is None else 0.8 * self._batch_ema + 0.2 * e
        per_req = e / max(len(pairs), 1)
        self._service_ema = (
            per_req if self._service_ema is None else 0.9 * self._service_ema + 0.1 * per_req
        )
        for ticket, resp in pairs:
            if ticket.cancelled:
                self._terminal(
                    ticket, "cancelled",
                    error=RequestCancelled("client gone; result discarded"),
                    completed_at=completion,
                )
                continue
            missed = ticket.deadline is not None and completion > ticket.deadline
            self.metrics.record_completion(
                ticket.tenant, ticket.slo.name, completion - ticket.arrival, missed
            )
            self._terminal(
                ticket, "completed", response=resp, completed_at=completion, counted=True
            )

    def _batch_launch_stats(self, replica: Replica, batch_id: int):
        for record in reversed(replica.server.metrics.batches):
            if record.batch_id == batch_id:
                return record.launch_stats
        return None

    def _handle_failed_batch(self, replica: Replica, pairs, now: float) -> None:
        err = pairs[0][1]
        cancels = [t for t, _ in pairs if isinstance(err, RequestCancelled) or t.cancelled]
        faulted = [t for t, _ in pairs if t not in cancels]
        for ticket in cancels:
            self._terminal(
                ticket, "cancelled",
                error=err if isinstance(err, RequestCancelled) else RequestCancelled(str(err)),
                completed_at=now,
            )
        if not faulted:
            return
        self.metrics.record_dispatch_fault(err)
        key = (replica.name, frozenset(t.ticket_id for t in faulted + cancels))
        partial_stats = getattr(err, "partial_launch_stats", None)
        if partial_stats is not None:
            self.metrics.record_attempt(key, partial_stats)
        partial = getattr(err, "partial", None)
        if partial:
            self.metrics.record_salvaged(partial)
        if replica.health.record_failure(now):
            self.metrics.record_ejection(replica.name)
        retryable = self.retry.retryable(err)
        group = []
        for ticket in faulted:
            ticket.last_error = err
            if retryable and ticket.attempts <= self.retry.max_retries:
                group.append(ticket)
                self.metrics.record_retry(type(err).__name__)
            elif retryable:
                self._terminal(
                    ticket, "failed",
                    error=RetriesExhaustedError(ticket.attempts, err),
                    completed_at=now,
                )
            else:
                self._terminal(ticket, "failed", error=err, completed_at=now)
        if group:
            attempt = max(t.attempts for t in group)
            not_before = now + self.retry.delay(attempt)
            for ticket in group:
                ticket.not_before = not_before
                ticket.replica = None
                ticket.replica_future = None
            with self._lock:
                self._retry_groups.append(
                    _RetryGroup(
                        not_before,
                        group,
                        exclude=replica.name if len(self.replicas) > 1 else None,
                    )
                )
                self._cond.notify_all()

    def _terminal(
        self,
        ticket: Ticket,
        outcome: str,
        *,
        response=None,
        error=None,
        completed_at: float | None = None,
        counted: bool = False,
    ) -> None:
        with self._lock:
            if ticket.outcome is not None:
                return
            ticket.outcome = outcome
            ticket.completed_at = completed_at
            self._pending -= 1
            self._tenant(ticket.tenant).outstanding -= 1
            if not counted:
                self.metrics.record_outcome(ticket.tenant, ticket.slo.name, outcome)
            self._cond.notify_all()
        if response is not None:
            ticket.future.set_result(response)
        else:
            ticket.future.set_exception(
                error if error is not None else ServingError("request terminated")
            )

    # ------------------------------------------------------------------
    # event horizon (virtual-clock driving)
    # ------------------------------------------------------------------
    def next_event_time(self, now: float) -> float | None:
        """Earliest instant >= ``now`` at which :meth:`pump` could make
        progress, or ``None`` when the fleet is idle.  The open-loop
        bench advances its virtual clock to ``min(next arrival, this)``.
        """
        with self._lock:
            if self.idle():
                return None
            candidates = []
            queued = any(q.size for q in self._queues.values())
            backlogged = queued or any(r.server.queue_depth for r in self.replicas)
            due_retry = [g.not_before for g in self._retry_groups]
            if backlogged or due_retry:
                for r in self.replicas:
                    at = max(r.busy_until, now)
                    if not r.health.healthy(now):
                        at = max(at, r.health.ejected_until)
                    candidates.append(at)
            candidates.extend(t for t in due_retry)
            for q in self._queues.values():
                wake = q.earliest_wakeup(now)
                if wake is not None:
                    candidates.append(wake)
            for replica in self.replicas:
                for t in replica.assigned.values():
                    if t.timeout is not None:
                        candidates.append(max(t.timeout, now))
            if not candidates:
                return now
            return max(min(candidates), now)

    def drain(self, timeout_events: int = 100000) -> bool:
        """Pump until idle on the router's own clock (sync mode).

        Virtual-clock callers (the bench) drive their own loop; this is
        the convenience for tests and threaded callers.  Returns True
        once idle.
        """
        if self._threaded:
            with self._cond:
                return self._cond.wait_for(self.idle, timeout=30.0)
        now = self.clock()
        for _ in range(timeout_events):
            if self.idle():
                return True
            progressed = self.pump(now)
            nxt = self.next_event_time(now)
            if nxt is None:
                return self.idle()
            if not progressed:
                now = nxt if nxt > now else now + 1e-4
            else:
                now = max(now, nxt)
        return self.idle()

    # ------------------------------------------------------------------
    # threaded mode
    # ------------------------------------------------------------------
    def start(self) -> "FleetRouter":
        """Run the fleet asynchronously: every replica's own worker
        thread batches; the router thread forwards and retries."""
        with self._lock:
            if self._stopping:
                raise ServingError("cannot start a stopped router")
            if self._thread is not None:
                return self
            self._threaded = True
            for replica in self.replicas:
                replica.server.start()
            self._thread = threading.Thread(
                target=self._run, name="repro-fleet-router", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stopping and all(q.size == 0 for q in self._queues.values()):
                    return
                self._cond.wait(timeout=2e-3)
            now = self.clock()
            self._expire(now)
            with self._lock:
                while True:
                    replica = self._pick_replica(now)
                    if replica is None:
                        break
                    ticket = self._next_due(now)
                    if ticket is None:
                        break
                    self._forward(ticket, replica, now)

    def _pick_replica(self, now: float) -> Replica | None:
        """Least-loaded healthy replica with forwarding headroom."""
        best = None
        for replica in self.replicas:
            if not replica.health.healthy(now):
                continue
            if replica.outstanding >= 2 * self.max_batch:
                continue
            if best is None or replica.outstanding < best.outstanding:
                best = replica
        return best

    def _next_due(self, now: float) -> Ticket | None:
        for group in list(self._retry_groups):
            if group.not_before > now:
                continue
            self._retry_groups.remove(group)
            live = [t for t in group.tickets if t.outcome is None and not t.cancelled]
            for ticket in group.tickets:
                if ticket.outcome is None and ticket.cancelled:
                    self._terminal(
                        ticket, "cancelled",
                        error=RequestCancelled("cancelled while awaiting retry"),
                    )
            if live:
                for extra in live[1:]:
                    # Threaded mode retries per ticket; re-queue the rest.
                    self._retry_groups.append(_RetryGroup(group.not_before, [extra]))
                return live[0]
        return self._next_ticket_for_dispatch(now)

    def _on_replica_done(self, ticket: Ticket) -> None:
        """Threaded-mode completion callback (replica worker thread)."""
        now = self.clock()
        replica = ticket.replica
        with self._lock:
            if ticket.replica_future is not None and ticket.replica_future.req_id is not None:
                replica.assigned.pop(ticket.replica_future.req_id, None)
        err = ticket.replica_future.exception(timeout=0)
        if err is None:
            resp = ticket.replica_future.result(timeout=0)
            self._record_success_batch(
                replica, resp.batch_id, [(ticket, resp)], now, now, resp.service_sim
            )
        else:
            new_error = id(err) not in self._seen_errors
            if new_error:
                self._seen_errors.append(id(err))
            if not new_error:
                # Health/fault accounting happened for a batchmate;
                # still route this ticket through retry/terminal logic.
                self._handle_ticket_failure(replica, ticket, err, now, account=False)
            else:
                self._handle_ticket_failure(replica, ticket, err, now, account=True)
        with self._cond:
            self._cond.notify_all()

    def _handle_ticket_failure(
        self, replica: Replica, ticket: Ticket, err: BaseException, now: float, account: bool
    ) -> None:
        if account:
            self.metrics.record_dispatch_fault(err)
            if replica.health.record_failure(now):
                self.metrics.record_ejection(replica.name)
            partial = getattr(err, "partial", None)
            if partial:
                self.metrics.record_salvaged(partial)
        if ticket.cancelled or isinstance(err, RequestCancelled):
            self._terminal(
                ticket, "cancelled",
                error=err if isinstance(err, RequestCancelled) else RequestCancelled(str(err)),
                completed_at=now,
            )
            return
        ticket.last_error = err
        if self.retry.retryable(err) and ticket.attempts <= self.retry.max_retries:
            self.metrics.record_retry(type(err).__name__)
            ticket.not_before = now + self.retry.delay(ticket.attempts)
            ticket.replica = None
            ticket.replica_future = None
            with self._lock:
                self._retry_groups.append(
                    _RetryGroup(
                        ticket.not_before,
                        [ticket],
                        exclude=replica.name if len(self.replicas) > 1 else None,
                    )
                )
        elif self.retry.retryable(err):
            self._terminal(
                ticket, "failed",
                error=RetriesExhaustedError(ticket.attempts, err), completed_at=now,
            )
        else:
            self._terminal(ticket, "failed", error=err, completed_at=now)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Close admission, then drain or cancel the backlog; stops the
        router thread and every replica server.  Idempotent."""
        with self._lock:
            self._accepting = False
        if drain:
            self.drain()
        else:
            with self._lock:
                queued = [t for q in self._queues.values() for t in q.tickets()]
                for group in self._retry_groups:
                    queued.extend(t for t in group.tickets if t.outcome is None)
                self._retry_groups.clear()
            for ticket in queued:
                self._terminal(
                    ticket, "cancelled",
                    error=RequestCancelled("router shut down before request was served"),
                )
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
        for replica in self.replicas:
            replica.server.shutdown(drain=drain, timeout=timeout)

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def replica_table(self) -> list[dict]:
        """One health/throughput row per replica (snapshot embeds it)."""
        now = self.clock()
        rows = []
        for replica in self.replicas:
            health = replica.health
            rows.append(
                {
                    "name": replica.name,
                    "healthy": health.healthy(now),
                    "dispatches": replica.dispatches,
                    "outstanding": replica.outstanding,
                    "failures": health.failures,
                    "slow_dispatches": health.slow_dispatches,
                    "ejections": health.ejections,
                    "completed": replica.server.metrics.completed,
                }
            )
        return rows

    def snapshot(self) -> dict:
        """Fleet-wide JSON-ready report: router metrics, replica table,
        and the summed replica serving metrics."""
        snap = self.metrics.snapshot()
        snap["replicas"] = self.replica_table()
        snap["replica_serving"] = {
            r.name: r.server.metrics.snapshot() for r in self.replicas
        }
        adaptive = {
            r.name: r.server.tuner.snapshot()
            for r in self.replicas
            if r.server.tuner is not None
        }
        if adaptive:
            snap["adaptive"] = adaptive
        return snap
