"""Replicated serving: fleet replicas and fleet-wide telemetry.

One :class:`~repro.serving.server.BatchServer` is a single failure
domain with a single device group's worth of throughput.  The fleet
layer replicates it: :func:`build_fleet` stands up N :class:`Replica`
wrappers — each owning its *own*
:class:`~repro.device.topology.DeviceGroup` (failure isolation: a
replica's modeled device fault never touches its peers) while all
replicas share one thread-safe :class:`~repro.core.plan.PlanCache`
(plan keys include ``id(device)``, so sharing is safe and a router that
re-dispatches a familiar size vector to any replica still hits).

:class:`Replica` also carries what the router needs that the server
does not know about itself: a :class:`~repro.serving.faults.ReplicaHealth`
circuit breaker, the virtual-clock availability model used by the
deterministic pump loop (``busy_until``), and the ticket assignment
table used to sweep completions back out of the replica's futures.

:class:`FleetMetrics` is the fleet-wide registry-backed scoreboard:
per-class/per-tenant request outcomes, shed and retry counters,
latency summaries per SLO class, and a launch-stats accumulator that
uses the keyed idempotent merge (``LaunchStats.merge(key=...)``) so a
batch retried on another replica is counted as one logical batch no
matter how many attempts it took.
"""

from __future__ import annotations

import threading

from ..core.driver import LaunchStats, PotrfOptions
from ..core.plan import PlanCache
from ..device.executor import ExecutionStats
from ..device.topology import DeviceGroup
from ..errors import ArgumentError
from ..observability.registry import MetricsRegistry
from .faults import ReplicaHealth
from .server import BatchServer

__all__ = ["FleetMetrics", "Replica", "build_fleet"]


class Replica:
    """One replicated batch server, as the router sees it."""

    def __init__(self, name: str, server: BatchServer, health: ReplicaHealth | None = None):
        self.name = str(name)
        self.server = server
        self.health = health if health is not None else ReplicaHealth()
        #: Virtual-clock instant this replica's device pipeline is free
        #: again (sync pump mode); the threaded mode ignores it.
        self.busy_until = float("-inf")
        #: Replica req_id -> in-flight ticket, for the completion sweep.
        self.assigned: dict[int, object] = {}
        self.dispatches = 0

    @property
    def outstanding(self) -> int:
        return len(self.assigned)

    def free_at(self, now: float) -> bool:
        return self.health.healthy(now) and self.busy_until <= now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Replica({self.name!r}, outstanding={self.outstanding})"


def build_fleet(
    replica_count: int,
    *,
    devices_per_replica: int = 1,
    members: str | None = None,
    placement: str = "size-stratified",
    policy: str = "greedy-window",
    max_batch: int = 32,
    max_wait: float = 2e-3,
    options: PotrfOptions | None = None,
    optimize: str | None = None,
    plan_cache: PlanCache | None = None,
    fault_injector=None,
    execute_numerics: bool = True,
    clock=None,
    health_threshold: int = 2,
    health_cooldown: float = 0.25,
    name: str = "fleet",
    adaptive: bool = False,
    tuning_cache=None,
    adaptive_options: dict | None = None,
) -> list[Replica]:
    """Stand up ``replica_count`` replicas for a router to own.

    Each replica gets a fresh simulated
    :class:`~repro.device.topology.DeviceGroup` of
    ``devices_per_replica`` devices (``devices_per_replica=1`` keeps a
    single device per replica) and its own admission queue; one shared
    thread-safe plan cache serves them all.  ``members`` (a
    :func:`~repro.device.hetero.parse_members` spec string, e.g.
    ``"k40c*2+cpu"``) gives every replica its own *heterogeneous*
    :class:`~repro.device.hetero.HeteroGroup` instead — replicas may
    mix unequal GPUs and the CPU backend, and each dispatch's placement
    decisions land in the replica server's metrics.  ``fault_injector``
    is installed on every replica — the injector itself keys its
    schedule on the replica name, so replicas fault independently.

    ``adaptive=True`` attaches an :class:`~repro.adaptive.OnlineTuner`
    to every replica server; a shared ``tuning_cache`` lets the first
    replica to converge on a workload warm-start its peers (and the
    next process).  Each replica's tuner gets a distinct seed so
    exploration orders decorrelate across the fleet.
    """
    if replica_count <= 0:
        raise ArgumentError(1, f"replica_count must be positive, got {replica_count}")
    if devices_per_replica <= 0:
        raise ArgumentError(
            2, f"devices_per_replica must be positive, got {devices_per_replica}"
        )
    cache = plan_cache if plan_cache is not None else PlanCache(max_plans=128)
    replicas = []
    for i in range(replica_count):
        rname = f"{name}:r{i}"
        kwargs = {}
        if clock is not None:
            kwargs["clock"] = clock
        if members is not None:
            from ..device.hetero import HeteroGroup

            kwargs["devices"] = HeteroGroup.simulated(
                members,
                execute_numerics=execute_numerics,
                placement=placement,
                name_prefix=f"{rname}:",
            )
        elif devices_per_replica > 1:
            kwargs["devices"] = DeviceGroup.simulated(
                devices_per_replica,
                execute_numerics=execute_numerics,
                name_prefix=f"{rname}:",
            )
        else:
            from ..device.device import Device

            kwargs["device"] = Device(execute_numerics=execute_numerics, name=f"{rname}:dev0")
        if adaptive:
            per_replica = dict(adaptive_options or {})
            per_replica["seed"] = per_replica.get("seed", 0) + i
            kwargs.update(
                adaptive=True,
                tuning_cache=tuning_cache,
                adaptive_options=per_replica,
            )
        server = BatchServer(
            policy=policy,
            max_batch=max_batch,
            max_wait=max_wait,
            options=options,
            optimize=optimize,
            plan_cache=cache,
            fault_injector=fault_injector,
            name=rname,
            **kwargs,
        )
        health = ReplicaHealth(
            failure_threshold=health_threshold, cooldown=health_cooldown
        )
        replicas.append(Replica(rname, server, health=health))
    return replicas


class FleetMetrics:
    """Registry-backed scoreboard for one router's lifetime.

    Outcome vocabulary for ``fleet_requests_total{tenant,slo,outcome}``:

    * ``submitted`` / ``admitted`` — offered vs. accepted at the door;
    * ``shed`` / ``rejected_quota`` / ``rejected_deadline`` /
      ``rejected_full`` — the typed refusals;
    * ``completed`` / ``failed`` / ``cancelled`` — terminal states of
      admitted requests (``failed`` = retries exhausted; a per-matrix
      numerical info code still counts as ``completed`` — the fleet
      delivered an answer).

    Launch accounting: :attr:`launch_stats` merges one
    :class:`~repro.core.driver.LaunchStats` per dispatch attempt under
    the attempt's logical-batch key, so retried batches fold
    idempotently; :attr:`salvaged` accumulates the
    :class:`~repro.device.executor.ExecutionStats` of shards that
    finished inside otherwise-failed attempts (work done, then retried
    elsewhere).
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        r = self.registry
        self._requests = r.counter(
            "fleet_requests_total", "requests by tenant/slo/outcome",
            labels=("tenant", "slo", "outcome"),
        )
        self._retries = r.counter(
            "fleet_retries_total", "re-dispatch attempts by fault kind", labels=("kind",)
        )
        self._ejections = r.counter(
            "fleet_replica_ejections_total", "health ejections by replica",
            labels=("replica",),
        )
        self._dispatch_faults = r.counter(
            "fleet_dispatch_faults_total", "failed dispatch attempts by error type",
            labels=("error",),
        )
        self._latency = r.summary(
            "fleet_latency_seconds", "admitted-request latency by slo class",
            labels=("slo",),
        )
        self._queue_depth = r.summary(
            "fleet_router_depth", "router backlog sampled at each admission"
        )
        self._deadline = r.counter(
            "fleet_deadline_misses_total", "served past deadline by slo", labels=("slo",)
        )
        self.launch_stats = LaunchStats(devices_used=0)
        self.salvaged = ExecutionStats()

    # -- recording ------------------------------------------------------
    def record_outcome(self, tenant: str, slo: str, outcome: str, count: int = 1) -> None:
        self._requests.inc(count, tenant=tenant, slo=slo, outcome=outcome)

    def record_admit(self, tenant: str, slo: str, depth: int) -> None:
        self.record_outcome(tenant, slo, "admitted")
        self._queue_depth.observe(int(depth))

    def record_retry(self, kind: str) -> None:
        self._retries.inc(kind=kind)

    def record_ejection(self, replica: str) -> None:
        self._ejections.inc(replica=replica)

    def record_dispatch_fault(self, error: BaseException) -> None:
        self._dispatch_faults.inc(error=type(error).__name__)

    def record_completion(
        self, tenant: str, slo: str, latency: float, deadline_missed: bool
    ) -> None:
        self.record_outcome(tenant, slo, "completed")
        self._latency.observe(max(float(latency), 0.0), slo=slo)
        if deadline_missed:
            self._deadline.inc(slo=slo)

    def record_attempt(self, key, launch_stats: LaunchStats | None) -> None:
        """Fold one dispatch attempt's stats in under its batch key."""
        if launch_stats is None:
            return
        with self._lock:
            self.launch_stats.merge(launch_stats, key=key)

    def record_salvaged(self, exec_stats) -> None:
        """Fold surviving-shard stats from a failed attempt's
        :class:`~repro.errors.PlanExecutionError`."""
        with self._lock:
            for es in exec_stats:
                if es is not None:
                    self.salvaged.merge(es)

    # -- views ----------------------------------------------------------
    def outcome(self, outcome: str, tenant: str | None = None, slo: str | None = None) -> int:
        """Total for one outcome, optionally filtered by tenant/slo."""
        total = 0.0
        for labels, value in self._requests.items():
            got = dict(labels)
            if got.get("outcome") != outcome:
                continue
            if tenant is not None and got.get("tenant") != tenant:
                continue
            if slo is not None and got.get("slo") != slo:
                continue
            total += value
        return int(total)

    def latency_summary(self, slo: str) -> dict:
        return self._latency.summary(slo=slo)

    def snapshot(self) -> dict:
        """One JSON-ready dict with the fleet's headline numbers."""
        outcomes: dict[str, dict] = {}
        tenants: dict[str, dict] = {}
        for labels, value in self._requests.items():
            got = dict(labels)
            slo, outcome, tenant = got["slo"], got["outcome"], got["tenant"]
            outcomes.setdefault(slo, {})
            outcomes[slo][outcome] = outcomes[slo].get(outcome, 0) + int(value)
            tenants.setdefault(tenant, {})
            tenants[tenant][outcome] = tenants[tenant].get(outcome, 0) + int(value)
        admitted = sum(c.get("admitted", 0) for c in outcomes.values())
        shed = sum(c.get("shed", 0) for c in outcomes.values())
        submitted = sum(c.get("submitted", 0) for c in outcomes.values())
        retries = {
            dict(labels)["kind"]: int(v) for labels, v in self._retries.items()
        }
        with self._lock:
            launch = self.launch_stats.as_dict()
            salvaged_launches = self.salvaged.launches
        return {
            "requests": {
                "submitted": submitted,
                "admitted": admitted,
                "shed": shed,
                "shed_ratio": (shed / submitted) if submitted else 0.0,
            },
            "classes": {
                slo: {
                    "outcomes": dict(sorted(counts.items())),
                    "latency_s": self._latency.summary(slo=slo),
                }
                for slo, counts in sorted(outcomes.items())
            },
            "tenants": {t: dict(sorted(c.items())) for t, c in sorted(tenants.items())},
            "retries": retries,
            "launch_stats": launch,
            "salvaged_launches": int(salvaged_launches),
        }
