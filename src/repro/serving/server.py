"""The batch server: admission, worker loop, dispatch, drain.

``BatchServer`` is the front door the ROADMAP's serving north star asks
for: callers submit one SPD problem at a time and get a future; the
server aggregates compatible requests into
:class:`~repro.core.batch.VBatch` launches with a size-aware window
(:mod:`repro.serving.batcher`), dispatches them over the plan/executor
stack — optionally sharded across a
:class:`~repro.device.topology.DeviceGroup` and re-serving plans from a
shared, thread-safe :class:`~repro.core.plan.PlanCache` — and resolves
each request's future with its own factor/solution slice.

Two driving modes share all of that machinery:

* **asynchronous** — :meth:`start` spawns a worker thread that wakes on
  submissions and window expiry (``max_wait``, deadline pressure, full
  window) — the production shape;
* **synchronous pumping** — :meth:`pump` forms and dispatches one batch
  inline; the closed-loop load generator uses it so benchmark batch
  composition is deterministic under a fixed seed.

Admission control is a bounded queue: ``admission="block"`` applies
backpressure to submitters, ``admission="reject"`` fails fast with
:class:`~repro.errors.AdmissionError`.  :meth:`drain` serves everything
queued then returns; :meth:`shutdown` optionally drains, else cancels
pending futures — mid-stream results stay bit-identical to direct
``potrf_vbatched`` calls either way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import numpy as np

from ..core.batch import VBatch
from ..core.driver import PotrfOptions, run_potrf_vbatched
from ..core.plan import PlanCache
from ..device.device import Device
from ..device.hetero import HeteroGroup
from ..device.topology import DeviceGroup
from ..errors import AdmissionError, ArgumentError, RequestCancelled, ServingError
from ..extensions.solve import getrs_vbatched, potrs_vbatched
from ..observability.trace import Track, current_tracer
from ..ops.driver import run_op_vbatched
from ..ops.options import OpOptions
from .batcher import Batcher, BatchingPolicy, make_policy
from .metrics import BatchRecord, ServerMetrics
from .request import Request, RequestFuture, Response

__all__ = ["BatchServer"]

_ADMISSIONS = ("block", "reject")
_UNSET = object()


class BatchServer:
    """Aggregates individual factorization requests into vbatched launches.

    Every registered operation is servable (``potrf``/``posv``,
    ``geqrf``, ``getrf``/``gesv``, ``gesvj``); each dispatched batch
    runs one factor op, and the batcher keys compatibility on it.

    Parameters
    ----------
    device:
        Target device; ``None`` allocates a fresh simulated K40c.
        Ignored when ``devices`` is given.
    devices:
        A :class:`~repro.device.topology.DeviceGroup` (or device
        sequence) to shard each dispatched batch across.
    policy:
        Batching policy name or instance (see
        :data:`~repro.serving.batcher.POLICIES`).
    max_batch / max_wait / deadline_margin:
        Window bounds: flush on ``max_batch`` queued requests, once the
        most urgent request has waited ``max_wait`` wall seconds, or
        ``deadline_margin`` before the soonest deadline.
    queue_limit / admission:
        Bounded-queue admission control: ``"block"`` applies
        backpressure (submit waits for space — needs a running worker),
        ``"reject"`` raises :class:`~repro.errors.AdmissionError`.
    options:
        :class:`~repro.core.driver.PotrfOptions` for every POTRF
        dispatch.
    op_options:
        :class:`~repro.ops.options.OpOptions` for every non-POTRF
        dispatch (QR/LU/SVD batches).
    optimize:
        Plan-optimizer pass level for every dispatch (overrides
        ``options.optimize`` and ``op_options.optimize``); see
        :mod:`repro.core.optimizer`.
    plan_cache:
        ``"auto"`` (default) creates a private thread-safe
        :class:`~repro.core.plan.PlanCache`; pass an instance to share
        one across servers, or ``None`` to plan every dispatch afresh.
    fault_injector:
        Optional :class:`~repro.serving.faults.FaultInjector`; consulted
        once per dispatched batch.  It may raise (a modeled device OOM /
        shard failure — the batch's futures then carry that typed error)
        or return stall seconds added to the batch's simulated service
        time.  ``None`` (the default) costs nothing.
    clock:
        Wall-clock source (monotonic seconds); injectable for tests.
    name:
        Trace process label for this server's queue/dispatch tracks;
        defaults to ``"{policy}:serving"`` so a multi-policy bench
        trace groups each server with its (prefix-named) devices.
    adaptive:
        ``True`` attaches an :class:`~repro.adaptive.OnlineTuner` that
        retunes the serving knobs (policy, window, max-batch, crossover,
        optimize level, partitioner) at batch-window boundaries from
        live metrics.  ``False`` (the default) leaves the dispatch path
        bit-identical to a server without the subsystem.
    tuning_cache:
        Optional :class:`~repro.autotune.TuningCache` the tuner reads
        warm-start winners from and persists converged configs to,
        keyed by (device spec, workload fingerprint).
    adaptive_options:
        Extra keyword arguments for the
        :class:`~repro.adaptive.OnlineTuner` (``epoch_batches``,
        ``seed``, ``converged_after``, ...).
    """

    def __init__(
        self,
        device: Device | None = None,
        *,
        devices=None,
        policy: str | BatchingPolicy = "greedy-window",
        max_batch: int = 32,
        max_wait: float = 2e-3,
        deadline_margin: float = 0.0,
        queue_limit: int = 1024,
        admission: str = "block",
        options: PotrfOptions | None = None,
        op_options: OpOptions | None = None,
        optimize: str | None = None,
        plan_cache: PlanCache | str | None = "auto",
        fault_injector=None,
        clock=time.monotonic,
        name: str | None = None,
        adaptive: bool = False,
        tuning_cache=None,
        adaptive_options: dict | None = None,
    ):
        if admission not in _ADMISSIONS:
            raise ArgumentError(7, f"bad admission {admission!r} (use one of {_ADMISSIONS})")
        if queue_limit <= 0:
            raise ArgumentError(6, f"queue_limit must be positive, got {queue_limit}")
        if devices is not None:
            if isinstance(devices, (DeviceGroup, HeteroGroup)):
                self.group = devices
            else:
                self.group = DeviceGroup(devices)
            self.device = self.group.staging_device
        else:
            self.device = device if device is not None else Device()
            self.group = None
        self.options = options or PotrfOptions()
        self.op_options = op_options or OpOptions()
        if optimize is not None and optimize != self.options.optimize:
            self.options = replace(self.options, optimize=optimize)
        if optimize is not None and optimize != self.op_options.optimize:
            self.op_options = replace(self.op_options, optimize=optimize)
        self.plan_cache = PlanCache() if plan_cache == "auto" else plan_cache
        self.fault_injector = fault_injector
        self.queue_limit = int(queue_limit)
        self.admission = admission
        self.clock = clock
        self.metrics = ServerMetrics()
        self._batcher = Batcher(
            policy, max_batch=max_batch, max_wait=max_wait, deadline_margin=deadline_margin
        )
        self.name = name if name is not None else f"{self._batcher.policy.name}:serving"
        self.queue_track = Track(self.name, "queue")
        self._batcher.trace_track = self.queue_track
        self._cond = threading.Condition()
        self._dispatch_lock = threading.Lock()
        self._in_flight = 0
        self._accepting = True
        self._stopping = False
        self._worker: threading.Thread | None = None
        self._next_req_id = 0
        self._next_batch_id = 0
        self._cancel_flags: set[int] = set()
        self.metrics.wall_started = self.clock()
        self.tuner = None
        if adaptive:
            # Imported lazily: the adaptive package depends on serving
            # metrics, and a non-adaptive server must not pay for it.
            from ..adaptive import OnlineTuner

            self.tuner = OnlineTuner(
                self, cache=tuning_cache, **(adaptive_options or {})
            )

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: np.ndarray,
        rhs: np.ndarray | None = None,
        *,
        op: str | None = None,
        deadline: float | None = None,
    ) -> RequestFuture:
        """Queue one problem; returns the future resolving to its
        :class:`~repro.serving.request.Response`.

        ``op`` names any registered operation
        (:data:`~repro.serving.request.OPS`); left ``None`` it infers
        the Cholesky pair — ``"potrf"`` without a right-hand side,
        ``"posv"`` with one — preserving the pre-mixed-op call shape.
        ``matrix`` is never mutated (factors come back in the
        response).  ``deadline`` is relative wall seconds from now; it
        pressures the window to flush early and is counted as missed
        (not dropped) if exceeded.
        """
        if deadline is not None and deadline < 0:
            raise ArgumentError(3, f"deadline cannot be negative, got {deadline}")
        with self._cond:
            if not self._accepting:
                raise AdmissionError("server is not accepting requests")
            if len(self._batcher) >= self.queue_limit:
                if self.admission == "reject":
                    self.metrics.record_reject()
                    raise AdmissionError(
                        f"queue full ({self.queue_limit} pending); request rejected"
                    )
                self._cond.wait_for(
                    lambda: len(self._batcher) < self.queue_limit or not self._accepting
                )
                if not self._accepting:
                    raise AdmissionError("server stopped while request awaited admission")
            now = self.clock()
            request = Request(
                req_id=self._next_req_id,
                op=op if op is not None else ("potrf" if rhs is None else "posv"),
                matrix=matrix,
                rhs=rhs,
                deadline=None if deadline is None else now + deadline,
                arrival=now,
                arrival_sim=self._sim_now(),
            )
            self._next_req_id += 1
            # The future carries its request id so a router can target
            # BatchServer.cancel without holding the Request itself.
            request.future.req_id = request.req_id
            self._batcher.add(request)
            self.metrics.record_submit(len(self._batcher))
            if self.tuner is not None:
                self.tuner.on_admit(request.n, request.op)
            tracer = current_tracer()
            if tracer:
                tracer.instant(
                    "request-admitted", self.queue_track, cat="serving",
                    args={"req_id": request.req_id, "n": request.n,
                          "queue_depth": len(self._batcher)},
                )
                tracer.counter(
                    "queue_depth", self.queue_track, {"pending": len(self._batcher)}
                )
            self._cond.notify_all()
            return request.future

    def submit_many(self, matrices, rhs=None, *, op=None, deadline=None) -> list[RequestFuture]:
        """Submit a sequence of problems; returns their futures in order."""
        rhs = rhs if rhs is not None else [None] * len(matrices)
        if len(rhs) != len(matrices):
            raise ArgumentError(2, f"need {len(matrices)} rhs entries, got {len(rhs)}")
        return [self.submit(m, b, op=op, deadline=deadline) for m, b in zip(matrices, rhs)]

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._batcher)

    def reconfigure(
        self,
        *,
        policy: str | BatchingPolicy | None = None,
        max_batch: int | None = None,
        max_wait: float | None = None,
        crossover_size=_UNSET,
        optimize: str | None = None,
    ) -> None:
        """Retune serving knobs on a live server (thread-safe).

        Changes apply from the *next* formed batch: the batcher queue is
        untouched (policies are stateless selectors over it) and
        dispatch options are swapped wholesale, so an in-flight dispatch
        keeps the options it started with.  This is the application
        point for the :mod:`repro.adaptive` controllers, and is equally
        usable by operators.  ``crossover_size`` accepts ``None`` (the
        per-precision paper default) — leave it at the ``_UNSET``
        sentinel to keep the current value.
        """
        with self._cond:
            if policy is not None:
                new_policy = make_policy(policy)
                if type(new_policy) is not type(self._batcher.policy):
                    self._batcher.policy = new_policy
            if max_batch is not None:
                if max_batch <= 0:
                    raise ArgumentError(2, f"max_batch must be positive, got {max_batch}")
                self._batcher.max_batch = int(max_batch)
            if max_wait is not None:
                if max_wait < 0:
                    raise ArgumentError(3, f"max_wait cannot be negative, got {max_wait}")
                self._batcher.max_wait = float(max_wait)
            if crossover_size is not _UNSET:
                if crossover_size != self.options.crossover_size:
                    self.options = replace(self.options, crossover_size=crossover_size)
                if crossover_size != self.op_options.crossover_size:
                    self.op_options = replace(
                        self.op_options, crossover_size=crossover_size
                    )
            if optimize is not None:
                if optimize != self.options.optimize:
                    self.options = replace(self.options, optimize=optimize)
                if optimize != self.op_options.optimize:
                    self.op_options = replace(self.op_options, optimize=optimize)
            self._cond.notify_all()

    def cancel(self, req_id: int) -> str:
        """Cancel one queued request; returns the propagation outcome.

        ``"cancelled"`` — the request was still in the batcher queue; it
        is removed and its future resolves with
        :class:`~repro.errors.RequestCancelled`.  ``"in-flight"`` — the
        request already left the queue; a cancel flag is left behind so
        a dispatch that has not yet launched drops it (dispatch-level
        propagation), while a dispatch already running completes and the
        caller discards the result.
        """
        with self._cond:
            req = self._batcher.remove(int(req_id))
            if req is None:
                self._cancel_flags.add(int(req_id))
                return "in-flight"
            self._cond.notify_all()
        req.future.set_exception(RequestCancelled(f"request {req_id} cancelled while queued"))
        self.metrics.record_cancelled(1)
        return "cancelled"

    # ------------------------------------------------------------------
    # worker loop / synchronous pumping
    # ------------------------------------------------------------------
    def start(self) -> "BatchServer":
        """Spawn the asynchronous worker thread (idempotent)."""
        with self._cond:
            if self._stopping:
                raise ServingError("cannot start a stopped server")
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._worker_loop, name="repro-batch-server", daemon=True
                )
                self._worker.start()
        return self

    def pump(self, force: bool = False) -> int:
        """Form and dispatch at most one batch inline; returns its size.

        The synchronous twin of the worker loop: the load generator and
        tests call it so batch composition depends only on queue content
        (``force=True`` ignores the time-window triggers entirely).
        """
        with self._cond:
            batch = self._batcher.next_batch(self.clock(), force=force)
            if batch is None:
                return 0
            self._in_flight += 1
            self._cond.notify_all()
        try:
            self._dispatch(batch)
        finally:
            with self._cond:
                self._in_flight -= 1
                self._cond.notify_all()
        return len(batch)

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._stopping and len(self._batcher) == 0:
                        return
                    now = self.clock()
                    batch = self._batcher.next_batch(now, force=self._stopping)
                    if batch is not None:
                        self._in_flight += 1
                        self._cond.notify_all()
                        break
                    wakeup = self._batcher.next_wakeup(now)
                    self._cond.wait(None if wakeup is None else max(wakeup - now, 1e-4))
            try:
                # Futures are resolved with the error inside _dispatch;
                # the worker itself must survive a failed batch.
                self._dispatch(batch, reraise=False)
            finally:
                with self._cond:
                    self._in_flight -= 1
                    self._cond.notify_all()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Serve everything queued; returns True once idle.

        With a running worker this waits (the worker force-flushes
        nothing — windows still apply — but every window eventually
        expires); without one it pumps inline.  New submissions remain
        admitted during and after a drain.
        """
        if self._worker is None:
            while self.pump(force=True):
                pass
            with self._cond:
                return self._cond.wait_for(lambda: self._idle(), timeout)
        with self._cond:
            return self._cond.wait_for(lambda: self._idle(), timeout)

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the server: close admission, then drain or cancel.

        ``drain=True`` serves every queued request before stopping;
        ``drain=False`` cancels pending futures with
        :class:`~repro.errors.ServingError`.  Idempotent.
        """
        with self._cond:
            self._accepting = False
            cancelled = []
            if not drain:
                while len(self._batcher):
                    cancelled.extend(self._batcher.next_batch(self.clock(), force=True))
                self._cond.notify_all()
        if cancelled:
            for req in cancelled:
                req.future.set_exception(
                    ServingError("server shut down before request was served")
                )
            self.metrics.record_cancelled(len(cancelled))
        if drain:
            self.drain(timeout)
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
            worker = self._worker
        if worker is not None:
            worker.join(timeout)
        self.metrics.wall_stopped = self.clock()

    def __enter__(self) -> "BatchServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def _idle(self) -> bool:
        return len(self._batcher) == 0 and self._in_flight == 0

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _sim_now(self) -> float:
        """Current simulated time (max over the dispatch members)."""
        if self.group is not None:
            return self.group.sim_now()
        return self.device.host_time

    def _drop_cancelled(self, requests: list[Request]) -> list[Request]:
        """Honor cancel flags set after the batch left the queue.

        Flagged requests are dropped from the batch and resolved with
        :class:`~repro.errors.RequestCancelled` — the last point on the
        batcher → dispatch path where cancellation can still win.  A
        flag whose request already resolved is never consumed; callers
        (the fleet router) check ``future.done()`` before flagging, so
        stale flags stay rare.
        """
        with self._cond:
            if not self._cancel_flags:
                return requests
            dropped = [r for r in requests if r.req_id in self._cancel_flags]
            self._cancel_flags.difference_update(r.req_id for r in dropped)
        for req in dropped:
            req.future.set_exception(
                RequestCancelled(f"request {req.req_id} cancelled before launch")
            )
        if dropped:
            self.metrics.record_cancelled(len(dropped))
            gone = {id(r) for r in dropped}
            return [r for r in requests if id(r) not in gone]
        return requests

    def _dispatch(self, requests: list[Request], reraise: bool = True) -> None:
        """Run one aggregated batch end-to-end and resolve its futures."""
        with self._dispatch_lock:
            requests = self._drop_cancelled(requests)
            if not requests:
                return
            try:
                self._dispatch_inner(requests)
            except Exception as exc:  # resolve futures before propagating
                self.metrics.record_failure(len(requests))
                for req in requests:
                    if not req.future.done():
                        req.future.set_exception(exc)
                if reraise:
                    raise

    @staticmethod
    def _op_extras(op_key: str, reqs: list[Request], result) -> list[dict]:
        """Slice an op's side outputs per request (``Response.extras``).

        Everything is copied: a cached plan re-fills the same output
        storage on the next dispatch, so handing out views would let a
        later batch silently overwrite an earlier response.
        """
        extras: list[dict] = [{} for _ in reqs]
        outputs = result.outputs
        if op_key == "geqrf":
            taus = outputs["taus"]
            for i, r in enumerate(reqs):
                extras[i]["taus"] = np.array(taus[i, : r.n], copy=True)
        elif op_key == "getrf":
            ipivs = outputs["ipivs"]
            for i, r in enumerate(reqs):
                extras[i]["ipivs"] = np.array(ipivs[i, : r.n], copy=True)
        elif op_key == "gesvj":
            sigma = outputs["singular_values"]
            vt = outputs["vt"]
            for i, r in enumerate(reqs):
                extras[i]["singular_values"] = np.array(sigma[i, : r.n], copy=True)
                v = vt.get(i)
                extras[i]["vt"] = None if v is None else np.array(v, copy=True)
        return extras

    def _dispatch_inner(self, requests: list[Request]) -> None:
        tracer = current_tracer()
        with tracer.span(
            "dispatch", Track(self.name, "dispatch"), cat="dispatch"
        ) as span_args:
            dispatched_wall = self.clock()
            dispatched_sim = self._sim_now() if tracer else 0.0
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            # Largest-first within the launch — the paper's implicit-sorting
            # order, and a canonical size vector for the plan-cache key.
            order = sorted(
                range(len(requests)), key=lambda i: (-requests[i].n, requests[i].req_id)
            )
            reqs = [requests[i] for i in order]
            max_n = max(r.n for r in reqs)

            # Fault-injection point: before any device work, so an
            # injected OOM/shard failure models a launch that never
            # lands, while a stall surcharges the batch's service time.
            stall_s = 0.0
            if self.fault_injector is not None:
                stall_s = self.fault_injector.on_dispatch(
                    self.name, batch_id, [r.n for r in reqs]
                )

            # The batcher guarantees one factor op per batch; dispatch on it.
            op_key = reqs[0].factor_op
            batch = VBatch.from_host(self.device, [r.matrix for r in reqs])
            extras: list[dict] = [{} for _ in reqs]
            try:
                if op_key == "potrf":
                    result = run_potrf_vbatched(
                        self.device,
                        batch,
                        max_n,
                        self.options,
                        devices=self.group,
                        plan_cache=self.plan_cache,
                    )
                else:
                    result = run_op_vbatched(
                        self.device,
                        batch,
                        max_n,
                        op_key,
                        self.op_options,
                        devices=self.group,
                        plan_cache=self.plan_cache,
                    )
                factors: list[np.ndarray | None] = [None] * len(reqs)
                solutions: list[np.ndarray | None] = [None] * len(reqs)
                solve = None
                if self.device.execute_numerics:
                    factors = batch.download_matrices()
                rhs = [None if r.rhs is None else np.array(r.rhs, copy=True) for r in reqs]
                if any(b is not None for b in rhs):
                    if op_key == "potrf":
                        solve = potrs_vbatched(self.device, batch, rhs)
                    else:  # gesv requests ride getrf batches
                        solve = getrs_vbatched(
                            self.device, batch, result.outputs["ipivs"], rhs
                        )
                    if self.device.execute_numerics:
                        solutions = rhs
                if op_key != "potrf":
                    extras = self._op_extras(op_key, reqs, result)
            finally:
                batch.free()

            sim_elapsed = result.elapsed + (solve.elapsed if solve is not None else 0.0)
            sim_elapsed += stall_s
            completed_wall = self.clock()
            completed_sim = self._sim_now()
            useful, padded = ServerMetrics.padded_flops_for(
                [r.n for r in reqs], reqs[0].precision, op=op_key
            )
            responses = []
            for i, req in enumerate(reqs):
                info = int(result.infos[i])
                resp = Response(
                    req_id=req.req_id,
                    op=req.op,
                    info=info,
                    factor=factors[i],
                    # A failed factorization's "solution" is meaningless.
                    solution=solutions[i] if info == 0 else None,
                    extras=extras[i],
                    batch_id=batch_id,
                    batch_size=len(reqs),
                    batch_max_n=max_n,
                    arrival=req.arrival,
                    dispatched=dispatched_wall,
                    completed=completed_wall,
                    latency_sim=completed_sim - req.arrival_sim,
                    service_sim=sim_elapsed,
                    deadline_missed=req.deadline is not None
                    and completed_wall > req.deadline,
                )
                responses.append(resp)
            record = BatchRecord(
                batch_id=batch_id,
                size=len(reqs),
                max_n=max_n,
                useful_flops=useful,
                padded_flops=padded,
                sim_elapsed=sim_elapsed,
                devices_used=result.launch_stats.devices_used,
                launch_stats=result.launch_stats,
                op=op_key,
            )
            self.metrics.record_batch(record, responses, result.launch_stats)
            if result.member_stats is not None:
                self.metrics.record_placement(result.member_stats)
            if self.tuner is not None:
                self.tuner.on_batch([r.n for r in reqs], op_key)
            if tracer:
                span_args.update(
                    batch_id=batch_id,
                    op=op_key,
                    size=len(reqs),
                    max_n=max_n,
                    useful_flops=useful,
                    padded_flops=padded,
                    sim_elapsed=sim_elapsed,
                    queue_wait_sim=sum(
                        max(dispatched_sim - r.arrival_sim, 0.0) for r in reqs
                    ),
                )
            for req, resp in zip(reqs, responses):
                req.future.set_result(resp)
