"""Request/response envelope of the batch-serving subsystem.

One :class:`Request` is one independent problem — a matrix to
factorize (``op="potrf"``/``"geqrf"``/``"getrf"``), decompose
(``op="gesvj"``) or factorize-and-solve (``op="posv"``/``"gesv"``) —
submitted on its own, the way an inference server receives individual
queries.  The accepted operations and their validation rules
(right-hand-side requirements, real-only precisions, flop accounting)
come from the operation registry (:mod:`repro.ops.registry`), so the
serving tier gains an operation the moment the registry does.  The server aggregates requests into
:class:`~repro.core.batch.VBatch` launches; each request carries a
:class:`RequestFuture` that resolves to a :class:`Response` when its
batch completes.

Deadlines are *scheduling pressure*, not hard kills: a request whose
deadline draws near forces its window to flush early, and a request
served late is still served (the miss is counted in the metrics) — the
semantics of a soft-real-time serving tier.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..errors import ArgumentError, ServingError
from ..ops.registry import get_op
from ..types import Precision

__all__ = ["Request", "RequestFuture", "Response"]

#: Operations the serving tier accepts — every registered op, the
#: factor-only drivers and the solve aliases alike.
OPS = ("potrf", "posv", "geqrf", "getrf", "gesvj", "gesv")


class RequestFuture:
    """A minimal thread-safe future for one served request.

    The worker thread resolves it exactly once — with a
    :class:`Response` on success or an exception if the request was
    cancelled (non-drain shutdown) or its batch failed unexpectedly.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._response: Response | None = None
        self._exception: BaseException | None = None
        self._done = False
        self._callbacks: list = []
        #: Stamped by the server at admission; lets a router cancel by id.
        self.req_id: int | None = None

    def done(self) -> bool:
        """Whether the request has been resolved (response or error)."""
        with self._cond:
            return self._done

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once the future resolves.

        Runs immediately (on the calling thread) if already resolved,
        else on the resolving thread — the hook the fleet router uses to
        chain retry/complete handling without one thread per request.
        Callback exceptions propagate to the resolver; keep them cheap.
        """
        with self._cond:
            if not self._done:
                self._callbacks.append(fn)
                return
        fn(self)

    def result(self, timeout: float | None = None) -> "Response":
        """Block until resolved; returns the response or raises the error."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._done, timeout):
                raise TimeoutError("request not served within timeout")
            if self._exception is not None:
                raise self._exception
            return self._response

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until resolved; returns the error (None on success)."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._done, timeout):
                raise TimeoutError("request not served within timeout")
            return self._exception

    # -- resolution (server side) ---------------------------------------
    def set_result(self, response: "Response") -> None:
        self._resolve(response=response)

    def set_exception(self, error: BaseException) -> None:
        self._resolve(error=error)

    def _resolve(self, response=None, error=None) -> None:
        with self._cond:
            if self._done:
                raise ServingError("request future resolved twice")
            self._response = response
            self._exception = error
            self._done = True
            callbacks, self._callbacks = self._callbacks, []
            self._cond.notify_all()
        for fn in callbacks:
            fn(self)


@dataclass
class Request:
    """One submitted problem, as the server's queue holds it.

    ``matrix`` is the caller's host array; the server never mutates it
    (factors come back in the response).  ``deadline`` is absolute on
    the server's wall clock (``None`` = best effort).  ``arrival`` /
    ``arrival_sim`` stamp admission on the wall and simulated clocks.
    """

    req_id: int
    op: str
    matrix: np.ndarray
    rhs: np.ndarray | None = None
    deadline: float | None = None
    arrival: float = 0.0
    arrival_sim: float = 0.0
    future: RequestFuture = field(default_factory=RequestFuture)

    def __post_init__(self):
        if self.op not in OPS:
            raise ArgumentError(2, f"bad op {self.op!r} (use one of {OPS})")
        desc = get_op(self.op)
        m = self.matrix
        if not isinstance(m, np.ndarray) or m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ArgumentError(1, f"request matrix must be square 2-D, got {getattr(m, 'shape', None)}")
        if desc.real_only and np.dtype(m.dtype).kind == "c":
            raise ArgumentError(
                2, f"{self.op} requests support real precisions only, got {m.dtype}"
            )
        if desc.needs_rhs:
            if self.rhs is None:
                raise ArgumentError(3, f"{self.op} request needs a right-hand side")
            if self.rhs.shape[0] != m.shape[0]:
                raise ArgumentError(
                    3, f"rhs has {self.rhs.shape[0]} rows, matrix has {m.shape[0]}"
                )
        elif self.rhs is not None:
            raise ArgumentError(3, f"{self.op} request must not carry a right-hand side")

    @property
    def n(self) -> int:
        """Matrix order — the quantity the size-aware batcher groups on."""
        return int(self.matrix.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self.matrix.dtype

    @property
    def precision(self):
        """The :class:`~repro.types.Precision` of the request matrix."""
        return Precision.from_dtype(self.matrix.dtype)

    @property
    def factor_op(self) -> str:
        """The factorization that actually runs on the device: the op
        itself, or the base op a solve alias factors through (``posv``
        -> ``potrf``, ``gesv`` -> ``getrf``).  Batches group on this —
        a potrf and a posv request can share one launch."""
        desc = get_op(self.op)
        return desc.base or desc.name

    @property
    def flops(self) -> float:
        """Useful flops of this request's operation (metrics currency)."""
        return get_op(self.op).matrix_flops(self.n, self.precision)

    def effective_deadline(self, max_wait: float) -> float:
        """The instant this request must be in flight: its own deadline
        or the window bound ``arrival + max_wait``, whichever is sooner."""
        window = self.arrival + max_wait
        return window if self.deadline is None else min(self.deadline, window)


@dataclass
class Response:
    """What a resolved :class:`RequestFuture` yields.

    ``factor`` is the ``n x n`` in-place output of the request's factor
    op (Cholesky ``L``, the LU or QR packed factors, or ``U`` for
    ``gesvj``) and ``solution`` the solve output for ``posv``/``gesv``
    requests; both are ``None`` on a timing-only device.  ``extras``
    carries the op-specific side outputs sliced per request — ``taus``
    for ``geqrf``, ``ipivs`` for ``getrf``/``gesv``,
    ``singular_values``/``vt`` for ``gesvj`` — and is empty for POTRF
    requests.  ``info`` is the per-matrix LAPACK code (0 = success).
    Timing fields cover both clocks: wall latency for the serving tier
    itself, simulated-seconds latency for the modeled hardware.
    """

    req_id: int
    op: str
    info: int
    factor: np.ndarray | None = None
    solution: np.ndarray | None = None
    extras: dict = field(default_factory=dict)
    batch_id: int = -1
    batch_size: int = 0
    batch_max_n: int = 0
    arrival: float = 0.0
    dispatched: float = 0.0
    completed: float = 0.0
    latency_sim: float = 0.0
    service_sim: float = 0.0
    deadline_missed: bool = False

    @property
    def ok(self) -> bool:
        return self.info == 0

    @property
    def latency(self) -> float:
        """Wall-clock submit-to-complete latency."""
        return self.completed - self.arrival

    @property
    def queue_wait(self) -> float:
        """Wall-clock time spent queued before the batch was formed."""
        return self.dispatched - self.arrival
