"""Batch serving: size-aware aggregation of individual requests.

The subsystem the ROADMAP's "serve heavy traffic" north star asks for:
callers submit one SPD problem at a time (:class:`BatchServer.submit`
returns a :class:`RequestFuture`), a windowing :class:`Batcher` groups
near-equal sizes into :class:`~repro.core.batch.VBatch` launches —
the paper's implicit sorting applied at the request level — and the
dispatch rides the existing plan/executor/topology stack, including
multi-device sharding and a shared thread-safe
:class:`~repro.core.plan.PlanCache`.

    from repro.serving import BatchServer

    with BatchServer(max_batch=32, max_wait=2e-3) as server:
        server.start()
        future = server.submit(spd_matrix)          # one request
        response = future.result()                  # its own factor
        assert response.ok

See DESIGN.md §5c for the request → batch → plan → devices
architecture and ``python -m repro serve-bench`` for the load-generator
benchmark.
"""

from .batcher import (
    Batcher,
    BatchingPolicy,
    CrossOpGreedyPolicy,
    FifoPolicy,
    GreedyWindowPolicy,
    POLICIES,
    SizeBucketPolicy,
    make_policy,
)
from .faults import FAULT_KINDS, FaultEvent, FaultInjector, ReplicaHealth, RetryPolicy
from .fleet import FleetMetrics, Replica, build_fleet
from .loadgen import (
    ARRIVAL_PATTERNS,
    BENCH_POLICIES,
    VirtualClock,
    arrival_trace,
    check_acceptance,
    check_fleet_acceptance,
    closed_loop,
    open_loop,
    run_fleet_bench,
    run_serve_bench,
)
from .metrics import BatchRecord, ServerMetrics, latency_summary, percentile
from .request import Request, RequestFuture, Response
from .router import DEFAULT_SLOS, FleetRouter, SLOClass, Ticket
from .server import BatchServer

__all__ = [
    "BatchServer",
    "Batcher",
    "BatchingPolicy",
    "BatchRecord",
    "CrossOpGreedyPolicy",
    "DEFAULT_SLOS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FifoPolicy",
    "FleetMetrics",
    "FleetRouter",
    "GreedyWindowPolicy",
    "Replica",
    "ReplicaHealth",
    "RetryPolicy",
    "SLOClass",
    "SizeBucketPolicy",
    "Ticket",
    "POLICIES",
    "ARRIVAL_PATTERNS",
    "BENCH_POLICIES",
    "VirtualClock",
    "arrival_trace",
    "check_fleet_acceptance",
    "open_loop",
    "run_fleet_bench",
    "Request",
    "RequestFuture",
    "Response",
    "ServerMetrics",
    "build_fleet",
    "check_acceptance",
    "closed_loop",
    "latency_summary",
    "make_policy",
    "percentile",
    "run_serve_bench",
]
