"""Hierarchical-matrix compression as a mixed-operation serving workload.

The application the paper's "future directions" point at: block
low-rank (BLR) compression of a smooth kernel matrix.  Points on a line
are clustered into *ragged* index blocks; the kernel matrix over them
decomposes into tiles whose treatment differs by position:

* **diagonal tiles** are symmetric positive definite after
  regularization — the solver phase Cholesky-factorizes them
  (``op="potrf"`` requests);
* **adjacent off-diagonal tiles** are inadmissible (the clusters
  touch) and stay dense;
* **well-separated tiles** are numerically low-rank — each is
  compressed by batched QR (``op="geqrf"``) followed by a truncated
  one-sided Jacobi SVD of its ``R`` factor (``op="gesvj"``):
  ``A = QR``, ``R = U S V^T`` gives ``A ~= (Q U_r) S_r V_r^T`` at
  rank ``r``.

Every factorization is submitted to one :class:`~repro.serving.server.
BatchServer` as an individual request, exactly the way an application
would: the server's op-aware windowing aggregates the ragged tiles of
one phase into vbatched launches.  Tiles are rectangular in general;
each is embedded in the square matrix of order ``max(m, n)`` (zero
padding changes no singular value and wastes the same padded flops a
fixed-size batch would — the quantity the metrics already track).

``run_hmatrix_bench`` adds the scheduling half of the story: the same
imbalanced QR/SVD/POTRF request stream served by one shared cross-op
server over a 3-device group versus three op-segregated single-device
servers.  With per-op arrival rates unequal, segregation strands
devices on the light operations while the heavy one queues; the shared
server keeps every device on whatever batch is due — higher throughput
at equal-or-lower padded-flops waste is the bench's acceptance gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..device.device import Device
from ..device.topology import DeviceGroup
from ..errors import ArgumentError
from ..hostblas import build_q
from ..serving.server import BatchServer

__all__ = [
    "HmatrixResult",
    "check_hmatrix_acceptance",
    "compress_kernel_matrix",
    "run_hmatrix_bench",
]


# ----------------------------------------------------------------------
# problem construction
# ----------------------------------------------------------------------
def _kernel_matrix(n_points: int, lengthscale: float, seed: int) -> np.ndarray:
    """A Gaussian kernel matrix over sorted random points on [0, 1)."""
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(0.0, 1.0, n_points))
    d = x[:, None] - x[None, :]
    return np.exp(-(d * d) / (2.0 * lengthscale * lengthscale))


def _ragged_clusters(n_points: int, min_c: int, max_c: int, seed: int) -> list[slice]:
    """Contiguous index blocks of varying size covering ``n_points``."""
    rng = np.random.default_rng(seed + 1)
    bounds = [0]
    while bounds[-1] < n_points:
        bounds.append(min(bounds[-1] + int(rng.integers(min_c, max_c + 1)), n_points))
    # A runt final cluster would fall below the QR panel; merge it back.
    if len(bounds) > 2 and bounds[-1] - bounds[-2] < min_c:
        bounds.pop(-2)
    return [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:])]


@dataclass
class HmatrixResult:
    """Outcome of one block low-rank compression run."""

    n_points: int
    clusters: int
    tol: float
    #: (i, j, rank) per compressed (admissible) tile.
    ranks: list[tuple] = field(default_factory=list)
    dense_tiles: int = 0
    stored_entries: int = 0
    dense_entries: int = 0
    max_rel_error: float = 0.0
    potrf_failures: int = 0
    #: The serving tier's metrics snapshot (per-op breakdown included).
    serving: dict = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        """stored / dense — below 1.0 means the compression paid off."""
        return self.stored_entries / self.dense_entries if self.dense_entries else 0.0

    @property
    def max_rank(self) -> int:
        return max((r for _, _, r in self.ranks), default=0)


def compress_kernel_matrix(
    server: BatchServer,
    n_points: int = 512,
    lengthscale: float = 0.12,
    tol: float = 1.0e-6,
    min_cluster: int = 24,
    max_cluster: int = 72,
    seed: int = 7,
    ridge: float = 1.0e-6,
) -> HmatrixResult:
    """Compress one kernel matrix through ``server``; returns the result.

    The three request waves (QR of the admissible tiles, SVD of their
    ``R`` factors, Cholesky of the regularized diagonal blocks) are
    submitted individually and pumped synchronously, so the server's
    windowing — not the application — decides the batch composition.
    """
    if tol <= 0:
        raise ArgumentError(1, f"tol must be positive, got {tol}")
    k = _kernel_matrix(n_points, lengthscale, seed)
    clusters = _ragged_clusters(n_points, min_cluster, max_cluster, seed)
    p = len(clusters)
    result = HmatrixResult(n_points=n_points, clusters=p, tol=tol,
                           dense_entries=n_points * n_points)

    def drain():
        while server.pump(force=True):
            pass

    # Wave 1: Cholesky of the regularized diagonal blocks (the solver's
    # per-cluster preconditioner) + QR of every admissible tile.
    diag_futs = []
    for ci in clusters:
        block = k[ci, ci].copy()
        block[np.diag_indices_from(block)] += ridge * block.shape[0]
        diag_futs.append(server.submit(block, op="potrf"))
    tiles = []  # (i, j, ci, cj, tile) for admissible pairs
    qr_futs = []
    for i in range(p):
        for j in range(p):
            if i == j:
                continue
            if abs(i - j) == 1:  # inadmissible: clusters touch
                result.dense_tiles += 1
                result.stored_entries += (
                    (clusters[i].stop - clusters[i].start)
                    * (clusters[j].stop - clusters[j].start)
                )
                continue
            if j < i:  # compress the upper triangle; mirror the lower
                continue
            tile = k[clusters[i], clusters[j]]
            m, n = tile.shape
            order = max(m, n)
            embedded = np.zeros((order, order))
            embedded[:m, :n] = tile
            tiles.append((i, j, m, n, tile))
            qr_futs.append(server.submit(embedded, op="geqrf"))
    drain()

    for fut in diag_futs:
        if not fut.result(timeout=60.0).ok:
            result.potrf_failures += 1
    result.stored_entries += sum(
        (c.stop - c.start) ** 2 for c in clusters
    )  # diagonal factors stay dense

    # Wave 2: SVD of each tile's R factor (same order, cacheable sizes).
    qr_packed = [fut.result(timeout=60.0) for fut in qr_futs]
    svd_futs = [
        server.submit(np.triu(resp.factor), op="gesvj") for resp in qr_packed
    ]
    drain()

    for (i, j, m, n, tile), qr, fut in zip(tiles, qr_packed, svd_futs):
        svd = fut.result(timeout=60.0)
        sigma = svd.extras["singular_values"]
        vt = svd.extras["vt"]
        rank = int(np.count_nonzero(sigma > tol * max(sigma[0], 1e-300)))
        rank = max(1, min(rank, m, n))
        # A = Q R, R = U S V^T  =>  A ~= (Q U_r) S_r V_r^T
        q = build_q(qr.factor, qr.extras["taus"])
        u = (q @ svd.factor[:, :rank])[:m]
        right = sigma[:rank, None] * vt[:rank, :n]
        rel = np.linalg.norm(tile - u @ right) / max(np.linalg.norm(tile), 1e-300)
        result.max_rel_error = max(result.max_rel_error, float(rel))
        result.ranks.append((i, j, rank))
        # Both triangles store the factors (the mirrored tile reuses
        # the transposed pair at the same rank).
        result.stored_entries += 2 * rank * (m + n)
    result.serving = server.metrics.snapshot()
    return result


# ----------------------------------------------------------------------
# mixed-operation serving comparison
# ----------------------------------------------------------------------
def _mixed_stream(requests: int, max_size: int, seed: int) -> list[tuple]:
    """A deterministic, imbalanced (op, matrix) stream.

    70% QR / 20% POTRF / 10% SVD — the tile-to-diagonal shape of the
    compression pipeline, exaggerated so op segregation visibly strands
    hardware.  Sizes sit in a tile-like band ``[2/3*max, max]`` (the
    windowing ratio), so both serving configurations batch equally
    tightly and the comparison isolates scheduling, not padding luck.
    Payloads are zero matrices: the comparison runs on timing-only
    devices, where the cost model never reads values.
    """
    rng = np.random.default_rng(seed)
    ops = rng.choice(["geqrf", "potrf", "gesvj"], size=requests, p=[0.7, 0.2, 0.1])
    sizes = rng.integers(max(8, (2 * max_size) // 3), max_size + 1, size=requests)
    return [
        (str(op), np.zeros((int(n), int(n)))) for op, n in zip(ops, sizes)
    ]


def _waste_pct(snapshots) -> float:
    useful = sum(s["batching"]["useful_flops"] for s in snapshots)
    padded = sum(s["batching"]["padded_flops"] for s in snapshots)
    return 100.0 * (1.0 - useful / padded) if padded else 0.0


def _run_shared(stream, device_count: int, max_batch: int) -> dict:
    """One cross-op server over a device group, run backlogged.

    The whole stream is submitted before the first dispatch — the
    paper's throughput regime, where a batch can always fill — then the
    queue is pumped dry.  Each dispatched batch is sharded across the
    group, so the heavy op's large batches actually use all devices.
    """
    group = DeviceGroup.simulated(device_count, execute_numerics=False)
    server = BatchServer(
        devices=group, policy="cross-op", max_batch=max_batch,
        queue_limit=4 * len(stream),
    )
    futures = [server.submit(matrix, op=op) for op, matrix in stream]
    while server.pump(force=True):  # pump dispatches one batch at a time
        pass
    server.shutdown(drain=True)
    for fut in futures:
        fut.result(timeout=60.0)
    snap = server.metrics.snapshot()
    busy = snap["throughput"]["sim_busy_s"]
    return {
        "snapshot": snap,
        "makespan_sim_s": busy,
        "matrices_per_sim_s": (len(stream) / busy) if busy else 0.0,
        "waste_pct": _waste_pct([snap]),
    }


def _run_segregated(stream, max_batch: int) -> dict:
    """One single-device server per op, same backlogged stream by op.

    The three devices run concurrently in simulated time, so the
    configuration's makespan is the *busiest* server's simulated span —
    the light-op devices finish early and idle.  Identical max_batch
    and window ratio mean each op forms the same batches it does on the
    shared server; only the hardware assignment differs.
    """
    servers = {
        op: BatchServer(
            device=Device(execute_numerics=False),
            policy="greedy-window",
            max_batch=max_batch,
            queue_limit=4 * len(stream),
        )
        for op in ("geqrf", "potrf", "gesvj")
    }
    futures = [servers[op].submit(matrix, op=op) for op, matrix in stream]
    for server in servers.values():
        while server.pump(force=True):
            pass
        server.shutdown(drain=True)
    for fut in futures:
        fut.result(timeout=60.0)
    snaps = {op: s.metrics.snapshot() for op, s in servers.items()}
    makespan = max(s["throughput"]["sim_busy_s"] for s in snaps.values())
    return {
        "snapshots": snaps,
        "makespan_sim_s": makespan,
        "matrices_per_sim_s": (len(stream) / makespan) if makespan else 0.0,
        "waste_pct": _waste_pct(snaps.values()),
    }


# ----------------------------------------------------------------------
# the bench harness
# ----------------------------------------------------------------------
def run_hmatrix_bench(
    n_points: int = 1024,
    tol: float = 1.0e-6,
    requests: int = 5760,
    max_size: int = 96,
    device_count: int = 3,
    max_batch: int = 288,
    seed: int = 7,
    smoke: bool = False,
) -> dict:
    """The ``hmatrix-bench`` report: compression + serving comparison."""
    if smoke:
        n_points, requests = 384, 2880

    server = BatchServer(policy="cross-op", max_batch=max_batch)
    compression = compress_kernel_matrix(server, n_points=n_points, tol=tol, seed=seed)
    server.shutdown(drain=True)

    stream = _mixed_stream(requests, max_size, seed)
    shared = _run_shared(stream, device_count, max_batch)
    segregated = _run_segregated(stream, max_batch)

    report = {
        "config": {
            "n_points": int(n_points),
            "tol": float(tol),
            "requests": int(requests),
            "max_size": int(max_size),
            "device_count": int(device_count),
            "max_batch": int(max_batch),
            "seed": int(seed),
            "smoke": bool(smoke),
        },
        "compression": {
            "clusters": compression.clusters,
            "tiles_compressed": len(compression.ranks),
            "tiles_dense": compression.dense_tiles,
            "max_rank": compression.max_rank,
            "compression_ratio": compression.compression_ratio,
            "max_rel_error": compression.max_rel_error,
            "potrf_failures": compression.potrf_failures,
            "serving_ops": compression.serving.get("ops", {}),
        },
        "mixed_serving": {
            "op_mix": {"geqrf": 0.7, "potrf": 0.2, "gesvj": 0.1},
            "shared_cross_op": {
                k: v for k, v in shared.items() if k != "snapshot"
            },
            "segregated": {
                k: v for k, v in segregated.items() if k != "snapshots"
            },
            "shared_ops": shared["snapshot"].get("ops", {}),
            "comparison": {
                "throughput_speedup": (
                    shared["matrices_per_sim_s"] / segregated["matrices_per_sim_s"]
                    if segregated["matrices_per_sim_s"]
                    else 0.0
                ),
                "waste_pct_shared": shared["waste_pct"],
                "waste_pct_segregated": segregated["waste_pct"],
            },
        },
    }
    report["acceptance"] = {"failures": check_hmatrix_acceptance(report)}
    return report


def check_hmatrix_acceptance(report: dict) -> list[str]:
    """The embedded acceptance gate the ``mixedop-smoke`` CI job runs."""
    failures: list[str] = []
    comp = report["compression"]
    tol = report["config"]["tol"]
    if comp["potrf_failures"]:
        failures.append(
            f"{comp['potrf_failures']} diagonal Cholesky blocks failed (expected 0)"
        )
    if comp["max_rel_error"] > 50 * tol:
        failures.append(
            f"tile reconstruction error {comp['max_rel_error']:.2e} "
            f"exceeds 50*tol={50 * tol:.2e}"
        )
    if not comp["tiles_compressed"]:
        failures.append("no admissible tiles were compressed")
    if comp["compression_ratio"] >= 0.8:
        failures.append(
            f"compression ratio {comp['compression_ratio']:.3f} >= 0.8 "
            "(low-rank structure not exploited)"
        )
    for op in ("potrf", "geqrf", "gesvj"):
        if op not in comp["serving_ops"]:
            failures.append(f"operation {op!r} missing from the serving per-op metrics")

    mix = report["mixed_serving"]["comparison"]
    if mix["throughput_speedup"] <= 1.0:
        failures.append(
            f"cross-op shared serving speedup {mix['throughput_speedup']:.2f}x "
            "<= 1.0 over op-segregated serving"
        )
    if mix["waste_pct_shared"] > mix["waste_pct_segregated"] + 0.5:
        failures.append(
            f"cross-op padded waste {mix['waste_pct_shared']:.2f}% exceeds "
            f"segregated {mix['waste_pct_segregated']:.2f}% by more than 0.5pp"
        )
    return failures
