"""Demo applications built on the mixed-operation serving stack.

Unlike :mod:`repro.bench` (which measures the library against the
paper's figures), these are end-to-end *workloads*: real linear-algebra
pipelines whose inner loops are ragged batches of small factorizations,
driven through the :class:`~repro.serving.server.BatchServer` the way a
production tier would submit them.

* :mod:`repro.apps.hmatrix` — hierarchical-matrix (block low-rank)
  compression of a kernel matrix: batched QR + truncated one-sided
  Jacobi SVD on ragged tile batches, with Cholesky solve blocks on the
  diagonal — the mixed QR/SVD/POTRF workload of ``python -m repro
  hmatrix-bench``.
"""

from .hmatrix import (
    HmatrixResult,
    check_hmatrix_acceptance,
    compress_kernel_matrix,
    run_hmatrix_bench,
)

__all__ = [
    "HmatrixResult",
    "check_hmatrix_acceptance",
    "compress_kernel_matrix",
    "run_hmatrix_bench",
]
