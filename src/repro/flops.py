"""Floating-point operation counts for the BLAS/LAPACK routines we model.

The paper computes batch Gflop/s as the *sum of per-matrix factorization
flops* divided by elapsed time ("a twice Gflop/s means twice faster"),
so these formulas are load-bearing for every figure.  Real-arithmetic
counts follow the LAPACK Users' Guide operation-count appendix; complex
precisions multiply by the precision's flop weight.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from .types import Precision, precision_info

__all__ = [
    "potrf_flops",
    "potf2_flops",
    "trsm_flops",
    "trtri_flops",
    "gemm_flops",
    "syrk_flops",
    "getrf_flops",
    "geqrf_flops",
    "gesvj_sweep_flops",
    "gesvj_flops",
    "default_svd_sweeps",
    "routine_flops",
    "batch_flops",
    "gflops",
]


def _weight(precision: Precision | str | None) -> int:
    if precision is None:
        return 1
    return precision_info(Precision(precision)).flop_weight


def potrf_flops(n: int, precision: Precision | str | None = None) -> float:
    """Cholesky factorization of an ``n x n`` SPD matrix.

    ``n**3/3 + n**2/2 + n/6`` real flops (multiplies + adds + n roots,
    roots counted as one flop each as in LAPACK timing conventions).
    """
    n = float(n)
    return (n**3 / 3.0 + n**2 / 2.0 + n / 6.0) * _weight(precision)


def potf2_flops(n: int, precision: Precision | str | None = None) -> float:
    """Unblocked Cholesky has the same asymptotic count as potrf."""
    return potrf_flops(n, precision)


def trsm_flops(
    m: int, n: int, side: str = "right", precision: Precision | str | None = None
) -> float:
    """Triangular solve with ``m x n`` right-hand-side panel.

    ``side='left'`` solves ``op(A) X = B`` with ``A`` of order ``m``
    (``n*m**2`` flops); ``side='right'`` solves ``X op(A) = B`` with
    ``A`` of order ``n`` (``m*n**2`` flops).
    """
    m, n = float(m), float(n)
    if side == "left":
        count = n * m * m
    elif side == "right":
        count = m * n * n
    else:
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    return count * _weight(precision)


def trtri_flops(n: int, precision: Precision | str | None = None) -> float:
    """Inversion of an ``n x n`` triangular matrix: ``n**3/3`` flops."""
    n = float(n)
    return (n**3 / 3.0 + 2.0 * n / 3.0) * _weight(precision)


def gemm_flops(
    m: int, n: int, k: int, precision: Precision | str | None = None
) -> float:
    """General matrix multiply ``C += A @ B``: ``2*m*n*k`` flops."""
    return 2.0 * float(m) * float(n) * float(k) * _weight(precision)


def syrk_flops(n: int, k: int, precision: Precision | str | None = None) -> float:
    """Symmetric rank-k update of an ``n x n`` matrix: ``n*(n+1)*k`` flops."""
    n, k = float(n), float(k)
    return n * (n + 1.0) * k * _weight(precision)


def getrf_flops(m: int, n: int, precision: Precision | str | None = None) -> float:
    """LU factorization of an ``m x n`` matrix (LAPACK count)."""
    m, n = float(m), float(n)
    if m >= n:
        count = m * n * n - n**3 / 3.0 - n**2 / 2.0 + 5.0 * n / 6.0
    else:
        count = n * m * m - m**3 / 3.0 - m**2 / 2.0 + 5.0 * m / 6.0
    return count * _weight(precision)


def geqrf_flops(m: int, n: int, precision: Precision | str | None = None) -> float:
    """QR factorization of an ``m x n`` matrix (LAPACK count)."""
    m, n = float(m), float(n)
    if m >= n:
        count = 2.0 * m * n * n - 2.0 * n**3 / 3.0 + m * n + n * n + 14.0 * n / 3.0
    else:
        count = 2.0 * n * m * m - 2.0 * m**3 / 3.0 + 3.0 * m * n - m * m + 14.0 * m / 3.0
    return count * _weight(precision)


def default_svd_sweeps(n: int) -> int:
    """Modeled sweep count for the one-sided Jacobi SVD of order ``n``.

    Jacobi converges in O(log n) sweeps on well-scaled inputs; the
    planner fixes the count at plan time (a static DAG), so this is the
    budget the timing plane charges regardless of per-matrix early
    convergence.
    """
    if n <= 1:
        return 1
    return max(4, int(math.ceil(math.log2(float(n)))) + 3)


def gesvj_sweep_flops(n: int, precision: Precision | str | None = None) -> float:
    """One one-sided Jacobi sweep over an ``n x n`` matrix.

    ``n(n-1)/2`` column pairs; each pair needs three length-``n`` dot
    products (6n) and plane rotations of two columns of both ``A`` and
    the accumulated ``V`` (12n): ~``9 n^2 (n-1)`` real flops per sweep.
    """
    n = float(n)
    return 9.0 * n * n * max(0.0, n - 1.0) * _weight(precision)


def gesvj_flops(
    n: int, precision: Precision | str | None = None, sweeps: int | None = None
) -> float:
    """One-sided Jacobi SVD of an ``n x n`` matrix (modeled sweep budget)."""
    if sweeps is None:
        sweeps = default_svd_sweeps(int(n))
    return float(sweeps) * gesvj_sweep_flops(n, precision)


_ROUTINE_FLOPS = {
    "potrf": potrf_flops,
    "trtri": trtri_flops,
    "getrf": lambda n, p=None: getrf_flops(n, n, p),
    "geqrf": lambda n, p=None: geqrf_flops(n, n, p),
    "gesvj": gesvj_flops,
}


def routine_flops(routine: str):
    """The ``(n, precision) -> flops`` model of a square-problem routine."""
    try:
        return _ROUTINE_FLOPS[routine]
    except KeyError:
        known = ", ".join(sorted(_ROUTINE_FLOPS))
        raise KeyError(f"unknown routine {routine!r} (known: {known})") from None


def batch_flops(
    sizes: Iterable[int],
    routine: str = "potrf",
    precision: Precision | str | None = None,
) -> float:
    """Total flops for a batch of square problems of the given sizes."""
    fn = routine_flops(routine)
    return float(sum(fn(int(n), precision) for n in sizes))


def gflops(total_flops: float, seconds: float) -> float:
    """Convert a flop count and an elapsed time into Gflop/s."""
    if seconds <= 0.0:
        raise ValueError(f"elapsed time must be positive, got {seconds}")
    return total_flops / seconds / 1.0e9
