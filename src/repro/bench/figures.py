"""Experiment definitions: one function per paper figure.

Every function runs on the timing plane (``execute_numerics=False`` —
the cost model never reads matrix values, and the functional plane is
covered by the test suite), builds fresh device state per data point,
and returns a :class:`FigureResult` whose series mirror the curves in
the paper.  Paper-scale parameters are the defaults; the pytest
benchmarks pass reduced sweeps where wall-clock budget matters.
"""

from __future__ import annotations

import numpy as np

from .. import distributions as dist
from ..baselines import BASELINES, run_baseline
from ..core.batch import VBatch
from ..core.blas_steps import BlasStepDriver
from ..core.crossover import CrossoverPolicy
from ..core.driver import PotrfOptions, run_potrf_vbatched
from ..core.fused import FusedDriver, fused_max_feasible_size
from ..core.separated import SeparatedDriver
from ..device import Device
from ..energy import run_energy_experiment
from ..errors import DeviceOutOfMemory, LaunchError
from ..flops import batch_flops, gflops
from ..kernels.aux import compute_max_size
from ..types import Precision
from .harness import FigureResult

__all__ = [
    "fig3_distributions",
    "fig4_fusion_fixed",
    "fig5_fused_variants",
    "fig6_fused_variants_gaussian",
    "fig7_crossover",
    "fig8_overall",
    "fig9_overall_gaussian",
    "fig10_energy",
    "aux_interface_overhead",
]

_VARIANTS = (
    ("etm-classic", "classic", False),
    ("etm-aggressive", "aggressive", False),
    ("etm-classic+sorting", "classic", True),
    ("etm-aggressive+sorting", "aggressive", True),
)


def _fresh_batch(sizes, precision) -> tuple[Device, VBatch]:
    device = Device(execute_numerics=False)
    batch = VBatch.allocate(device, sizes, precision)
    device.reset_clock()
    return device, batch


def _run_gflops(sizes, precision, max_n, options: PotrfOptions) -> float:
    device, batch = _fresh_batch(sizes, precision)
    res = run_potrf_vbatched(device, batch, max_n, options)
    return res.gflops


# ----------------------------------------------------------------------
# Figure 3 — size-distribution histograms
# ----------------------------------------------------------------------
def fig3_distributions(
    batch_count: int = 2000, max_size: int = 512, bin_width: int = 8, seed: int = 0
) -> FigureResult:
    """Histograms of the uniform and Gaussian size generators (§IV-B)."""
    lefts = None
    fig = None
    for name in ("uniform", "gaussian"):
        sizes = dist.generate_sizes(name, batch_count, max_size, seed=seed)
        l, counts = dist.size_histogram(sizes, bin_width=bin_width, max_size=max_size)
        if fig is None:
            lefts = l
            fig = FigureResult(
                "Fig 3", "Matrix-size histograms", "bin_start", list(lefts)
            )
        fig.add(name, counts)
    fig.notes["batch_count"] = batch_count
    fig.notes["max_size"] = max_size
    return fig


# ----------------------------------------------------------------------
# Figure 4 — kernel fusion vs separated BLAS, fixed sizes
# ----------------------------------------------------------------------
def fig4_fusion_fixed(
    precision: Precision | str = Precision.S,
    sizes: tuple[int, ...] = (8, 16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 640, 768),
    batch_count: int = 1000,
) -> FigureResult:
    """Fused kernel vs pre-fusion separated BLAS on fixed-size batches."""
    prec = Precision(precision)
    fused_vals, sep_vals = [], []
    for n in sizes:
        flops = batch_flops([n] * batch_count, "potrf", prec)
        # Fused approach (one kernel per step).
        device, batch = _fresh_batch([n] * batch_count, prec)
        try:
            FusedDriver(device, etm="classic", sorting=False).factorize(batch, n)
            fused_vals.append(gflops(flops, device.synchronize()))
        except LaunchError:
            fused_vals.append(float("nan"))
        # Pre-fusion separated building-block BLAS ([13]-era): two-level
        # blocked driver with the generic global-memory panel kernels.
        device, batch = _fresh_batch([n] * batch_count, prec)
        if n <= 128:
            BlasStepDriver(device).factorize(batch, n)
        else:
            SeparatedDriver(device, panel_mode="naive").factorize(batch, n)
        sep_vals.append(gflops(flops, device.synchronize()))

    fig = FigureResult(
        "Fig 4",
        f"Fused vs separated BLAS, fixed sizes ({prec.value}potrf)",
        "n",
        list(sizes),
    )
    f = fig.add("fused", fused_vals)
    s = fig.add("separated-blas", sep_vals)
    speedups = fig.add("speedup", f.ratio_to(s))
    finite = [v for v in speedups.values if not np.isnan(v)]
    fig.notes["max_speedup"] = max(finite)
    fig.notes["min_speedup"] = min(finite)
    fig.notes["batch_count"] = batch_count
    return fig


# ----------------------------------------------------------------------
# Figures 5/6 — vbatched fused-variant comparison
# ----------------------------------------------------------------------
def _fused_variants(
    distribution: str,
    precision: Precision | str,
    nmax_values: tuple[int, ...],
    batch_count: int,
    seed: int,
    figure: str,
) -> FigureResult:
    prec = Precision(precision)
    fig = FigureResult(
        figure,
        f"vbatched {prec.value}potrf fused variants, {distribution} sizes",
        "max_size",
        list(nmax_values),
    )
    results = {label: [] for label, _, _ in _VARIANTS}
    for nmax in nmax_values:
        sizes = dist.generate_sizes(distribution, batch_count, nmax, seed=seed)
        for label, etm, sorting in _VARIANTS:
            val = _run_gflops(
                sizes, prec, nmax,
                PotrfOptions(approach="fused", etm=etm, sorting=sorting),
            )
            results[label].append(val)
    for label, _, _ in _VARIANTS:
        fig.add(label, results[label])

    best = fig.get("etm-aggressive+sorting").array
    fig.notes["sorting_gain_classic_max"] = float(
        np.nanmax(fig.get("etm-classic+sorting").array / fig.get("etm-classic").array - 1)
    )
    fig.notes["sorting_gain_aggressive_max"] = float(
        np.nanmax(best / fig.get("etm-aggressive").array - 1)
    )
    fig.notes["aggressive_gain_max"] = float(
        np.nanmax(fig.get("etm-aggressive").array / fig.get("etm-classic").array - 1)
    )
    fig.notes["batch_count"] = batch_count
    return fig


def fig5_fused_variants(
    precision: Precision | str = Precision.S,
    nmax_values: tuple[int, ...] = (32, 64, 96, 128, 192, 256, 320, 384, 448, 512),
    batch_count: int = 3000,
    seed: int = 0,
) -> FigureResult:
    """Four fused-driver versions, uniform distribution (paper Fig 5)."""
    return _fused_variants("uniform", precision, nmax_values, batch_count, seed, "Fig 5")


def fig6_fused_variants_gaussian(
    precision: Precision | str = Precision.S,
    nmax_values: tuple[int, ...] = (32, 64, 96, 128, 192, 256, 320, 384, 448, 512),
    batch_count: int = 3000,
    seed: int = 0,
) -> FigureResult:
    """Four fused-driver versions, Gaussian distribution (paper Fig 6)."""
    return _fused_variants("gaussian", precision, nmax_values, batch_count, seed, "Fig 6")


# ----------------------------------------------------------------------
# Figure 7 — fusion/separation crossover
# ----------------------------------------------------------------------
def fig7_crossover(
    precision: Precision | str = Precision.S,
    nmax_values: tuple[int, ...] = (128, 192, 256, 320, 384, 448, 512, 640, 768, 896, 1024),
    batch_count: int = 800,
    seed: int = 0,
    optimize: str = "none",
) -> FigureResult:
    """Fused vs separated vs the combined switch (paper Fig 7)."""
    prec = Precision(precision)
    fig = FigureResult(
        "Fig 7",
        f"Crossover for vbatched {prec.value}potrf, uniform sizes",
        "max_size",
        list(nmax_values),
    )
    rows = {"fused": [], "separated": [], "switch": []}
    for nmax in nmax_values:
        sizes = dist.uniform_sizes(batch_count, nmax, seed=seed)
        for approach in ("fused", "separated"):
            try:
                rows[approach].append(
                    _run_gflops(
                        sizes, prec, nmax,
                        PotrfOptions(approach=approach, optimize=optimize),
                    )
                )
            except (LaunchError, DeviceOutOfMemory):
                rows[approach].append(float("nan"))
        rows["switch"].append(
            _run_gflops(sizes, prec, nmax, PotrfOptions(approach="auto", optimize=optimize))
        )
    for label in ("fused", "separated", "switch"):
        fig.add(label, rows[label])
    fig.notes["configured_crossover"] = CrossoverPolicy(prec).resolved_crossover()
    fig.notes["fused_feasible_max"] = fused_max_feasible_size(prec)
    fig.notes["batch_count"] = batch_count
    return fig


# ----------------------------------------------------------------------
# Figures 8/9 — overall comparison against all baselines
# ----------------------------------------------------------------------
def _overall(
    distribution: str,
    precision: Precision | str,
    nmax_values: tuple[int, ...],
    batch_count: int,
    seed: int,
    figure: str,
) -> FigureResult:
    prec = Precision(precision)
    fig = FigureResult(
        figure,
        f"Overall vbatched {prec.value}potrf vs baselines, {distribution} sizes",
        "max_size",
        list(nmax_values),
    )
    rows = {name: [] for name in BASELINES}
    for nmax in nmax_values:
        sizes = dist.generate_sizes(distribution, batch_count, nmax, seed=seed)
        for name in BASELINES:
            try:
                rows[name].append(run_baseline(name, sizes, prec, nmax).gflops)
            except DeviceOutOfMemory:
                # The padding baseline genuinely runs out of device
                # memory — the truncated curves of Figs 8-9.
                rows[name].append(float("nan"))
    for name in BASELINES:
        fig.add(name, rows[name])

    vb = fig.get("magma-vbatched").array
    competitor = np.nanmax(
        np.vstack([
            fig.get("cpu-1core-dynamic").array,
            fig.get("cpu-1core-static").array,
            fig.get("cpu-mkl-mt").array,
        ]),
        axis=0,
    )
    ratios = vb / competitor
    fig.notes["speedup_vs_best_competitor_min"] = float(np.nanmin(ratios))
    fig.notes["speedup_vs_best_competitor_max"] = float(np.nanmax(ratios))
    pad = fig.get("fixed-batched+padding").array
    fig.notes["speedup_vs_padding_max"] = float(np.nanmax(vb / pad))
    fig.notes["padding_oom_points"] = int(np.count_nonzero(np.isnan(pad)))
    fig.notes["batch_count"] = batch_count
    return fig


def fig8_overall(
    precision: Precision | str = Precision.S,
    nmax_values: tuple[int, ...] = (128, 256, 384, 512, 768, 1000, 1500, 2000),
    batch_count: int = 800,
    seed: int = 0,
) -> FigureResult:
    """Overall performance, uniform distribution (paper Fig 8)."""
    return _overall("uniform", precision, nmax_values, batch_count, seed, "Fig 8")


def fig9_overall_gaussian(
    precision: Precision | str = Precision.S,
    nmax_values: tuple[int, ...] = (128, 256, 384, 512, 768, 1000, 1500, 2000),
    batch_count: int = 800,
    seed: int = 0,
) -> FigureResult:
    """Overall performance, Gaussian distribution (paper Fig 9)."""
    return _overall("gaussian", precision, nmax_values, batch_count, seed, "Fig 9")


# ----------------------------------------------------------------------
# Figure 10 — energy to solution
# ----------------------------------------------------------------------
def fig10_energy(
    buckets: tuple[tuple[int, int, int], ...] = (
        (16, 64, 10000),
        (32, 128, 5000),
        (64, 256, 3000),
        (128, 256, 2000),
        (256, 512, 1000),
        (384, 768, 700),
        (512, 1024, 500),
        (768, 1024, 300),
    ),
    precision: Precision | str = Precision.D,
    seed: int = 0,
) -> FigureResult:
    """CPU vs GPU energy to solution for dpotrf workloads (paper Fig 10)."""
    labels, cpu_j, gpu_j, ratios = [], [], [], []
    for lo, hi, count in buckets:
        comp = run_energy_experiment(lo, hi, count, precision, seed=seed)
        labels.append(comp.workload)
        cpu_j.append(comp.cpu.joules)
        gpu_j.append(comp.gpu.joules)
        ratios.append(comp.energy_ratio)
    fig = FigureResult(
        "Fig 10", "Energy to solution, CPU vs GPU (dpotrf)", "workload", labels
    )
    fig.add("cpu_joules", cpu_j)
    fig.add("gpu_joules", gpu_j)
    fig.add("cpu_over_gpu", ratios)
    fig.notes["max_energy_ratio"] = max(ratios)
    fig.notes["min_energy_ratio"] = min(ratios)
    return fig


# ----------------------------------------------------------------------
# §III-A — interface overhead of computing the max on the device
# ----------------------------------------------------------------------
def aux_interface_overhead(
    precision: Precision | str = Precision.D,
    nmax: int = 256,
    batch_count: int = 2000,
    seed: int = 0,
) -> FigureResult:
    """Overhead of the LAPACK-like interface's device max-reduction."""
    prec = Precision(precision)
    sizes = dist.uniform_sizes(batch_count, nmax, seed=seed)

    device, batch = _fresh_batch(sizes, prec)
    t0 = device.synchronize()
    max_n = compute_max_size(device, batch)
    overhead = device.synchronize() - t0
    res = run_potrf_vbatched(device, batch, max_n, PotrfOptions())
    total = overhead + res.elapsed

    fig = FigureResult(
        "Aux", "LAPACK-like interface overhead (§III-A)", "quantity",
        ["max_reduction_seconds", "factorization_seconds", "overhead_fraction"],
    )
    fig.add("value", [overhead, res.elapsed, overhead / total])
    fig.notes["batch_count"] = batch_count
    fig.notes["max_size"] = nmax
    return fig
