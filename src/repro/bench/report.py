"""Plain-text rendering of reproduced figures."""

from __future__ import annotations

import math

from .harness import FigureResult

__all__ = ["format_table", "format_figure", "format_ascii_chart"]


def _fmt(v) -> str:
    if isinstance(v, float):
        if math.isnan(v):
            return "n/a"
        if v == 0 or 0.01 <= abs(v) < 1e6:
            return f"{v:.2f}" if abs(v) < 100 else f"{v:.1f}"
        return f"{v:.3g}"
    return str(v)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(parts):
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def format_ascii_chart(fig: FigureResult, width: int = 48) -> str:
    """Render a figure's series as horizontal bar charts (no matplotlib).

    One block per series: each x value gets a bar scaled to the
    figure-wide maximum, so relative magnitudes across series are
    visually comparable — enough to eyeball a crossover in a terminal.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    finite = [
        v
        for s in fig.series
        for v in s.values
        if isinstance(v, float) and not math.isnan(v)
    ]
    top = max(finite, default=0.0)
    lines = [f"== {fig.figure}: {fig.title} =="]
    label_w = max((len(str(x)) for x in fig.x_values), default=1)
    for s in fig.series:
        lines.append(f"-- {s.label}")
        for x, v in zip(fig.x_values, s.values):
            if math.isnan(v):
                lines.append(f"  {str(x):>{label_w}} | n/a")
                continue
            n = 0 if top == 0 else round(width * v / top)
            lines.append(f"  {str(x):>{label_w}} | {'#' * n} {_fmt(v)}")
    return "\n".join(lines)


def format_figure(fig: FigureResult) -> str:
    """Render a figure as its data table plus notes."""
    headers = [fig.x_label] + [s.label for s in fig.series]
    rows = []
    for i, x in enumerate(fig.x_values):
        rows.append([x] + [s.values[i] for s in fig.series])
    body = format_table(headers, rows)
    head = f"== {fig.figure}: {fig.title} =="
    notes = "\n".join(f"   note: {k} = {_fmt(v)}" for k, v in fig.notes.items())
    return "\n".join(p for p in (head, body, notes) if p)
