"""Heterogeneous-group benchmark: scaling + mixed-member placement.

Two headline questions, answered on the fig3 workload (uniform sizes,
timing plane only):

* **Scaling** — does cost-model placement over size-stratified chunks
  beat the flops-balanced homogeneous sharder?  ``BENCH_pr2`` topped
  out at ~2.15x on 8 identical K40c; every flops-balanced shard kept a
  near-``max_n`` matrix and re-paid the full step sequence.  Strata
  give most chunks a small ``max_n``, and per-chunk approach selection
  runs the large tail under the separated planner.
* **Heterogeneity** — does a mixed group (unequal GPUs plus the CPU
  core model) beat its best member running alone?  If placement is
  doing its job the answer must be yes: the group's makespan is the
  point of the whole abstraction.

``run_hetero_bench`` produces the JSON report the ``hetero-bench`` CLI
prints and the CI ``hetero-smoke`` job uploads as ``BENCH_pr7.json``;
``check_hetero_acceptance`` returns the failure list the CLI turns into
a non-zero exit.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import VBatch
from ..core.driver import PotrfOptions, run_potrf_vbatched
from ..device.device import Device
from ..device.hetero import HeteroGroup
from ..distributions import uniform_sizes
from ..types import Precision

__all__ = ["check_hetero_acceptance", "run_hetero_bench"]

#: Homogeneous scaling must reach this on 8 devices (BENCH_pr2: 2.15x).
SCALING_TARGET_8DEV = 3.5

DEFAULT_MEMBERS = "k40c+k20x+titan-black+cpu"


def _run_group(group: HeteroGroup, sizes: np.ndarray, prec: Precision):
    """One timing-plane run of ``sizes`` across ``group``."""
    staging = Device(execute_numerics=False, name="bench:staging")
    batch = VBatch.allocate(staging, sizes, prec)
    try:
        return run_potrf_vbatched(
            staging, batch, int(sizes.max()), PotrfOptions(), devices=group
        )
    finally:
        batch.free()


def _single_device_time(sizes: np.ndarray, prec: Precision, approach: str) -> float:
    """Elapsed of the whole batch on one K40c under one global approach."""
    dev = Device(execute_numerics=False, name=f"bench:solo-{approach}")
    batch = VBatch.allocate(dev, sizes, prec)
    try:
        result = run_potrf_vbatched(
            dev, batch, int(sizes.max()), PotrfOptions(approach=approach)
        )
        return float(result.elapsed)
    finally:
        batch.free()


def _solo_tokens(members: str) -> list[str]:
    """Distinct member kinds in a spec string (counts stripped)."""
    tokens: list[str] = []
    for token in members.replace(",", "+").split("+"):
        token = token.partition("*")[0].strip().lower()
        if token and token not in tokens:
            tokens.append(token)
    return tokens


def run_hetero_bench(
    *,
    batch_count: int = 400,
    max_size: int = 256,
    seed: int = 11,
    precision: Precision | str = Precision.D,
    members: str = DEFAULT_MEMBERS,
    device_counts: tuple[int, ...] = (1, 2, 4, 8),
    placements: tuple[str, ...] = ("size-stratified", "step-aware"),
    chunks_per_member: int = 1,
    smoke: bool = False,
) -> dict:
    """Benchmark heterogeneous placement on the fig3 workload.

    ``smoke`` trims the sweep to what the CI gate asserts (the 8-device
    homogeneous point under size-stratified placement, plus the mixed
    group vs. its solos) without changing the workload itself.
    ``chunks_per_member=1`` is deliberate: every extra chunk re-pays
    the planner's per-``max_n`` step sequence, so coarse placement wins
    whenever the cost model routes well (see HeteroGroup's docstring).
    """
    prec = Precision(precision)
    sizes = uniform_sizes(batch_count, max_size, seed=seed)
    if smoke:
        device_counts = tuple(n for n in device_counts if n in (1, 8)) or (8,)
        placements = ("size-stratified",)

    baseline = {
        approach: _single_device_time(sizes, prec, approach)
        for approach in ("fused", "separated")
    }
    t1 = min(baseline.values())

    scaling: dict[str, dict] = {}
    for placement in placements:
        rows: dict[str, dict] = {}
        for n in device_counts:
            group = HeteroGroup.simulated(
                f"k40c*{n}",
                execute_numerics=False,
                placement=placement,
                chunks_per_member=chunks_per_member,
                name_prefix=f"bench:{placement}:{n}x:",
            )
            result = _run_group(group, sizes, prec)
            rows[str(n)] = {
                "elapsed_s": float(result.elapsed),
                "speedup": t1 / float(result.elapsed),
                "chunks": int(result.launch_stats.chunks),
                "work_steals": int(result.launch_stats.work_steals),
                "approaches": result.approach,
            }
        scaling[placement] = rows

    mixed_group = HeteroGroup.simulated(
        members,
        execute_numerics=False,
        chunks_per_member=chunks_per_member,
        name_prefix="bench:mixed:",
    )
    mixed = _run_group(mixed_group, sizes, prec)
    solos: dict[str, float] = {}
    for token in _solo_tokens(members):
        solo_group = HeteroGroup.simulated(
            token,
            execute_numerics=False,
            chunks_per_member=chunks_per_member,
            name_prefix="bench:solo:",
        )
        solos[token] = float(_run_group(solo_group, sizes, prec).elapsed)
    best_solo = min(solos, key=solos.get)

    report = {
        "bench": "hetero-bench",
        "config": {
            "batch_count": int(batch_count),
            "max_size": int(max_size),
            "seed": int(seed),
            "precision": prec.value,
            "members": members,
            "chunks_per_member": int(chunks_per_member),
            "smoke": bool(smoke),
        },
        "baseline_1dev_s": {**{k: float(v) for k, v in baseline.items()}, "t1": float(t1)},
        "scaling": scaling,
        "mixed": {
            "members": members,
            "elapsed_s": float(mixed.elapsed),
            "solos_s": {k: float(v) for k, v in sorted(solos.items())},
            "best_solo": best_solo,
            "speedup_vs_best_solo": solos[best_solo] / float(mixed.elapsed),
            "work_steals": int(mixed.launch_stats.work_steals),
            "placement": mixed.placement,
            "member_stats": [ms.as_dict() for ms in mixed.member_stats],
        },
    }
    report["acceptance"] = {"failures": check_hetero_acceptance(report)}
    return report


def check_hetero_acceptance(report: dict) -> list[str]:
    """The two claims the CI ``hetero-smoke`` gate holds this PR to."""
    failures = []
    rows = report["scaling"].get("size-stratified", {})
    row = rows.get("8")
    if row is None:
        failures.append("scaling sweep has no 8-device size-stratified point")
    elif row["speedup"] < SCALING_TARGET_8DEV:
        failures.append(
            f"8-device size-stratified speedup {row['speedup']:.2f}x "
            f"< target {SCALING_TARGET_8DEV}x"
        )
    mixed = report["mixed"]
    best = mixed["best_solo"]
    if mixed["elapsed_s"] >= mixed["solos_s"][best]:
        failures.append(
            f"mixed group ({mixed['members']}) at {mixed['elapsed_s'] * 1e3:.4f} ms "
            f"does not beat best solo member {best} "
            f"at {mixed['solos_s'][best] * 1e3:.4f} ms"
        )
    return failures
