"""Run profiling: per-kernel breakdowns and Chrome-trace export.

Tools a downstream performance engineer expects: a flat profile of the
simulated run (where did the time go — it is how we verified §III-F's
"auxiliary kernels are almost negligible"), and an export of the
timeline in the Chrome ``chrome://tracing`` / Perfetto JSON format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..device.clock import Timeline
from .report import format_table

__all__ = ["KernelProfile", "profile_timeline", "format_profile", "export_chrome_trace"]


@dataclass(frozen=True)
class KernelProfile:
    """Aggregate stats of one timeline category."""

    category: str
    calls: int
    total_time: float
    mean_time: float
    share: float  # fraction of all recorded busy time


def profile_timeline(timeline: Timeline) -> list[KernelProfile]:
    """Flat profile over a timeline, heaviest categories first."""
    totals: dict[str, tuple[int, float]] = {}
    for iv in timeline.intervals:
        calls, time = totals.get(iv.category, (0, 0.0))
        totals[iv.category] = (calls + 1, time + iv.duration)
    grand = sum(t for _, t in totals.values()) or 1.0
    profiles = [
        KernelProfile(cat, calls, time, time / calls, time / grand)
        for cat, (calls, time) in totals.items()
    ]
    return sorted(profiles, key=lambda p: -p.total_time)


def format_profile(timeline: Timeline) -> str:
    """Render the flat profile as a table."""
    rows = [
        [p.category, p.calls, p.total_time * 1e3, p.mean_time * 1e6, p.share * 100]
        for p in profile_timeline(timeline)
    ]
    return format_table(
        ["category", "calls", "total_ms", "mean_us", "share_%"], rows
    )


def export_chrome_trace(timeline: Timeline, path: str | Path) -> Path:
    """Write the timeline as a Chrome/Perfetto trace-events JSON file.

    Kernels land on one row per category; load the file at
    ``chrome://tracing`` or https://ui.perfetto.dev to inspect the
    simulated execution.
    """
    path = Path(path)
    events = []
    for iv in timeline.intervals:
        events.append(
            {
                "name": iv.category,
                "ph": "X",  # complete event
                "ts": iv.start * 1e6,  # microseconds
                "dur": iv.duration * 1e6,
                "pid": 0,
                "tid": abs(hash(iv.category)) % 1000,
                "args": {"utilization": iv.utilization},
            }
        )
    path.write_text(json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}))
    return path
