"""Figure-regeneration harness.

One entry point per paper figure (:mod:`repro.bench.figures`), each
returning a :class:`~repro.bench.harness.FigureResult` whose series can
be printed as the rows the paper plots.  The ``benchmarks/`` pytest
suite drives these and asserts the paper's qualitative claims.
"""

from .harness import FigureResult, Series
from .report import format_ascii_chart, format_figure, format_table
from .profile import export_chrome_trace, format_profile, profile_timeline
from .regression import compare_to_snapshot, load_snapshot, save_snapshot
from . import figures

__all__ = [
    "FigureResult",
    "Series",
    "format_figure",
    "format_table",
    "format_ascii_chart",
    "profile_timeline",
    "format_profile",
    "export_chrome_trace",
    "save_snapshot",
    "load_snapshot",
    "compare_to_snapshot",
    "figures",
]
