"""Containers for reproduced figures."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Series", "FigureResult"]


@dataclass
class Series:
    """One plotted curve: y-values over the figure's shared x-axis."""

    label: str
    values: list[float]

    def __post_init__(self):
        self.values = [float(v) for v in self.values]

    @property
    def array(self) -> np.ndarray:
        return np.array(self.values)

    def ratio_to(self, other: "Series") -> list[float]:
        """Elementwise self/other (NaN where the other is NaN or zero)."""
        out = []
        for a, b in zip(self.values, other.values):
            out.append(a / b if b and not np.isnan(b) and not np.isnan(a) else float("nan"))
        return out


@dataclass
class FigureResult:
    """A reproduced figure: x-axis, named series, and free-form notes."""

    figure: str
    title: str
    x_label: str
    x_values: list
    series: list[Series] = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def add(self, label: str, values) -> Series:
        s = Series(label, list(values))
        if len(s.values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(s.values)} points, x-axis has {len(self.x_values)}"
            )
        self.series.append(s)
        return s

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        known = ", ".join(s.label for s in self.series)
        raise KeyError(f"no series {label!r}; have: {known}")

    def to_csv(self, path) -> Path:
        """Write the figure's data as CSV (x column + one per series)."""
        import csv
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow([self.x_label] + [s.label for s in self.series])
            for i, x in enumerate(self.x_values):
                writer.writerow([x] + [s.values[i] for s in self.series])
        return path
