"""Figure-snapshot regression tooling.

The cost model is calibrated once; any later change to a constant or a
kernel's work decomposition should be *deliberate*.  This module
snapshots figure results to JSON and diffs a fresh run against the
stored baseline within a tolerance — the simulator's equivalent of
performance-regression CI.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from .harness import FigureResult

__all__ = ["save_snapshot", "load_snapshot", "compare_to_snapshot", "SeriesDrift"]


def _jsonable(obj):
    """JSON fallback for the numpy scalars/arrays figures carry."""
    if hasattr(obj, "item") and not hasattr(obj, "__len__"):
        return obj.item()
    if hasattr(obj, "tolist"):
        return obj.tolist()
    raise TypeError(f"Object of type {type(obj).__name__} is not JSON serializable")


def save_snapshot(fig: FigureResult, path: str | Path) -> Path:
    """Serialize a figure's series (and notes) to JSON."""
    path = Path(path)
    payload = {
        "figure": fig.figure,
        "title": fig.title,
        "x_label": fig.x_label,
        "x_values": list(fig.x_values),
        "series": {s.label: s.values for s in fig.series},
        "notes": {k: v for k, v in fig.notes.items() if isinstance(v, (int, float, str))},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=_jsonable))
    return path


def load_snapshot(path: str | Path) -> FigureResult:
    """Rebuild a :class:`FigureResult` from a snapshot file."""
    data = json.loads(Path(path).read_text())
    fig = FigureResult(data["figure"], data["title"], data["x_label"], data["x_values"])
    for label, values in data["series"].items():
        fig.add(label, values)
    fig.notes.update(data.get("notes", {}))
    return fig


@dataclass(frozen=True)
class SeriesDrift:
    """Worst relative drift of one series vs. its snapshot."""

    label: str
    max_rel_drift: float
    at_x: object

    @property
    def ok(self) -> bool:
        return not math.isinf(self.max_rel_drift)


def compare_to_snapshot(
    fig: FigureResult, snapshot: FigureResult, rel_tol: float = 0.05
) -> list[SeriesDrift]:
    """Diff a fresh figure against a snapshot.

    Returns per-series worst drifts; raises :class:`AssertionError`
    listing every series whose drift exceeds ``rel_tol`` (NaN placement
    must match exactly — an OOM point appearing or vanishing is always
    a regression).
    """
    if list(fig.x_values) != list(snapshot.x_values):
        raise AssertionError(
            f"x-axis changed: {snapshot.x_values} -> {fig.x_values}"
        )
    drifts: list[SeriesDrift] = []
    failures: list[str] = []
    for snap_series in snapshot.series:
        try:
            current = fig.get(snap_series.label)
        except KeyError:
            failures.append(f"series {snap_series.label!r} disappeared")
            continue
        worst, worst_x = 0.0, None
        for x, old, new in zip(fig.x_values, snap_series.values, current.values):
            old_nan, new_nan = math.isnan(old), math.isnan(new)
            if old_nan != new_nan:
                failures.append(
                    f"{snap_series.label} @ {x}: NaN placement changed "
                    f"({old} -> {new})"
                )
                worst = math.inf
                continue
            if old_nan:
                continue
            denom = max(abs(old), 1e-300)
            drift = abs(new - old) / denom
            if drift > worst:
                worst, worst_x = drift, x
        drifts.append(SeriesDrift(snap_series.label, worst, worst_x))
        if worst > rel_tol and not math.isinf(worst):
            failures.append(
                f"{snap_series.label} drifted {worst * 100:.1f}% at x={worst_x} "
                f"(tolerance {rel_tol * 100:.1f}%)"
            )
    if failures:
        raise AssertionError("figure drifted from snapshot:\n  " + "\n  ".join(failures))
    return drifts
