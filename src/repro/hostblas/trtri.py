"""Triangular matrix inversion (``trtri``).

The vbatched ``trsm`` kernel (paper §III-E2) first inverts the diagonal
blocks with ``trtri`` and then applies them via ``gemm``; this is the
host reference for that kernel.
"""

from __future__ import annotations

import numpy as np

from ..errors import ArgumentError
from .trsm import trsm

__all__ = ["trtri"]


def trtri(uplo: str, diag: str, a: np.ndarray, nb: int = 32) -> np.ndarray:
    """Invert a triangular matrix in place and return it.

    Only the ``uplo`` triangle is referenced or written; the opposite
    triangle is untouched.  Singular (zero) diagonal entries raise
    :class:`ZeroDivisionError` with the 1-based LAPACK info index in the
    message.
    """
    u, d = uplo.lower(), diag.lower()
    if u not in ("l", "u"):
        raise ArgumentError(1, f"uplo must be 'l' or 'u', got {uplo!r}")
    if d not in ("n", "u"):
        raise ArgumentError(2, f"diag must be 'n' or 'u', got {diag!r}")
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ArgumentError(3, f"A must be square, got shape {a.shape}")
    n = a.shape[0]
    if n == 0:
        return a
    if d == "n":
        diag_vals = np.diagonal(a)
        zeros = np.flatnonzero(diag_vals == 0)
        if zeros.size:
            raise ZeroDivisionError(
                f"trtri: A({zeros[0] + 1},{zeros[0] + 1}) is exactly zero (info={zeros[0] + 1})"
            )

    # Blocked inversion: inv([[A11, 0], [A21, A22]]) has (2,1) block
    # -inv(A22) @ A21 @ inv(A11).  We sweep diagonal blocks, inverting
    # each in place, then fold the off-diagonal panels with two trsm
    # applications (one with the not-yet-inverted trailing block, one
    # scaling by the already-inverted leading block).
    if u == "l":
        for j0 in range(0, n, nb):
            j1 = min(j0 + nb, n)
            if j0 > 0:
                # A21 := -inv(A22block-so-far)?  Use the standard order:
                # panel := A[j0:j1, :j0];  panel := -inv(D) @ panel @ L11inv
                panel = a[j0:j1, :j0]
                # multiply on the left by inv of current diagonal block:
                trsm("l", "l", "n", d, 1.0, a[j0:j1, j0:j1], panel)
                panel *= -1.0
                # multiply on the right by the already-inverted leading
                # lower-triangular block (stored in a[:j0, :j0]).
                panel[...] = panel @ _tri_view(a[:j0, :j0], lower=True, unit=(d == "u"))
            _invert_diag_block(a[j0:j1, j0:j1], lower=True, unit=(d == "u"))
    else:
        for j0 in range(0, n, nb):
            j1 = min(j0 + nb, n)
            if j0 > 0:
                panel = a[:j0, j0:j1]
                trsm("r", "u", "n", d, 1.0, a[j0:j1, j0:j1], panel)
                panel *= -1.0
                panel[...] = _tri_view(a[:j0, :j0], lower=False, unit=(d == "u")) @ panel
            _invert_diag_block(a[j0:j1, j0:j1], lower=False, unit=(d == "u"))
    return a


def _tri_view(a: np.ndarray, lower: bool, unit: bool) -> np.ndarray:
    """Materialize the triangular part of ``a`` (unit diagonal if asked)."""
    t = np.tril(a) if lower else np.triu(a)
    if unit:
        np.fill_diagonal(t, 1.0)
    return t


def _invert_diag_block(a: np.ndarray, lower: bool, unit: bool) -> None:
    """Unblocked in-place inversion of one triangular diagonal block.

    Column-by-column: solve ``A x = e_j`` by substitution, exploiting
    that the inverse of a triangular matrix is triangular with the same
    shape.
    """
    n = a.shape[0]
    eye = np.eye(n, dtype=a.dtype)
    trsm("l", "l" if lower else "u", "n", "u" if unit else "n", 1.0, a, eye, nb=max(n, 1))
    if lower:
        rows, cols = np.tril_indices(n)
    else:
        rows, cols = np.triu_indices(n)
    # The inverse of a triangular matrix is triangular with the same
    # shape; copy back only that triangle (unit diagonals stay implicit).
    a[rows, cols] = eye[rows, cols]
