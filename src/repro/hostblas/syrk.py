"""Symmetric (Hermitian) rank-k update (``syrk``/``herk``)."""

from __future__ import annotations

import numpy as np

from ..errors import ArgumentError
from .gemm import apply_op

__all__ = ["syrk"]


def syrk(
    uplo: str,
    trans: str,
    alpha: complex,
    a: np.ndarray,
    beta: complex,
    c: np.ndarray,
) -> np.ndarray:
    """Compute ``C := alpha * op(A) @ op(A)^H + beta * C`` on one triangle.

    ``trans='n'`` performs ``A @ A^H`` (``A`` is ``n x k``); ``trans='t'``
    (or ``'c'``) performs ``A^H @ A`` (``A`` is ``k x n``).  Only the
    triangle selected by ``uplo`` (``'l'`` or ``'u'``) is referenced and
    updated — the opposite triangle is left untouched, exactly as BLAS
    specifies, which the Cholesky driver depends on.
    """
    u = uplo.lower()
    if u not in ("l", "u"):
        raise ArgumentError(1, f"uplo must be 'l' or 'u', got {uplo!r}")
    t = trans.lower()
    if t not in ("n", "t", "c"):
        raise ArgumentError(2, f"trans must be 'n', 't' or 'c', got {trans!r}")
    if c.ndim != 2 or c.shape[0] != c.shape[1]:
        raise ArgumentError(6, f"C must be square, got shape {c.shape}")

    opa = apply_op(a, "n" if t == "n" else t)
    n = c.shape[0]
    if opa.shape[0] != n:
        raise ArgumentError(4, f"op(A) has {opa.shape[0]} rows, C has order {n}")

    # Full product, then masked copy into the requested triangle.  The
    # dense matmul is far faster than per-column triangular updates in
    # NumPy, and the mask preserves the untouched-triangle contract.
    full = alpha * (opa @ opa.conj().T)
    rows, cols = np.tril_indices(n) if u == "l" else np.triu_indices(n)
    if beta == 0:
        c[rows, cols] = full[rows, cols]
    else:
        c[rows, cols] = beta * c[rows, cols] + full[rows, cols]
    return c
