"""Cholesky factorization: unblocked ``potf2`` and blocked ``potrf``.

``potrf`` follows Algorithm 1 of the paper exactly — the left-looking
blocked sweep whose three steps (customized ``syrk`` panel update,
``potf2`` tile factorization, ``trsm`` panel solve) are what the fused
device kernel stitches together.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ArgumentError
from .trsm import trsm

__all__ = ["potf2", "potrf"]


def potf2(a: np.ndarray, uplo: str = "l") -> int:
    """Unblocked Cholesky of ``A`` in place; returns a LAPACK info code.

    ``info = 0`` on success; ``info = j`` (1-based) if the leading minor
    of order ``j`` is not positive definite — in which case the first
    ``j - 1`` columns hold the partial factor, as LAPACK specifies.
    Only the ``uplo`` triangle is referenced and written.
    """
    u = uplo.lower()
    if u not in ("l", "u"):
        raise ArgumentError(2, f"uplo must be 'l' or 'u', got {uplo!r}")
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ArgumentError(1, f"A must be square, got shape {a.shape}")
    n = a.shape[0]
    if u == "u":
        # Factor the plain-transpose *view* so a single lower-oriented
        # loop serves both cases: for Hermitian A stored upper,
        # A^T = conj(A) = U^T (U^T)^H, i.e. the lower factor of a.T is
        # exactly U^T, which lives in a's upper triangle — in place.
        return potf2(a.T, "l")

    for j in range(n):
        # d = A[j,j] - dot(L[j,:j], conj(L[j,:j]))
        row = a[j, :j]
        d = a[j, j].real - np.real(row @ row.conj())
        if d <= 0 or math.isnan(d):
            return j + 1
        d = math.sqrt(d)
        a[j, j] = d
        if j + 1 < n:
            # Column update, vectorized over the rows below j.
            a[j + 1 :, j] -= a[j + 1 :, :j] @ row.conj()
            a[j + 1 :, j] /= d
    return 0


def potrf(a: np.ndarray, uplo: str = "l", nb: int = 32) -> int:
    """Blocked left-looking Cholesky of ``A`` in place (Algorithm 1).

    Returns the LAPACK info code (0 = success).  For each panel ``i``:

    1. *panel update* — subtract ``A[i:, :i] @ A[i:i+nb, :i]^H`` from the
       current ``m x nb`` panel (the customized rank-k ``syrk`` of
       Figure 2, where ``B`` is a portion of ``A``);
    2. *tile factorize* — ``potf2`` on the ``nb x nb`` diagonal tile;
    3. *panel factorize* — ``trsm`` on the rows below the tile.
    """
    u = uplo.lower()
    if u not in ("l", "u"):
        raise ArgumentError(2, f"uplo must be 'l' or 'u', got {uplo!r}")
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ArgumentError(1, f"A must be square, got shape {a.shape}")
    if nb <= 0:
        raise ArgumentError(3, f"nb must be positive, got {nb}")
    if u == "u":
        return potrf(a.T, "l", nb)

    n = a.shape[0]
    for j0 in range(0, n, nb):
        j1 = min(j0 + nb, n)
        if j0 > 0:
            # Step 1: C[m x nb] -= A[m x k] @ B[nb x k]^H with B a slice
            # of A — exactly the fused kernel's customized update.  The
            # diagonal tile is updated on its lower triangle only so the
            # strictly-upper triangle stays untouched (LAPACK contract).
            b = a[j0:j1, :j0]
            upd_tile = b @ b.conj().T
            rows, cols = np.tril_indices(j1 - j0)
            a[j0:j1, j0:j1][rows, cols] -= upd_tile[rows, cols]
            if j1 < n:
                a[j1:, j0:j1] -= a[j1:, :j0] @ b.conj().T
        info = potf2(a[j0:j1, j0:j1], "l")
        if info != 0:
            return j0 + info
        if j1 < n:
            # Step 3: A[j1:, j0:j1] := A[j1:, j0:j1] @ L11^-H
            trsm("r", "l", "c", "n", 1.0, a[j0:j1, j0:j1], a[j1:, j0:j1])
    return 0
