"""Test-matrix generation and factorization-quality metrics."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..types import Precision, precision_info

__all__ = [
    "make_spd",
    "make_spd_batch",
    "cholesky_residual",
    "lower_triangular_error",
]


def make_spd(
    n: int,
    precision: Precision | str = Precision.D,
    seed: int = 0,
    dominance: float = 1.0,
) -> np.ndarray:
    """Generate a well-conditioned ``n x n`` SPD (HPD) matrix.

    ``A = R R^H + dominance * n * I`` with random ``R`` — symmetric by
    construction, positive definite by the diagonal shift.  Larger
    ``dominance`` improves conditioning; ``dominance=0`` still yields
    an SPD matrix with probability one but possibly ill-conditioned.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    info = precision_info(Precision(precision))
    rng = np.random.default_rng(seed)
    r = rng.standard_normal((n, n))
    if info.precision.is_complex:
        r = r + 1j * rng.standard_normal((n, n))
    a = (r @ r.conj().T) + dominance * max(n, 1) * np.eye(n)
    return np.ascontiguousarray(a.astype(info.dtype))


def make_spd_batch(
    sizes: Sequence[int],
    precision: Precision | str = Precision.D,
    seed: int = 0,
) -> list[np.ndarray]:
    """One SPD matrix per entry of ``sizes`` (independent seeds)."""
    return [
        make_spd(int(n), precision, seed=seed + 1000 * i) for i, n in enumerate(sizes)
    ]


def cholesky_residual(a_original: np.ndarray, factored: np.ndarray, uplo: str = "l") -> float:
    """Relative residual ``||A - L L^H|| / (n ||A||)`` (Frobenius).

    ``factored`` is the in-place POTRF output; only its ``uplo``
    triangle is read.  A backward-stable factorization keeps this at a
    modest multiple of machine epsilon.
    """
    n = a_original.shape[0]
    if n == 0:
        return 0.0
    if uplo.lower() == "l":
        l = np.tril(factored)
        recon = l @ l.conj().T
    else:
        u = np.triu(factored)
        recon = u.conj().T @ u
    norm_a = np.linalg.norm(a_original)
    if norm_a == 0:
        return float(np.linalg.norm(recon))
    return float(np.linalg.norm(_herm(a_original, uplo) - recon) / (n * norm_a))


def _herm(a: np.ndarray, uplo: str) -> np.ndarray:
    """Materialize the full Hermitian matrix from its stored triangle."""
    if uplo.lower() == "l":
        l = np.tril(a, -1)
        return l + l.conj().T + np.diag(np.real(np.diagonal(a)))
    u = np.triu(a, 1)
    return u + u.conj().T + np.diag(np.real(np.diagonal(a)))


def lower_triangular_error(computed: np.ndarray, reference: np.ndarray) -> float:
    """Max elementwise error between the lower triangles of two factors."""
    if computed.shape != reference.shape:
        raise ValueError(f"shape mismatch: {computed.shape} vs {reference.shape}")
    diff = np.abs(np.tril(computed) - np.tril(reference))
    scale = max(1.0, float(np.abs(np.tril(reference)).max(initial=0.0)))
    return float(diff.max(initial=0.0) / scale)
