"""General matrix-matrix multiply (``gemm``) with BLAS semantics."""

from __future__ import annotations

import numpy as np

from ..errors import ArgumentError

__all__ = ["gemm", "apply_op"]

_OPS = ("n", "t", "c")


def apply_op(a: np.ndarray, trans: str) -> np.ndarray:
    """Return ``op(A)`` for a BLAS trans flag (``n``/``t``/``c``).

    Always returns a *view* for ``n``/``t`` and a conjugated copy only
    when ``c`` requires it, per the views-not-copies guideline.
    """
    t = trans.lower()
    if t == "n":
        return a
    if t == "t":
        return a.T
    if t == "c":
        return a.conj().T
    raise ArgumentError(1, f"trans must be one of {_OPS}, got {trans!r}")


def gemm(
    transa: str,
    transb: str,
    alpha: complex,
    a: np.ndarray,
    b: np.ndarray,
    beta: complex,
    c: np.ndarray,
) -> np.ndarray:
    """Compute ``C := alpha * op(A) @ op(B) + beta * C`` in place.

    Mirrors BLAS ``xGEMM``: ``C`` is updated in place and also returned
    for convenience.  Dimension mismatches raise :class:`ArgumentError`
    with the 1-based argument index, per the LAPACK error convention.
    """
    if transa.lower() not in _OPS:
        raise ArgumentError(1, f"transa must be one of {_OPS}, got {transa!r}")
    if transb.lower() not in _OPS:
        raise ArgumentError(2, f"transb must be one of {_OPS}, got {transb!r}")
    if a.ndim != 2:
        raise ArgumentError(4, f"A must be 2-D, got shape {a.shape}")
    if b.ndim != 2:
        raise ArgumentError(5, f"B must be 2-D, got shape {b.shape}")
    if c.ndim != 2:
        raise ArgumentError(7, f"C must be 2-D, got shape {c.shape}")

    opa = apply_op(a, transa)
    opb = apply_op(b, transb)
    m, ka = opa.shape
    kb, n = opb.shape
    if ka != kb:
        raise ArgumentError(5, f"inner dimensions disagree: {ka} vs {kb}")
    if c.shape != (m, n):
        raise ArgumentError(7, f"C has shape {c.shape}, expected {(m, n)}")

    # Degenerate case: a zero inner dimension scales C only.
    if ka == 0:
        c *= beta
        return c

    if beta == 0:
        # BLAS semantics: beta == 0 overwrites C, even if C holds NaNs.
        c[...] = opa @ opb
        if alpha != 1:
            c *= alpha
    else:
        if beta != 1:
            c *= beta
        c += alpha * (opa @ opb)
    return c
