"""One-sided Jacobi SVD (gesvj), the reference for the vbatched driver.

Hestenes' method: right plane rotations orthogonalize the columns of
``A`` in place (``A G_1 G_2 ... = U diag(s)``) while the rotations
accumulate into ``V``.  Singular values are the final column norms,
``U`` the normalized columns.  Real precisions only — the vbatched
driver mirrors that restriction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["jacobi_sweep", "gesvj"]


def jacobi_sweep(a: np.ndarray, v: np.ndarray, tol: float) -> int:
    """One cyclic sweep of one-sided Jacobi rotations, in place.

    Walks every column pair ``(p, q)``, ``p < q``, in row-cyclic order;
    a pair whose normalized off-diagonal inner product exceeds ``tol``
    gets a plane rotation applied to columns of both ``a`` and ``v``.
    Returns the number of rotations applied (0 means converged).
    """
    n = a.shape[1]
    rotations = 0
    for p in range(n - 1):
        for q in range(p + 1, n):
            apq = float(a[:, p] @ a[:, q])
            app = float(a[:, p] @ a[:, p])
            aqq = float(a[:, q] @ a[:, q])
            if abs(apq) <= tol * np.sqrt(app * aqq) or app == 0.0 or aqq == 0.0:
                continue
            zeta = (aqq - app) / (2.0 * apq)
            t = np.sign(zeta) / (abs(zeta) + np.sqrt(1.0 + zeta * zeta))
            if zeta == 0.0:
                t = 1.0
            c = 1.0 / np.sqrt(1.0 + t * t)
            s = c * t
            rot_p = c * a[:, p] - s * a[:, q]
            rot_q = s * a[:, p] + c * a[:, q]
            a[:, p], a[:, q] = rot_p, rot_q
            rot_vp = c * v[:, p] - s * v[:, q]
            rot_vq = s * v[:, p] + c * v[:, q]
            v[:, p], v[:, q] = rot_vp, rot_vq
            rotations += 1
    return rotations


def gesvj(
    a: np.ndarray,
    tol: float = 1.0e-10,
    max_sweeps: int = 30,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Full SVD ``a = u @ diag(s) @ vt`` of a real ``m x n`` matrix, m >= n.

    Returns ``(u, s, vt, sweeps)`` with ``u`` of shape ``(m, n)``, the
    singular values descending, and ``sweeps`` the count actually spent
    (0 for an already-orthogonal column set).  ``a`` is not modified.
    """
    a = np.array(a, copy=True)
    if a.ndim != 2:
        raise ValueError(f"gesvj needs a 2-D matrix, got shape {a.shape}")
    if np.iscomplexobj(a):
        raise ValueError("gesvj supports real precisions only")
    m, n = a.shape
    if m < n:
        raise ValueError(f"gesvj needs m >= n, got {a.shape}")
    v = np.eye(n, dtype=a.dtype)
    sweeps = 0
    for _ in range(max_sweeps):
        if jacobi_sweep(a, v, tol) == 0:
            break
        sweeps += 1
    s = np.sqrt(np.sum(np.abs(a) ** 2, axis=0))
    order = np.argsort(-s, kind="stable")
    s = s[order]
    u = a[:, order]
    v = v[:, order]
    nonzero = s > 0
    u[:, nonzero] = u[:, nonzero] / s[nonzero]
    return u, s.astype(a.dtype), v.T.copy(), sweeps
