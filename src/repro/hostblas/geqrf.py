"""Householder QR factorization (``geqr2``/``geqrf``).

Host reference for the vbatched QR extension (paper §V future work).
LAPACK storage: R in the upper triangle, the Householder vectors below
the diagonal (implicit unit leading entry), scalars in ``tau``.  The
blocked variant accumulates the compact-WY ``T`` factor (``larft``) and
applies panels with two gemms (``larfb``) — exactly the structure the
vbatched gemm kernel accelerates.
"""

from __future__ import annotations

import numpy as np

from ..errors import ArgumentError

__all__ = ["geqr2", "geqrf", "larft", "apply_q_transpose", "build_q"]


def _house(x: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Householder vector for ``x`` -> ``(v, tau, beta)`` with v[0] = 1."""
    alpha = x[0]
    normx = np.linalg.norm(x)
    if normx == 0 or (x.size == 1 and np.isrealobj(x)):
        return np.zeros_like(x), 0.0, float(np.real(alpha))
    sign = alpha / abs(alpha) if alpha != 0 else 1.0
    beta = -sign * normx
    v = x.copy()
    v[0] -= beta
    denom = v[0]
    if denom == 0:
        return np.zeros_like(x), 0.0, float(np.real(beta))
    v /= denom
    tau = (beta - alpha) / beta
    return v, complex(tau) if np.iscomplexobj(x) else float(np.real(tau)), beta


def geqr2(a: np.ndarray, tau: np.ndarray) -> None:
    """Unblocked Householder QR of ``A`` in place."""
    m, n = a.shape
    if tau.shape[0] < min(m, n):
        raise ArgumentError(2, f"tau too short: {tau.shape[0]} < {min(m, n)}")
    for j in range(min(m, n)):
        v, t, beta = _house(a[j:, j].copy())
        tau[j] = t
        if t != 0 and j + 1 < n:
            # A[j:, j+1:] -= t * v (v^H A[j:, j+1:])
            w = v.conj() @ a[j:, j + 1 :]
            a[j:, j + 1 :] -= np.outer(t * v, w)
        a[j, j] = beta
        if j + 1 <= m - 1:
            a[j + 1 :, j] = v[1:]


def larft(a_panel: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Compact-WY ``T`` for the panel's reflectors (forward, columnwise)."""
    m, k = a_panel.shape
    t = np.zeros((k, k), dtype=a_panel.dtype)
    for j in range(k):
        v_j = np.zeros(m, dtype=a_panel.dtype)
        v_j[j] = 1.0
        v_j[j + 1 :] = a_panel[j + 1 :, j]
        if j > 0:
            # T[:j, j] = -tau_j * T[:j, :j] @ (V[:, :j]^H v_j)
            vprev = np.tril(a_panel[:, :j], -1).copy()
            for i in range(j):
                vprev[i, i] = 1.0
            w = vprev.conj().T @ v_j
            t[:j, j] = -tau[j] * (t[:j, :j] @ w)
        t[j, j] = tau[j]
    return t


def _panel_v(a_panel: np.ndarray) -> np.ndarray:
    """Materialize the unit-lower V matrix from the packed panel."""
    m, k = a_panel.shape
    v = np.tril(a_panel, -1).astype(a_panel.dtype)
    for i in range(min(m, k)):
        v[i, i] = 1.0
    return v


def apply_q_transpose(a_panel: np.ndarray, t: np.ndarray, c: np.ndarray) -> None:
    """``C := (I - V T^H V^H)^H C = (I - V T V^H) ... `` apply ``Q^H`` (larfb).

    ``Q = I - V T V^H`` for the forward product of the panel's
    reflectors; ``Q^H C = C - V T^H (V^H C)``.
    """
    v = _panel_v(a_panel)
    w = v.conj().T @ c
    c -= v @ (t.conj().T @ w)


def geqr2_blocked_step(a: np.ndarray, j0: int, jb: int, tau: np.ndarray) -> np.ndarray:
    """Factor one panel in place and return its ``T`` factor."""
    panel = a[j0:, j0 : j0 + jb]
    geqr2(panel, tau[j0 : j0 + jb])
    return larft(panel, tau[j0 : j0 + jb])


def geqrf(a: np.ndarray, tau: np.ndarray, nb: int = 32) -> None:
    """Blocked Householder QR of ``A`` in place."""
    if a.ndim != 2:
        raise ArgumentError(1, f"A must be 2-D, got shape {a.shape}")
    if nb <= 0:
        raise ArgumentError(3, f"nb must be positive, got {nb}")
    m, n = a.shape
    for j0 in range(0, min(m, n), nb):
        jb = min(nb, min(m, n) - j0)
        t = geqr2_blocked_step(a, j0, jb, tau)
        if j0 + jb < n:
            apply_q_transpose(a[j0:, j0 : j0 + jb], t, a[j0:, j0 + jb :])


def build_q(a: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Materialize the full ``Q`` (orgqr-style, for testing)."""
    m, n = a.shape
    k = min(m, n)
    q = np.eye(m, dtype=a.dtype)
    for j in range(k - 1, -1, -1):
        v = np.zeros(m, dtype=a.dtype)
        v[j] = 1.0
        v[j + 1 :] = a[j + 1 :, j]
        q[j:, :] -= np.outer(tau[j] * v[j:], v[j:].conj() @ q[j:, :])
    return q
