"""Triangular solve with multiple right-hand sides (``trsm``).

Implemented as blocked forward/back substitution over ``nb``-wide row
blocks, so the algorithmic structure matches the device kernel's
(diagonal-block solve + gemm update) rather than calling a library
solver.
"""

from __future__ import annotations

import numpy as np

from ..errors import ArgumentError
from .gemm import apply_op

__all__ = ["trsm"]

_DEFAULT_NB = 32


def _solve_diag_block(a: np.ndarray, b: np.ndarray, lower: bool, unit: bool) -> None:
    """Unblocked in-place solve ``A X = B`` for one triangular diagonal block.

    Column-oriented substitution: each step eliminates one unknown row
    of ``X`` across all right-hand sides at once (vectorized over the
    RHS dimension).
    """
    n = a.shape[0]
    order = range(n) if lower else range(n - 1, -1, -1)
    for j in order:
        if not unit:
            b[j, :] /= a[j, j]
        if lower:
            if j + 1 < n:
                b[j + 1 :, :] -= np.outer(a[j + 1 :, j], b[j, :])
        else:
            if j > 0:
                b[:j, :] -= np.outer(a[:j, j], b[j, :])


def _left_solve(m: np.ndarray, b: np.ndarray, lower: bool, unit: bool, nb: int) -> None:
    """Blocked in-place solve ``M X = B`` with ``M`` triangular."""
    n = m.shape[0]
    if lower:
        for j0 in range(0, n, nb):
            j1 = min(j0 + nb, n)
            _solve_diag_block(m[j0:j1, j0:j1], b[j0:j1, :], True, unit)
            if j1 < n:
                b[j1:, :] -= m[j1:, j0:j1] @ b[j0:j1, :]
    else:
        blocks = list(range(0, n, nb))
        for j0 in reversed(blocks):
            j1 = min(j0 + nb, n)
            _solve_diag_block(m[j0:j1, j0:j1], b[j0:j1, :], False, unit)
            if j0 > 0:
                b[:j0, :] -= m[:j0, j0:j1] @ b[j0:j1, :]


def trsm(
    side: str,
    uplo: str,
    trans: str,
    diag: str,
    alpha: complex,
    a: np.ndarray,
    b: np.ndarray,
    nb: int = _DEFAULT_NB,
) -> np.ndarray:
    """Solve ``op(A) X = alpha B`` (left) or ``X op(A) = alpha B`` (right).

    ``B`` is overwritten with the solution ``X`` and returned.  ``A`` is
    triangular per ``uplo``/``diag``; only its relevant triangle is
    read.  ``nb`` is the substitution block size (algorithmic only —
    results are identical for any positive value).
    """
    s, u, t, d = side.lower(), uplo.lower(), trans.lower(), diag.lower()
    if s not in ("l", "r"):
        raise ArgumentError(1, f"side must be 'l' or 'r', got {side!r}")
    if u not in ("l", "u"):
        raise ArgumentError(2, f"uplo must be 'l' or 'u', got {uplo!r}")
    if t not in ("n", "t", "c"):
        raise ArgumentError(3, f"trans must be 'n', 't' or 'c', got {trans!r}")
    if d not in ("n", "u"):
        raise ArgumentError(4, f"diag must be 'n' or 'u', got {diag!r}")
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ArgumentError(6, f"A must be square, got shape {a.shape}")
    if b.ndim != 2:
        raise ArgumentError(7, f"B must be 2-D, got shape {b.shape}")
    if nb <= 0:
        raise ArgumentError(8, f"nb must be positive, got {nb}")

    na = a.shape[0]
    need = b.shape[0] if s == "l" else b.shape[1]
    if na != need:
        raise ArgumentError(6, f"A has order {na}, B needs {need}")

    if alpha != 1:
        b *= alpha
    if na == 0 or b.size == 0:
        return b

    unit = d == "u"
    # op(A) as an explicit (possibly conjugated) view; its effective
    # triangularity flips under transposition.
    m = apply_op(a, t)
    lower_eff = (u == "l") == (t == "n")

    if s == "l":
        _left_solve(m, b, lower_eff, unit, nb)
    else:
        # X op(A) = B  <=>  op(A)^T X^T = B^T; transposing M flips its
        # triangle once more.  B.T is a view, so the solve stays in place.
        _left_solve(m.T, b.T, not lower_eff, unit, nb)
    return b
