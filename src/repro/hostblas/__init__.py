"""Reference dense linear algebra, written from scratch on NumPy.

These routines are the *functional ground truth* for the simulated
device kernels: every kernel's numerics are tested against them, and
they are themselves tested against ``scipy.linalg``.  They follow BLAS
calling conventions (uplo/side/trans/diag flags, in-place updates) so
the device kernels can mirror the real MAGMA decomposition exactly.
"""

from .gemm import gemm
from .syrk import syrk
from .trsm import trsm
from .trtri import trtri
from .potrf import potf2, potrf
from .getrf import apply_pivots, getf2, getrf
from .geqrf import apply_q_transpose, build_q, geqr2, geqrf, larft
from .svd import gesvj, jacobi_sweep
from .validate import (
    make_spd,
    make_spd_batch,
    cholesky_residual,
    lower_triangular_error,
)

__all__ = [
    "gemm",
    "syrk",
    "trsm",
    "trtri",
    "potf2",
    "potrf",
    "getf2",
    "getrf",
    "apply_pivots",
    "geqr2",
    "geqrf",
    "larft",
    "apply_q_transpose",
    "build_q",
    "gesvj",
    "jacobi_sweep",
    "make_spd",
    "make_spd_batch",
    "cholesky_residual",
    "lower_triangular_error",
]
