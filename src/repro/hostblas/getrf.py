"""LU factorization with partial pivoting (``getf2``/``getrf``).

Host reference for the vbatched LU extension (paper §V future work).
Follows LAPACK semantics: ``A = P L U`` stored in place, ``ipiv`` holds
1-based pivot rows, ``info > 0`` flags an exactly-singular pivot.
"""

from __future__ import annotations

import numpy as np

from ..errors import ArgumentError
from .trsm import trsm

__all__ = ["getf2", "getrf", "apply_pivots"]


def getf2(a: np.ndarray, ipiv: np.ndarray) -> int:
    """Unblocked right-looking LU with partial pivoting, in place."""
    m, n = a.shape
    if ipiv.shape[0] < min(m, n):
        raise ArgumentError(2, f"ipiv too short: {ipiv.shape[0]} < {min(m, n)}")
    info = 0
    for j in range(min(m, n)):
        p = j + int(np.argmax(np.abs(a[j:, j])))
        ipiv[j] = p + 1  # LAPACK 1-based
        if a[p, j] == 0:
            if info == 0:
                info = j + 1
            continue
        if p != j:
            a[[j, p], :] = a[[p, j], :]
        if j + 1 < m:
            a[j + 1 :, j] /= a[j, j]
            if j + 1 < n:
                a[j + 1 :, j + 1 :] -= np.outer(a[j + 1 :, j], a[j, j + 1 :])
    return info


def getrf(a: np.ndarray, ipiv: np.ndarray, nb: int = 32) -> int:
    """Blocked right-looking LU with partial pivoting, in place."""
    if a.ndim != 2:
        raise ArgumentError(1, f"A must be 2-D, got shape {a.shape}")
    if nb <= 0:
        raise ArgumentError(3, f"nb must be positive, got {nb}")
    m, n = a.shape
    info = 0
    for j0 in range(0, min(m, n), nb):
        j1 = min(j0 + nb, min(m, n))
        jb = j1 - j0
        panel = a[j0:, j0:j1]
        panel_piv = np.zeros(jb, dtype=np.int64)
        panel_info = getf2(panel, panel_piv)
        if panel_info != 0 and info == 0:
            info = j0 + panel_info
        # Translate panel pivots to global rows and apply the swaps to
        # the columns outside the panel.
        for k in range(jb):
            ipiv[j0 + k] = j0 + panel_piv[k]
            p = j0 + int(panel_piv[k]) - 1
            row = j0 + k
            if p != row:
                a[[row, p], :j0] = a[[p, row], :j0]
                a[[row, p], j1:] = a[[p, row], j1:]
        if j1 < n:
            # U12 := L11^{-1} A12, then trailing update.
            trsm("l", "l", "n", "u", 1.0, a[j0:j1, j0:j1], a[j0:j1, j1:])
            if j1 < m:
                a[j1:, j1:] -= a[j1:, j0:j1] @ a[j0:j1, j1:]
    return info


def apply_pivots(b: np.ndarray, ipiv: np.ndarray, forward: bool = True) -> np.ndarray:
    """Apply LAPACK-style row interchanges to ``B`` (laswp)."""
    order = range(len(ipiv)) if forward else range(len(ipiv) - 1, -1, -1)
    for j in order:
        p = int(ipiv[j]) - 1
        if p != j:
            b[[j, p]] = b[[p, j]]
    return b
