"""Single-matrix kernels in the style of vendor (cuBLAS) routines.

Used by the baselines: the MAGMA-hybrid algorithm launches one gemm /
syrk per matrix per step on the GPU (panel on the CPU), and the
streamed-syrk alternative launches one vendor syrk per matrix.  A
single small matrix cannot fill the device — that is the paper's whole
motivation — and these kernels show it: their grids have few blocks, so
most SM slots idle.
"""

from __future__ import annotations

import numpy as np

from .. import flops as _flops
from ..hostblas import gemm as host_gemm, potf2 as host_potf2
from ..types import Precision, precision_info
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from .gemm import GemmTiling

__all__ = ["SingleGemmKernel", "SinglePotf2Kernel"]


class SingleGemmKernel(Kernel):
    """A well-tuned large-matrix gemm applied to one (small) matrix."""

    etm_mode = "classic"
    compute_efficiency = 0.75

    def __init__(self, m: int, n: int, k: int, precision: Precision,
                 a: np.ndarray | None = None, b: np.ndarray | None = None,
                 c: np.ndarray | None = None, transb: str = "n",
                 alpha: complex = 1.0, beta: complex = 1.0,
                 tiling: GemmTiling | None = None):
        super().__init__()
        if min(m, n, k) < 0:
            raise ValueError(f"negative gemm dims ({m}, {n}, {k})")
        self.m, self.n, self.k = m, n, k
        self._prec = Precision(precision)
        self._info = precision_info(self._prec)
        self.a, self.b, self.c = a, b, c
        self.transb = transb
        self.alpha, self.beta = alpha, beta
        self.tiling = tiling or GemmTiling.for_precision(self._info.bytes_per_element)
        self.name = f"cublas_gemm:{self._info.name}"

    @property
    def precision(self) -> Precision:
        return self._prec

    def launch_config(self) -> LaunchConfig:
        t = self.tiling
        return LaunchConfig(t.threads, t.shared_mem(self._info.bytes_per_element), t.regs_per_thread, ilp=4.0)

    def block_works(self) -> list[BlockWork]:
        t = self.tiling
        tiles = max(1, -(-self.m // t.blk_m)) * max(1, -(-self.n // t.blk_n))
        if self.m == 0 or self.n == 0:
            return [BlockWork(0.0, 0.0, active_threads=0, count=1)]
        flops = _flops.gemm_flops(self.m, self.n, self.k, None) * self._info.flop_weight / tiles
        elem = self._info.bytes_per_element
        em, en = min(t.blk_m, self.m), min(t.blk_n, self.n)
        bytes_ = ((em + en) * self.k + 2.0 * em * en) * elem
        active = max(1, round(t.threads * (em * en) / (t.blk_m * t.blk_n)))
        return [BlockWork(flops, bytes_, active_threads=active, count=tiles)]

    def run_numerics(self) -> None:
        if self.c is None or self.m == 0 or self.n == 0:
            return
        host_gemm("n", self.transb, self.alpha, self.a, self.b, self.beta, self.c)


class SinglePotf2Kernel(Kernel):
    """One-block unblocked Cholesky of a single tile on the device.

    The GPU-resident fallback for tiny diagonal tiles: one thread block,
    one serial column sweep — low throughput by construction, which is
    why hybrid algorithms place this step on the CPU instead.
    """

    compute_efficiency = 0.25

    def __init__(self, n: int, precision: Precision, a: np.ndarray | None = None,
                 info_out: np.ndarray | None = None, info_offset: int = 0):
        super().__init__()
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if n > 1024:
            raise ValueError(f"single-block potf2 limited to 1024 rows, got {n}")
        self.n = n
        self._prec = Precision(precision)
        self._info = precision_info(self._prec)
        self.a = a
        self.info_out = info_out
        self.info_offset = info_offset
        self.name = f"potf2_single:{self._info.name}"

    @property
    def precision(self) -> Precision:
        return self._prec

    def launch_config(self) -> LaunchConfig:
        threads = min(1024, -(-self.n // 32) * 32)
        smem = self.n * min(self.n, 64) * self._info.bytes_per_element
        return LaunchConfig(threads, min(smem, 48 * 1024))

    def block_works(self) -> list[BlockWork]:
        return [
            BlockWork(
                flops=_flops.potf2_flops(self.n) * self._info.flop_weight,
                bytes=2.0 * self.n * self.n * self._info.bytes_per_element,
                serial_iters=float(self.n),
                active_threads=self.n,
                count=1,
            )
        ]

    def run_numerics(self) -> None:
        if self.a is None:
            return
        info = host_potf2(self.a, "l")
        if info != 0 and self.info_out is not None:
            self.info_out[0] = self.info_offset + info
