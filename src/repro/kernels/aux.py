"""Auxiliary metadata kernels (paper §III-A, §III-F).

Because every size/lda array lives in device memory, "simple arithmetic
operations on the matrix size need to be performed on the whole array"
by GPU kernels: the max reduction behind the LAPACK-style interface,
and the per-step size arithmetic the factorization driver uses to tell
``trsm``/``syrk`` which matrices are already finished.  These kernels
are integer-only and tiny; the experiments confirm their overhead is
negligible, which is the paper's argument for the simpler interface.
"""

from __future__ import annotations

import numpy as np

from ..types import Precision
from ..device.kernel import BlockWork, Kernel, LaunchConfig

__all__ = ["IMaxReduceKernel", "StepSizesKernel", "compute_max_size"]

_THREADS = 256


class IMaxReduceKernel(Kernel):
    """Tree max-reduction over a device int array into a device scalar."""

    name = "aux:imax"

    def __init__(self, values_dev, result_dev):
        super().__init__()
        self.values_dev = values_dev
        self.result_dev = result_dev

    @property
    def precision(self):
        # Integer kernels are costed on the FP32 pipelines.
        return Precision.S

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig(threads_per_block=_THREADS, shared_mem_per_block=_THREADS * 8)

    def block_works(self) -> list[BlockWork]:
        n = int(np.prod(self.values_dev.shape))
        blocks = max(1, -(-n // _THREADS))
        per_block = min(n, _THREADS)
        return [
            BlockWork(
                flops=float(per_block),  # one compare per element
                bytes=per_block * 8.0 + 8.0,
                active_threads=per_block,
                count=blocks,
            )
        ]

    def run_numerics(self) -> None:
        self.result_dev.data[0] = self.values_dev.data.max()


class StepSizesKernel(Kernel):
    """Per-step size arithmetic for the factorization driver.

    Computes, for the panel starting at column ``offset``:

    * ``remaining[i] = max(0, sizes[i] - offset)`` — rows left,
    * ``panel[i] = clip(remaining[i], 0, nb)`` — current panel width,

    writing both to device arrays, plus device scalars for the max
    remaining size and the count of still-active matrices (what the
    driver downloads to shape the next launches).
    """

    name = "aux:step_sizes"

    def __init__(self, sizes_dev, offset: int, nb: int, remaining_dev, panel_dev, stats_dev):
        super().__init__()
        if offset < 0 or nb <= 0:
            raise ValueError(f"invalid offset={offset} nb={nb}")
        self.sizes_dev = sizes_dev
        self.offset = offset
        self.nb = nb
        self.remaining_dev = remaining_dev
        self.panel_dev = panel_dev
        self.stats_dev = stats_dev

    @property
    def precision(self):
        return Precision.S

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig(threads_per_block=_THREADS)

    def block_works(self) -> list[BlockWork]:
        n = int(np.prod(self.sizes_dev.shape))
        blocks = max(1, -(-n // _THREADS))
        per_block = min(n, _THREADS)
        return [
            BlockWork(
                flops=4.0 * per_block,  # subtract, two clips, a reduce step
                bytes=per_block * 8.0 * 3 + 16.0,
                active_threads=per_block,
                count=blocks,
            )
        ]

    def run_numerics(self) -> None:
        sizes = self.sizes_dev.data
        remaining = np.maximum(0, sizes - self.offset)
        self.remaining_dev.data[...] = remaining
        self.panel_dev.data[...] = np.minimum(remaining, self.nb)
        self.stats_dev.data[0] = remaining.max()
        self.stats_dev.data[1] = np.count_nonzero(remaining)


def compute_max_size(device, batch) -> int:
    """LAPACK-style interface path: max size via a device reduction.

    Launches the reduction kernel and downloads the 8-byte scalar —
    both costs land on the simulated clock, which is exactly the
    "overhead of computing the maximum" the paper measures.
    """
    result = device.alloc((1,), np.int64)
    device.launch(IMaxReduceKernel(batch.sizes_dev, result))
    if device.execute_numerics:
        value = int(device.download(result)[0])
    else:
        # Timing-only mode: charge the same transfer, read host mirror.
        device.download(result)
        value = int(batch.sizes_host.max())
    result.free()
    return value
