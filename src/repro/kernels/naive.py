"""Generic (pre-fusion) batched BLAS building blocks.

The "separated building block BLAS kernels" baseline of Fig 4: the
standard batched approach of Haidar et al. [13] *without* kernel
fusion.  Its unblocked ``potf2`` keeps the tile in global memory — every
dependent column step round-trips through DRAM — and each Algorithm-1
step costs three to four kernel launches instead of one.  That is the
overhead kernel fusion removes, and why the fused kernel wins by up to
13x (SP) / 7x (DP) on tiny matrices.
"""

from __future__ import annotations

import numpy as np

from .. import flops as _flops
from ..hostblas import potf2 as host_potf2
from ..types import Precision, precision_info
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from . import grouping

__all__ = ["NaivePotf2Kernel"]

_WARP = 32


class NaivePotf2Kernel(Kernel):
    """Vbatched unblocked Cholesky of each matrix's diagonal tile.

    One thread block per matrix; the column sweep is serial with global
    memory operands (``serial_latency_scale``), exactly the generic
    batched ``potf2`` the fused kernel replaces.
    """

    etm_mode = "classic"
    compute_efficiency = 0.25
    serial_latency_scale = 24.0

    def __init__(self, batch, offset: int, jbs: np.ndarray, max_jb: int):
        super().__init__()
        if offset < 0:
            raise ValueError(f"offset cannot be negative, got {offset}")
        if max_jb <= 0:
            raise ValueError(f"max_jb must be positive, got {max_jb}")
        self.batch = batch
        self.offset = offset
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.max_jb = int(max_jb)
        self._info = precision_info(batch.precision)
        self.name = f"naive_potf2:{self._info.name}"

    @property
    def precision(self) -> Precision:
        return self.batch.precision

    def launch_config(self) -> LaunchConfig:
        threads = min(1024, -(-self.max_jb // _WARP) * _WARP)
        return LaunchConfig(threads_per_block=threads, shared_mem_per_block=0)

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        jbs, counts = grouping.grouped_first_seen(self.jbs)
        works: list[BlockWork] = []
        for jb, count in zip(jbs.tolist(), counts.tolist()):
            if jb == 0:
                works.append(BlockWork(0.0, 0.0, active_threads=0, count=count))
                continue
            works.append(
                BlockWork(
                    flops=_flops.potf2_flops(jb) * w,
                    # Column sweeps in global memory are strided and
                    # uncoalesced: each of the jb steps re-touches the
                    # trailing columns at cache-line granularity, ~10x
                    # the useful read+write footprint.
                    bytes=10.0 * jb * jb * elem,
                    serial_iters=float(jb),
                    active_threads=jb,
                    count=count,
                )
            )
        return works

    def _tile(self, i: int, jb: int) -> np.ndarray:
        return self.batch.matrix_view(i)[
            self.offset : self.offset + jb, self.offset : self.offset + jb
        ]

    def run_numerics(self) -> None:
        infos = self.batch.infos_dev.data
        live = np.flatnonzero((self.jbs > 0) & (infos[: len(self.jbs)] == 0))
        if live.size == 0:
            return
        if grouping.reference_enabled():
            for i in live:
                i = int(i)
                info = host_potf2(self._tile(i, int(self.jbs[i])), "l")
                if info != 0:
                    infos[i] = self.offset + info
            return
        ldas = self.batch.ldas_host
        buckets = grouping.partition_buckets(
            [(int(self.jbs[i]), int(ldas[i])) for i in live]
        )
        for bucket in buckets:
            ids = live[bucket.positions]
            jb = int(self.jbs[ids[0]])
            if len(ids) == 1:
                i = int(ids[0])
                info = host_potf2(self._tile(i, jb), "l")
                if info != 0:
                    infos[i] = self.offset + info
                continue
            tiles = [self._tile(int(i), jb) for i in ids]
            stack = np.stack(tiles)
            ret = grouping.batched_potf2(stack)
            for b, tile in enumerate(tiles):
                tile[...] = stack[b]
            bad = ret > 0
            if bad.any():
                infos[ids[bad]] = self.offset + ret[bad]
