"""The fused left-looking Cholesky step kernel (paper §III-D).

One launch advances *every* assigned matrix by one ``nb``-wide panel:
each thread block owns one matrix and fuses the three Algorithm-1 steps
on a shared-memory panel —

1. the customized rank-k ``syrk`` update ``C -= A @ B^H`` where ``B`` is
   a slice of ``A`` (Figure 2), double-buffered from global memory;
2. the ``potf2`` factorization of the ``nb x nb`` diagonal tile;
3. the ``trsm`` solve of the rows below the tile.

Thread ``t`` of a block owns row ``t`` of the panel, so a matrix with
``m`` remaining rows keeps ``m`` threads busy; the rest are idle and are
what the two ETMs act on.  Blocks whose matrix is already finished
terminate immediately (ETM-classic); ETM-aggressive additionally
retires idle warps inside live blocks (§III-D1).
"""

from __future__ import annotations

import numpy as np

from ..errors import LaunchError
from ..hostblas import potf2 as host_potf2, trsm as host_trsm
from ..types import Precision, precision_info
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from . import grouping

__all__ = ["FusedPotrfStepKernel", "fused_step_numerics", "fused_shared_mem_bytes"]

_WARP = 32


def fused_shared_mem_bytes(max_m: int, nb: int, bytes_per_element: int) -> int:
    """Shared memory the fused kernel needs: the ``m x nb`` panel."""
    return max(1, max_m) * nb * bytes_per_element


def fused_step_numerics(a: np.ndarray, j0: int, nb: int) -> int:
    """Functional plane of one fused step on one matrix (lower Cholesky).

    Performs panel-update + tile-factorize + panel-solve for the panel
    starting at column ``j0``.  Returns the LAPACK info (0, or the
    1-based global index of the failing pivot).
    """
    n = a.shape[0]
    j1 = min(j0 + nb, n)
    if j0 > 0:
        b = a[j0:j1, :j0]
        upd = b @ b.conj().T
        rows, cols = np.tril_indices(j1 - j0)
        a[j0:j1, j0:j1][rows, cols] -= upd[rows, cols]
        if j1 < n:
            a[j1:, j0:j1] -= a[j1:, :j0] @ b.conj().T
    info = host_potf2(a[j0:j1, j0:j1], "l")
    if info != 0:
        return j0 + info
    if j1 < n:
        host_trsm("r", "l", "c", "n", 1.0, a[j0:j1, j0:j1], a[j1:, j0:j1])
    return 0


class FusedPotrfStepKernel(Kernel):
    """One fused factorization step over a (subset of a) batch.

    Parameters
    ----------
    batch:
        The :class:`~repro.core.batch.VBatch` being factorized.
    step:
        Zero-based panel index; the panel starts at column ``step*nb``.
    nb:
        Panel width (the fused kernel's compile-time tuning parameter).
    indices:
        Matrix indices covered by this launch (the implicit-sorting
        driver passes a sorted active subset; the plain driver passes
        everything).
    max_m:
        Largest *remaining* row count among covered matrices; sets the
        block dimension, exactly as the paper's interface requires the
        max across the batch.
    etm:
        "classic" or "aggressive".
    groups:
        Optional pre-grouped ``(remaining_sizes, counts)`` pair from
        :func:`~repro.kernels.grouping.grouped_first_seen` — the driver
        computes the step's grouping once and shares it across the
        timing plane instead of each launch re-deriving it.
    """

    #: Shared-memory-bound FMA loop: well below a register-tiled gemm.
    compute_efficiency = 0.70

    def __init__(self, batch, step: int, nb: int, indices: np.ndarray, max_m: int,
                 etm: str = "classic", groups: tuple[np.ndarray, np.ndarray] | None = None):
        self.etm_mode = etm
        super().__init__()
        if nb <= 0:
            raise ValueError(f"nb must be positive, got {nb}")
        if step < 0:
            raise ValueError(f"step cannot be negative, got {step}")
        if max_m <= 0:
            raise ValueError(f"max_m must be positive, got {max_m}")
        self.batch = batch
        self.step = step
        self.nb = nb
        self.indices = np.asarray(indices, dtype=np.int64)
        self.max_m = int(max_m)
        self.groups = groups
        self._info = precision_info(batch.precision)
        self.name = f"fused_potrf:{self._info.name}:nb{nb}"

        threads = min(1024, -(-self.max_m // _WARP) * _WARP)
        smem = fused_shared_mem_bytes(min(self.max_m, threads), nb, self._info.bytes_per_element)
        # Panel taller than the max block dimension cannot be held by
        # one block; the driver must have switched to the separated
        # approach before this point.
        if self.max_m > 1024:
            raise LaunchError(
                f"fused kernel cannot cover {self.max_m} remaining rows "
                "(max block dimension is 1024); use the separated approach"
            )
        self._config = LaunchConfig(
            threads_per_block=threads,
            shared_mem_per_block=smem,
            regs_per_thread=48,
            ilp=2.0,  # double-buffered panel update
        )

    @property
    def precision(self) -> Precision:
        return self.batch.precision

    def launch_config(self) -> LaunchConfig:
        return self._config

    # ------------------------------------------------------------------
    def _remaining(self, i: int) -> int:
        return max(0, int(self.batch.sizes_host[i]) - self.step * self.nb)

    def block_works(self) -> list[BlockWork]:
        """One block per covered matrix, grouped by remaining rows."""
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        k = self.step * self.nb
        # Group identical remaining sizes, preserving issue order (the
        # driver controls ordering: the implicit-sorting driver passes
        # size-sorted indices, the plain driver passes batch order —
        # the load-balance difference between the two must survive).
        if self.groups is not None:
            ms, counts = self.groups
        else:
            remaining = np.maximum(0, self.batch.sizes_host[self.indices] - k)
            ms, counts = grouping.grouped_first_seen(remaining)
        m = ms.astype(np.float64)
        jb = np.minimum(float(self.nb), m)
        # Customized syrk: C[m x jb] -= A[m x k] B[jb x k]^H; then the
        # potf2 of the tile and the trsm of the rows below it.
        flops = 2.0 * m * jb * k if k > 0 else np.zeros_like(m)
        flops = flops + (jb**3 / 3.0 + jb**2 / 2.0 + jb / 6.0)
        flops = flops + np.where(m > jb, (m - jb) * jb * jb, 0.0)
        # Global traffic: read the m x k history panel once (B is a
        # slice of A — the customized kernel does not reload it),
        # read + write the m x jb panel.
        bytes_ = (m * k + 2.0 * m * jb) * elem
        # Serial chains: jb dependent column steps in potf2 and jb
        # substitution steps in the fused trsm.
        serial = 2.0 * jb
        works: list[BlockWork] = []
        for i, (mi, count) in enumerate(zip(ms.tolist(), counts.tolist())):
            if mi == 0:
                works.append(BlockWork(0.0, 0.0, active_threads=0, count=count))
            else:
                works.append(
                    BlockWork(
                        flops=flops[i] * w,
                        bytes=bytes_[i],
                        serial_iters=serial[i],
                        active_threads=mi,
                        count=count,
                    )
                )
        return works

    def run_numerics(self) -> None:
        infos = self.batch.infos_dev.data
        j0 = self.step * self.nb
        sizes = self.batch.sizes_host
        # ETM: drop finished and already-failed matrices up front.
        live = self.indices[(sizes[self.indices] > j0) & (infos[self.indices] == 0)]
        if live.size == 0:
            return
        if grouping.reference_enabled():
            for i in live:
                i = int(i)
                info = fused_step_numerics(self.batch.matrix_view(i), j0, self.nb)
                if info != 0:
                    infos[i] = info
            return
        ldas = self.batch.ldas_host
        buckets = grouping.partition_buckets(
            [(int(sizes[i]), int(ldas[i])) for i in live]
        )
        for bucket in buckets:
            ids = live[bucket.positions]
            if len(ids) == 1:
                i = int(ids[0])
                info = fused_step_numerics(self.batch.matrix_view(i), j0, self.nb)
                if info != 0:
                    infos[i] = info
                continue
            views = [self.batch.matrix_view(int(i)) for i in ids]
            ret = grouping.bucket_fused_step(views, j0, self.nb)
            bad = ret > 0
            if bad.any():
                infos[ids[bad]] = ret[bad]
