"""Vbatched tiled GEMM kernel (paper §III-E2, and [3]).

Grid model follows MAGMA's vbatched gemm: a 3-D grid sized for the
*maximum* M and N across the batch, with ``batchCount`` in the z
dimension.  Blocks whose tile falls outside their own matrix terminate
via ETM-classic (the kernel body synchronizes all threads, so the
aggressive mechanism is not applicable — §III-E2).

The kernel is generic over per-matrix operand descriptors so the same
class serves the trsm panel updates and the syrk-style updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hostblas import gemm as host_gemm
from ..types import Precision, precision_info
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from . import grouping

__all__ = ["GemmTiling", "GemmTask", "VbatchedGemmKernel"]


@dataclass(frozen=True)
class GemmTiling:
    """Tile shape of the gemm kernel (an autotuning axis)."""

    blk_m: int = 64
    blk_n: int = 64
    blk_k: int = 16
    threads: int = 256
    regs_per_thread: int = 64

    def __post_init__(self):
        if min(self.blk_m, self.blk_n, self.blk_k, self.threads) <= 0:
            raise ValueError(f"tiling dimensions must be positive: {self}")

    def shared_mem(self, bytes_per_element: int) -> int:
        """Double-buffered A and B tile staging."""
        return 2 * (self.blk_m + self.blk_n) * self.blk_k * bytes_per_element

    @classmethod
    def for_precision(cls, bytes_per_element: int) -> GemmTiling:
        """Default tile shape per element size.

        The 64x64x16 shape fits shared memory for 4- and 8-byte
        elements; 16-byte (double-complex) elements need the 32x32
        variant — the same downsizing MAGMA's z-kernels apply.
        """
        if bytes_per_element <= 8:
            return cls()
        return cls(blk_m=32, blk_n=32, blk_k=16, threads=128, regs_per_thread=64)


@dataclass(frozen=True)
class GemmTask:
    """One matrix's gemm: ``C[m x n] += alpha * op(A)[m x k] @ op(B)[k x n]``.

    ``a``/``b``/``c`` are NumPy views into device arrays (or ``None``
    in timing-only mode); ``m``/``n``/``k`` alone drive the cost.
    """

    m: int
    n: int
    k: int
    a: np.ndarray | None = None
    b: np.ndarray | None = None
    c: np.ndarray | None = None
    transa: str = "n"
    transb: str = "n"
    alpha: complex = 1.0
    beta: complex = 1.0

    def __post_init__(self):
        if self.m < 0 or self.n < 0 or self.k < 0:
            raise ValueError(f"negative gemm dimensions: {self}")


def _merged_works(
    flops: np.ndarray,
    bytes_: np.ndarray,
    active: np.ndarray,
    counts: np.ndarray,
    serial: np.ndarray | None = None,
) -> list[BlockWork]:
    """Collapse consecutive identical (flops, bytes, active) rows.

    Issue order is preserved, so the exact scheduler sees the same block
    sequence; merging only shrinks the grouped representation (vbatched
    launches typically carry long runs of same-shape tasks).
    """
    size = flops.size
    if size == 0:
        return []
    new = np.ones(size, dtype=bool)
    new[1:] = (
        (flops[1:] != flops[:-1])
        | (bytes_[1:] != bytes_[:-1])
        | (active[1:] != active[:-1])
    )
    if serial is not None:
        new[1:] |= serial[1:] != serial[:-1]
    starts = np.flatnonzero(new)
    merged = np.add.reduceat(counts, starts)
    return [
        BlockWork(
            flops=float(flops[i]),
            bytes=float(bytes_[i]),
            serial_iters=0.0 if serial is None else float(serial[i]),
            active_threads=int(active[i]),
            count=int(c),
        )
        for i, c in zip(starts.tolist(), merged.tolist())
    ]


class VbatchedGemmKernel(Kernel):
    """One launch covering every task's tiles plus the ETM'd excess."""

    etm_mode = "classic"
    compute_efficiency = 0.75  # register-tiled, double-buffered inner loop

    def __init__(self, tasks: list[GemmTask], precision: Precision,
                 tiling: GemmTiling | None = None, label: str = "gemm"):
        super().__init__()
        if not tasks:
            raise ValueError("gemm launch needs at least one task")
        self.tasks = tasks
        self._prec = Precision(precision)
        self._info = precision_info(self._prec)
        self.tiling = tiling or GemmTiling.for_precision(self._info.bytes_per_element)
        self.max_m = max(t.m for t in tasks)
        self.max_n = max(t.n for t in tasks)
        self.name = f"vbatched_{label}:{self._info.name}"

    @property
    def precision(self) -> Precision:
        return self._prec

    def launch_config(self) -> LaunchConfig:
        t = self.tiling
        return LaunchConfig(
            threads_per_block=t.threads,
            shared_mem_per_block=t.shared_mem(self._info.bytes_per_element),
            regs_per_thread=t.regs_per_thread,
            ilp=4.0,
        )

    def _grid_tiles(self) -> int:
        """Per-matrix grid size: sized for the max dims (paper §III-A)."""
        t = self.tiling
        return max(1, -(-self.max_m // t.blk_m)) * max(1, -(-self.max_n // t.blk_n))

    def block_works(self) -> list[BlockWork]:
        t = self.tiling
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        grid = self._grid_tiles()
        nt = len(self.tasks)
        m = np.fromiter((task.m for task in self.tasks), dtype=np.float64, count=nt)
        n = np.fromiter((task.n for task in self.tasks), dtype=np.float64, count=nt)
        k = np.fromiter((task.k for task in self.tasks), dtype=np.float64, count=nt)
        tiles = np.ceil(m / t.blk_m) * np.ceil(n / t.blk_n)
        live = np.where((m > 0) & (n > 0), np.minimum(tiles, grid), 0.0)
        dead = int(grid * nt - live.sum())
        keep = live > 0
        m, n, k, live = m[keep], n[keep], k[keep], live[keep]
        flops = 2.0 * m * n * k * w / live
        # Per tile: stream A and B panels for the k loop, read+write
        # C — at the tile dims actually touched (edge tiles load
        # only their live rows/columns).
        em, en = np.minimum(t.blk_m, m), np.minimum(t.blk_n, n)
        bytes_ = ((em + en) * k + 2.0 * em * en) * elem
        # Small-tile inefficiency: a matrix smaller than the tile
        # blocking leaves most of the block's threads without
        # output elements (the generic kernel cannot retile).
        active = np.maximum(1, np.round(t.threads * (em * en) / (t.blk_m * t.blk_n)))
        works = _merged_works(flops, bytes_, active, live)
        if dead:
            works.append(BlockWork(0.0, 0.0, active_threads=0, count=dead))
        return works

    def run_numerics(self) -> None:
        live = [t for t in self.tasks if t.m and t.n and t.c is not None]
        if not live:
            return
        if grouping.reference_enabled():
            for t in live:
                host_gemm(t.transa, t.transb, t.alpha, t.a, t.b, t.beta, t.c)
            return
        # Same (m, n, k) and flags -> shape-compatible operand stacks.
        buckets = grouping.partition_buckets(
            [(t.m, t.n, t.k, t.transa, t.transb, t.alpha, t.beta) for t in live]
        )
        for bucket in buckets:
            tasks = [live[p] for p in bucket.positions]
            t0 = tasks[0]
            if len(tasks) == 1:
                host_gemm(t0.transa, t0.transb, t0.alpha, t0.a, t0.b, t0.beta, t0.c)
                continue
            c = np.stack([t.c for t in tasks])
            grouping.bucket_gemm(
                np.stack([t.a for t in tasks]),
                np.stack([t.b for t in tasks]),
                c,
                t0.transa,
                t0.transb,
                t0.alpha,
                t0.beta,
            )
            for t, slab in zip(tasks, c):
                t.c[...] = slab
