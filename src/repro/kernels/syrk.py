"""Vbatched symmetric rank-k update (paper §III-E3).

Two alternatives, exactly as the paper describes:

* :class:`VbatchedSyrkKernel` — inherits the gemm tiling plus "an
  additional decision layer that identifies thread blocks required to
  update either the upper or the lower triangular part ... terminating
  all other thread blocks" (ETM-classic on the dead triangle).
* :class:`StreamedSyrkLauncher` — the cuBLAS-style alternative: one
  kernel per matrix, concurrency through CUDA streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hostblas import syrk as host_syrk
from ..types import Precision, precision_info
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from . import grouping
from .gemm import GemmTiling, _merged_works

__all__ = ["SyrkTask", "VbatchedSyrkKernel", "StreamedSyrkLauncher"]


@dataclass(frozen=True)
class SyrkTask:
    """One matrix's update: ``C[n x n] := alpha op(A) op(A)^H + beta C``.

    ``trans='n'`` takes ``A`` as ``n x k``; ``trans='t'``/``'c'`` as
    ``k x n``.  Only the ``uplo`` triangle of ``C`` is touched.  The
    factorization drivers use the default lower/'n' rank-k subtraction.
    """

    n: int
    k: int
    a: np.ndarray | None = None
    c: np.ndarray | None = None
    alpha: complex = -1.0
    beta: complex = 1.0
    uplo: str = "l"
    trans: str = "n"

    def __post_init__(self):
        if self.n < 0 or self.k < 0:
            raise ValueError(f"negative syrk dimensions: {self}")
        if self.uplo not in ("l", "u") or self.trans not in ("n", "t", "c"):
            raise ValueError(f"bad syrk flags: {self}")


class VbatchedSyrkKernel(Kernel):
    """Gemm-derived syrk with the triangular decision layer."""

    etm_mode = "classic"
    compute_efficiency = 0.75  # inherits the gemm inner loop

    def __init__(self, tasks: list[SyrkTask], precision: Precision, tiling: GemmTiling | None = None):
        super().__init__()
        if not tasks:
            raise ValueError("syrk launch needs at least one task")
        self.tasks = tasks
        self._prec = Precision(precision)
        self._info = precision_info(self._prec)
        self.tiling = tiling or GemmTiling.for_precision(self._info.bytes_per_element)
        if self.tiling.blk_m != self.tiling.blk_n:
            raise ValueError("syrk decision layer requires square tiles")
        self.max_n = max(t.n for t in tasks)
        self.name = f"vbatched_syrk:{self._info.name}"

    @property
    def precision(self) -> Precision:
        return self._prec

    def launch_config(self) -> LaunchConfig:
        t = self.tiling
        return LaunchConfig(
            threads_per_block=t.threads,
            shared_mem_per_block=t.shared_mem(self._info.bytes_per_element),
            regs_per_thread=t.regs_per_thread,
            ilp=4.0,
        )

    def block_works(self) -> list[BlockWork]:
        t = self.tiling
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        tiles_max = max(1, -(-self.max_n // t.blk_m))
        grid = tiles_max * tiles_max  # full square grid, sized by max n
        nt = len(self.tasks)
        n = np.fromiter((task.n for task in self.tasks), dtype=np.float64, count=nt)
        k = np.fromiter((task.k for task in self.tasks), dtype=np.float64, count=nt)
        tiles = np.ceil(n / t.blk_m)
        live = tiles * (tiles + 1.0) / 2.0  # lower-triangle tiles only
        dead = int(grid * nt - live.sum())
        keep = live > 0
        n, k, live = n[keep], k[keep], live[keep]
        e = np.minimum(t.blk_m, n)
        rank = k > 0
        # k == 0: blocks scale C by beta only; almost free.
        flops = np.where(rank, n * (n + 1.0) * k * w / live, 0.0)
        bytes_ = np.where(rank, (2.0 * e * k + 2.0 * e * e) * elem, 2.0 * e * e * elem)
        active = np.where(
            rank,
            np.maximum(1, np.round(t.threads * (e * e) / (t.blk_m * t.blk_n))),
            t.threads,
        )
        works = _merged_works(flops, bytes_, active, live)
        if dead:
            works.append(BlockWork(0.0, 0.0, active_threads=0, count=dead))
        return works

    def run_numerics(self) -> None:
        live = [t for t in self.tasks if t.n and t.c is not None]
        if not live:
            return
        if grouping.reference_enabled():
            for t in live:
                host_syrk(t.uplo, t.trans, t.alpha, t.a, t.beta, t.c)
            return
        buckets = grouping.partition_buckets(
            [(t.n, t.k, t.alpha, t.beta, t.uplo, t.trans) for t in live]
        )
        for bucket in buckets:
            tasks = [live[p] for p in bucket.positions]
            t0 = tasks[0]
            if len(tasks) == 1:
                host_syrk(t0.uplo, t0.trans, t0.alpha, t0.a, t0.beta, t0.c)
                continue
            c = np.stack([t.c for t in tasks])
            grouping.bucket_syrk(
                np.stack([t.a for t in tasks]), c, t0.uplo, t0.trans, t0.alpha, t0.beta
            )
            for t, slab in zip(tasks, c):
                t.c[...] = slab


class StreamedSyrkLauncher:
    """cuBLAS-style alternative: one syrk kernel per matrix, on streams.

    The host issues one launch per matrix (serialized launch overhead);
    execution overlaps across ``num_streams`` round-robin streams,
    subject to the device's SM-area constraint.
    """

    def __init__(self, device, num_streams: int = 32, tiling: GemmTiling | None = None):
        if num_streams <= 0:
            raise ValueError(f"num_streams must be positive, got {num_streams}")
        self.device = device
        self.streams = [device.create_stream() for _ in range(num_streams)]
        self.tiling = tiling  # None -> per-precision default in each kernel

    def launch_all(self, tasks: list[SyrkTask], precision: Precision) -> None:
        for i, task in enumerate(tasks):
            if task.n == 0:
                continue
            kernel = VbatchedSyrkKernel([task], precision, self.tiling)
            kernel.name = f"streamed_syrk:{kernel._info.name}"
            self.device.launch(kernel, stream=self.streams[i % len(self.streams)])

    def synchronize(self) -> float:
        for s in self.streams:
            s.synchronize()
        return self.device.synchronize()
