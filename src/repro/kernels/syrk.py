"""Vbatched symmetric rank-k update (paper §III-E3).

Two alternatives, exactly as the paper describes:

* :class:`VbatchedSyrkKernel` — inherits the gemm tiling plus "an
  additional decision layer that identifies thread blocks required to
  update either the upper or the lower triangular part ... terminating
  all other thread blocks" (ETM-classic on the dead triangle).
* :class:`StreamedSyrkLauncher` — the cuBLAS-style alternative: one
  kernel per matrix, concurrency through CUDA streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import flops as _flops
from ..hostblas import syrk as host_syrk
from ..types import Precision, precision_info
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from .gemm import GemmTiling

__all__ = ["SyrkTask", "VbatchedSyrkKernel", "StreamedSyrkLauncher"]


@dataclass(frozen=True)
class SyrkTask:
    """One matrix's update: ``C[n x n] := alpha op(A) op(A)^H + beta C``.

    ``trans='n'`` takes ``A`` as ``n x k``; ``trans='t'``/``'c'`` as
    ``k x n``.  Only the ``uplo`` triangle of ``C`` is touched.  The
    factorization drivers use the default lower/'n' rank-k subtraction.
    """

    n: int
    k: int
    a: np.ndarray | None = None
    c: np.ndarray | None = None
    alpha: complex = -1.0
    beta: complex = 1.0
    uplo: str = "l"
    trans: str = "n"

    def __post_init__(self):
        if self.n < 0 or self.k < 0:
            raise ValueError(f"negative syrk dimensions: {self}")
        if self.uplo not in ("l", "u") or self.trans not in ("n", "t", "c"):
            raise ValueError(f"bad syrk flags: {self}")


class VbatchedSyrkKernel(Kernel):
    """Gemm-derived syrk with the triangular decision layer."""

    etm_mode = "classic"
    compute_efficiency = 0.75  # inherits the gemm inner loop

    def __init__(self, tasks: list[SyrkTask], precision: Precision, tiling: GemmTiling | None = None):
        super().__init__()
        if not tasks:
            raise ValueError("syrk launch needs at least one task")
        self.tasks = tasks
        self._prec = Precision(precision)
        self._info = precision_info(self._prec)
        self.tiling = tiling or GemmTiling.for_precision(self._info.bytes_per_element)
        if self.tiling.blk_m != self.tiling.blk_n:
            raise ValueError("syrk decision layer requires square tiles")
        self.max_n = max(t.n for t in tasks)
        self.name = f"vbatched_syrk:{self._info.name}"

    @property
    def precision(self) -> Precision:
        return self._prec

    def launch_config(self) -> LaunchConfig:
        t = self.tiling
        return LaunchConfig(
            threads_per_block=t.threads,
            shared_mem_per_block=t.shared_mem(self._info.bytes_per_element),
            regs_per_thread=t.regs_per_thread,
            ilp=4.0,
        )

    def block_works(self) -> list[BlockWork]:
        t = self.tiling
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        tiles_max = max(1, -(-self.max_n // t.blk_m))
        grid = tiles_max * tiles_max  # full square grid, sized by max n
        works: list[BlockWork] = []
        dead = 0
        for task in self.tasks:
            tiles = -(-task.n // t.blk_m) if task.n > 0 else 0
            live = tiles * (tiles + 1) // 2  # lower-triangle tiles only
            dead += grid - live
            e = min(t.blk_m, task.n)
            if live == 0 or task.k == 0:
                if live:
                    # k == 0: blocks scale C by beta only; almost free.
                    works.append(
                        BlockWork(0.0, 2.0 * e * e * elem,
                                  active_threads=t.threads, count=live)
                    )
                continue
            flops = _flops.syrk_flops(task.n, task.k, None) * w / live
            bytes_ = (2.0 * e * task.k + 2.0 * e * e) * elem
            active = max(1, round(t.threads * (e * e) / (t.blk_m * t.blk_n)))
            works.append(
                BlockWork(flops=flops, bytes=bytes_, active_threads=active, count=live)
            )
        if dead:
            works.append(BlockWork(0.0, 0.0, active_threads=0, count=dead))
        return works

    def run_numerics(self) -> None:
        for task in self.tasks:
            if task.n == 0 or task.c is None:
                continue
            host_syrk(task.uplo, task.trans, task.alpha, task.a, task.beta, task.c)


class StreamedSyrkLauncher:
    """cuBLAS-style alternative: one syrk kernel per matrix, on streams.

    The host issues one launch per matrix (serialized launch overhead);
    execution overlaps across ``num_streams`` round-robin streams,
    subject to the device's SM-area constraint.
    """

    def __init__(self, device, num_streams: int = 32, tiling: GemmTiling | None = None):
        if num_streams <= 0:
            raise ValueError(f"num_streams must be positive, got {num_streams}")
        self.device = device
        self.streams = [device.create_stream() for _ in range(num_streams)]
        self.tiling = tiling  # None -> per-precision default in each kernel

    def launch_all(self, tasks: list[SyrkTask], precision: Precision) -> None:
        for i, task in enumerate(tasks):
            if task.n == 0:
                continue
            kernel = VbatchedSyrkKernel([task], precision, self.tiling)
            kernel.name = f"streamed_syrk:{kernel._info.name}"
            self.device.launch(kernel, stream=self.streams[i % len(self.streams)])

    def synchronize(self) -> float:
        for s in self.streams:
            s.synchronize()
        return self.device.synchronize()
