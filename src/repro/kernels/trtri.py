"""Vbatched inversion of triangular diagonal blocks (paper §III-E2).

The vbatched ``trsm`` begins by inverting each matrix's ``ib x ib``
diagonal blocks (typically 32x32) with a ``trtri`` kernel; one thread
block inverts one diagonal block.  ETM-classic only: the inversion body
synchronizes all threads in the block.
"""

from __future__ import annotations

import numpy as np

from ..hostblas import trtri as host_trtri
from ..types import Precision, precision_info
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from . import grouping
from .gemm import _merged_works

__all__ = ["VbatchedTrtriDiagKernel", "TrtriTask"]


class TrtriTask:
    """Diagonal-block inversion for one matrix's ``jb x jb`` triangle.

    ``tri`` is the NumPy view of the triangle (or ``None`` in
    timing-only mode); ``inv_out`` receives the inverted diagonal
    blocks (a workspace the follow-up gemms consume).
    """

    __slots__ = ("jb", "tri", "inv_out")

    def __init__(self, jb: int, tri: np.ndarray | None = None, inv_out: np.ndarray | None = None):
        if jb < 0:
            raise ValueError(f"jb cannot be negative, got {jb}")
        self.jb = jb
        self.tri = tri
        self.inv_out = inv_out


class VbatchedTrtriDiagKernel(Kernel):
    """Invert every task's diagonal ``ib``-blocks in one launch."""

    etm_mode = "classic"
    compute_efficiency = 0.40  # substitution-heavy, shared-memory bound

    def __init__(self, tasks: list[TrtriTask], precision: Precision, ib: int = 32):
        super().__init__()
        if not tasks:
            raise ValueError("trtri launch needs at least one task")
        if ib <= 0:
            raise ValueError(f"ib must be positive, got {ib}")
        self.tasks = tasks
        self.ib = ib
        self._prec = Precision(precision)
        self._info = precision_info(self._prec)
        self.max_jb = max(t.jb for t in tasks)
        self.name = f"vbatched_trtri:{self._info.name}"

    @property
    def precision(self) -> Precision:
        return self._prec

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig(
            threads_per_block=min(256, self.ib * self.ib),
            shared_mem_per_block=self.ib * self.ib * self._info.bytes_per_element,
        )

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        grid_per_matrix = max(1, -(-self.max_jb // self.ib))
        threads = min(256, self.ib * self.ib)
        nt = len(self.tasks)
        jb = np.fromiter((task.jb for task in self.tasks), dtype=np.float64, count=nt)
        live = np.ceil(jb / self.ib)
        dead = int(grid_per_matrix * nt - live.sum())
        keep = live > 0
        jb, live = jb[keep], live[keep]
        ib_eff = np.minimum(self.ib, jb)
        flops = (ib_eff**3 / 3.0 + 2.0 * ib_eff / 3.0) * w
        bytes_ = 2.0 * ib_eff * ib_eff * elem
        active = np.full(ib_eff.shape, threads, dtype=np.float64)
        works = _merged_works(flops, bytes_, active, live, serial=ib_eff)
        if dead:
            works.append(BlockWork(0.0, 0.0, active_threads=0, count=dead))
        return works

    def run_numerics(self) -> None:
        live = [t for t in self.tasks if t.jb and t.tri is not None]
        if not live:
            return
        if grouping.reference_enabled() or len(live) == 1:
            for task in live:
                inv = task.inv_out
                for j0 in range(0, task.jb, self.ib):
                    j1 = min(j0 + self.ib, task.jb)
                    # Must be an explicit copy: the factor itself stays
                    # intact, only the workspace receives the inverse
                    # (ascontiguousarray would alias contiguous slices).
                    block = task.tri[j0:j1, j0:j1].copy()
                    host_trtri("l", "n", block, nb=self.ib)
                    inv[j0:j1, j0:j1] = np.tril(block)
            return
        # Bucket by jb: every task's sequence of ib-wide diagonal blocks
        # then lines up, so each block position inverts as one stack.
        for bucket in grouping.partition_buckets([t.jb for t in live]):
            tasks = [live[p] for p in bucket.positions]
            jb = tasks[0].jb
            for j0 in range(0, jb, self.ib):
                j1 = min(j0 + self.ib, jb)
                stack = np.stack([t.tri[j0:j1, j0:j1] for t in tasks])
                inv = grouping.batched_lower_trtri(stack)
                for t, blk in zip(tasks, inv):
                    t.inv_out[j0:j1, j0:j1] = blk
