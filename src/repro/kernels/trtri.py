"""Vbatched inversion of triangular diagonal blocks (paper §III-E2).

The vbatched ``trsm`` begins by inverting each matrix's ``ib x ib``
diagonal blocks (typically 32x32) with a ``trtri`` kernel; one thread
block inverts one diagonal block.  ETM-classic only: the inversion body
synchronizes all threads in the block.
"""

from __future__ import annotations

import numpy as np

from .. import flops as _flops
from ..hostblas import trtri as host_trtri
from ..types import Precision, precision_info
from ..device.kernel import BlockWork, Kernel, LaunchConfig

__all__ = ["VbatchedTrtriDiagKernel", "TrtriTask"]


class TrtriTask:
    """Diagonal-block inversion for one matrix's ``jb x jb`` triangle.

    ``tri`` is the NumPy view of the triangle (or ``None`` in
    timing-only mode); ``inv_out`` receives the inverted diagonal
    blocks (a workspace the follow-up gemms consume).
    """

    __slots__ = ("jb", "tri", "inv_out")

    def __init__(self, jb: int, tri: np.ndarray | None = None, inv_out: np.ndarray | None = None):
        if jb < 0:
            raise ValueError(f"jb cannot be negative, got {jb}")
        self.jb = jb
        self.tri = tri
        self.inv_out = inv_out


class VbatchedTrtriDiagKernel(Kernel):
    """Invert every task's diagonal ``ib``-blocks in one launch."""

    etm_mode = "classic"
    compute_efficiency = 0.40  # substitution-heavy, shared-memory bound

    def __init__(self, tasks: list[TrtriTask], precision: Precision, ib: int = 32):
        super().__init__()
        if not tasks:
            raise ValueError("trtri launch needs at least one task")
        if ib <= 0:
            raise ValueError(f"ib must be positive, got {ib}")
        self.tasks = tasks
        self.ib = ib
        self._prec = Precision(precision)
        self._info = precision_info(self._prec)
        self.max_jb = max(t.jb for t in tasks)
        self.name = f"vbatched_trtri:{self._info.name}"

    @property
    def precision(self) -> Precision:
        return self._prec

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig(
            threads_per_block=min(256, self.ib * self.ib),
            shared_mem_per_block=self.ib * self.ib * self._info.bytes_per_element,
        )

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        grid_per_matrix = max(1, -(-self.max_jb // self.ib))
        works: list[BlockWork] = []
        dead = 0
        threads = min(256, self.ib * self.ib)
        for task in self.tasks:
            live = -(-task.jb // self.ib) if task.jb > 0 else 0
            dead += grid_per_matrix - live
            if live == 0:
                continue
            ib_eff = min(self.ib, task.jb)
            works.append(
                BlockWork(
                    flops=_flops.trtri_flops(ib_eff) * w,
                    bytes=2.0 * ib_eff * ib_eff * elem,
                    serial_iters=float(ib_eff),
                    active_threads=threads,
                    count=live,
                )
            )
        if dead:
            works.append(BlockWork(0.0, 0.0, active_threads=0, count=dead))
        return works

    def run_numerics(self) -> None:
        for task in self.tasks:
            if task.jb == 0 or task.tri is None:
                continue
            inv = task.inv_out
            for j0 in range(0, task.jb, self.ib):
                j1 = min(j0 + self.ib, task.jb)
                # Must be an explicit copy: the factor itself stays
                # intact, only the workspace receives the inverse
                # (ascontiguousarray would alias contiguous slices).
                block = task.tri[j0:j1, j0:j1].copy()
                host_trtri("l", "n", block, nb=self.ib)
                inv[j0:j1, j0:j1] = np.tril(block)
