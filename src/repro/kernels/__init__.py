"""Simulated device kernels for the vbatched framework.

Each kernel mirrors one CUDA kernel of the paper's implementation: the
fused left-looking POTRF step kernel (§III-D), the separated vbatched
BLAS kernels — panel ``potf2``, ``trtri``, ``gemm``, ``syrk``, and the
``trsm`` built from them (§III-E) — the auxiliary metadata kernels the
factorization driver uses (§III-F), and cuBLAS-style fixed-size and
single-matrix kernels for the baselines.
"""

from .aux import IMaxReduceKernel, StepSizesKernel, compute_max_size
from .fused_potrf import (
    FusedPotrfStepKernel,
    fused_shared_mem_bytes,
    fused_step_numerics,
)
from .potf2 import PanelPotf2StepKernel
from .trtri import VbatchedTrtriDiagKernel
from .gemm import VbatchedGemmKernel, GemmTiling
from .syrk import VbatchedSyrkKernel, StreamedSyrkLauncher
from .trsm import vbatched_trsm_panel
from .cublas import SingleGemmKernel, SinglePotf2Kernel

__all__ = [
    "IMaxReduceKernel",
    "StepSizesKernel",
    "compute_max_size",
    "FusedPotrfStepKernel",
    "fused_shared_mem_bytes",
    "fused_step_numerics",
    "PanelPotf2StepKernel",
    "VbatchedTrtriDiagKernel",
    "VbatchedGemmKernel",
    "GemmTiling",
    "VbatchedSyrkKernel",
    "StreamedSyrkLauncher",
    "vbatched_trsm_panel",
    "SingleGemmKernel",
    "SinglePotf2Kernel",
]
