"""Vbatched triangular solve for the separated approach (paper §III-E2).

Follows the design of Haidar et al. [13] that the paper adopts: invert
the ``ib x ib`` (typically 32x32) diagonal blocks of each panel with a
vbatched ``trtri``, then sweep the panel's column blocks, each sweep
step being a pair of vbatched ``gemm`` launches — one applying the
inverted diagonal block, one updating the columns to its right.  Every
launch is vbatched across all matrices; matrices whose panel is
narrower than the current column block contribute ETM'd (dead) blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import Precision
from .gemm import GemmTask, GemmTiling, VbatchedGemmKernel
from .trtri import TrtriTask, VbatchedTrtriDiagKernel

__all__ = ["TrsmPanelItem", "vbatched_trsm_panel"]


@dataclass
class TrsmPanelItem:
    """One matrix's panel solve: ``B[m x jb] := B @ L11^{-H}``.

    ``l11``/``b``/``inv_ws`` are device-array views (``None`` in
    timing-only mode); ``inv_ws`` is a ``jb x jb`` workspace receiving
    the inverted diagonal blocks.
    """

    m: int
    jb: int
    l11: np.ndarray | None = None
    b: np.ndarray | None = None
    inv_ws: np.ndarray | None = None

    def __post_init__(self):
        if self.m < 0 or self.jb < 0:
            raise ValueError(f"negative trsm dimensions: {self}")


def vbatched_trsm_panel(
    device,
    items: list[TrsmPanelItem],
    precision: Precision,
    ib: int = 32,
    tiling: GemmTiling | None = None,
) -> int:
    """Enqueue the trtri + gemm-sweep launches for a panel solve.

    Returns the number of kernel launches issued (the separated
    approach's launch count is what the fusion comparison in Fig 4 is
    about).
    """
    if not items:
        raise ValueError("trsm panel needs at least one item")
    if ib <= 0:
        raise ValueError(f"ib must be positive, got {ib}")
    live = [it for it in items if it.jb > 0]
    if not live:
        return 0
    # Positions in `items` are batch indices; annotate every launch so
    # the plan optimizer knows which matrices each one touches.
    live_indices = tuple(i for i, it in enumerate(items) if it.jb > 0)

    launches = 0
    trtri_tasks = [TrtriTask(it.jb, it.l11, it.inv_ws) for it in live]
    trtri = VbatchedTrtriDiagKernel(trtri_tasks, precision, ib)
    trtri.matrix_indices = live_indices
    device.launch(trtri)
    launches += 1

    max_jb = max(it.jb for it in live)
    n_col_blocks = -(-max_jb // ib)
    for cb in range(n_col_blocks):
        c0 = cb * ib
        # Update step: columns of this block see the already-solved
        # columns to their left (skipped for the first block).
        if c0 > 0:
            tasks = []
            for it in live:
                c1 = min(c0 + ib, it.jb)
                width = max(0, c1 - c0)
                rows = it.m if width > 0 else 0
                tasks.append(
                    GemmTask(
                        m=rows,
                        n=width,
                        k=c0 if width > 0 else 0,
                        a=None if it.b is None else it.b[:, :c0],
                        b=None if it.l11 is None else it.l11[c0:c1, :c0],
                        c=None if it.b is None else it.b[:, c0:c1],
                        transb="c",
                        alpha=-1.0,
                        beta=1.0,
                    )
                )
            update = VbatchedGemmKernel(tasks, precision, tiling, label="trsm_update")
            update.matrix_indices = live_indices
            device.launch(update)
            launches += 1

        # Solve step: multiply by the inverted diagonal block.
        tasks = []
        for it in live:
            c1 = min(c0 + ib, it.jb)
            width = max(0, c1 - c0)
            rows = it.m if width > 0 else 0
            tasks.append(
                GemmTask(
                    m=rows,
                    n=width,
                    k=width,
                    a=None if it.b is None else it.b[:, c0:c1],
                    b=None if it.inv_ws is None else it.inv_ws[c0:c1, c0:c1],
                    c=None if it.b is None else it.b[:, c0:c1],
                    transb="c",
                    alpha=1.0,
                    beta=0.0,
                )
            )
        solve = VbatchedGemmKernel(tasks, precision, tiling, label="trsm_solve")
        solve.matrix_indices = live_indices
        device.launch(solve)
        launches += 1
    return launches
