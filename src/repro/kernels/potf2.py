"""Vbatched panel factorization for the separated approach (§III-E1).

"We reuse the fused kernel described in Section III-D in order to
factorize a square panel of size NB, where NB > nb."  This kernel is
the fused step kernel *restricted to the diagonal tile*: the history
for the customized syrk update is only the columns inside the tile
(the trailing matrix was already updated by the previous step's syrk),
and threads cover tile rows only.
"""

from __future__ import annotations

import numpy as np

from ..types import Precision, precision_info
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from . import grouping
from .fused_potrf import fused_shared_mem_bytes, fused_step_numerics

__all__ = ["PanelPotf2StepKernel"]

_WARP = 32


class PanelPotf2StepKernel(Kernel):
    """One ``nb``-step of the fused kernel on each matrix's ``jb x jb`` tile.

    Parameters mirror :class:`FusedPotrfStepKernel`, with ``offset`` the
    tile's global column origin and ``jbs`` the per-matrix tile orders
    (``min(NB, n_i - offset)``, zero for finished matrices).
    """

    compute_efficiency = 0.70  # same inner loop as the fused kernel

    def __init__(self, batch, offset: int, inner_step: int, nb: int,
                 jbs: np.ndarray, max_jb: int, etm: str = "aggressive",
                 groups: tuple[np.ndarray, np.ndarray] | None = None):
        self.etm_mode = etm
        super().__init__()
        if nb <= 0 or inner_step < 0 or offset < 0:
            raise ValueError(
                f"invalid panel step: offset={offset} inner_step={inner_step} nb={nb}"
            )
        if max_jb <= 0:
            raise ValueError(f"max_jb must be positive, got {max_jb}")
        self.batch = batch
        self.offset = offset
        self.inner_step = inner_step
        self.nb = nb
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.max_jb = int(max_jb)
        # Pre-grouped (remaining, counts) handed down by the driver;
        # None -> derive from jbs at launch time.
        self.groups = groups
        self._info = precision_info(batch.precision)
        self.name = f"vbatched_potf2:{self._info.name}"
        threads = min(1024, -(-self.max_jb // _WARP) * _WARP)
        self._config = LaunchConfig(
            threads_per_block=threads,
            shared_mem_per_block=fused_shared_mem_bytes(
                min(self.max_jb, threads), nb, self._info.bytes_per_element
            ),
            regs_per_thread=48,
            ilp=2.0,
        )

    @property
    def precision(self) -> Precision:
        return self.batch.precision

    def launch_config(self) -> LaunchConfig:
        return self._config

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        k = self.inner_step * self.nb
        if self.groups is not None:
            ms, counts = self.groups
        else:
            ms, counts = grouping.grouped_first_seen(np.maximum(0, self.jbs - k))
        m = ms.astype(np.float64)
        jb_step = np.minimum(float(self.nb), m)
        flops = jb_step**3 / 3.0 + jb_step**2 / 2.0 + jb_step / 6.0
        if k > 0:
            flops = flops + 2.0 * m * jb_step * k
        flops = flops + np.where(m > jb_step, (m - jb_step) * jb_step * jb_step, 0.0)
        bytes_ = (m * k + 2.0 * m * jb_step) * elem
        serial = 2.0 * jb_step
        works: list[BlockWork] = []
        for i, (mi, count) in enumerate(zip(ms.tolist(), counts.tolist())):
            if mi == 0:
                works.append(BlockWork(0.0, 0.0, active_threads=0, count=count))
            else:
                works.append(
                    BlockWork(
                        flops=flops[i] * w,
                        bytes=bytes_[i],
                        serial_iters=serial[i],
                        active_threads=mi,
                        count=count,
                    )
                )
        return works

    def _tile(self, i: int, jb: int) -> np.ndarray:
        return self.batch.matrix_view(i)[self.offset : self.offset + jb,
                                         self.offset : self.offset + jb]

    def run_numerics(self) -> None:
        infos = self.batch.infos_dev.data
        local = self.inner_step * self.nb
        live = np.flatnonzero((self.jbs > local) & (infos[: len(self.jbs)] == 0))
        if live.size == 0:
            return
        if grouping.reference_enabled():
            for i in live:
                i = int(i)
                info = fused_step_numerics(self._tile(i, int(self.jbs[i])), local, self.nb)
                if info != 0:
                    infos[i] = self.offset + info
            return
        ldas = self.batch.ldas_host
        buckets = grouping.partition_buckets(
            [(int(self.jbs[i]), int(ldas[i])) for i in live]
        )
        for bucket in buckets:
            ids = live[bucket.positions]
            jb = int(self.jbs[ids[0]])
            if len(ids) == 1:
                i = int(ids[0])
                info = fused_step_numerics(self._tile(i, jb), local, self.nb)
                if info != 0:
                    infos[i] = self.offset + info
                continue
            tiles = [self._tile(int(i), jb) for i in ids]
            ret = grouping.bucket_fused_step(tiles, local, self.nb)
            bad = ret > 0
            if bad.any():
                infos[ids[bad]] = self.offset + ret[bad]
