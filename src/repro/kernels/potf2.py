"""Vbatched panel factorization for the separated approach (§III-E1).

"We reuse the fused kernel described in Section III-D in order to
factorize a square panel of size NB, where NB > nb."  This kernel is
the fused step kernel *restricted to the diagonal tile*: the history
for the customized syrk update is only the columns inside the tile
(the trailing matrix was already updated by the previous step's syrk),
and threads cover tile rows only.
"""

from __future__ import annotations

import numpy as np

from .. import flops as _flops
from ..types import Precision, precision_info
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from .fused_potrf import fused_shared_mem_bytes, fused_step_numerics

__all__ = ["PanelPotf2StepKernel"]

_WARP = 32


class PanelPotf2StepKernel(Kernel):
    """One ``nb``-step of the fused kernel on each matrix's ``jb x jb`` tile.

    Parameters mirror :class:`FusedPotrfStepKernel`, with ``offset`` the
    tile's global column origin and ``jbs`` the per-matrix tile orders
    (``min(NB, n_i - offset)``, zero for finished matrices).
    """

    compute_efficiency = 0.70  # same inner loop as the fused kernel

    def __init__(self, batch, offset: int, inner_step: int, nb: int,
                 jbs: np.ndarray, max_jb: int, etm: str = "aggressive"):
        self.etm_mode = etm
        super().__init__()
        if nb <= 0 or inner_step < 0 or offset < 0:
            raise ValueError(
                f"invalid panel step: offset={offset} inner_step={inner_step} nb={nb}"
            )
        if max_jb <= 0:
            raise ValueError(f"max_jb must be positive, got {max_jb}")
        self.batch = batch
        self.offset = offset
        self.inner_step = inner_step
        self.nb = nb
        self.jbs = np.asarray(jbs, dtype=np.int64)
        self.max_jb = int(max_jb)
        self._info = precision_info(batch.precision)
        self.name = f"vbatched_potf2:{self._info.name}"
        threads = min(1024, -(-self.max_jb // _WARP) * _WARP)
        self._config = LaunchConfig(
            threads_per_block=threads,
            shared_mem_per_block=fused_shared_mem_bytes(min(self.max_jb, threads), nb, self._info.bytes_per_element),
            regs_per_thread=48,
            ilp=2.0,
        )

    @property
    def precision(self) -> Precision:
        return self.batch.precision

    def launch_config(self) -> LaunchConfig:
        return self._config

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        k = self.inner_step * self.nb
        groups: dict[int, int] = {}
        for jb in self.jbs:
            m = max(0, int(jb) - k)
            groups[m] = groups.get(m, 0) + 1
        works: list[BlockWork] = []
        for m, count in groups.items():
            if m == 0:
                works.append(BlockWork(0.0, 0.0, active_threads=0, count=count))
                continue
            jb_step = min(self.nb, m)
            flops = _flops.potf2_flops(jb_step)
            if k > 0:
                flops += _flops.gemm_flops(m, jb_step, k)
            if m > jb_step:
                flops += _flops.trsm_flops(m - jb_step, jb_step, side="right")
            bytes_ = (m * k + 2.0 * m * jb_step) * elem
            works.append(
                BlockWork(
                    flops=flops * w,
                    bytes=bytes_,
                    serial_iters=2.0 * jb_step,
                    active_threads=m,
                    count=count,
                )
            )
        return works

    def run_numerics(self) -> None:
        infos = self.batch.infos_dev.data
        for i, jb in enumerate(self.jbs):
            jb = int(jb)
            local = self.inner_step * self.nb
            if jb - local <= 0 or infos[i] != 0:
                continue
            n = int(self.batch.sizes_host[i])
            tile = self.batch.matrix_view(i)[self.offset : self.offset + jb,
                                             self.offset : self.offset + jb]
            info = fused_step_numerics(tile, local, self.nb)
            if info != 0:
                infos[i] = self.offset + info
