"""Size-bucketed vectorized execution for the simulated kernel numerics.

The paper's central performance lever is grouping nearly-equal sizes so
one launch does dense, coherent work (implicit sorting + ETM, §III-D).
The simulated kernels used to execute their functional plane one matrix
at a time in Python loops — paying interpreter overhead per matrix,
which is exactly the overhead the paper's batching eliminates on real
hardware.  This module is the software analogue of that fix, following
the batched-GEMM grouping strategy of Jhurani & Mullowney
(arXiv:1304.7053) and the bucketing of Boukaram et al.
(arXiv:1707.05141):

* partition a launch's work items into buckets of identical ``(n, lda)``
  (items in one bucket are shape-compatible),
* materialize each bucket as a 3-D ndarray stack,
* run the whole bucket through *batched* NumPy primitives
  (``matmul``/``einsum`` over the leading batch axis, vectorized
  substitution sweeps),
* scatter the results back into the per-matrix device views.

Every kernel keeps its original per-matrix loop as a *reference* path
(:func:`reference_numerics` / ``set_reference_numerics``) so the
vectorized path can be differentially tested against it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

__all__ = [
    "SizeBucket",
    "partition_buckets",
    "grouped_first_seen",
    "reference_numerics",
    "set_reference_numerics",
    "reference_enabled",
    "batched_potf2",
    "batched_panel_trsm",
    "batched_lower_trtri",
    "bucket_fused_step",
    "bucket_gemm",
    "bucket_syrk",
]


# ----------------------------------------------------------------------
# reference-mode switch
# ----------------------------------------------------------------------
_reference = os.environ.get("REPRO_REFERENCE_KERNELS", "") not in ("", "0", "false")


def reference_enabled() -> bool:
    """True when kernels should run their per-matrix reference loops."""
    return _reference


def set_reference_numerics(flag: bool) -> bool:
    """Select the numerics path globally; returns the previous setting.

    ``True`` restores the original one-matrix-at-a-time loops (the
    differential-testing baseline); ``False`` (default) runs the
    size-bucketed vectorized path.  Also settable via the
    ``REPRO_REFERENCE_KERNELS=1`` environment variable at import time.
    """
    global _reference
    previous = _reference
    _reference = bool(flag)
    return previous


@contextmanager
def reference_numerics(flag: bool = True):
    """Context manager selecting the numerics path for the enclosed code.

    ``reference_numerics()`` runs the per-matrix reference loops;
    ``reference_numerics(False)`` forces the vectorized path regardless
    of the ambient setting.
    """
    previous = set_reference_numerics(flag)
    try:
        yield
    finally:
        set_reference_numerics(previous)


# ----------------------------------------------------------------------
# bucket partitioning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SizeBucket:
    """One same-shape bucket: a key plus positions into the launch list."""

    key: tuple
    positions: np.ndarray

    def __len__(self) -> int:
        return len(self.positions)


def partition_buckets(keys) -> list[SizeBucket]:
    """Partition launch positions into same-key buckets.

    ``keys`` is a sequence of hashables (one per work item, e.g.
    ``(n, lda)`` tuples); the result preserves first-seen key order and
    each bucket's positions preserve issue order, so the vectorized path
    visits work in the same order the reference loop would.
    """
    groups: dict[tuple, list[int]] = {}
    for pos, key in enumerate(keys):
        groups.setdefault(key, []).append(pos)
    return [
        SizeBucket(key, np.asarray(positions, dtype=np.int64))
        for key, positions in groups.items()
    ]


def grouped_first_seen(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique values and counts in first-seen order (vectorized).

    Equivalent to accumulating ``dict[value] += 1`` over ``values`` —
    the grouping every kernel's timing plane performs — but via
    ``np.unique``.  First-seen order matters: block groups are fed to
    the exact scheduler in issue order.
    """
    values = np.asarray(values)
    if values.size == 0:
        return values, np.zeros(0, dtype=np.int64)
    uniq, first, counts = np.unique(values, return_index=True, return_counts=True)
    order = np.argsort(first, kind="stable")
    return uniq[order], counts[order]


# ----------------------------------------------------------------------
# batched numeric primitives
# ----------------------------------------------------------------------
def _conj_t(stack: np.ndarray) -> np.ndarray:
    """Batched conjugate transpose of a 3-D stack."""
    return np.conj(np.swapaxes(stack, -1, -2))


def batched_potf2(t: np.ndarray) -> np.ndarray:
    """In-place batched unblocked lower Cholesky of a ``(B, n, n)`` stack.

    Mirrors :func:`repro.hostblas.potf2` semantics per matrix: returns
    an int64 info array (0 on success, 1-based failing pivot otherwise);
    a failed matrix's columns from the failing one onward are left
    untouched, and already-failed matrices stop receiving writes.
    """
    bsz, n = t.shape[0], t.shape[1]
    infos = np.zeros(bsz, dtype=np.int64)
    active = np.ones(bsz, dtype=bool)
    for j in range(n):
        row = t[:, j, :j]
        if j > 0:
            d = t[:, j, j].real - np.einsum("bk,bk->b", row, row.conj()).real
        else:
            d = t[:, j, j].real.copy()
        bad = active & ((d <= 0) | np.isnan(d))
        if bad.any():
            infos[bad] = j + 1
            active = active & ~bad
            if not active.any():
                break
        dj = np.sqrt(np.where(active, d, 1.0))
        t[active, j, j] = dj[active]
        if j + 1 < n:
            below = t[:, j + 1 :, :j]
            col = t[:, j + 1 :, j] - np.einsum("bmk,bk->bm", below, row.conj())
            t[active, j + 1 :, j] = (col / dj[:, None])[active]
    return infos


def batched_panel_trsm(l11: np.ndarray, b: np.ndarray, ok: np.ndarray | None = None) -> None:
    """Batched in-place solve ``X @ L^H = B`` (right/lower/conj-trans).

    ``l11`` is a ``(B, jb, jb)`` stack of lower-triangular factors and
    ``b`` the ``(B, m, jb)`` right-hand-side panels, overwritten with the
    solution — the batched analogue of
    ``trsm('r', 'l', 'c', 'n', 1.0, L, B)``.  Entries where ``ok`` is
    False (failed factorizations) are left untouched.
    """
    bsz, jb = l11.shape[0], l11.shape[1]
    if ok is None:
        ok = np.ones(bsz, dtype=bool)
    for j in range(jb):
        denom = np.where(ok, l11[:, j, j], 1.0).conj()
        rhs = b[:, :, j]
        if j > 0:
            rhs = rhs - np.einsum("bmi,bi->bm", b[:, :, :j], l11[:, j, :j].conj())
        b[ok, :, j] = (rhs / denom[:, None])[ok]


def batched_lower_trtri(l: np.ndarray) -> np.ndarray:
    """Batched inverse of a ``(B, n, n)`` stack of lower triangles.

    Row-wise forward substitution on the identity, vectorized over the
    batch; returns a new stack whose strict upper triangle is zero.
    Raises :class:`ZeroDivisionError` on an exactly-zero diagonal, as
    the host reference does.
    """
    bsz, n = l.shape[0], l.shape[1]
    diag = np.diagonal(l, axis1=1, axis2=2)
    zeros = np.argwhere(diag == 0)
    if zeros.size:
        j = int(zeros[0, 1])
        raise ZeroDivisionError(
            f"trtri: A({j + 1},{j + 1}) is exactly zero (info={j + 1})"
        )
    inv = np.zeros_like(l)
    eye = np.eye(n, dtype=l.dtype)
    for i in range(n):
        rhs = eye[i] - np.einsum("bk,bkj->bj", l[:, i, :i], inv[:, :i, :])
        inv[:, i, :] = rhs / l[:, i, i, None]
    return np.tril(inv)


def bucket_fused_step(views: list[np.ndarray], j0: int, nb: int) -> np.ndarray:
    """Vectorized fused Algorithm-1 step over one same-size bucket.

    ``views`` are equal-order ``n x n`` matrix views; performs the
    panel-update + tile-factorize + panel-solve of
    :func:`repro.kernels.fused_potrf.fused_step_numerics` on the whole
    bucket at once and scatters the panel columns back.  Returns the
    per-matrix info array (0, or the 1-based global failing pivot).
    """
    n = views[0].shape[0]
    j1 = min(j0 + nb, n)
    jb = j1 - j0
    k = j0
    # One gather covers everything the step touches: rows j0:, cols :j1.
    s = np.stack([v[j0:, :j1] for v in views])
    tile = s[:, :jb, k:j1]
    if k > 0:
        hist = s[:, :jb, :k]
        upd = hist @ _conj_t(hist)
        rows, cols = np.tril_indices(jb)
        tile[:, rows, cols] -= upd[:, rows, cols]
        if j1 < n:
            s[:, jb:, k:j1] -= s[:, jb:, :k] @ _conj_t(hist)
    infos = batched_potf2(tile)
    ok = infos == 0
    if j1 < n and ok.any():
        batched_panel_trsm(tile, s[:, jb:, k:j1], ok=ok)
    for b, v in enumerate(views):
        v[j0:, j0:j1] = s[b, :, k:j1]
    return np.where(infos > 0, infos + j0, 0)


def _apply_op_stack(stack: np.ndarray, trans: str) -> np.ndarray:
    """Batched ``op(A)`` for a BLAS trans flag over a 3-D stack."""
    t = trans.lower()
    if t == "n":
        return stack
    if t == "t":
        return np.swapaxes(stack, -1, -2)
    return _conj_t(stack)


def bucket_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    transa: str,
    transb: str,
    alpha: complex,
    beta: complex,
) -> np.ndarray:
    """Batched ``C := alpha op(A) @ op(B) + beta C`` on stacked operands.

    ``c`` is updated in place and returned; semantics match
    :func:`repro.hostblas.gemm` per matrix (including the ``k == 0``
    scale-only and ``beta == 0`` overwrite-even-NaN cases).
    """
    opa = _apply_op_stack(a, transa)
    opb = _apply_op_stack(b, transb)
    if opa.shape[-1] == 0:
        c *= beta
        return c
    if beta == 0:
        c[...] = opa @ opb
        if alpha != 1:
            c *= alpha
    else:
        if beta != 1:
            c *= beta
        c += alpha * (opa @ opb)
    return c


def bucket_syrk(
    a: np.ndarray,
    c: np.ndarray,
    uplo: str,
    trans: str,
    alpha: complex,
    beta: complex,
) -> np.ndarray:
    """Batched rank-k update ``C := alpha op(A) op(A)^H + beta C``.

    Touches only the ``uplo`` triangle of each ``c`` slice, exactly as
    :func:`repro.hostblas.syrk` specifies; ``c`` is updated in place.
    """
    opa = _apply_op_stack(a, "n" if trans.lower() == "n" else trans)
    n = c.shape[-1]
    full = alpha * (opa @ _conj_t(opa))
    rows, cols = np.tril_indices(n) if uplo.lower() == "l" else np.triu_indices(n)
    if beta == 0:
        c[:, rows, cols] = full[:, rows, cols]
    else:
        c[:, rows, cols] = beta * c[:, rows, cols] + full[:, rows, cols]
    return c
