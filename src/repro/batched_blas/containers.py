"""Rectangular batch container for the vbatched BLAS interface.

:class:`~repro.core.batch.VBatch` is the factorization-oriented square
container; BLAS operands are general ``m_i x n_i`` rectangles, so the
BLAS level gets its own container with per-matrix row/column arrays on
the device (paper §III-A: "both the matrix sizes and the leading
dimensions need to be passed (as arrays of integers) ... all arrays
need to reside on the GPU memory").
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ArgumentError
from ..types import Precision, precision_info

__all__ = ["MatrixBatch"]


class MatrixBatch:
    """A batch of independent rectangular matrices on the device."""

    def __init__(self, device, matrices, rows: np.ndarray, cols: np.ndarray):
        if len(matrices) == 0:
            raise ArgumentError(2, "batch must contain at least one matrix")
        if len(matrices) != rows.size or rows.size != cols.size:
            raise ArgumentError(2, "matrices/rows/cols length mismatch")
        if np.any(rows < 0) or np.any(cols < 0):
            raise ArgumentError(3, "matrix dimensions cannot be negative")
        self.device = device
        self.matrices = list(matrices)
        self.rows_host = rows.astype(np.int64)
        self.cols_host = cols.astype(np.int64)
        self.rows_dev = device.alloc((rows.size,), np.int64)
        self.cols_dev = device.alloc((cols.size,), np.int64)
        if device.execute_numerics:
            self.rows_dev.data[...] = self.rows_host
            self.cols_dev.data[...] = self.cols_host

    @classmethod
    def from_host(cls, device, host_matrices: Sequence[np.ndarray]) -> MatrixBatch:
        """Upload host matrices (PCIe-charged, one transfer each)."""
        if not host_matrices:
            raise ArgumentError(2, "batch must contain at least one matrix")
        dtypes = {m.dtype for m in host_matrices}
        if len(dtypes) != 1:
            raise ArgumentError(2, f"mixed dtypes in batch: {sorted(map(str, dtypes))}")
        for m in host_matrices:
            if m.ndim != 2:
                raise ArgumentError(2, f"matrices must be 2-D, got shape {m.shape}")
        mats = [device.upload(m) for m in host_matrices]
        rows = np.array([m.shape[0] for m in host_matrices], dtype=np.int64)
        cols = np.array([m.shape[1] for m in host_matrices], dtype=np.int64)
        return cls(device, mats, rows, cols)

    @classmethod
    def allocate(
        cls,
        device,
        rows: Sequence[int] | np.ndarray,
        cols: Sequence[int] | np.ndarray,
        precision: Precision | str = Precision.D,
    ) -> MatrixBatch:
        """Allocate an uninitialized batch (timing-only workloads)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.size != cols.size:
            raise ArgumentError(3, "rows/cols length mismatch")
        info = precision_info(Precision(precision))
        mats = [
            device.alloc((max(int(r), 1), max(int(c), 1)), info.dtype)
            for r, c in zip(rows, cols)
        ]
        return cls(device, mats, rows, cols)

    @property
    def batch_count(self) -> int:
        return len(self.matrices)

    @property
    def precision(self) -> Precision:
        return self.matrices[0].precision

    def view(self, i: int) -> np.ndarray:
        """Live ``rows_i x cols_i`` view of matrix ``i``."""
        r, c = int(self.rows_host[i]), int(self.cols_host[i])
        return self.matrices[i].data[:r, :c]

    def download(self) -> list[np.ndarray]:
        out = []
        for i, m in enumerate(self.matrices):
            full = self.device.download(m)
            out.append(full[: int(self.rows_host[i]), : int(self.cols_host[i])])
        return out

    def free(self) -> None:
        for m in self.matrices:
            m.free()
        self.rows_dev.free()
        self.cols_dev.free()
