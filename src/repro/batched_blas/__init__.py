"""Public vbatched BLAS interface (paper §III-A).

The paper's interface proposal — per-matrix dimension arrays resident
on the device, a batch count, and a max-dimension fast path — applied
to the BLAS level itself: these entry points are the "modular,
language-agnostic interfaces ... that would allow the entire linear
algebra community to collectively develop a wide range of small matrix
problems" the paper argues for (and that later became the Batched BLAS
standardization effort).

Each routine validates per-matrix dimensions with LAPACK-style
argument numbering, launches the corresponding vbatched kernels, and
runs on both planes: real numerics plus the calibrated timing model.
"""

from .containers import MatrixBatch
from .routines import (
    gemm_vbatched,
    syrk_vbatched,
    trsm_vbatched,
    trtri_vbatched,
)

__all__ = [
    "MatrixBatch",
    "gemm_vbatched",
    "syrk_vbatched",
    "trsm_vbatched",
    "trtri_vbatched",
]
