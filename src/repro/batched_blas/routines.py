"""The vbatched BLAS entry points.

Every routine follows the paper's two-interface scheme implicitly: the
maxima the kernels need are taken from the host dimension mirrors
(matching the expert interface; the metadata also lives on the device
per §III-A).  Dimension conformance is validated per matrix with
LAPACK-style argument indices.
"""

from __future__ import annotations

from dataclasses import dataclass


from .. import flops as _flops
from ..device.kernel import BlockWork, Kernel, LaunchConfig
from ..errors import ArgumentError
from ..hostblas import trsm as host_trsm, trtri as host_trtri
from ..kernels.gemm import GemmTask, VbatchedGemmKernel
from ..kernels.syrk import SyrkTask, VbatchedSyrkKernel
from ..types import Precision, precision_info
from .containers import MatrixBatch

__all__ = ["gemm_vbatched", "syrk_vbatched", "trsm_vbatched", "trtri_vbatched"]


@dataclass
class BlasRunResult:
    """Timing record of one vbatched BLAS call."""

    elapsed: float
    total_flops: float

    @property
    def gflops(self) -> float:
        return _flops.gflops(self.total_flops, self.elapsed)


def _op_dims(rows, cols, trans):
    return (cols, rows) if trans in ("t", "c") else (rows, cols)


# ----------------------------------------------------------------------
def gemm_vbatched(
    device,
    transa: str,
    transb: str,
    alpha: complex,
    a: MatrixBatch,
    b: MatrixBatch,
    beta: complex,
    c: MatrixBatch,
) -> BlasRunResult:
    """``C_i := alpha op(A_i) op(B_i) + beta C_i`` for every i."""
    ta, tb = transa.lower(), transb.lower()
    if ta not in ("n", "t", "c"):
        raise ArgumentError(2, f"transa must be n/t/c, got {transa!r}")
    if tb not in ("n", "t", "c"):
        raise ArgumentError(3, f"transb must be n/t/c, got {transb!r}")
    if not (a.batch_count == b.batch_count == c.batch_count):
        raise ArgumentError(5, "batch counts disagree")

    numerics = device.execute_numerics
    tasks = []
    total = 0.0
    for i in range(a.batch_count):
        am, ak = _op_dims(int(a.rows_host[i]), int(a.cols_host[i]), ta)
        bk, bn = _op_dims(int(b.rows_host[i]), int(b.cols_host[i]), tb)
        cm, cn = int(c.rows_host[i]), int(c.cols_host[i])
        if ak != bk:
            raise ArgumentError(6, f"matrix {i}: inner dims {ak} vs {bk}")
        if (cm, cn) != (am, bn):
            raise ArgumentError(8, f"matrix {i}: C is {cm}x{cn}, expected {am}x{bn}")
        total += _flops.gemm_flops(am, bn, ak, a.precision)
        tasks.append(
            GemmTask(
                m=am, n=bn, k=ak,
                a=a.view(i) if numerics else None,
                b=b.view(i) if numerics else None,
                c=c.view(i) if numerics else None,
                transa=ta, transb=tb, alpha=alpha, beta=beta,
            )
        )
    t0 = device.synchronize()
    device.launch(VbatchedGemmKernel(tasks, a.precision))
    return BlasRunResult(device.synchronize() - t0, total)


# ----------------------------------------------------------------------
def syrk_vbatched(
    device,
    uplo: str,
    trans: str,
    alpha: complex,
    a: MatrixBatch,
    beta: complex,
    c: MatrixBatch,
) -> BlasRunResult:
    """``C_i := alpha op(A_i) op(A_i)^H + beta C_i`` on one triangle."""
    u, t = uplo.lower(), trans.lower()
    if u not in ("l", "u"):
        raise ArgumentError(2, f"uplo must be l/u, got {uplo!r}")
    if t not in ("n", "t", "c"):
        raise ArgumentError(3, f"trans must be n/t/c, got {trans!r}")
    if a.batch_count != c.batch_count:
        raise ArgumentError(5, "batch counts disagree")

    numerics = device.execute_numerics
    tasks = []
    total = 0.0
    for i in range(a.batch_count):
        an, ak = _op_dims(int(a.rows_host[i]), int(a.cols_host[i]), t)
        cn = int(c.rows_host[i])
        if int(c.cols_host[i]) != cn:
            raise ArgumentError(7, f"matrix {i}: C must be square")
        if an != cn:
            raise ArgumentError(5, f"matrix {i}: op(A) has {an} rows, C order {cn}")
        total += _flops.syrk_flops(cn, ak, a.precision)
        tasks.append(
            SyrkTask(
                n=cn, k=ak,
                a=a.view(i) if numerics else None,
                c=c.view(i) if numerics else None,
                alpha=alpha, beta=beta, uplo=u, trans=t,
            )
        )
    t0 = device.synchronize()
    device.launch(VbatchedSyrkKernel(tasks, a.precision))
    return BlasRunResult(device.synchronize() - t0, total)


# ----------------------------------------------------------------------
class _FlexTrsmKernel(Kernel):
    """General vbatched trsm: one thread block per matrix.

    Cost follows the diagonal-inversion + gemm decomposition at 32-wide
    blocks collapsed into one launch; numerics delegate to the host
    reference with the full flag set.
    """

    compute_efficiency = 0.70

    def __init__(self, items, precision, side, uplo, trans, diag, alpha, max_rows):
        super().__init__()
        self.items = items  # (na, m, n, a_view, b_view)
        self._prec = Precision(precision)
        self._info = precision_info(self._prec)
        self.side, self.uplo, self.trans, self.diag = side, uplo, trans, diag
        self.alpha = alpha
        self.max_rows = max(1, int(max_rows))
        self.name = f"vbatched_trsm_flex:{self._info.name}"

    @property
    def precision(self):
        return self._prec

    def launch_config(self) -> LaunchConfig:
        threads = min(1024, -(-self.max_rows // 32) * 32)
        return LaunchConfig(threads, min(48 * 1024, threads * 8 * self._info.bytes_per_element), ilp=2.0)

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        works = []
        for na, m, n, _, _ in self.items:
            if m == 0 or n == 0:
                works.append(BlockWork(0.0, 0.0, active_threads=0))
                continue
            works.append(
                BlockWork(
                    flops=_flops.trsm_flops(m, n, "left" if self.side == "l" else "right") * w,
                    bytes=(na * na + 2.0 * m * n) * elem,
                    serial_iters=2.0 * -(-na // 32) * 32 / 32,
                    active_threads=min(1024, max(m, 1)),
                )
            )
        return works

    def run_numerics(self) -> None:
        for na, m, n, a_view, b_view in self.items:
            if m == 0 or n == 0 or b_view is None:
                continue
            host_trsm(self.side, self.uplo, self.trans, self.diag, self.alpha, a_view, b_view)


def trsm_vbatched(
    device,
    side: str,
    uplo: str,
    trans: str,
    diag: str,
    alpha: complex,
    a: MatrixBatch,
    b: MatrixBatch,
) -> BlasRunResult:
    """``op(A_i) X_i = alpha B_i`` (left) or ``X_i op(A_i) = alpha B_i``."""
    s, u, t, d = side.lower(), uplo.lower(), trans.lower(), diag.lower()
    if s not in ("l", "r"):
        raise ArgumentError(2, f"side must be l/r, got {side!r}")
    if u not in ("l", "u"):
        raise ArgumentError(3, f"uplo must be l/u, got {uplo!r}")
    if t not in ("n", "t", "c"):
        raise ArgumentError(4, f"trans must be n/t/c, got {trans!r}")
    if d not in ("n", "u"):
        raise ArgumentError(5, f"diag must be n/u, got {diag!r}")
    if a.batch_count != b.batch_count:
        raise ArgumentError(7, "batch counts disagree")

    numerics = device.execute_numerics
    items = []
    total = 0.0
    max_rows = 1
    for i in range(a.batch_count):
        na = int(a.rows_host[i])
        if int(a.cols_host[i]) != na:
            raise ArgumentError(7, f"matrix {i}: A must be square")
        m, n = int(b.rows_host[i]), int(b.cols_host[i])
        need = m if s == "l" else n
        if na != need and m and n:
            raise ArgumentError(7, f"matrix {i}: A order {na}, B needs {need}")
        total += _flops.trsm_flops(m, n, "left" if s == "l" else "right", a.precision)
        max_rows = max(max_rows, m)
        items.append((
            na, m, n,
            a.view(i) if numerics else None,
            b.view(i) if numerics else None,
        ))
    t0 = device.synchronize()
    device.launch(_FlexTrsmKernel(items, a.precision, s, u, t, d, alpha, max_rows))
    return BlasRunResult(device.synchronize() - t0, total)


# ----------------------------------------------------------------------
class _FullTrtriKernel(Kernel):
    """Whole-triangle inversion per matrix, one thread block each."""

    compute_efficiency = 0.45

    def __init__(self, items, precision, uplo, diag, max_rows):
        super().__init__()
        self.items = items  # (n, view)
        self._prec = Precision(precision)
        self._info = precision_info(self._prec)
        self.uplo, self.diag = uplo, diag
        self.max_rows = max(1, int(max_rows))
        self.name = f"vbatched_trtri_full:{self._info.name}"

    @property
    def precision(self):
        return self._prec

    def launch_config(self) -> LaunchConfig:
        threads = min(1024, -(-self.max_rows // 32) * 32)
        return LaunchConfig(threads, min(48 * 1024, threads * 8 * self._info.bytes_per_element), ilp=2.0)

    def block_works(self) -> list[BlockWork]:
        w = self._info.flop_weight
        elem = self._info.bytes_per_element
        works = []
        for n, _ in self.items:
            if n == 0:
                works.append(BlockWork(0.0, 0.0, active_threads=0))
                continue
            works.append(
                BlockWork(
                    flops=_flops.trtri_flops(n) * w,
                    bytes=2.0 * n * n * elem,
                    serial_iters=2.0 * n,
                    active_threads=min(n, 1024),
                )
            )
        return works

    def run_numerics(self) -> None:
        for n, view in self.items:
            if n == 0 or view is None:
                continue
            host_trtri(self.uplo, self.diag, view)


def trtri_vbatched(device, uplo: str, diag: str, a: MatrixBatch) -> BlasRunResult:
    """Invert every matrix's ``uplo`` triangle in place."""
    u, d = uplo.lower(), diag.lower()
    if u not in ("l", "u"):
        raise ArgumentError(2, f"uplo must be l/u, got {uplo!r}")
    if d not in ("n", "u"):
        raise ArgumentError(3, f"diag must be n/u, got {diag!r}")
    numerics = device.execute_numerics
    items = []
    total = 0.0
    max_rows = 1
    for i in range(a.batch_count):
        n = int(a.rows_host[i])
        if int(a.cols_host[i]) != n:
            raise ArgumentError(4, f"matrix {i}: must be square, got "
                                   f"{a.rows_host[i]}x{a.cols_host[i]}")
        total += _flops.trtri_flops(n, a.precision)
        max_rows = max(max_rows, n)
        items.append((n, a.view(i) if numerics else None))
    t0 = device.synchronize()
    device.launch(_FullTrtriKernel(items, a.precision, u, d, max_rows))
    return BlasRunResult(device.synchronize() - t0, total)
