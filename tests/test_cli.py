"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestFiguresCommand:
    def test_single_figure(self, capsys):
        assert main(["figures", "--fig", "aux", "-p", "d"]) == 0
        out = capsys.readouterr().out
        assert "interface overhead" in out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "--fig", "42"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_fig3_runs(self, capsys):
        assert main(["figures", "--fig", "3"]) == 0
        assert "histograms" in capsys.readouterr().out


class TestTuneCommand:
    def test_fused_nb(self, capsys):
        assert main(["tune", "fused_nb", "-p", "d", "-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "fused_nb" in out and "nb" in out

    def test_gemm_with_cache(self, capsys, tmp_path):
        cache = tmp_path / "t.json"
        assert main(["tune", "gemm", "-p", "s", "-n", "128", "--cache", str(cache)]) == 0
        assert cache.exists()
        data = json.loads(cache.read_text())
        assert any(k.startswith("gemm_tiling") for k in data)


class TestProfileCommand:
    def test_profile_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main([
            "profile", "-b", "200", "-n", "96", "--trace", str(trace)
        ]) == 0
        out = capsys.readouterr().out
        assert "Gflop/s" in out and "share_%" in out
        assert json.loads(trace.read_text())["traceEvents"]

    def test_profile_distribution_choice(self, capsys):
        assert main(["profile", "-b", "100", "-n", "64", "-d", "gaussian"]) == 0


class TestEnergyCommand:
    def test_energy_bucket(self, capsys):
        assert main(["energy", "--low", "64", "--high", "128", "-b", "300"]) == 0
        out = capsys.readouterr().out
        assert "energy ratio" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
